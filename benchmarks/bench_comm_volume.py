"""Section 6.3's communication claim: the YTYᵀ form halves the volume.

Regenerates the message-volume table per block representation (the
sparsity-aware word counts of Figures 3–4), verifies "the YTYᵀ
representation of U requires [about] half the storage of the other
methods", and cross-checks against the simulator's actual broadcast
accounting.
"""

from repro.bench import format_table, write_result
from repro.parallel import simulate_factorization
from repro.parallel.costs import transform_words
from repro.toeplitz import kms_toeplitz


def test_transform_volume_table(benchmark):
    def run():
        return {m: {rep: transform_words(rep, m)
                    for rep in ("vy1", "vy2", "yty", "dense")}
                for m in (2, 4, 8, 16, 32, 64)}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m, v["vy1"], v["vy2"], v["yty"], v["dense"],
             f"{v['yty'] / v['vy2']:.2f}"]
            for m, v in sorted(table.items())]
    text = format_table(
        ["m", "vy1_words", "vy2_words", "yty_words", "dense_words",
         "yty/vy"],
        rows,
        title=("Section 6.3 — words to communicate one block "
               "transformation (sparsity-aware); the YTYᵀ form is "
               "≈ half the VY volume"))
    write_result("comm_volume", text)

    for m, v in table.items():
        if m >= 8:
            assert v["yty"] < 0.75 * v["vy2"]
            assert v["dense"] > v["vy1"]


def test_simulator_broadcast_volume_matches(benchmark):
    """The simulated broadcast byte counts must order the same way."""
    def run():
        t = kms_toeplitz(256, 0.5).regroup(16)
        out = {}
        for rep in ("vy2", "yty"):
            run_ = simulate_factorization(t, nproc=4, b=1,
                                          representation=rep,
                                          collect=False)
            out[rep] = run_.report.total_by_category().get("broadcast",
                                                           0.0)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["representation", "total_broadcast_seconds"],
        [[k, v] for k, v in times.items()],
        title="Simulated T3D broadcast time by representation (m=16)")
    write_result("comm_volume_simulated", text)
    assert times["yty"] < times["vy2"]
