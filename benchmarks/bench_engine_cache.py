"""Factorization-cache throughput: factor once, solve many.

The serve-many-RHS workload behind the engine cache: ``k`` separate
``solve`` calls against the same operator.  Without the cache each call
pays the ``O(m_s n²)`` factorization; with it only the first does, and
the remaining ``k − 1`` calls are ``O(n²/m_s)``-ish triangular solves.
With ``m_s = 16`` the factor/solve flop ratio is ≈ 30×, so a 10-RHS
workload must clear a 5× end-to-end speedup.

This bench also guards the observability budget: the span/metric
instrumentation threaded through the engine must cost < 2 % of a solve
when disabled (the production default).  Both the timings and the
measured overhead land in ``BENCH_engine_cache.json``; one profiled
execution is exported as ``engine_cache_trace.jsonl`` (the CI artifact).
"""

import os
import time

import numpy as np

import repro.engine as engine
import repro.obs as obs
from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import full_scale
from repro.engine import FactorizationCache
from repro.toeplitz import kms_toeplitz


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _solve_many(pl, rhs, cache):
    for b in rhs:
        engine.execute(pl, b, cache=cache)


def run_cache_bench(n, ms, nrhs):
    t = kms_toeplitz(n, 0.5)
    rng = np.random.default_rng(0)
    rhs = [rng.standard_normal(n) for _ in range(nrhs)]
    pl = engine.plan(t, assume="spd", block_size=ms)

    off = FactorizationCache(max_entries=1)
    t_off = _wall(lambda: _solve_many(pl.with_(use_cache=False), rhs,
                                      None))
    t_on = _wall(lambda: (off.clear(), off.reset_stats(),
                          _solve_many(pl, rhs, off)))
    return t_off, t_on, off.stats()


def measure_obs(pl, rhs, nrhs):
    """Observability cost: enabled wall time and disabled-path estimate.

    The enabled cost is a direct re-timing of the cached-solve loop with
    tracing on.  The *disabled* instrumentation cost cannot be measured
    against code that no longer exists, so it is bounded from the two
    measurable factors: the per-call cost of a disabled ``obs.span``
    (the only thing the hot path touches) times the number of span
    sites one execution passes through.
    """
    was_enabled = obs.enabled()
    obs.disable()
    cache = FactorizationCache(max_entries=1)
    t_disabled = _wall(lambda: (cache.clear(), cache.reset_stats(),
                                _solve_many(pl, rhs, cache)))

    # Disabled fast path: per-call cost of span() + the enabled() checks.
    calls = 100_000
    t0 = time.perf_counter()
    for _ in range(calls):
        with obs.span("overhead-probe"):
            pass
    per_span = (time.perf_counter() - t0) / calls

    # Disabled health hooks: each returns after one enabled() check.
    from repro.obs import health
    t0 = time.perf_counter()
    for _ in range(calls):
        health.record_rotation_margin(1.0, 1e-14)
    per_guard = (time.perf_counter() - t0) / calls

    obs.enable()
    try:
        cache.clear()
        cache.reset_stats()
        t_enabled = _wall(lambda: (cache.clear(), cache.reset_stats(),
                                   _solve_many(pl, rhs, cache)))
        profiled = engine.execute(pl, rhs[0], cache=cache)
        spans_per_execute = sum(1 for _ in profiled.profile.root.walk())
        snap = obs.default_registry().snapshot()
        health_samples = sum(1 for k in snap
                             if k.startswith("repro_health_"))
    finally:
        if not was_enabled:
            obs.disable()

    # The workload factors once (every later solve hits the cache), and
    # that factorization runs one margin guard per eliminated column
    # (~n) plus a handful of coarser hooks.  Fold their disabled cost
    # into the same budget the span sites answer to.
    guards_per_factor = pl.order + 4
    disabled_overhead = (spans_per_execute * per_span * nrhs
                         + guards_per_factor * per_guard) / t_disabled
    return {
        "seconds_obs_disabled": t_disabled,
        "seconds_obs_enabled": t_enabled,
        "enabled_overhead_pct": 100.0 * (t_enabled - t_disabled)
        / t_disabled,
        "disabled_span_cost_seconds": per_span,
        "disabled_health_guard_seconds": per_guard,
        "spans_per_execute": spans_per_execute,
        "health_guards_per_factor": guards_per_factor,
        "health_samples_enabled": health_samples,
        "disabled_overhead_pct": 100.0 * disabled_overhead,
    }, profiled.profile


def test_engine_cache_throughput(benchmark):
    n = 1536 if full_scale() else 768
    ms, nrhs = 16, 10
    t_off, t_on, stats = benchmark.pedantic(
        run_cache_bench, args=(n, ms, nrhs), rounds=1, iterations=1)
    speedup = t_off / t_on
    rows = [[n, ms, nrhs, t_off, t_on, f"{speedup:.1f}x",
             stats.hits, stats.misses]]
    text = format_table(
        ["n", "m_s", "nrhs", "cache_off_s", "cache_on_s", "speedup",
         "hits", "misses"],
        rows,
        title=(f"Repeated-RHS solve throughput ({nrhs} solves against "
               "one matrix): factorization cache on vs off"))
    write_result("engine_cache", text)

    # --- observability budget + trace artifact -----------------------
    t = kms_toeplitz(n, 0.5)
    rng = np.random.default_rng(0)
    rhs = [rng.standard_normal(n) for _ in range(nrhs)]
    pl = engine.plan(t, assume="spd", block_size=ms)
    overhead, profile = measure_obs(pl, rhs, nrhs)

    trace_path = os.path.join(
        os.environ.get("REPRO_RESULTS_DIR",
                       os.path.join(os.path.dirname(__file__), "results")),
        "engine_cache_trace.jsonl")
    records = profile.to_records()
    obs.write_jsonl(records, trace_path)
    chrome_path = trace_path.replace(".jsonl", "_chrome.json")
    obs.write_chrome_trace(records, chrome_path)

    write_json_result("engine_cache", {
        "workload": {"n": n, "m_s": ms, "nrhs": nrhs,
                     "matrix": "kms(0.5)", "full_scale": full_scale()},
        "timings": {"cache_off_seconds": t_off,
                    "cache_on_seconds": t_on,
                    "speedup": speedup},
        "cache": {"hits": stats.hits, "misses": stats.misses,
                  "evictions": stats.evictions,
                  "bytes": stats.current_bytes},
        "observability": overhead,
        "model_flops_factorization":
            profile.root.children[0].attributes.get("model_flops"),
        "trace_jsonl": trace_path,
        "trace_chrome": chrome_path,
    })

    # the last timed pass factored once and hit on every later solve
    assert stats.misses == 1
    assert stats.hits == nrhs - 1
    # factor-once must dominate: ≥5× end-to-end on 10 RHS
    assert speedup >= 5.0, (t_off, t_on)
    # the disabled instrumentation path (spans + health-hook guards)
    # must stay below 2% of a solve
    assert overhead["disabled_overhead_pct"] < 2.0, overhead
    # and the hooks must actually report once enabled
    assert overhead["health_samples_enabled"] > 0, overhead
