"""Factorization-cache throughput: factor once, solve many.

The serve-many-RHS workload behind the engine cache: ``k`` separate
``solve`` calls against the same operator.  Without the cache each call
pays the ``O(m_s n²)`` factorization; with it only the first does, and
the remaining ``k − 1`` calls are ``O(n²/m_s)``-ish triangular solves.
With ``m_s = 16`` the factor/solve flop ratio is ≈ 30×, so a 10-RHS
workload must clear a 5× end-to-end speedup.
"""

import time

import numpy as np

import repro.engine as engine
from repro.bench import format_table, write_result
from repro.bench.runner import full_scale
from repro.engine import FactorizationCache
from repro.toeplitz import kms_toeplitz


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _solve_many(pl, rhs, cache):
    for b in rhs:
        engine.execute(pl, b, cache=cache)


def run_cache_bench(n, ms, nrhs):
    t = kms_toeplitz(n, 0.5)
    rng = np.random.default_rng(0)
    rhs = [rng.standard_normal(n) for _ in range(nrhs)]
    pl = engine.plan(t, assume="spd", block_size=ms)

    off = FactorizationCache(max_entries=1)
    t_off = _wall(lambda: _solve_many(pl.with_(use_cache=False), rhs,
                                      None))
    t_on = _wall(lambda: (off.clear(), off.reset_stats(),
                          _solve_many(pl, rhs, off)))
    return t_off, t_on, off.stats()


def test_engine_cache_throughput(benchmark):
    n = 1536 if full_scale() else 768
    ms, nrhs = 16, 10
    t_off, t_on, stats = benchmark.pedantic(
        run_cache_bench, args=(n, ms, nrhs), rounds=1, iterations=1)
    speedup = t_off / t_on
    rows = [[n, ms, nrhs, t_off, t_on, f"{speedup:.1f}x",
             stats.hits, stats.misses]]
    text = format_table(
        ["n", "m_s", "nrhs", "cache_off_s", "cache_on_s", "speedup",
         "hits", "misses"],
        rows,
        title=(f"Repeated-RHS solve throughput ({nrhs} solves against "
               "one matrix): factorization cache on vs off"))
    write_result("engine_cache", text)

    # the last timed pass factored once and hit on every later solve
    assert stats.misses == 1
    assert stats.hits == nrhs - 1
    # factor-once must dominate: ≥5× end-to-end on 10 RHS
    assert speedup >= 5.0, (t_off, t_on)
