"""Figure 6 / Experiment 1: point Toeplitz (m = 1) on a 16-PE T3D.

Paper: a 4096 × 4096 point Toeplitz matrix, NP = 16, time-to-factor vs.
``b`` (adjacent blocks per PE, Versions 1–2).  Reported shape: a sharp
initial fall as ``b`` grows (the per-block shift latency amortizes),
best time at ``b = 16``, rising again at ``b = 32, 64`` as the loss of
parallelism outweighs the cheaper communication.
"""

import numpy as np

from repro.bench import ascii_plot, bench_scale, format_series, write_result
from repro.parallel import simulate_factorization
from repro.toeplitz import kms_toeplitz

B_VALUES = (1, 2, 4, 8, 16, 32, 64)
NP = 16


def run_experiment(n: int) -> dict[int, float]:
    t = kms_toeplitz(n, 0.5)
    return {b: simulate_factorization(t, nproc=NP, b=b,
                                      collect=False).time
            for b in B_VALUES}


def test_fig6_experiment1(benchmark):
    n = bench_scale(quick=1024, full=4096)
    times = benchmark.pedantic(run_experiment, args=(n,),
                               rounds=1, iterations=1)
    text = format_series(
        "b", list(B_VALUES),
        {"time_to_factor_s": [times[b] for b in B_VALUES]},
        title=(f"Figure 6 / Experiment 1 — {n}×{n} point Toeplitz "
               f"(m=1), NP={NP}, simulated T3D"))
    plot = ascii_plot(list(B_VALUES),
                      {"time (s)": [times[b] for b in B_VALUES]},
                      title="shape (paper: sharp fall, min at b=16, rise)",
                      x_label="b")
    write_result("fig6_exp1", text + "\n\n" + plot)

    series = np.array([times[b] for b in B_VALUES])
    best = B_VALUES[int(np.argmin(series))]
    # paper shape: sharp initial fall …
    assert times[1] > 1.1 * min(times.values())
    # … interior optimum (paper: b = 16 at n = 4096) …
    assert 4 <= best <= 32
    # … and a rise once parallelism is lost.
    assert times[64] > min(times.values())
