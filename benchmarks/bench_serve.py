"""Serving-layer coalescing: concurrent requests vs a sequential loop.

PR 4 bought a 6.7× panel-solve speedup at k = 32 — but only for callers
that *arrive* with a panel.  The serve layer's claim is that concurrent
single-RHS traffic can be coalesced into those panels at the request
boundary.  This bench measures that claim end to end: 64 requests
against one warm-cached n ≈ 2048 SPD operator, driven from 16 client
threads through the :class:`~repro.serve.BatchDispatcher` (latency
budget 4 ms, panel cap 32), against the same 64 solves issued as a
sequential single-RHS loop.

Asserted: coalesced throughput ≥ 3× the sequential loop, every
response matching its uncoalesced solve to ≤ 1e-10, and real
coalescing (mean panel width > 4).  Results land in
``BENCH_serve.json`` (a CI artifact; ``serve.speedup`` is gated in the
bench-history diff).
"""

import concurrent.futures
import time

import numpy as np

import repro.engine as engine
from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import full_scale
from repro.engine import FactorizationCache, set_default_cache
from repro.serve import BatchDispatcher
from repro.toeplitz import ar_block_toeplitz

REQUESTS = 64
CONCURRENCY = 16
MAX_BATCH_K = 32
MAX_WAIT_MS = 4.0
PARITY = 1e-10
SPEEDUP_FLOOR = 3.0


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_serve_bench(p_blocks, m):
    t = ar_block_toeplitz(p_blocks, m, seed=0)
    n = t.order
    pl = engine.plan(t)
    engine.execute(pl, np.ones(n))          # pay the factorization once
    rng = np.random.default_rng(1)
    bs = [rng.standard_normal(n) for _ in range(REQUESTS)]

    # The uncoalesced reference: the same solves, one at a time.
    reference = [engine.execute(pl, b).x for b in bs]
    sequential_seconds = _wall(
        lambda: [engine.execute(pl, b) for b in bs])

    # The served path: REQUESTS solves from CONCURRENCY client threads.
    def coalesced_once():
        with BatchDispatcher(max_wait_ms=MAX_WAIT_MS,
                             max_batch_k=MAX_BATCH_K,
                             max_queue_depth=2 * REQUESTS) as disp:
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=CONCURRENCY) as pool:
                futs = list(pool.map(
                    lambda b: disp.submit(pl, b), bs))
            resps = [f.result(timeout=60) for f in futs]
            return resps, disp.stats()

    best = np.inf
    resps = stats = None
    for _ in range(3):
        t0 = time.perf_counter()
        out = coalesced_once()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, (resps, stats) = elapsed, out
    coalesced_seconds = best

    parity = max(float(np.max(np.abs(r.x - ref)))
                 for r, ref in zip(resps, reference))
    return t, {
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "max_batch_k": MAX_BATCH_K,
        "max_wait_ms": MAX_WAIT_MS,
        "coalesced_seconds": coalesced_seconds,
        "sequential_seconds": sequential_seconds,
        "speedup": sequential_seconds / coalesced_seconds,
        "coalesced_requests_per_s": REQUESTS / coalesced_seconds,
        "sequential_requests_per_s": REQUESTS / sequential_seconds,
        "batches": stats.batches,
        "mean_batch_k": stats.mean_batch_k,
        "parity": parity,
        "latency_p50_seconds": stats.latency_p50_seconds,
        "latency_p99_seconds": stats.latency_p99_seconds,
    }


def test_serve_coalescing_throughput(benchmark):
    previous = set_default_cache(FactorizationCache())
    try:
        p_blocks, m = (512, 8) if full_scale() else (512, 4)
        t, cell = benchmark.pedantic(
            run_serve_bench, args=(p_blocks, m), rounds=1, iterations=1)
    finally:
        set_default_cache(previous)

    text = format_table(
        ["requests", "clients", "batches", "mean_k", "coalesced_ms",
         "sequential_ms", "speedup", "parity"],
        [[cell["requests"], cell["concurrency"], cell["batches"],
          f"{cell['mean_batch_k']:.1f}",
          f"{cell['coalesced_seconds'] * 1e3:.2f}",
          f"{cell['sequential_seconds'] * 1e3:.2f}",
          f"{cell['speedup']:.1f}x",
          f"{cell['parity']:.1e}"]],
        title=(f"Cross-request coalescing vs sequential loop, "
               f"n={t.order} (warm factorization cache, "
               f"latency budget {cell['max_wait_ms']:g} ms)"))
    write_result("serve", text)

    write_json_result("serve", {
        "workload": {"num_blocks": t.num_blocks,
                     "block_size": t.block_size, "order": t.order,
                     "matrix": "ar(seed=0)",
                     "full_scale": full_scale()},
        "serve": cell,
    })

    # every coalesced response matches its uncoalesced solve
    assert cell["parity"] <= PARITY, cell
    # the dispatcher actually coalesced (not 64 batches of one)
    assert cell["mean_batch_k"] > 4.0, cell
    # throughput: coalesced ≥ 3× the sequential single-RHS loop
    assert cell["speedup"] >= SPEEDUP_FLOOR, cell
