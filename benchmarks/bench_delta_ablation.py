"""Ablation: the perturbation size δ (Section 8.2, eq. 45).

The total error of a perturbed factorization is modeled as
``δ + ε/δ²``, minimized at ``δ = ∛(2ε) ≈ ∛ε``.  We sweep δ on the
paper's example and a random singular-minor matrix, recording the
first-solve error and the refinement steps needed — the ∛ε
neighbourhood must (a) keep the initial error near its minimum and
(b) keep refinement at the paper's "typically two steps".
"""

import numpy as np

from repro.bench import format_table, write_result
from repro.core.refinement import refine
from repro.core.schur_indefinite import default_delta, \
    schur_indefinite_factor
from repro.toeplitz import paper_example_matrix

DELTAS = (1e-2, 1e-3, 1e-4, 1e-5, None, 1e-7, 1e-9, 1e-11)


def run_sweep():
    t = paper_example_matrix()
    x_true = np.ones(6)
    b = t.dense() @ x_true
    rows = []
    for delta in DELTAS:
        d = default_delta() if delta is None else delta
        fact = schur_indefinite_factor(t, delta=d)
        res = refine(fact, t, b, keep_history=True)
        err0 = float(np.linalg.norm(res.history[0] - x_true))
        err_final = float(np.linalg.norm(res.x - x_true))
        rows.append([f"{d:.1e}" + (" (∛ε)" if delta is None else ""),
                     f"{err0:.2e}", res.iterations,
                     f"{err_final:.2e}"])
    return rows


def test_delta_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["delta", "first_solve_error", "refinement_steps",
         "final_error"],
        rows,
        title=("Perturbation-size ablation on the eq.-50 matrix "
               "(eq. 45: total error δ + ε/δ² minimized at δ ≈ ∛ε)"))
    write_result("delta_ablation", text)

    by_delta = {r[0]: r for r in rows}
    star = next(r for r in rows if "∛ε" in r[0])
    # at δ = ∛ε the first-solve error is ≈ δ·κ-ish — far better than a
    # fat δ = 1e−2 perturbation …
    assert float(star[1]) < 0.1 * float(by_delta["1.0e-02"][1])
    # … refinement converges in a handful of steps …
    assert star[2] <= 6
    # … and reaches full accuracy.
    assert float(star[3]) < 1e-11
