"""Section 8.1 comparator: iterative refinement vs. preconditioned CG.

The paper proposes refinement over the Concus–Saylor preconditioned-CG
approach because it "requires significantly lesser work per iteration".
Both methods share the expensive pieces (one factored solve per
iteration; refinement adds one fast matvec, PCG adds one fast matvec
plus the CG vector recurrences).  We regenerate a table of iterations,
factored solves, matvecs and achieved accuracy on the singular-minor
family.
"""

import numpy as np

from repro.bench import format_table, write_result
from repro.baselines import pcg
from repro.core.refinement import refine
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.toeplitz import paper_example_matrix, singular_minor_toeplitz


def run_comparison():
    cases = [("paper 6x6", paper_example_matrix())]
    for seed in (0, 1):
        cases.append((f"singular-minor n=24 seed={seed}",
                      singular_minor_toeplitz(24, seed=seed)))
    rows = []
    for name, t in cases:
        n = t.order
        x_true = np.ones(n)
        b = t.dense() @ x_true
        fact = schur_indefinite_factor(t)

        ref = refine(fact, t, b)
        ref_err = float(np.linalg.norm(ref.x - x_true))

        cg = pcg(t, b, preconditioner=fact, tol=1e-13)
        cg_err = float(np.linalg.norm(cg.x - x_true))

        rows.append([name, "refinement", ref.iterations,
                     ref.iterations + 1, ref.iterations + 1,
                     f"{ref_err:.2e}"])
        rows.append([name, "pcg", cg.iterations, cg.precond_solves,
                     cg.matvecs, f"{cg_err:.2e}"])
    return rows


def test_refinement_vs_pcg(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = format_table(
        ["case", "method", "iterations", "factored_solves",
         "matvecs", "final_error"],
        rows,
        title=("Section 8 comparator — refinement vs preconditioned CG "
               "on singular-minor systems (same perturbed RᵀDR factor)"))
    write_result("refinement_vs_pcg", text)

    # both converge to high accuracy in a handful of iterations
    by_case = {}
    for case, method, iters, solves, mv, err in rows:
        by_case.setdefault(case, {})[method] = (iters, float(err))
    for case, methods in by_case.items():
        assert methods["refinement"][1] < 1e-8
        assert methods["pcg"][1] < 1e-6
        assert methods["refinement"][0] <= 8
