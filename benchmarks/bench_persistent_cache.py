"""Persistent factorization cache: warm load vs cold factor.

The claim the two-tier cache makes (``docs/caching.md``): a process
that finds its factorization in the on-disk :class:`CacheStore` starts
``O(1)``-compute — an mmap of the dense ``R`` (or an ``O(mn)``
generator rebuild) instead of the ``O(n²)`` Schur recursion.  At
``n = 4096`` the warm path must be **≥ 5×** faster than the cold
factor, warm solves must match cold solves to ``1e-10``, and the
compact Gohberg–Semencul / GKO payloads must cost **≤ 10 %** of the
dense-``R`` entry.

Results land in ``BENCH_persistent_cache.json`` (``warm_speedup`` is
the gated metric; sizes and seconds are informational).
"""

import os
import shutil
import tempfile
import time

import numpy as np

import repro.engine as engine
from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import bench_scale
from repro.core import CompactFactorization
from repro.engine import FactorizationCache
from repro.engine.cache_store import CacheStore
from repro.toeplitz import kms_toeplitz


def _fresh_factor(pl, store=None):
    """Factor through an empty in-memory tier (simulates a restart)."""
    return engine.factor(pl, cache=FactorizationCache(), store=store)


def run_persistent_cache_bench(n):
    t = kms_toeplitz(n, 0.5)
    b = np.random.default_rng(0).standard_normal(n)
    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        store = CacheStore(root)
        pl = engine.plan(t, assume="spd", block_size=16,
                         cache="persistent")

        # Cold: compute the factorization and publish it to disk.
        t0 = time.perf_counter()
        cold = _fresh_factor(pl, store)
        cold_seconds = time.perf_counter() - t0
        assert not cold.cache_hit and store.stats().writes == 1

        # Warm: a "restarted" process loads the entry (mmap, no compute).
        warm_seconds = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            warm = _fresh_factor(pl, store)
            warm_seconds = min(warm_seconds, time.perf_counter() - t0)
        assert warm.cache_hit and store.stats().disk_hits >= 1

        parity = float(np.max(np.abs(warm.factorization.solve(b)
                                     - cold.factorization.solve(b))))
        dense_entry_bytes = store.entries()[0].file_bytes

        # Compact O(n) / O(mn) payloads vs the dense-R entry.
        gs = CompactFactorization.from_factorization(
            _fresh_factor(engine.plan(t, algorithm="gs")).factorization)
        gko = CompactFactorization.from_factorization(
            _fresh_factor(engine.plan(t, algorithm="gko")).factorization)
        dense_payload = (pl.order * pl.order * 8)
        gs_x = gs.restore().solve(b)
        gs_parity = float(np.max(np.abs(gs_x - cold.factorization.solve(b))))

        return {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
            "solve_parity_err": parity,
            "gs_solve_parity_err": gs_parity,
            "dense_entry_bytes": dense_entry_bytes,
            "gs_payload_bytes": gs.nbytes,
            "gko_payload_bytes": gko.nbytes,
            "gs_to_dense_ratio": gs.nbytes / dense_payload,
            "gko_to_dense_ratio": gko.nbytes / dense_payload,
            "load_seconds": store.stats().load_seconds,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_persistent_cache_warm_start(benchmark):
    n = bench_scale(4096, 4096)
    r = benchmark.pedantic(run_persistent_cache_bench, args=(n,),
                           rounds=1, iterations=1)

    text = format_table(
        ["n", "cold_s", "warm_s", "speedup", "parity",
         "dense_entry", "gs_bytes", "gko_bytes"],
        [[n, f"{r['cold_seconds']:.3f}", f"{r['warm_seconds']:.4f}",
          f"{r['warm_speedup']:.1f}x", f"{r['solve_parity_err']:.1e}",
          r["dense_entry_bytes"], r["gs_payload_bytes"],
          r["gko_payload_bytes"]]],
        title="Persistent cache: disk-warm restart vs cold factor")
    write_result("persistent_cache", text)
    write_json_result("persistent_cache", {
        "workload": {"n": n, "m_s": 16, "matrix": "kms(0.5)"},
        "timings": {k: r[k] for k in
                    ("cold_seconds", "warm_seconds", "warm_speedup",
                     "load_seconds")},
        "parity": {"spd_warm_err": r["solve_parity_err"],
                   "gs_err": r["gs_solve_parity_err"]},
        "sizes": {k: r[k] for k in
                  ("dense_entry_bytes", "gs_payload_bytes",
                   "gko_payload_bytes", "gs_to_dense_ratio",
                   "gko_to_dense_ratio")},
    })

    # Acceptance gates (ISSUE): warm ≥5× cold at n=4096, solves agree
    # to 1e-10, compact payloads ≤10% of the dense-R entry.
    assert r["warm_speedup"] >= 5.0, r
    assert r["solve_parity_err"] <= 1e-10, r
    assert r["gs_solve_parity_err"] <= 1e-10, r
    assert r["gs_to_dense_ratio"] <= 0.10, r
    assert r["gko_to_dense_ratio"] <= 0.10, r
