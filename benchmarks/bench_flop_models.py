"""Operation-count tables: eqs. (25)–(32) and the §6.5 ``4·m_s·n²`` rule.

Regenerates, for each block representation, the paper's *blocking* and
*application* flop totals at ``k = m``, checks the printed rankings
(YTYᵀ cheapest to block, second VY form cheapest to apply, the naive
``U`` scheme most expensive on both axes), and cross-validates the
closed forms against instrumented flop counts from the actual
implementation.
"""

from repro.bench import format_table, write_result
from repro.blas import primitives as blas
from repro.core import flops as F
from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.toeplitz import kms_toeplitz

REPS = ("yty", "vy2", "vy1", "dense")


def test_blocking_flops_table_eqs25_28(benchmark):
    def run():
        return {m: {r: F.blocking_flops(r, m) for r in REPS}
                for m in (2, 4, 8, 16, 32, 64)}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m] + [int(table[m][r]) for r in REPS]
            for m in sorted(table)]
    text = format_table(
        ["m"] + [f"{r}_flops" for r in REPS], rows,
        title=("Blocking flops at k = m (eqs. 25–28) — paper ranking: "
               "YTYᵀ < VY2 < VY1 < naive U"))
    write_result("flops_blocking", text)
    for m in table:
        v = table[m]
        assert v["yty"] < v["vy2"] < v["vy1"] < v["dense"]


def test_application_flops_table_eqs29_32(benchmark):
    p = 32

    def run():
        return {m: {r: F.application_flops(r, m, p) for r in REPS}
                for m in (2, 4, 8, 16, 32)}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m] + [int(table[m][r]) for r in REPS]
            for m in sorted(table)]
    text = format_table(
        ["m"] + [f"{r}_flops" for r in REPS], rows,
        title=(f"Application flops to a 2m × {p}m generator at k = m "
               "(eqs. 29–32) — paper ranking: VY2 ≤ VY1 < YTYᵀ < U"))
    write_result("flops_application", text)
    for m in table:
        v = table[m]
        # equality only at the degenerate m = 2 corner (YTYᵀ and U tie)
        assert v["vy2"] <= v["vy1"] < v["yty"] <= v["dense"]
        if m >= 4:
            assert v["yty"] < v["dense"]


def test_counted_vs_closed_form(benchmark):
    """Instrumented counts from the real code vs. the model."""
    n, m = 128, 4

    def run():
        out = {}
        t = kms_toeplitz(n, 0.5).regroup(m)
        for rep in ("vy1", "vy2", "yty"):
            with blas.counting() as c:
                schur_spd_factor(t, options=SchurOptions(
                    representation=rep))
            out[rep] = (c.total,
                        F.factorization_flops(n, m, representation=rep))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[rep, counted, int(model), f"{counted / model:.3f}"]
            for rep, (counted, model) in table.items()]
    text = format_table(
        ["representation", "counted_flops", "model_flops", "ratio"],
        rows,
        title=(f"Counted vs closed-form flops, n={n}, m={m} "
               "(ratio ≈ 1 ⇒ the paper's formulas describe the "
               "implementation)"))
    write_result("flops_counted_vs_model", text)
    for _, (counted, model) in table.items():
        assert 0.3 < counted / model < 3.0


def test_total_cost_linear_in_ms(benchmark):
    """§6.5: total operation count grows ≈ linearly in m_s (4·m_s·n²)."""
    n = 256

    def run():
        t = kms_toeplitz(n, 0.5)
        out = {}
        for ms in (1, 2, 4, 8, 16):
            with blas.counting() as c:
                schur_spd_factor(t.regroup(ms))
            out[ms] = c.total
        return out

    counted = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[ms, counted[ms], int(F.nominal_total_flops(n, ms)),
             f"{counted[ms] / (ms * n * n):.3f}"]
            for ms in sorted(counted)]
    text = format_table(
        ["m_s", "counted_flops", "nominal_4msn2", "counted/(ms*n^2)"],
        rows,
        title=(f"§6.5 block-size cost rule, n={n}: counted flops per "
               "m_s·n² stays ≈ constant (linear growth in m_s)"))
    write_result("flops_ms_scaling", text)

    ratios = [counted[ms] / ms for ms in (2, 4, 8, 16)]
    # per-m_s normalized cost must be flat within 2×
    assert max(ratios) / min(ratios) < 2.0
