"""Figure 10: performance vs. problem size for different block sizes
``m_s`` (the structural-vs-algorithmic block size trade-off, §6.5/§9).

Paper (Cray Y-MP): achieved performance rises steeply — superlinearly —
with the algorithmic block size ``m_s``, because the vendor BLAS3
primitives perform poorly on products of a small square matrix with a
short-and-wide matrix.  Using ``m_s > m`` is therefore warranted despite
the ≈ linear growth of the operation count (≈ 4·m_s·n²).

Two reproductions:

1. **Real hardware** — wall-clock factorization of a point Toeplitz
   matrix at several ``m_s`` on this host's NumPy/BLAS.  The identical
   mechanism (per-call overhead + small-kernel inefficiency at tiny
   ``m_s``) yields superlinear MFLOPS growth and a genuinely faster
   factorization at ``m_s > 1``.
2. **Y-MP model** — the parametric shape-sensitive BLAS model evaluated
   through the primitive-call decomposition, reporting the modeled
   MFLOPS by (n, m_s) exactly like the paper's figure axes.
"""

import time

import numpy as np

from repro.bench import ascii_plot, format_series, write_result
from repro.bench.runner import full_scale
from repro.blas.cray import cray_ymp_model
from repro.core import flops as F
from repro.core.regroup import choose_block_size
from repro.core.schur_spd import schur_spd_factor
from repro.toeplitz import kms_toeplitz

MS_VALUES = (1, 2, 4, 8, 16, 32)


def _wall_time(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_real_sweep(sizes) -> dict:
    rows = {}
    for n in sizes:
        t = kms_toeplitz(n, 0.5)
        per_ms = {}
        for ms in MS_VALUES:
            if n % ms:
                continue
            ts = t.regroup(ms)
            dt = _wall_time(lambda ts=ts: schur_spd_factor(ts),
                            repeats=2 if n >= 1024 else 3)
            per_ms[ms] = F.nominal_total_flops(n, ms) / dt / 1e6
        rows[n] = per_ms
    return rows


def test_fig10_real_blocksize_performance(benchmark):
    sizes = (512, 1024, 2048, 4096) if full_scale() else (256, 512, 1024)
    rows = benchmark.pedantic(run_real_sweep, args=(sizes,),
                              rounds=1, iterations=1)
    series = {f"ms={ms}_MFLOPS": [rows[n].get(ms, float("nan"))
                                  for n in sizes]
              for ms in MS_VALUES}
    text = format_series("n", list(sizes), series,
                         title=("Figure 10 (real hardware) — achieved "
                                "MFLOPS of the block Schur factorization "
                                "by algorithmic block size m_s"))
    plot = ascii_plot(list(sizes),
                      {f"ms={ms}": [rows[n].get(ms, float("nan"))
                                    for n in sizes]
                       for ms in MS_VALUES},
                      logy=True,
                      title="MFLOPS vs n by m_s (paper Fig. 10 axes)",
                      x_label="n")
    write_result("fig10_real", text + "\n\n" + plot)

    n = sizes[-1]
    perf = rows[n]
    # paper shape 1: performance rises with m_s …
    assert perf[4] > perf[1]
    assert perf[16] > perf[4]
    # … superlinearly at the small end (MFLOPS ratio > flop ratio = 2) …
    assert perf[2] / perf[1] > 2.0
    # … so a larger-than-structural block size is warranted (the actual
    # *time* falls from m_s = 1 to the optimum).
    time_ratio = (F.nominal_total_flops(n, 1) / perf[1]) / \
        (F.nominal_total_flops(n, 4) / perf[4])
    assert time_ratio > 1.0


def test_fig10_ymp_model(benchmark):
    model = cray_ymp_model()

    def run(sizes):
        out = {}
        for n in sizes:
            _, preds = choose_block_size(n, 1, model,
                                         candidates=list(MS_VALUES))
            out[n] = {p.block_size: p.mflops for p in preds}
        return out

    sizes = (512, 1024, 2048, 4096)
    rows = benchmark.pedantic(run, args=(sizes,), rounds=1, iterations=1)
    series = {f"ms={ms}_MFLOPS": [rows[n][ms] for n in sizes]
              for ms in MS_VALUES}
    text = format_series("n", list(sizes), series,
                         title=("Figure 10 (Y-MP model) — modeled MFLOPS "
                                "by algorithmic block size m_s"))
    write_result("fig10_ymp_model", text)

    # modeled performance rises steeply (≈ 15× from m_s=1 to 32 at the
    # largest size) — the paper's figure ordering.
    perf = rows[sizes[-1]]
    assert perf[32] > 10 * perf[1]
    for a, b in zip(MS_VALUES, MS_VALUES[1:]):
        assert perf[b] > perf[a]
