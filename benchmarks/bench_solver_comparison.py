"""Solver comparison table: block Schur vs. block Levinson vs. dense.

The complexity story that motivates the paper: both structured solvers
are ``O(n²)``-class against dense ``O(n³)``, with the Schur algorithm
built from level-3-rich block operations.  Regenerates a timing table
over problem sizes and checks the structured-vs-dense crossover.
"""

import time

import numpy as np

from repro.bench import format_table, write_result
from repro.bench.runner import full_scale
from repro.baselines import block_levinson_solve
from repro.baselines.dense_chol import dense_cholesky
from repro.core.schur_spd import schur_spd_factor
from repro.toeplitz import kms_toeplitz


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_comparison(sizes, ms):
    rows = []
    for n in sizes:
        t = kms_toeplitz(n, 0.5)
        tb = t.regroup(ms)
        b = np.ones(n)
        t_schur = _wall(lambda: schur_spd_factor(tb))
        t_lev = _wall(lambda: block_levinson_solve(tb, b))
        t_dense = _wall(lambda: dense_cholesky(t.dense()))
        rows.append([n, t_schur, t_lev, t_dense,
                     f"{t_dense / t_schur:.1f}x"])
    return rows


def test_solver_comparison(benchmark):
    sizes = (512, 1024, 2048, 4096) if full_scale() else (512, 1024, 2048)
    ms = 16
    rows = benchmark.pedantic(run_comparison, args=(sizes, ms),
                              rounds=1, iterations=1)
    text = format_table(
        ["n", "schur_s", "levinson_s", "dense_chol_s",
         "dense/schur"],
        rows,
        title=(f"Structured vs dense solvers (m_s = {ms}); Schur and "
               "Levinson are O(n²)-class, dense Cholesky O(n³)"))
    write_result("solver_comparison", text)

    # at the largest size the structured factorization must beat dense
    n, t_schur, t_lev, t_dense, _ = rows[-1]
    assert t_schur < t_dense
    # and show the O(n²) vs O(n³) growth gap between the two largest sizes
    g_schur = rows[-1][1] / rows[-2][1]
    g_dense = rows[-1][3] / rows[-2][3]
    assert g_dense > g_schur
