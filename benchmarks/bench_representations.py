"""Ablation: the block-reflector representation trade-off (Section 6).

Real wall-clock timing (pytest-benchmark, repeated runs) of the full
factorization under each representation at a fixed, level-3-friendly
block size — the implementation choice the paper's Sections 4 and 6
analyze.  The unblocked (pure level-2) path is included as the baseline
blocking is supposed to beat.
"""

import pytest

from repro.core.block_reflector import REPRESENTATIONS
from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.toeplitz import kms_toeplitz

N, M = 1024, 16


@pytest.fixture(scope="module")
def matrix():
    return kms_toeplitz(N, 0.5).regroup(M)


@pytest.mark.parametrize("rep", REPRESENTATIONS)
def test_representation_timing(benchmark, matrix, rep):
    opts = SchurOptions(representation=rep)
    fact = benchmark(schur_spd_factor, matrix, options=opts)
    assert fact.r.shape == (N, N)


@pytest.mark.parametrize("panel", [2, 4, 8, 16])
def test_two_level_blocking_timing(benchmark, matrix, panel):
    """Section 6.2's two-level blocking: panel width k ≤ m."""
    opts = SchurOptions(representation="vy2", panel=panel)
    fact = benchmark(schur_spd_factor, matrix, options=opts)
    assert fact.r.shape == (N, N)


def test_in_place_vs_shift_timing(benchmark, matrix):
    """Section 6.4: the in-place variant avoids the Phase-3 shift copy."""
    opts = SchurOptions(in_place=False)
    fact = benchmark(schur_spd_factor, matrix, options=opts)
    assert fact.r.shape == (N, N)
