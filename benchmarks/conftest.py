"""Benchmark harness configuration.

Each ``bench_*`` module reproduces one table or figure from the paper's
evaluation: it regenerates the rows/series, prints them, writes them to
``benchmarks/results/``, and asserts the paper's qualitative shape
(where the winner is, where the optimum falls).

Default sizes are scaled down to keep the suite fast while preserving
the shapes; set ``REPRO_BENCH_FULL=1`` for the exact paper sizes
(n = 4096 T3D runs take ~20 s per data point in the simulator).
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(autouse=True, scope="session")
def _results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    os.environ.setdefault("REPRO_RESULTS_DIR", RESULTS_DIR)
    yield
