"""Iterative-method comparison: direct Schur vs. circulant PCG vs.
Schur-preconditioned CG.

Context for the Section 8 design choice: the literature's main
alternatives to a direct structured factorization are CG with circulant
preconditioning (O(n log n)/iteration) and CG preconditioned by an
(approximate) direct factorization (Concus–Saylor).  The table
regenerates iteration counts and residuals across workload classes —
direct methods win when many right-hand sides amortize one
factorization or when the symbol is hard (long memory / near-singular),
circulant PCG wins on single solves with nice symbols.
"""

import numpy as np

from repro.bench import format_table, write_result
from repro.baselines import circulant_pcg, pcg
from repro.core.schur_spd import schur_spd_factor
from repro.toeplitz import fgn_toeplitz, kms_toeplitz, prolate_toeplitz


def run_comparison():
    cases = [
        ("kms rho=0.9", kms_toeplitz(512, 0.9)),
        ("fgn H=0.85", fgn_toeplitz(512, 0.85)),
        ("prolate w=0.48", prolate_toeplitz(128, 0.48)),
    ]
    rows = []
    rng = np.random.default_rng(0)
    for name, t in cases:
        n = t.order
        b = rng.standard_normal(n)
        d = t.dense()

        fact = schur_spd_factor(t)
        x = fact.solve(b)
        rows.append([name, "schur-direct", "-",
                     f"{np.linalg.norm(d @ x - b):.1e}"])

        res = circulant_pcg(t, b, kind="strang", tol=1e-11,
                            max_iter=4 * n)
        rows.append([name, "cg+strang", res.iterations,
                     f"{np.linalg.norm(d @ res.x - b):.1e}"])

        res = circulant_pcg(t, b, kind="tchan", tol=1e-11,
                            max_iter=4 * n)
        rows.append([name, "cg+tchan", res.iterations,
                     f"{np.linalg.norm(d @ res.x - b):.1e}"])

        res = pcg(t, b, preconditioner=fact, tol=1e-11)
        rows.append([name, "cg+schur-factor", res.iterations,
                     f"{np.linalg.norm(d @ res.x - b):.1e}"])

        res = pcg(t, b, tol=1e-11, max_iter=4 * n)
        rows.append([name, "cg-plain",
                     res.iterations if res.converged else
                     f">{res.iterations}",
                     f"{np.linalg.norm(d @ res.x - b):.1e}"])
    return rows


def test_iterative_methods(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = format_table(
        ["workload", "method", "iterations", "residual"],
        rows,
        title=("Direct block Schur vs iterative Toeplitz solvers "
               "(single RHS, tol 1e-11)"))
    write_result("iterative_methods", text)

    by = {}
    for name, method, iters, resid in rows:
        by.setdefault(name, {})[method] = (iters, float(resid))
    for name, methods in by.items():
        # direct solve is accurate everywhere
        assert methods["schur-direct"][1] < 1e-6
        # factorization-preconditioned CG converges in O(1) iterations
        assert methods["cg+schur-factor"][0] <= 5
    # circulant PCG is dramatically better than plain CG on the KMS case
    kms = by["kms rho=0.9"]
    assert kms["cg+strang"][0] < 20
