"""Ablation: lookahead (overlapped build) vs. bulk-synchronous Version 1.

Section 6.5's overlap remark, made concrete: the pipelined program
hides the pivot owner's serial build behind the other PEs' application
work (no barrier, pivot chain shipped point-to-point, depth-1
lookahead), at the cost of fine-grained per-block messaging.  The table
shows the regime change: bulk wins at small NP (few, large aggregated
shifts), lookahead wins once the per-step serial fraction matters.
"""

from repro.bench import bench_scale, format_table, write_result
from repro.parallel import simulate_factorization
from repro.toeplitz import kms_toeplitz

NPS = (4, 8, 16, 32, 64)


def run_comparison(n: int, m: int):
    t = kms_toeplitz(n, 0.5).regroup(m)
    rows = []
    for npp in NPS:
        plain = simulate_factorization(t, nproc=npp, b=1,
                                       collect=False).time
        look = simulate_factorization(t, nproc=npp, b=1,
                                      program="lookahead",
                                      collect=False).time
        rows.append([npp, plain, look, f"{plain / look:.2f}x"])
    return rows


def test_lookahead_ablation(benchmark):
    n = bench_scale(quick=1024, full=2048)
    m = 8
    rows = benchmark.pedantic(run_comparison, args=(n, m),
                              rounds=1, iterations=1)
    text = format_table(
        ["NP", "bulk_s", "lookahead_s", "speedup"],
        rows,
        title=(f"Lookahead ablation — {n}×{n}, m={m}, Version 1 layout "
               "(§6.5 overlap)"))
    write_result("lookahead_ablation", text)

    speedups = {npp: plain / look for npp, plain, look, _ in rows}
    # the overlap must pay at scale …
    assert max(speedups[npp] for npp in NPS[-2:]) > 1.05
    # … and the crossover structure exists (small NP favors bulk or ties)
    assert speedups[NPS[0]] < 1.1
