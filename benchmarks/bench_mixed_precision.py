"""Mixed-precision factorization: fp32/mixed factor + fp64 recovery.

The precision axis trades factorization bandwidth for refinement
sweeps: a float32 block Schur factorization streams half the bytes of
the fp64 one (and runs its level-3 work through ``sgemm``), and the
Section 8.1 refinement loop (fp64 FFT residuals) recovers double
accuracy in a handful of sweeps whenever ``cond · eps32`` is small.
This bench factors the same SPD block Toeplitz operator at every
precision over a size sweep, timing the factorization alone, then
solves through refinement and compares the recovered residual against
the plain fp64 direct solve.

The workload uses the level-3-rich shape the paper's blocking analysis
recommends (large algorithmic block ``m`` with a ``panel``-column inner
sweep), which is where reduced precision pays: tiny blocks are
dominated by precision-independent per-reflector work.

Asserted: at every size the refined fp32/mixed residual is within 10×
of the fp64 direct residual, the refinement loop converges, and
(full-scale runs) the fp32 factorization beats fp64 by ≥ 1.5× at
n ≥ 2048.  Results land in ``BENCH_mixed_precision.json`` (a CI
artifact).
"""

import time

import numpy as np

from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import full_scale
from repro.core.refinement import refine
from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.toeplitz import ar_block_toeplitz
from repro.toeplitz.matvec import BlockCirculantEmbedding

PRECISIONS = ("fp64", "fp32", "mixed")
RESIDUAL_RATIO_LIMIT = 10.0
SPEEDUP_FLOOR = 1.5
PANEL = 96


def _sizes():
    return (512, 1024, 2048, 4096) if full_scale() else (512, 1024)


def _block(n):
    """Algorithmic block size: large blocks keep the elimination inside
    level-3 BLAS, which is where reduced precision pays (tiny blocks are
    dominated by precision-independent per-reflector work)."""
    return min(1024, n // 2)


def _repeats(n):
    return {512: 6, 1024: 5, 2048: 5}.get(n, 3)


def _relative_residual(matvec, x, b):
    return float(np.linalg.norm(matvec(x) - b) / np.linalg.norm(b))


def run_size(n):
    m = _block(n)
    t = ar_block_toeplitz(n // m, m, seed=0)
    matvec = BlockCirculantEmbedding(t)
    b = np.random.default_rng(1).standard_normal(n)
    repeats = _repeats(n)

    # Interleave the precisions within each repeat so min-of-repeats is
    # insensitive to machine-load drift between the timed groups.
    best = {prec: np.inf for prec in PRECISIONS}
    facts = {}
    for _ in range(repeats):
        for prec in PRECISIONS:
            opts = SchurOptions(precision=prec, panel=PANEL)
            t0 = time.perf_counter()
            facts[prec] = schur_spd_factor(t, options=opts)
            best[prec] = min(best[prec], time.perf_counter() - t0)

    row = {"order": n, "block_size": m, "panel": PANEL}
    for prec in PRECISIONS:
        seconds, fact = best[prec], facts[prec]
        if prec == "fp64":
            x = fact.solve(b)
            residual = _relative_residual(matvec, x, b)
            sweeps = 0
        else:
            res = refine(fact, t, b)
            assert res.converged, (n, prec)
            residual = _relative_residual(matvec, res.x, b)
            sweeps = res.iterations
        row[prec] = {
            "factor_seconds": seconds,
            "factor_dtype": np.dtype(fact.dtype).name,
            "residual": residual,
            "refine_sweeps": sweeps,
        }
    for prec in ("fp32", "mixed"):
        row[prec]["factor_speedup_vs_fp64"] = (
            row["fp64"]["factor_seconds"] / row[prec]["factor_seconds"])
        row[prec]["residual_ratio_vs_fp64"] = (
            row[prec]["residual"] / max(row["fp64"]["residual"], 1e-300))
    return row


def test_mixed_precision_factorization(benchmark):
    cells = benchmark.pedantic(
        lambda: [run_size(n) for n in _sizes()], rounds=1, iterations=1)

    rows = [[c["order"], c["block_size"],
             f"{c['fp64']['factor_seconds'] * 1e3:.1f}",
             f"{c['fp32']['factor_seconds'] * 1e3:.1f}",
             f"{c['fp32']['factor_speedup_vs_fp64']:.2f}x",
             c["fp32"]["refine_sweeps"],
             f"{c['fp32']['residual_ratio_vs_fp64']:.2f}",
             f"{c['mixed']['residual_ratio_vs_fp64']:.2f}"]
            for c in cells]
    text = format_table(
        ["n", "m", "fp64_ms", "fp32_ms", "fp32_speedup", "fp32_sweeps",
         "fp32_res_ratio", "mixed_res_ratio"],
        rows,
        title=(f"Reduced-precision factor + fp64 refinement recovery "
               f"(panel={PANEL}, residual ratios vs fp64 direct solve)"))
    write_result("mixed_precision", text)
    write_json_result("mixed_precision", {
        "workload": {"block_size": {n: _block(n) for n in _sizes()},
                     "panel": PANEL, "matrix": "ar(seed=0)",
                     "full_scale": full_scale(),
                     "sizes": list(_sizes())},
        "residual_ratio_limit": RESIDUAL_RATIO_LIMIT,
        "speedup_floor": SPEEDUP_FLOOR,
        "cells": cells,
    })

    for c in cells:
        # accuracy parity: refinement recovers fp64-level residuals
        for prec in ("fp32", "mixed"):
            assert (c[prec]["residual_ratio_vs_fp64"]
                    <= RESIDUAL_RATIO_LIMIT), (c["order"], prec, c[prec])
            assert c[prec]["refine_sweeps"] >= 1, (c["order"], prec)
        assert c["fp32"]["factor_dtype"] == "float32", c
        assert c["mixed"]["factor_dtype"] == "float64", c
    # bandwidth win: fp32 factors ≥ 1.5× faster once n ≥ 2048
    for c in cells:
        if c["order"] >= 2048:
            assert (c["fp32"]["factor_speedup_vs_fp64"]
                    >= SPEEDUP_FLOOR), c
