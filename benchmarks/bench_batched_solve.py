"""Batched multi-RHS execution: panel solves vs. sequential columns.

The paper's Section 6.5 trades constant-factor flops for level-3 BLAS
shape in the factorization; this bench measures the same trade applied
to the *solve* phase.  Against one warm-cached factorization of an
n ≈ 2048 SPD block Toeplitz operator it solves panels of
k ∈ {1, 4, 16, 32, 64} right-hand sides two ways — one batched
``engine.execute`` (a pair of panel ``dtrsm`` sweeps) versus ``k``
sequential single-RHS executes — and records throughput, speedup and
parity.  A second section measures blocked iterative refinement: one
factored panel solve + one batched FFT matvec per sweep must reach the
sequential loop's residuals with fewer factored solves.

Asserted: batched/sequential parity ≤ 1e-10 at every k, the k = 32
panel at ≥ 4× the sequential throughput, and blocked refinement using
strictly fewer factored solve calls.  Results land in
``BENCH_batched_solve.json`` (a CI artifact).
"""

import time

import numpy as np

import repro.engine as engine
from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import full_scale
from repro.core import refine, schur_indefinite_factor
from repro.engine import FactorizationCache, set_default_cache
from repro.toeplitz import ar_block_toeplitz, indefinite_toeplitz

PANEL_WIDTHS = (1, 4, 16, 32, 64)
PARITY = 1e-10


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_panel_bench(p_blocks, m):
    t = ar_block_toeplitz(p_blocks, m, seed=0)
    n = t.order
    pl = engine.plan(t)
    engine.execute(pl, np.ones(n))          # pay the factorization once
    rng = np.random.default_rng(1)

    cells = []
    for k in PANEL_WIDTHS:
        b = rng.standard_normal((n, k))
        batched = engine.execute(pl, b)
        sequential = np.stack(
            [engine.execute(pl, b[:, j]).x for j in range(k)], axis=1)
        parity = float(np.max(np.abs(batched.x - sequential))
                       / np.max(np.abs(sequential)))

        batched_seconds = _wall(lambda b=b: engine.execute(pl, b))
        sequential_seconds = _wall(
            lambda b=b, k=k: [engine.execute(pl, b[:, j]) for j in range(k)])
        cells.append({
            "nrhs": k,
            "batched_seconds": batched_seconds,
            "sequential_seconds": sequential_seconds,
            "batched_rhs_per_second": k / batched_seconds,
            "sequential_rhs_per_second": k / sequential_seconds,
            "speedup": sequential_seconds / batched_seconds,
            "parity": parity,
            "cache_hit": batched.record.cache_hit,
            "model_flops": batched.record.model_flops,
        })
    return t, cells


def run_refinement_bench(n, k):
    t = indefinite_toeplitz(n, seed=3)
    fact = schur_indefinite_factor(t)
    b = np.random.default_rng(2).standard_normal((n, k))

    blocked = refine(fact, t, b)
    sequential = [refine(fact, t, b[:, j]) for j in range(k)]

    dense = t.dense()
    worst_blocked = max(np.linalg.norm(dense @ blocked.x[:, j] - b[:, j])
                        for j in range(k))
    worst_sequential = max(np.linalg.norm(dense @ r.x - b[:, j])
                           for j, r in enumerate(sequential))
    return {
        "order": n, "nrhs": k,
        "blocked_solve_calls": blocked.solve_calls,
        "sequential_solve_calls": sum(r.solve_calls for r in sequential),
        "blocked_solve_columns": blocked.solve_columns,
        "sequential_solve_columns": sum(r.solve_calls for r in sequential),
        "worst_blocked_residual": worst_blocked,
        "worst_sequential_residual": worst_sequential,
        "per_column_iterations": blocked.per_column_iterations.tolist(),
    }


def test_batched_panel_throughput(benchmark):
    previous = set_default_cache(FactorizationCache())
    try:
        p_blocks, m = (512, 8) if full_scale() else (512, 4)
        t, cells = benchmark.pedantic(
            run_panel_bench, args=(p_blocks, m), rounds=1, iterations=1)
        refinement = run_refinement_bench(
            256, 16 if not full_scale() else 32)
    finally:
        set_default_cache(previous)

    rows = [[c["nrhs"],
             f"{c['batched_seconds'] * 1e3:.2f}",
             f"{c['sequential_seconds'] * 1e3:.2f}",
             f"{c['batched_rhs_per_second']:.0f}",
             f"{c['speedup']:.1f}x",
             f"{c['parity']:.1e}"] for c in cells]
    text = format_table(
        ["k", "batched_ms", "sequential_ms", "RHS/s", "speedup", "parity"],
        rows,
        title=(f"Batched panel solve vs sequential columns, "
               f"n={t.order} (warm factorization cache); blocked "
               f"refinement: {refinement['blocked_solve_calls']} vs "
               f"{refinement['sequential_solve_calls']} factored solves"))
    write_result("batched_solve", text)

    write_json_result("batched_solve", {
        "workload": {"num_blocks": t.num_blocks, "block_size": t.block_size,
                     "order": t.order, "matrix": "ar(seed=0)",
                     "full_scale": full_scale()},
        "cells": cells,
        "refinement": refinement,
    })

    # parity: every panel width reproduces the sequential columns
    for c in cells:
        assert c["parity"] <= PARITY, c
        assert c["cache_hit"], c
    # throughput: the k=32 panel beats 32 sequential executes ≥ 4×
    k32 = next(c for c in cells if c["nrhs"] == 32)
    assert k32["speedup"] >= 4.0, k32
    # blocked refinement: same accuracy, fewer factored solves
    assert (refinement["blocked_solve_calls"]
            < refinement["sequential_solve_calls"]), refinement
    assert (refinement["worst_blocked_residual"]
            <= 2 * refinement["worst_sequential_residual"] + 1e-12), \
        refinement
