"""Figure 9: factoring a 1024 × 1024 matrix with block sizes 2 vs 4.

Paper: time-to-factor for block sizes m = 2 and m = 4 on the T3D.
Reported shape: at small NP, m = 4 takes *longer* (the algorithm does
≈ 2× the flops and synchronization is insignificant); as NP grows, the
halved number of elimination steps — and hence synchronization
invocations — makes m = 4 *faster*, helped by the 4-word-cache-line
efficiency advantage of applying transformations at m = 4.
"""

from repro.bench import ascii_plot, bench_scale, format_series, write_result
from repro.parallel import simulate_factorization
from repro.toeplitz import kms_toeplitz

NPS = (2, 4, 8, 16, 32, 64, 128)


def run_experiment(n: int) -> dict[int, dict[int, float]]:
    out = {}
    for m in (2, 4):
        t = kms_toeplitz(n, 0.5).regroup(m)
        out[m] = {npp: simulate_factorization(t, nproc=npp, b=1,
                                              collect=False).time
                  for npp in NPS}
    return out


def test_fig9_block_size_2_vs_4(benchmark):
    n = bench_scale(quick=512, full=1024)
    times = benchmark.pedantic(run_experiment, args=(n,),
                               rounds=1, iterations=1)
    text = format_series(
        "NP", list(NPS),
        {"m=2_s": [times[2][p] for p in NPS],
         "m=4_s": [times[4][p] for p in NPS]},
        title=(f"Figure 9 — {n}×{n} block Toeplitz, block sizes 2 vs 4, "
               f"simulated T3D"))
    plot = ascii_plot(list(NPS),
                      {"m=2": [times[2][p] for p in NPS],
                       "m=4": [times[4][p] for p in NPS]},
                      logy=True,
                      title="shape (paper: m=2 wins small NP, m=4 large NP)",
                      x_label="NP")
    write_result("fig9_blocksize", text + "\n\n" + plot)

    # paper shape: m=2 wins at small NP …
    assert times[2][NPS[0]] < times[4][NPS[0]]
    # … m=4 wins once NP is large (sync count dominates).
    assert times[4][NPS[-1]] < times[2][NPS[-1]]
