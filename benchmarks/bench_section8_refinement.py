"""Section 8.2 worked example: perturbation + iterative refinement.

Paper numbers for the 6×6 Toeplitz matrix of eq. (50) with x = 1:

    ‖x − x₁‖ = 3.6375e−05
    ‖x − x₂‖ = 6.9982e−10   (after 1 refinement step)
    ‖x − x₃‖ = 1.5877e−14   (after 2 steps — machine precision)

with ‖δT·T⁻¹‖ = 2.8753e−05 at δ ≈ 1e−5.  We regenerate the whole table
(error per iterate, residuals, γ) and check each magnitude.
"""

import numpy as np

from repro.bench import format_table, write_result
from repro.core.refinement import refine
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.toeplitz import paper_example_matrix


def run_example():
    t = paper_example_matrix()
    x_true = np.ones(6)
    b = t.dense() @ x_true
    fact = schur_indefinite_factor(t, delta=1e-5)  # the paper's δ
    res = refine(fact, t, b, keep_history=True)
    errs = [float(np.linalg.norm(x_true - x)) for x in res.history]
    d = t.dense()
    gamma = float(np.linalg.norm(
        (fact.reconstruct() - d) @ np.linalg.inv(d), 2))
    return errs, res, gamma, fact


def test_section8_worked_example(benchmark):
    errs, res, gamma, fact = benchmark.pedantic(run_example, rounds=1,
                                                iterations=1)
    rows = [[i + 1, f"{e:.4e}",
             f"{res.residual_norms[i]:.4e}" if i < len(res.residual_norms)
             else "-"]
            for i, e in enumerate(errs)]
    text = format_table(
        ["iterate", "||x - x_i||", "||b - T x_i||"], rows,
        title=("Section 8.2 worked example (eq. 50 matrix, δ = 1e−5)\n"
               f"perturbations: {len(fact.perturbations)}   "
               f"‖δT·T⁻¹‖ = {gamma:.4e}   "
               f"(paper: 3.6e−5 → 7.0e−10 → 1.6e−14, γ = 2.9e−5)"))
    write_result("section8_refinement", text)

    # paper magnitudes
    assert 1e-6 < errs[0] < 1e-3           # ≈ 3.6e−5
    assert errs[1] < 1e-7                  # ≈ 7.0e−10
    assert errs[2] < 1e-12                 # ≈ 1.6e−14
    assert 1e-7 < gamma < 1e-3             # ≈ 2.9e−5
    assert len(fact.perturbations) == 1    # one perturbation suffices
    assert res.converged
