"""Figure 7 / Experiment 2: block Toeplitz with m = 8 on 64 PEs.

Paper: a 4096 × 4096 block Toeplitz matrix with m = 8, NP = 64 (the
figure caption's "16" is inconsistent with the body text; we follow the
body), time-to-factor across all three distribution schemes:
``b ∈ {¼, ½}`` (Version 3 spreads), ``b = 1`` (Version 1),
``b ∈ {2, 4, 8}`` (Version 2 groups).  Reported shape: for moderate
block sizes with adequate parallelism, Version 1 (b = 1) is fastest.
"""

from repro.bench import ascii_plot, bench_scale, format_series, write_result
from repro.parallel import simulate_factorization
from repro.toeplitz import kms_toeplitz

B_VALUES = (0.25, 0.5, 1, 2, 4, 8)
NP = 64
M = 8


def run_experiment(n: int) -> dict[float, float]:
    t = kms_toeplitz(n, 0.5).regroup(M)
    return {b: simulate_factorization(t, nproc=NP, b=b,
                                      collect=False).time
            for b in B_VALUES}


def test_fig7_experiment2(benchmark):
    n = bench_scale(quick=1024, full=4096)
    times = benchmark.pedantic(run_experiment, args=(n,),
                               rounds=1, iterations=1)
    text = format_series(
        "b", list(B_VALUES),
        {"time_to_factor_s": [times[b] for b in B_VALUES]},
        title=(f"Figure 7 / Experiment 2 — {n}×{n} block Toeplitz, "
               f"m={M}, NP={NP}, simulated T3D "
               f"(b<1 ⇒ Version 3, b=1 ⇒ Version 1, b>1 ⇒ Version 2)"))
    plot = ascii_plot(list(B_VALUES),
                      {"time (s)": [times[b] for b in B_VALUES]},
                      title="shape (paper: Version 1 / b=1 fastest)",
                      x_label="b")
    write_result("fig7_exp2", text + "\n\n" + plot)

    # paper shape: Version 1 (b = 1) is the fastest scheme at m = 8.
    best = min(times, key=times.get)
    assert best == 1
    # and both directions away from b = 1 get worse monotonically at the
    # extremes.
    assert times[0.25] > times[0.5]
    assert times[8] > times[4]
