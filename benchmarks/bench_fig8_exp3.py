"""Figure 8 / Experiment 3: large blocks (m = 32) on 64 PEs.

Paper: a 4096 × 4096 block Toeplitz matrix with m = 32, NP = 64,
Versions 1 and 3 with the spread (PEs per block) swept over
{1, 2, 4, 8, 16, 32}.  Reported shape: with only p = 128 blocks the
Version-1 parallelism is poor; spreading each block over several PEs
helps, with an interior optimum (paper: spread = 8; our T3D model puts
it at 2–4 — same mechanism, see EXPERIMENTS.md), beyond which the extra
broadcasts win and times rise sharply.
"""

from repro.bench import ascii_plot, bench_scale, format_series, write_result
from repro.parallel import simulate_factorization
from repro.toeplitz import kms_toeplitz

SPREADS = (1, 2, 4, 8, 16, 32)
NP = 64
M = 32


def run_experiment(n: int) -> dict[int, float]:
    t = kms_toeplitz(n, 0.5).regroup(M)
    out = {}
    for s in SPREADS:
        b = 1 if s == 1 else 1.0 / s
        out[s] = simulate_factorization(t, nproc=NP, b=b,
                                        collect=False).time
    return out


def test_fig8_experiment3(benchmark):
    n = bench_scale(quick=2048, full=4096)
    times = benchmark.pedantic(run_experiment, args=(n,),
                               rounds=1, iterations=1)
    text = format_series(
        "spread", list(SPREADS),
        {"time_to_factor_s": [times[s] for s in SPREADS]},
        title=(f"Figure 8 / Experiment 3 — {n}×{n} block Toeplitz, "
               f"m={M}, NP={NP}, simulated T3D (Version 3 spreads)"))
    plot = ascii_plot(list(SPREADS),
                      {"time (s)": [times[s] for s in SPREADS]},
                      title="shape (paper: interior optimum, sharp rise)",
                      x_label="spread")
    write_result("fig8_exp3", text + "\n\n" + plot)

    # paper shape: spreading pays (interior optimum > no spreading) …
    best = min(times, key=times.get)
    assert best > 1
    # … and over-spreading hurts: the largest spread is the worst end.
    assert times[32] > times[best]
    assert times[16] > times[best]
