"""Extension: the GKO pivoted LU next to the symmetric solvers.

Accuracy/time table across matrix classes, including the cases where
each solver is the only sensible choice: GKO for nonsymmetric systems,
the perturbed Schur + refinement for symmetric singular-minor systems
(GKO handles them too via pivoting — at twice the displacement rank and
complex arithmetic).
"""

import time

import numpy as np

from repro.bench import format_table, write_result
from repro.core.gko import solve_toeplitz_gko
from repro.core.solve import solve_refined
from repro.core.schur_spd import schur_spd_factor
from repro.toeplitz import (
    BlockToeplitz,
    kms_toeplitz,
    paper_example_matrix,
    singular_minor_toeplitz,
)


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_comparison():
    rng = np.random.default_rng(0)
    rows = []

    # SPD: both work; Schur exploits symmetry (real arithmetic, rank 2m)
    t = kms_toeplitz(1024, 0.8)
    b = rng.standard_normal(1024)
    d = t.dense()
    ts = _wall(lambda: schur_spd_factor(t).solve(b))
    tg = _wall(lambda: solve_toeplitz_gko(t, b))
    xs = schur_spd_factor(t).solve(b)
    xg = solve_toeplitz_gko(t, b)
    rows.append(["spd kms n=1024", "schur", f"{ts:.3f}",
                 f"{np.linalg.norm(d @ xs - b):.1e}"])
    rows.append(["spd kms n=1024", "gko", f"{tg:.3f}",
                 f"{np.linalg.norm(d @ xg - b):.1e}"])

    # symmetric with singular minors
    t = singular_minor_toeplitz(256, seed=1)
    b = rng.standard_normal(256)
    d = t.dense()
    xr = solve_refined(t, b).x
    xg = solve_toeplitz_gko(t, b)
    rows.append(["singular-minor n=256", "schur+refine", "-",
                 f"{np.linalg.norm(d @ xr - b):.1e}"])
    rows.append(["singular-minor n=256", "gko", "-",
                 f"{np.linalg.norm(d @ xg - b):.1e}"])

    # nonsymmetric: GKO only
    col = [np.array([[v]]) for v in rng.standard_normal(256)]
    row0 = [col[0]] + [np.array([[v]])
                       for v in rng.standard_normal(255)]
    tn = BlockToeplitz(col, row0)
    dn = tn.dense()
    b = rng.standard_normal(256)
    xg = solve_toeplitz_gko(tn, b)
    rows.append(["nonsymmetric n=256", "gko", "-",
                 f"{np.linalg.norm(dn @ xg - b):.1e}"])
    return rows


def test_gko_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = format_table(
        ["case", "method", "seconds", "residual"],
        rows,
        title=("GKO pivoted LU alongside the symmetric Schur solvers "
               "(extension: the nonsymmetric/no-assumptions companion)"))
    write_result("gko_comparison", text)

    for case, method, _sec, resid in rows:
        tol = 1e-4 if "singular" in case else 1e-6
        assert float(resid) < tol, (case, method)
