"""Real wall-clock block-size sweep (the §6.5 recommendation, timed).

pytest-benchmark timing of the factorization of a fixed point-Toeplitz
matrix at several algorithmic block sizes ``m_s``: the measured optimum
on this host falls at an interior ``m_s > 1``, confirming that forgoing
Toeplitz structure pays on level-3-friendly hardware.
"""

import pytest

from repro.core.schur_spd import schur_spd_factor
from repro.toeplitz import kms_toeplitz

N = 1024
MS_VALUES = (1, 2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def base_matrix():
    return kms_toeplitz(N, 0.5)


@pytest.mark.parametrize("ms", MS_VALUES)
def test_blocksize_timing(benchmark, base_matrix, ms):
    t = base_matrix.regroup(ms)
    fact = benchmark(schur_spd_factor, t)
    assert fact.r.shape == (N, N)
