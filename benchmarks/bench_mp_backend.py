"""Real multiprocess backend: wall-clock vs serial, across distributions.

The simulated T3D answers "what would the 1994 machine do"; this bench
answers "what does *this* machine do" — one worker process per PE over
shared memory, real barriers, real clocks.  It factors the same SPD
block Toeplitz operator serially and with p ∈ {1, 2, 4} PEs under the
paper's three data distributions (Version 1: b=1, Version 2: b=2,
Version 3: b=1/2) and records wall-clock seconds plus speedup over the
serial block Schur factorization.

Small problems won't beat the serial loop — process barriers cost tens
of microseconds where the paper's shmem puts cost ~1 — so the assertion
is parity (every backend/distribution reproduces serial R to 1e-10) and
completeness (all p × distribution cells measured), not speedup.
Results land in ``BENCH_mp_backend.json`` (a CI artifact).
"""

import time

import numpy as np

from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import full_scale
from repro.core.schur_spd import schur_spd_factor
from repro.parallel import mp_factorization, multiprocess_available
from repro.toeplitz import ar_block_toeplitz

#: (label, b) — the three Figure-5 distributions.
DISTRIBUTIONS = [("v1 cyclic", 1), ("v2 adjacent", 2), ("v3 spread", 0.5)]
NPROCS = [1, 2, 4]


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_mp_bench(p_blocks, m):
    t = ar_block_toeplitz(p_blocks, m, seed=0)
    serial_fact = schur_spd_factor(t)
    serial_seconds = _wall(lambda: schur_spd_factor(t))

    cells = []
    for label, b in DISTRIBUTIONS:
        for nproc in NPROCS:
            if b < 1 and (m % round(1 / b) != 0 or round(1 / b) > nproc):
                continue   # spread needs m % s == 0 and s ≤ NP
            run = mp_factorization(t, nproc, b=b)
            err = float(np.max(np.abs(run.r - serial_fact.r)))
            seconds = _wall(
                lambda nproc=nproc, b=b:
                mp_factorization(t, nproc, b=b, collect=False))
            cells.append({
                "distribution": label, "b": b, "nproc": nproc,
                "version": run.layout.version,
                "wall_seconds": seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "max_abs_err_vs_serial": err,
                "shift_words_total": sum(run.words_by_rank().values()),
                "broadcast_words_total":
                    sum(run.broadcast_words_by_rank().values()),
                "start_method": run.start_method,
            })
    return serial_seconds, cells


def test_mp_backend_speedup(benchmark):
    ok, reason = multiprocess_available()
    if not ok:
        import pytest
        pytest.skip(f"multiprocess backend unavailable: {reason}")

    p_blocks, m = (64, 8) if full_scale() else (24, 4)
    serial_seconds, cells = benchmark.pedantic(
        run_mp_bench, args=(p_blocks, m), rounds=1, iterations=1)

    rows = [[c["distribution"], c["b"], c["nproc"],
             f"{c['wall_seconds'] * 1e3:.2f}",
             f"{c['speedup_vs_serial']:.2f}x",
             f"{c['max_abs_err_vs_serial']:.1e}",
             c["shift_words_total"]] for c in cells]
    text = format_table(
        ["distribution", "b", "NP", "wall_ms", "speedup", "err", "words"],
        rows,
        title=(f"Real multiprocess backend, n={p_blocks * m} "
               f"(p={p_blocks}, m={m}); serial block Schur = "
               f"{serial_seconds * 1e3:.2f} ms"))
    write_result("mp_backend", text)

    write_json_result("mp_backend", {
        "workload": {"num_blocks": p_blocks, "block_size": m,
                     "order": p_blocks * m, "matrix": "ar(seed=0)",
                     "full_scale": full_scale()},
        "serial_seconds": serial_seconds,
        "cells": cells,
    })

    # completeness: every nproc ran for every applicable distribution
    measured = {(c["distribution"], c["nproc"]) for c in cells}
    for label, b in DISTRIBUTIONS:
        for nproc in NPROCS:
            if b < 1 and (m % round(1 / b) != 0 or round(1 / b) > nproc):
                continue
            assert (label, nproc) in measured
    # parity: real workers reproduce serial R in every cell
    for c in cells:
        assert c["max_abs_err_vs_serial"] <= 1e-10, c
