"""Distributed data plane: lookahead vs bulk factorization + mp solves.

Two questions about the real multiprocess backend.  First, does the
Section-7 lookahead schedule beat the bulk-synchronous one?  Bulk pays
four process barriers per elimination step and rebuilds the reflector on
every PE; lookahead builds it once on the pivot owner and replaces the
barriers with write-once flag waits, so its critical path should lose
the barrier term.  Second, what do the distributed triangular solves
cost?  The forward/backward sweeps run one broadcast per block row (and
one reduce in the backward sweep), m·k words each — we record wall
seconds and exact word counts for a vector and a k=32 panel.

Cells are (p_blocks, m=8, NP=4) under the Version-1 cyclic
distribution — the layout the lookahead schedule targets.  The gated
metric is ``lookahead_speedup_vs_bulk``: the acceptance bar is
lookahead strictly beating bulk at every benchmarked cell, and the
bulk ``barrier`` vs lookahead ``wait`` phase seconds show *why* (the
barrier-dominated critical path shrinks).  Results land in
``BENCH_mp_solve.json`` (a CI artifact).
"""

import time

import numpy as np

from repro.bench import format_table, write_json_result, write_result
from repro.bench.runner import full_scale
from repro.core.schur_spd import schur_spd_factor
from repro.parallel import (
    make_layout,
    mp_factorization,
    mp_triangular_solve,
    multiprocess_available,
)
from repro.toeplitz import ar_block_toeplitz

NPROC = 4
BLOCK = 8
PANEL_K = 32


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _phase_total(run, phase):
    return float(run.breakdown().get(phase, 0.0))


def run_mp_solve_bench(sizes):
    cells = []
    for p_blocks in sizes:
        t = ar_block_toeplitz(p_blocks, BLOCK, seed=0)
        serial = schur_spd_factor(t)
        layout = make_layout(NPROC, b=1)

        bulk_seconds = _wall(
            lambda: mp_factorization(t, NPROC, collect=False))
        la_seconds = _wall(
            lambda: mp_factorization(t, NPROC, collect=False,
                                     schedule="lookahead"))
        bulk_run = mp_factorization(t, NPROC)
        la_run = mp_factorization(t, NPROC, schedule="lookahead")
        fact_err = max(
            float(np.max(np.abs(bulk_run.r - serial.r))),
            float(np.max(np.abs(la_run.r - serial.r))))

        rhs_vec = np.ones(t.order)
        rhs_panel = np.arange(
            t.order * PANEL_K, dtype=float).reshape(t.order, PANEL_K)
        rhs_panel /= rhs_panel.max()
        vec_seconds = _wall(
            lambda: mp_triangular_solve(serial.r, layout, rhs_vec,
                                        block_size=BLOCK))
        panel_seconds = _wall(
            lambda: mp_triangular_solve(serial.r, layout, rhs_panel,
                                        block_size=BLOCK))
        vec_run = mp_triangular_solve(serial.r, layout, rhs_vec,
                                      block_size=BLOCK)
        panel_run = mp_triangular_solve(serial.r, layout, rhs_panel,
                                        block_size=BLOCK)
        solve_err = max(
            float(np.max(np.abs(vec_run.x - serial.solve(rhs_vec)))),
            float(np.max(np.abs(panel_run.x - serial.solve(rhs_panel)))))

        cells.append({
            "num_blocks": p_blocks, "block_size": BLOCK,
            "order": p_blocks * BLOCK, "nproc": NPROC,
            "bulk_factor_seconds": bulk_seconds,
            "lookahead_factor_seconds": la_seconds,
            "lookahead_speedup_vs_bulk": bulk_seconds / la_seconds,
            "bulk_barrier_seconds": _phase_total(bulk_run, "barrier"),
            "lookahead_wait_seconds": _phase_total(la_run, "wait"),
            "factor_max_abs_err": fact_err,
            "solve_vector_seconds": vec_seconds,
            "solve_panel_seconds": panel_seconds,
            "panel_nrhs": PANEL_K,
            "solve_broadcast_words_total":
                sum(panel_run.broadcast_words_by_rank().values()),
            "solve_reduce_words_total":
                sum(panel_run.reduce_words_by_rank().values()),
            "solve_max_abs_err": solve_err,
            "start_method": bulk_run.start_method,
        })
    return cells


def test_mp_solve_lookahead(benchmark):
    ok, reason = multiprocess_available()
    if not ok:
        import pytest
        pytest.skip(f"multiprocess backend unavailable: {reason}")

    sizes = (32, 64) if full_scale() else (16, 24)
    cells = benchmark.pedantic(
        run_mp_solve_bench, args=(sizes,), rounds=1, iterations=1)

    rows = [[c["num_blocks"], c["order"], c["nproc"],
             f"{c['bulk_factor_seconds'] * 1e3:.2f}",
             f"{c['lookahead_factor_seconds'] * 1e3:.2f}",
             f"{c['lookahead_speedup_vs_bulk']:.2f}x",
             f"{c['bulk_barrier_seconds'] * 1e3:.1f}",
             f"{c['lookahead_wait_seconds'] * 1e3:.1f}",
             f"{c['solve_vector_seconds'] * 1e3:.2f}",
             f"{c['solve_panel_seconds'] * 1e3:.2f}"] for c in cells]
    text = format_table(
        ["p", "n", "NP", "bulk_ms", "lookahead_ms", "speedup",
         "barrier_ms", "wait_ms", "solve_ms", "panel_ms"],
        rows,
        title=(f"Lookahead vs bulk mp factorization + distributed solves "
               f"(m={BLOCK}, NP={NPROC}, k={PANEL_K} panels)"))
    write_result("mp_solve", text)

    write_json_result("mp_solve", {
        "workload": {"block_size": BLOCK, "nproc": NPROC,
                     "panel_nrhs": PANEL_K, "matrix": "ar(seed=0)",
                     "full_scale": full_scale()},
        "cells": cells,
    })

    for c in cells:
        # the acceptance bar: lookahead beats bulk at every cell
        assert c["lookahead_speedup_vs_bulk"] > 1.0, c
        # and the barrier-dominated critical path shrinks
        assert c["lookahead_wait_seconds"] < c["bulk_barrier_seconds"], c
        assert c["factor_max_abs_err"] <= 1e-10, c
        assert c["solve_max_abs_err"] <= 1e-10, c
