"""Tests for the block Toeplitz matrix classes."""

import numpy as np
import pytest

from repro.errors import NotBlockToeplitzError, ShapeError
from repro.toeplitz import (
    BlockToeplitz,
    SymmetricBlockToeplitz,
    from_dense,
    symmetric_from_dense,
)


def _random_sym(p, m, seed=0):
    rng = np.random.default_rng(seed)
    blocks = [rng.standard_normal((m, m)) for _ in range(p)]
    blocks[0] = blocks[0] + blocks[0].T
    return SymmetricBlockToeplitz(blocks)


class TestSymmetricConstruction:
    def test_basic_properties(self):
        t = _random_sym(5, 3)
        assert t.block_size == 3
        assert t.num_blocks == 5
        assert t.order == 15
        assert t.shape == (15, 15)

    def test_from_first_row_scalar(self):
        t = SymmetricBlockToeplitz.from_first_row([2.0, 1.0, 0.5])
        assert t.block_size == 1
        assert t.order == 3
        d = t.dense()
        expect = np.array([[2, 1, .5], [1, 2, 1], [.5, 1, 2]])
        np.testing.assert_allclose(d, expect)

    def test_identity(self):
        t = SymmetricBlockToeplitz.identity(4, 2)
        np.testing.assert_allclose(t.dense(), np.eye(8))

    def test_requires_symmetric_diagonal_block(self):
        blocks = [np.array([[1.0, 2.0], [3.0, 4.0]]), np.eye(2)]
        with pytest.raises(NotBlockToeplitzError):
            SymmetricBlockToeplitz(blocks)

    def test_nonsquare_block_rejected(self):
        with pytest.raises(ShapeError):
            SymmetricBlockToeplitz([np.ones((2, 3))])

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ShapeError):
            SymmetricBlockToeplitz([np.eye(2), np.eye(3)])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            SymmetricBlockToeplitz([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ShapeError):
            SymmetricBlockToeplitz([np.array([[np.nan]])])

    def test_blocks_are_read_only(self):
        t = _random_sym(3, 2)
        with pytest.raises(ValueError):
            t.top_blocks[0, 0, 0] = 99.0


class TestSymmetricStructure:
    def test_dense_is_symmetric(self):
        t = _random_sym(6, 3, seed=3)
        d = t.dense()
        np.testing.assert_allclose(d, d.T)

    def test_dense_is_block_toeplitz(self):
        t = _random_sym(6, 2, seed=4)
        d = t.dense()
        m = 2
        for i in range(5):
            np.testing.assert_allclose(
                d[i * m:(i + 1) * m, (i + 1) * m:(i + 2) * m],
                d[:m, m:2 * m])

    def test_block_accessor_matches_dense(self):
        t = _random_sym(5, 3, seed=5)
        d = t.dense()
        m = 3
        for i in range(5):
            for j in range(5):
                np.testing.assert_allclose(
                    t.block(i, j), d[i * m:(i + 1) * m, j * m:(j + 1) * m])

    def test_block_index_out_of_range(self):
        t = _random_sym(3, 2)
        with pytest.raises(IndexError):
            t.block(3, 0)
        with pytest.raises(IndexError):
            t.block(0, -1)

    def test_scalar_entry(self):
        t = _random_sym(4, 3, seed=6)
        d = t.dense()
        for i in (0, 5, 11):
            for j in (0, 3, 7):
                assert t.scalar_entry(i, j) == pytest.approx(d[i, j])

    def test_row_strip(self):
        t = _random_sym(5, 3, seed=7)
        d = t.dense()
        np.testing.assert_allclose(t.row_strip(7), d[:7])

    def test_row_strip_bounds(self):
        t = _random_sym(3, 2)
        with pytest.raises(ShapeError):
            t.row_strip(0)
        with pytest.raises(ShapeError):
            t.row_strip(7)

    def test_first_scalar_row(self):
        t = _random_sym(4, 2, seed=8)
        np.testing.assert_allclose(t.first_scalar_row(), t.dense()[0])

    def test_leading(self):
        t = _random_sym(6, 2, seed=9)
        lead = t.leading(3)
        np.testing.assert_allclose(lead.dense(), t.dense()[:6, :6])

    def test_leading_bounds(self):
        t = _random_sym(3, 2)
        with pytest.raises(ShapeError):
            t.leading(0)
        with pytest.raises(ShapeError):
            t.leading(4)


class TestRegroup:
    def test_regroup_preserves_matrix(self):
        t = _random_sym(8, 2, seed=10)
        for ms in (2, 4, 8):
            tr = t.regroup(ms)
            assert tr.block_size == ms
            np.testing.assert_allclose(tr.dense(), t.dense())

    def test_regroup_scalar(self):
        t = SymmetricBlockToeplitz.from_first_row(
            np.random.default_rng(0).standard_normal(12))
        tr = t.regroup(3)
        np.testing.assert_allclose(tr.dense(), t.dense())

    def test_regroup_same_size_is_identity(self):
        t = _random_sym(4, 2)
        assert t.regroup(2) is t

    def test_regroup_invalid(self):
        t = _random_sym(8, 2)
        with pytest.raises(ShapeError):
            t.regroup(3)   # not a multiple of m
        with pytest.raises(ShapeError):
            t.regroup(5)
        with pytest.raises(ShapeError):
            t.regroup(-2)

    def test_regroup_nondividing(self):
        t = _random_sym(6, 2)   # n = 12
        with pytest.raises(ShapeError):
            t.regroup(8)        # 8 does not divide 12


class TestArithmetic:
    def test_add_diagonal(self):
        t = _random_sym(4, 3, seed=11)
        t2 = t.add_diagonal(2.5)
        np.testing.assert_allclose(t2.dense(), t.dense() + 2.5 * np.eye(12))

    def test_scaled(self):
        t = _random_sym(4, 2, seed=12)
        np.testing.assert_allclose(t.scaled(-3.0).dense(), -3.0 * t.dense())

    def test_matmul_operator(self):
        t = _random_sym(5, 2, seed=13)
        x = np.arange(10, dtype=float)
        np.testing.assert_allclose(t @ x, t.dense() @ x, atol=1e-10)


class TestGeneralBlockToeplitz:
    def _random_general(self, p, m, seed=0):
        rng = np.random.default_rng(seed)
        col = [rng.standard_normal((m, m)) for _ in range(p)]
        row = [col[0]] + [rng.standard_normal((m, m)) for _ in range(p - 1)]
        return BlockToeplitz(col, row)

    def test_dense_structure(self):
        t = self._random_general(5, 2, seed=1)
        d = t.dense()
        m = 2
        for i in range(4):
            np.testing.assert_allclose(
                d[(i + 1) * m:(i + 2) * m, i * m:(i + 1) * m],
                d[m:2 * m, :m])

    def test_corner_mismatch_rejected(self):
        with pytest.raises(NotBlockToeplitzError):
            BlockToeplitz([np.eye(2)], [2 * np.eye(2)])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            BlockToeplitz([np.eye(2), np.eye(2)], [np.eye(2)])

    def test_from_symmetric(self):
        s = _random_sym(4, 3, seed=14)
        g = BlockToeplitz.from_symmetric(s)
        np.testing.assert_allclose(g.dense(), s.dense())

    def test_matvec(self):
        t = self._random_general(6, 3, seed=2)
        x = np.random.default_rng(3).standard_normal(18)
        np.testing.assert_allclose(t.matvec(x), t.dense() @ x, atol=1e-10)

    def test_block_accessor(self):
        t = self._random_general(4, 2, seed=4)
        d = t.dense()
        for i in range(4):
            for j in range(4):
                np.testing.assert_allclose(
                    t.block(i, j), d[i * 2:(i + 1) * 2, j * 2:(j + 1) * 2])


class TestFromDense:
    def test_round_trip_symmetric(self):
        t = _random_sym(5, 2, seed=15)
        t2 = symmetric_from_dense(t.dense(), 2)
        np.testing.assert_allclose(t2.dense(), t.dense())

    def test_round_trip_general(self):
        rng = np.random.default_rng(16)
        col = [rng.standard_normal((2, 2)) for _ in range(4)]
        row = [col[0]] + [rng.standard_normal((2, 2)) for _ in range(3)]
        t = BlockToeplitz(col, row)
        t2 = from_dense(t.dense(), 2)
        np.testing.assert_allclose(t2.dense(), t.dense())

    def test_non_toeplitz_rejected(self):
        rng = np.random.default_rng(17)
        a = rng.standard_normal((6, 6))
        a = a + a.T
        with pytest.raises(NotBlockToeplitzError):
            symmetric_from_dense(a, 2)

    def test_nonsymmetric_rejected(self):
        t = self_general = np.triu(np.ones((6, 6)))
        with pytest.raises(NotBlockToeplitzError):
            symmetric_from_dense(self_general, 2)

    def test_wrong_block_size_rejected(self):
        t = _random_sym(4, 2, seed=18)
        with pytest.raises(ShapeError):
            symmetric_from_dense(t.dense(), 3)
