"""Tests for signature matrices and scalar hyperbolic Householder
reflectors (Section 3 of the paper)."""

import numpy as np
import pytest

from repro.core.hyperbolic import HyperbolicHouseholder, \
    reflector_annihilating
from repro.core.signature import (
    apply_signature,
    block_schur_signature,
    hyperbolic_norm_squared,
    is_signature,
    signature_matrix,
    signature_vector,
)
from repro.errors import BreakdownError, ShapeError


class TestSignature:
    def test_vector_validation(self):
        w = signature_vector([1, -1, 1])
        assert w.dtype == np.int8
        np.testing.assert_array_equal(w, [1, -1, 1])

    def test_rejects_non_pm1(self):
        with pytest.raises(ShapeError):
            signature_vector([1, 0, -1])
        with pytest.raises(ShapeError):
            signature_vector([1.5, -1])

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            signature_vector(np.ones((2, 2)))

    def test_is_signature(self):
        assert is_signature([1, -1])
        assert not is_signature([2, 1])
        assert not is_signature("xx")

    def test_matrix_properties_eq12(self):
        # W² = I and Wᵀ = W (eq. 12)
        w = signature_matrix([1, -1, -1, 1])
        np.testing.assert_allclose(w @ w, np.eye(4))
        np.testing.assert_allclose(w, w.T)

    def test_hyperbolic_norm(self):
        w = signature_vector([1, -1])
        assert hyperbolic_norm_squared(np.array([3.0, 2.0]), w) == \
            pytest.approx(5.0)

    def test_apply_signature_vector_and_matrix(self):
        w = signature_vector([1, -1])
        np.testing.assert_allclose(apply_signature(w, np.array([2., 3.])),
                                   [2., -3.])
        a = np.ones((2, 3))
        np.testing.assert_allclose(apply_signature(w, a),
                                   [[1, 1, 1], [-1, -1, -1]])

    def test_block_schur_signature_spd(self):
        w = block_schur_signature(3)
        np.testing.assert_array_equal(w, [1, 1, 1, -1, -1, -1])

    def test_block_schur_signature_indefinite(self):
        w = block_schur_signature(2, [1, -1])
        np.testing.assert_array_equal(w, [1, -1, -1, 1])

    def test_block_schur_signature_errors(self):
        with pytest.raises(ShapeError):
            block_schur_signature(0)
        with pytest.raises(ShapeError):
            block_schur_signature(2, [1, -1, 1])


class TestReflectorProperties:
    def test_w_unitary_definite(self, rng):
        w = signature_vector([1, 1, -1, -1])
        x = rng.standard_normal(4)
        while abs(hyperbolic_norm_squared(x, w)) < 0.1:
            x = rng.standard_normal(4)
        u = HyperbolicHouseholder(x, w)
        assert u.is_w_unitary()
        umat = u.matrix()
        wmat = signature_matrix(w)
        np.testing.assert_allclose(umat.T @ wmat @ umat, wmat,
                                   atol=1e-10 * max(1, abs(u.xwx)))

    def test_inverse_formula_eq13(self, rng):
        # U⁻¹ = W Uᵀ W (eq. 13)
        w = signature_vector([1, -1, 1])
        x = np.array([2.0, 0.5, -1.0])
        u = HyperbolicHouseholder(x, w).matrix()
        wmat = signature_matrix(w)
        np.testing.assert_allclose(u @ (wmat @ u.T @ wmat), np.eye(3),
                                   atol=1e-12)

    def test_zero_norm_rejected(self):
        w = signature_vector([1, -1])
        with pytest.raises(BreakdownError):
            HyperbolicHouseholder(np.array([1.0, 1.0]), w)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            HyperbolicHouseholder(np.ones(3), signature_vector([1, -1]))

    def test_apply_left_vector_vs_matrix(self, rng):
        w = signature_vector([1, 1, -1, -1])
        x = np.array([1.0, 0.3, 0.2, 0.1])
        u = HyperbolicHouseholder(x, w)
        v = rng.standard_normal(4)
        np.testing.assert_allclose(u.apply_left(v), u.matrix() @ v,
                                   atol=1e-12)

    def test_apply_left_matrix_operand(self, rng):
        w = signature_vector([1, -1, -1])
        x = np.array([2.0, 0.5, 0.5])
        u = HyperbolicHouseholder(x, w)
        a = rng.standard_normal((3, 5))
        np.testing.assert_allclose(u.apply_left(a), u.matrix() @ a,
                                   atol=1e-12)

    def test_apply_left_in_place(self, rng):
        w = signature_vector([1, -1])
        u = HyperbolicHouseholder(np.array([2.0, 1.0]), w)
        a = rng.standard_normal((2, 4))
        expect = u.matrix() @ a
        u.apply_left(a, out=a)
        np.testing.assert_allclose(a, expect, atol=1e-12)

    def test_sparse_support_application(self, rng):
        # reflector supported on rows {1, 3, 4} of a length-5 vector
        w = signature_vector([1, 1, 1, -1, -1])
        x = np.zeros(5)
        x[[1, 3, 4]] = [2.0, 0.5, 0.3]
        u_sparse = HyperbolicHouseholder(x, w, support=np.array([1, 3, 4]))
        u_dense = HyperbolicHouseholder(x, w)
        a = rng.standard_normal((5, 6))
        np.testing.assert_allclose(u_sparse.apply_left(a),
                                   u_dense.apply_left(a), atol=1e-12)

    def test_operand_row_mismatch(self):
        w = signature_vector([1, -1])
        u = HyperbolicHouseholder(np.array([2.0, 1.0]), w)
        with pytest.raises(ShapeError):
            u.apply_left(np.ones((3, 2)))


class TestAnnihilation:
    def test_maps_to_minus_sigma_ej(self, rng):
        # eq. (15): U_x u = −σ e_j
        w = signature_vector([1, 1, -1, -1])
        u_vec = np.array([3.0, 0.0, 1.0, 0.5])
        refl, sigma = reflector_annihilating(u_vec, w, 0)
        out = refl.apply_left(u_vec)
        expect = np.zeros(4)
        expect[0] = -sigma
        np.testing.assert_allclose(out, expect, atol=1e-12)

    def test_sigma_magnitude_eq16(self):
        # σ² = uᵀWu for a +1 target axis (eq. 16)
        w = signature_vector([1, -1])
        u_vec = np.array([2.0, 1.0])
        _, sigma = reflector_annihilating(u_vec, w, 0)
        assert sigma ** 2 == pytest.approx(3.0)

    def test_negative_norm_target_lower(self):
        # uᵀWu < 0 must map onto an axis with W_jj = −1
        w = signature_vector([1, -1])
        u_vec = np.array([1.0, 2.0])
        refl, sigma = reflector_annihilating(u_vec, w, 1)
        out = refl.apply_left(u_vec)
        np.testing.assert_allclose(out, [0.0, -sigma], atol=1e-12)
        assert sigma ** 2 == pytest.approx(3.0)

    def test_wrong_sign_axis_rejected(self):
        w = signature_vector([1, -1])
        with pytest.raises(BreakdownError):
            reflector_annihilating(np.array([1.0, 2.0]), w, 0)
        with pytest.raises(BreakdownError):
            reflector_annihilating(np.array([2.0, 1.0]), w, 1)

    def test_zero_norm_detected(self):
        w = signature_vector([1, -1])
        with pytest.raises(BreakdownError):
            reflector_annihilating(np.array([1.0, 1.0]), w, 0,
                                   breakdown_tol=1e-12)

    def test_zero_vector_rejected(self):
        w = signature_vector([1, -1])
        with pytest.raises(BreakdownError):
            reflector_annihilating(np.zeros(2), w, 0)

    def test_target_out_of_range(self):
        w = signature_vector([1, -1])
        with pytest.raises(ShapeError):
            reflector_annihilating(np.array([2.0, 1.0]), w, 5)

    def test_no_cancellation_sign_choice(self):
        # σ·u_j must carry the sign of uᵀWu so xᵀWx cannot cancel.
        w = signature_vector([1, -1])
        for uj in (1e-8, -1e-8, 3.0, -3.0):
            u_vec = np.array([uj, 0.5 * abs(uj)])
            refl, sigma = reflector_annihilating(u_vec, w, 0)
            h = u_vec[0] ** 2 - u_vec[1] ** 2
            assert sigma * u_vec[0] * h >= 0
            assert abs(refl.xwx) > 0

    def test_many_random_annihilations(self, rng):
        w = signature_vector([1, 1, 1, -1, -1, -1])
        for trial in range(50):
            u_vec = rng.standard_normal(6)
            h = hyperbolic_norm_squared(u_vec, w)
            if abs(h) < 1e-6:
                continue
            j = 0 if h > 0 else 3
            refl, sigma = reflector_annihilating(u_vec, w, j)
            out = refl.apply_left(u_vec)
            expect = np.zeros(6)
            expect[j] = -sigma
            np.testing.assert_allclose(out, expect,
                                       atol=1e-9 * max(1, abs(sigma)))
            assert refl.is_w_unitary(rtol=1e-8)
