"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.toeplitz.workloads import (
    ar_block_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_spd_block():
    """8-block, block size 3 SPD block Toeplitz (order 24)."""
    return ar_block_toeplitz(8, 3, seed=42)


@pytest.fixture
def small_spd_scalar():
    """Order-32 KMS scalar Toeplitz."""
    return kms_toeplitz(32, 0.55)


@pytest.fixture
def paper_matrix():
    return paper_example_matrix()


def assert_upper_triangular(a, atol=1e-11):
    below = np.tril(a, k=-1)
    assert np.max(np.abs(below)) <= atol, \
        f"not upper triangular; max below-diag {np.max(np.abs(below)):.2e}"
