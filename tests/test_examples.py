"""Smoke tests: the example scripts must run end-to-end.

Each example's ``main()`` is executed in-process (fast ones on every
run; the measurement-heavy ones behind ``-m slow``).
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "factorization residual" in out
    assert "True" in out


def test_indefinite_refinement(capsys):
    _run("indefinite_refinement.py")
    out = capsys.readouterr().out
    assert "paper eq. (50)" in out
    assert "iterative refinement trace" in out


def test_deconvolution(capsys):
    _run("deconvolution.py")
    out = capsys.readouterr().out
    assert "symbol decisions correct: 256/256" in out


def test_low_displacement_rank(capsys):
    _run("low_displacement_rank.py")
    out = capsys.readouterr().out
    assert "displacement rank" in out


@pytest.mark.slow
def test_multichannel_prediction(capsys):
    _run("multichannel_prediction.py")
    out = capsys.readouterr().out
    assert "agree: True" in out


@pytest.mark.slow
def test_t3d_distribution_study(capsys):
    _run("t3d_distribution_study.py")
    out = capsys.readouterr().out
    assert "Experiment 1" in out


@pytest.mark.slow
def test_blocksize_tradeoff(capsys):
    _run("blocksize_tradeoff.py")
    out = capsys.readouterr().out
    assert "measured optimum" in out


@pytest.mark.slow
def test_gaussian_likelihood(capsys):
    _run("gaussian_likelihood.py")
    out = capsys.readouterr().out
    assert "maximum-likelihood estimate" in out


def test_channel_major(capsys):
    _run("channel_major.py")
    out = capsys.readouterr().out
    assert "after the perfect shuffle it is: True" in out
    assert "prediction error variance" in out


@pytest.mark.slow
def test_autotune(capsys):
    _run("autotune.py")
    out = capsys.readouterr().out
    assert "tuner pick" in out
    assert "spot check" in out
