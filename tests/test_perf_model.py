"""Tests for the Hockney performance models and machine
parameterizations."""

import numpy as np
import pytest

from repro.blas.cray import (
    T3DNetworkParameters,
    cray_ymp_model,
    t3d_node_model,
)
from repro.blas.empirical import _fit_hockney, measure_host_model
from repro.blas.perf_model import BlasPerformanceModel, HockneyRate
from repro.core.flops import PrimitiveCall
from repro.errors import ShapeError


class TestHockney:
    def test_rate_monotone_in_length(self):
        h = HockneyRate(r_inf=100e6, n_half=50)
        rates = [h.rate(ell) for ell in (1, 4, 16, 64, 256, 4096)]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_asymptote(self):
        h = HockneyRate(r_inf=100e6, n_half=10)
        assert h.rate(1e9) == pytest.approx(100e6, rel=1e-6)

    def test_half_performance_at_n_half(self):
        h = HockneyRate(r_inf=100e6, n_half=32)
        assert h.rate(32) == pytest.approx(50e6)

    def test_time(self):
        h = HockneyRate(r_inf=2.0, n_half=0)
        assert h.time(10, 100) == pytest.approx(5.0)

    def test_invalid_length(self):
        with pytest.raises(ShapeError):
            HockneyRate(1e6, 10).rate(0)


class TestBlasPerformanceModel:
    def _model(self):
        return BlasPerformanceModel(
            name="test",
            level1=HockneyRate(10e6, 10),
            level2=HockneyRate(20e6, 10),
            level3=HockneyRate(40e6, 10),
            call_latency=1e-6)

    def test_level_routing(self):
        m = self._model()
        t1 = m.time(PrimitiveCall("axpy", (100,)))
        t2 = m.time(PrimitiveCall("gemv", (100, 100)))
        t3 = m.time(PrimitiveCall("gemm", (100, 100, 100)))
        assert t1 > 0 and t2 > 0 and t3 > 0
        # same flops run faster at higher BLAS levels
        f = 2 * 100 * 100
        assert m.level3.time(f, 100) < m.level2.time(f, 100) < \
            m.level1.time(f, 100)

    def test_gemm_shape_sensitivity(self):
        # short-and-wide gemm must be slower per flop than cubic gemm
        m = self._model()
        cubic = PrimitiveCall("gemm", (64, 64, 64))
        wide = PrimitiveCall("gemm", (2, 64 * 64 * 16, 2))
        rate_cubic = cubic.flops / m.time(cubic)
        rate_wide = wide.flops / m.time(wide)
        assert rate_wide < rate_cubic

    def test_latency_floor(self):
        m = self._model()
        assert m.time(PrimitiveCall("dot", (1,))) >= 1e-6

    def test_time_many_and_mflops(self):
        m = self._model()
        calls = [PrimitiveCall("gemm", (32, 32, 32))] * 3
        assert m.time_many(calls) == pytest.approx(
            3 * m.time(calls[0]))
        assert m.achieved_mflops(calls) > 0

    def test_unknown_primitive(self):
        with pytest.raises(ShapeError):
            self._model().time(PrimitiveCall("quux", (1,)))

    def test_trsm_supported(self):
        assert self._model().time(PrimitiveCall("trsm", (8, 16))) > 0


class TestCrayModels:
    def test_ymp_favors_level3(self):
        m = cray_ymp_model()
        assert m.level3.r_inf > m.level2.r_inf > m.level1.r_inf

    def test_ymp_large_block_advantage(self):
        # the Figure-10 mechanism: gemm rate rises steeply with block size
        m = cray_ymp_model()
        c1 = PrimitiveCall("gemm", (1, 1000, 2))
        c16 = PrimitiveCall("gemm", (16, 1000, 32))
        r1 = c1.flops / m.time(c1)
        r16 = c16.flops / m.time(c16)
        assert r16 > 5 * r1

    def test_t3d_node_under_peak(self):
        m = t3d_node_model()
        assert m.level3.r_inf < 150e6  # Alpha 21064 peak

    def test_t3d_cache_line_effect(self):
        # rate(m=4) comfortably above rate(m=2): the Figure-9 mechanism
        m = t3d_node_model()
        assert m.level3.rate(4) > 1.2 * m.level3.rate(2)


class TestT3DNetwork:
    def test_put_time_components(self):
        net = T3DNetworkParameters(put_latency=1e-6, put_gap=0.5e-6,
                                   bandwidth=300e6)
        t1 = net.put_time(words=0, count=1)
        assert t1 == pytest.approx(1e-6)
        t2 = net.put_time(words=0, count=11)
        assert t2 == pytest.approx(1e-6 + 10 * 0.5e-6)
        t3 = net.put_time(words=300_000_000 // 8, count=1)
        assert t3 == pytest.approx(1.0 + 1e-6)

    def test_hops_scale_latency(self):
        net = T3DNetworkParameters()
        assert net.put_time(8, hops=4) > net.put_time(8, hops=1)

    def test_broadcast_log_scaling(self):
        net = T3DNetworkParameters()
        t16 = net.broadcast_time(100, 16)
        t256 = net.broadcast_time(100, 256)
        assert t256 == pytest.approx(2 * t16)
        assert net.broadcast_time(100, 1) == 0.0

    def test_barrier_log_scaling(self):
        net = T3DNetworkParameters()
        assert net.barrier_time(1) == 0.0
        assert net.barrier_time(64) == pytest.approx(
            6 * net.barrier_per_stage)


class TestEmpirical:
    def test_fit_hockney_recovers_parameters(self):
        truth = HockneyRate(r_inf=80e6, n_half=24)
        lengths = np.array([4.0, 8, 16, 32, 64, 256, 1024])
        rates = np.array([truth.rate(x) for x in lengths])
        fit = _fit_hockney(lengths, rates)
        assert fit.r_inf == pytest.approx(80e6, rel=0.05)
        assert fit.n_half == pytest.approx(24, rel=0.1)

    @pytest.mark.slow
    def test_measure_host_model(self):
        m = measure_host_model(quick=True)
        assert m.level1.r_inf > 0
        assert m.level3.r_inf > m.level1.r_inf * 0.1
        # the fitted model must price a call sensibly
        assert m.time(PrimitiveCall("gemm", (64, 64, 64))) > 0
