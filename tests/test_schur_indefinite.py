"""Tests for the extended (indefinite / singular-minor) Schur algorithm
(Section 8)."""

import numpy as np
import pytest

from repro.core.generator import indefinite_generator
from repro.core.schur_indefinite import (
    default_delta,
    schur_indefinite_factor,
)
from repro.errors import ShapeError, SingularMinorError
from repro.toeplitz import (
    SymmetricBlockToeplitz,
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
    singular_minor_toeplitz,
)
from tests.conftest import assert_upper_triangular


def _check(t, fact, tol=1e-8):
    d = t.dense()
    scale = max(np.linalg.norm(d), 1.0)
    recon = fact.reconstruct()
    assert np.max(np.abs(recon - d)) <= tol * scale
    assert_upper_triangular(fact.r, atol=tol * scale)
    assert np.all(np.diag(fact.r) > 0)


class TestIndefiniteNonsingular:
    @pytest.mark.parametrize("seed", range(6))
    def test_scalar_indefinite(self, seed):
        t = indefinite_toeplitz(11, seed=seed)
        fact = schur_indefinite_factor(t)
        if not fact.perturbed:
            _check(t, fact)

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_block_indefinite(self, m):
        t = indefinite_toeplitz(24 // m * m * 2, seed=m + 20).regroup(m)
        fact = schur_indefinite_factor(t)
        if not fact.perturbed:
            _check(t, fact)

    def test_interchanges_recorded(self):
        t = indefinite_toeplitz(12, seed=3)
        fact = schur_indefinite_factor(t)
        # A genuinely indefinite matrix must swap at least once.
        assert len(fact.interchanges) > 0

    def test_spd_matrix_no_swaps_no_perturbations(self):
        t = kms_toeplitz(16, 0.5)
        fact = schur_indefinite_factor(t)
        assert fact.interchanges == []
        assert fact.perturbations == []
        _check(t, fact, tol=1e-10)
        np.testing.assert_array_equal(fact.d, np.ones(16))

    def test_inertia_matches_eigenvalues(self):
        for seed in range(4):
            t = indefinite_toeplitz(10, seed=seed + 40)
            fact = schur_indefinite_factor(t)
            if fact.perturbed:
                continue
            eig = np.linalg.eigvalsh(t.dense())
            pos, neg = fact.inertia
            assert pos == int(np.sum(eig > 0))
            assert neg == int(np.sum(eig < 0))

    def test_logabsdet(self):
        t = indefinite_toeplitz(9, seed=8)
        fact = schur_indefinite_factor(t)
        if fact.perturbed:
            pytest.skip("perturbed factorization changes the determinant")
        sign, ref = np.linalg.slogdet(t.dense())
        logdet, s = fact.logabsdet()
        assert logdet == pytest.approx(ref, rel=1e-8)
        assert s == int(sign)

    def test_negative_definite(self):
        t = kms_toeplitz(8, 0.4).scaled(-1.0)
        fact = schur_indefinite_factor(t)
        _check(t, fact, tol=1e-10)
        np.testing.assert_array_equal(fact.d, -np.ones(8))


class TestSolve:
    def test_solve_indefinite(self, rng):
        t = indefinite_toeplitz(13, seed=5)
        fact = schur_indefinite_factor(t)
        if fact.perturbed:
            pytest.skip("draw hit a near-singular minor")
        b = rng.standard_normal(13)
        x = fact.solve(b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-6)

    def test_solve_multi_rhs(self, rng):
        t = indefinite_toeplitz(10, seed=6)
        fact = schur_indefinite_factor(t)
        if fact.perturbed:
            pytest.skip("draw hit a near-singular minor")
        b = rng.standard_normal((10, 4))
        x = fact.solve(b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-6)

    def test_solve_shape_mismatch(self):
        t = indefinite_toeplitz(8, seed=7)
        fact = schur_indefinite_factor(t)
        with pytest.raises(ShapeError):
            fact.solve(np.ones(5))


class TestSingularMinors:
    def test_without_perturb_raises(self, paper_matrix):
        with pytest.raises(SingularMinorError):
            schur_indefinite_factor(paper_matrix, perturb=False)

    def test_perturbation_event_recorded(self, paper_matrix):
        fact = schur_indefinite_factor(paper_matrix)
        assert len(fact.perturbations) == 1
        ev = fact.perturbations[0]
        assert ev.step == 1
        assert ev.norm_before == pytest.approx(0.0, abs=1e-12)
        assert abs(ev.norm_after) > 0

    def test_perturbed_reconstruction_error_order_delta(self, paper_matrix):
        # ‖δT‖/‖T‖ should be O(δ) = O(∛ε) ≈ 6e−6 (eq. 46).
        fact = schur_indefinite_factor(paper_matrix)
        d = paper_matrix.dense()
        err = np.max(np.abs(fact.reconstruct() - d)) / np.linalg.norm(d)
        delta = default_delta()
        assert 1e-2 * delta < err < 1e2 * delta

    def test_transformation_norm_blows_up_like_delta(self):
        # The reflector built from the perturbed pivot column
        # (1+δ/2, 1) is strongly amplified: ‖U‖ ≈ 2/√δ in our ±1-signature
        # convention (the paper's unit-diagonal LDLᵀ normalization prints
        # the equivalent ≈ 1/δ matrix U₍₂₎; the total amplification of the
        # two conventions agrees).
        from repro.core.hyperbolic import reflector_annihilating
        from repro.core.signature import signature_vector
        delta = 1e-5
        u = np.array([1.0 * (1 + delta / 2), 1.0])
        w = signature_vector([1, -1])
        refl, _ = reflector_annihilating(u, w, 0)
        norm = np.linalg.norm(refl.matrix(), 2)
        assert 0.1 / np.sqrt(delta) < norm < 100 / delta

    def test_generator_amplified_after_perturbation(self, paper_matrix):
        # Section 8.2: the next generator's norm is amplified by the
        # large transformation — R carries entries ≫ ‖T‖.
        fact = schur_indefinite_factor(paper_matrix)
        assert np.max(np.abs(fact.r)) > 100.0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_singular_minor_family(self, seed):
        t = singular_minor_toeplitz(9, minor=2, seed=seed)
        fact = schur_indefinite_factor(t)
        assert fact.perturbed
        # factorization reconstructs a nearby matrix
        err = np.max(np.abs(fact.reconstruct() - t.dense()))
        assert err < 1e-3

    def test_custom_delta(self, paper_matrix):
        fact = schur_indefinite_factor(paper_matrix, delta=1e-4)
        err = np.max(np.abs(fact.reconstruct() - paper_matrix.dense()))
        assert 1e-6 < err < 1e-2

    def test_default_delta_value(self):
        eps = np.finfo(np.float64).eps
        assert default_delta() == pytest.approx(eps ** (1 / 3))


class TestGeneratorInput:
    def test_accepts_prebuilt_generator(self):
        t = indefinite_toeplitz(10, seed=9)
        g = indefinite_generator(t)
        f1 = schur_indefinite_factor(g)
        f2 = schur_indefinite_factor(t)
        np.testing.assert_allclose(f1.r, f2.r, atol=1e-12)
        np.testing.assert_array_equal(f1.d, f2.d)


class TestPaperExampleDetailed:
    """The worked example of Section 8.2, reproduced quantitatively."""

    def test_generator_at_step_two(self, paper_matrix):
        # G₍₂₎ of the paper: rows (0, 1, 1, .5297, .6711, .0077) and
        # (0, 1, .5297, .6711, .0077, .3834) — our in-place layout holds
        # the unshifted equivalents.
        g = indefinite_generator(paper_matrix)
        np.testing.assert_allclose(
            g.gen[0], [1.0, 1.0, 0.5297, 0.6711, 0.0077, 0.3834])
        np.testing.assert_allclose(
            g.gen[1], [0.0, 1.0, 0.5297, 0.6711, 0.0077, 0.3834])

    def test_pivot_norm_zero_at_step_two(self, paper_matrix):
        # the stacked pivot column (1, 1) has zero hyperbolic norm
        g = indefinite_generator(paper_matrix)
        u = np.array([g.gen[0, 1], g.gen[1, 1]])
        h = u[0] ** 2 - u[1] ** 2
        assert h == pytest.approx(0.0, abs=1e-14)

    def test_delta_T_times_T_inverse_small(self, paper_matrix):
        # paper: ‖δT·T⁻¹‖ ≈ 2.9e−5 with δ ≈ 1e−5
        fact = schur_indefinite_factor(paper_matrix, delta=1e-5)
        d = paper_matrix.dense()
        delta_t = fact.reconstruct() - d
        gamma = np.linalg.norm(delta_t @ np.linalg.inv(d), 2)
        assert 1e-7 < gamma < 1e-3


class TestTransformNormDiagnostics:
    def test_perturbation_norm_matches_analysis(self):
        # §8.2: the transformation after a δ-perturbation has norm
        # ≈ 2/√δ in our convention.
        from repro.toeplitz import paper_example_matrix
        delta = 1e-5
        fact = schur_indefinite_factor(paper_example_matrix(),
                                       delta=delta)
        expected = 2.0 / np.sqrt(delta)
        assert 0.5 * expected < fact.max_transform_norm < 2.0 * expected
        # the perturbation step carries the big transformation
        step = fact.perturbations[0].step
        assert fact.transform_norms[step - 1] == fact.max_transform_norm

    def test_spd_norms_modest(self):
        fact = schur_indefinite_factor(kms_toeplitz(16, 0.5))
        assert fact.max_transform_norm < 50.0
        assert len(fact.transform_norms) == 15

    def test_norms_recorded_per_step(self):
        t = indefinite_toeplitz(9, seed=21)
        fact = schur_indefinite_factor(t)
        assert len(fact.transform_norms) == 8
        assert all(v >= 1.0 for v in fact.transform_norms)
