"""Tests for matrix serialization."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.toeplitz import (
    BlockToeplitz,
    ar_block_toeplitz,
    kms_toeplitz,
    load_matrix,
    save_matrix,
)


class TestRoundTrip:
    def test_symmetric(self, tmp_path):
        t = ar_block_toeplitz(7, 3, seed=1)
        path = str(tmp_path / "t.npz")
        save_matrix(path, t)
        t2 = load_matrix(path)
        np.testing.assert_array_equal(np.asarray(t2.top_blocks),
                                      np.asarray(t.top_blocks))
        assert t2.block_size == 3

    def test_general(self, tmp_path):
        rng = np.random.default_rng(2)
        col = [rng.standard_normal((2, 2)) for _ in range(4)]
        row = [col[0]] + [rng.standard_normal((2, 2)) for _ in range(3)]
        t = BlockToeplitz(col, row)
        path = str(tmp_path / "g.npz")
        save_matrix(path, t)
        t2 = load_matrix(path)
        np.testing.assert_array_equal(t2.dense(), t.dense())

    def test_scalar(self, tmp_path):
        t = kms_toeplitz(16, 0.5)
        path = str(tmp_path / "s.npz")
        save_matrix(path, t)
        np.testing.assert_array_equal(load_matrix(path).dense(),
                                      t.dense())

    def test_factor_solve_after_reload(self, tmp_path, rng):
        from repro.core.solve import cholesky
        t = ar_block_toeplitz(6, 2, seed=3)
        path = str(tmp_path / "t.npz")
        save_matrix(path, t)
        t2 = load_matrix(path)
        b = rng.standard_normal(12)
        np.testing.assert_allclose(cholesky(t2).solve(b),
                                   cholesky(t).solve(b), atol=1e-12)


class TestValidation:
    def test_wrong_type(self, tmp_path):
        with pytest.raises(ShapeError):
            save_matrix(str(tmp_path / "x.npz"), np.eye(3))

    def test_not_a_repro_file(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.eye(3))
        with pytest.raises(ShapeError):
            load_matrix(str(path))
