"""Tests for the distributed triangular solve."""

import numpy as np
import pytest

from repro.core.schur_spd import schur_spd_factor
from repro.errors import DistributionError
from repro.machine.ops import Reduce
from repro.machine.simulator import Machine
from repro.parallel import simulate_solve
from repro.toeplitz import ar_block_toeplitz, kms_toeplitz


class TestReduceOp:
    def test_sum_to_root(self):
        def prog(ctx):
            got = yield Reduce(root=0,
                               payload=np.full(2, float(ctx.rank + 1)),
                               words=2)
            return None if got is None else got.tolist()

        rep = Machine(3).run(prog)
        assert rep.results[0] == [6.0, 6.0]
        assert rep.results[1] is None and rep.results[2] is None

    def test_none_payloads_are_zero(self):
        def prog(ctx):
            payload = np.ones(2) if ctx.rank == 1 else None
            got = yield Reduce(root=1, payload=payload, words=2)
            return None if got is None else got.tolist()

        rep = Machine(3).run(prog)
        assert rep.results[1] == [1.0, 1.0]

    def test_root_disagreement(self):
        from repro.errors import DeadlockError

        def prog(ctx):
            yield Reduce(root=ctx.rank, payload=np.ones(1), words=1)

        with pytest.raises(DeadlockError):
            Machine(2).run(prog)

    def test_reduce_charges_time(self):
        def prog(ctx):
            yield Reduce(root=0, payload=np.ones(4), words=4)
            return None

        rep = Machine(4).run(prog)
        assert rep.makespan > 0
        assert "reduce" in rep.total_by_category()


class TestDistributedSolve:
    @pytest.mark.parametrize("nproc,bdist", [(1, 1), (2, 1), (4, 1),
                                             (3, 2), (4, 4)])
    def test_matches_serial(self, nproc, bdist, rng):
        t = ar_block_toeplitz(9, 3, seed=nproc * 10 + int(bdist))
        b = rng.standard_normal(t.order)
        x, _run, _rep = simulate_solve(t, b, nproc=nproc, bdist=bdist)
        ref = schur_spd_factor(t).solve(b)
        np.testing.assert_allclose(x, ref, atol=1e-9)

    def test_scalar_problem(self, rng):
        t = kms_toeplitz(40, 0.6)
        b = rng.standard_normal(40)
        x, _run, _rep = simulate_solve(t, b, nproc=5)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_residual_small(self, rng):
        t = ar_block_toeplitz(12, 2, seed=3)
        b = rng.standard_normal(24)
        x, _, _ = simulate_solve(t, b, nproc=4)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_reports_and_times(self, rng):
        t = ar_block_toeplitz(8, 2, seed=4)
        b = rng.standard_normal(16)
        x, frun, srep = simulate_solve(t, b, nproc=4)
        assert frun.time > 0
        assert srep.makespan > 0
        # the solve is far cheaper than the factorization
        assert srep.makespan < frun.time

    def test_spread_layout_rejected(self, rng):
        t = ar_block_toeplitz(8, 2, seed=5)
        with pytest.raises(DistributionError):
            simulate_solve(t, np.ones(16), nproc=4, bdist=0.5)

    def test_rhs_shape(self):
        t = ar_block_toeplitz(6, 2, seed=6)
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            simulate_solve(t, np.ones(5), nproc=2)
