"""Tests for the solver engine: plan/execute, cache, operator protocol."""

import threading

import numpy as np
import pytest

import repro.engine as engine
from repro.engine import (
    FactorizationCache,
    MachineSpec,
    SolverPlan,
    StructuredOperator,
    set_default_cache,
)
from repro.errors import InvalidOptionError, ShapeError
from repro.toeplitz import (
    BlockToeplitz,
    SymmetricToeplitzBlock,
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    singular_minor_toeplitz,
)
from repro.toeplitz.convolution import ConvolutionOperator


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Give every test its own default cache (and restore afterwards)."""
    previous = set_default_cache(FactorizationCache())
    yield
    set_default_cache(previous)


def _nonsymmetric(p=6, m=2, seed=11):
    r = np.random.default_rng(seed)
    col = [r.standard_normal((m, m)) + 3 * np.eye(m) for _ in range(p)]
    row = [col[0]] + [r.standard_normal((m, m)) for _ in range(p - 1)]
    return BlockToeplitz(col, row)


# ----------------------------------------------------------------------
# Operator protocol
# ----------------------------------------------------------------------
class TestOperatorProtocol:
    def test_implementers(self):
        gammas = np.zeros((3, 2, 2))
        gammas[0] = 4 * np.eye(2)
        gammas[1] = 0.3 * np.eye(2)
        ops = [
            kms_toeplitz(8, 0.5),
            _nonsymmetric(),
            SymmetricToeplitzBlock.from_cross_covariances(gammas),
            ConvolutionOperator(np.array([1.0, 0.5, 0.25]), 12),
        ]
        for op in ops:
            assert isinstance(op, StructuredOperator)
            assert isinstance(op.fingerprint(), str)
            assert op.assemble().shape == op.shape

    def test_fingerprint_stable_across_copies(self):
        a = kms_toeplitz(16, 0.5)
        b = kms_toeplitz(16, 0.5)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_content_sensitive(self):
        assert (kms_toeplitz(16, 0.5).fingerprint()
                != kms_toeplitz(16, 0.6).fingerprint())
        assert (kms_toeplitz(16, 0.5).fingerprint()
                != kms_toeplitz(32, 0.5).fingerprint())

    def test_fingerprint_structure_tagged(self):
        # same numeric content, different structure ⇒ different hash
        t = ar_block_toeplitz(4, 2, seed=0)
        bt = BlockToeplitz(list(t.top_blocks),
                           [t.top_blocks[0]] +
                           [b.T for b in t.top_blocks[1:]])
        assert t.fingerprint() != bt.fingerprint()

    def test_toeplitz_block_matvec_matches_dense(self):
        gammas = np.zeros((4, 3, 3))
        gammas[0] = 5 * np.eye(3)
        gammas[1] = 0.2 * np.ones((3, 3))
        tb = SymmetricToeplitzBlock.from_cross_covariances(gammas)
        x = np.arange(tb.order, dtype=float)
        np.testing.assert_allclose(tb.matvec(x), tb.dense() @ x,
                                   atol=1e-12)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
class TestPlanSelection:
    def test_spd_workload_plans_schur_with_fallback(self):
        pl = engine.plan(kms_toeplitz(32, 0.5))
        assert pl.algorithm == "spd-schur"
        assert pl.fallback == "indefinite+refine"

    def test_singular_minor_plans_indefinite(self):
        pl = engine.plan(singular_minor_toeplitz(24, seed=3))
        assert pl.algorithm == "indefinite+refine"
        assert pl.fallback is None

    def test_indefinite_workload_plans_indefinite(self):
        pl = engine.plan(indefinite_toeplitz(24, seed=5))
        assert pl.algorithm == "indefinite+refine"

    def test_nonsymmetric_plans_gko(self):
        pl = engine.plan(_nonsymmetric())
        assert pl.algorithm == "gko"

    def test_assume_overrides_probe(self):
        pl = engine.plan(kms_toeplitz(16, 0.5), assume="indefinite")
        assert pl.algorithm == "indefinite+refine"
        pl = engine.plan(singular_minor_toeplitz(16, seed=1),
                         assume="spd")
        assert pl.algorithm == "spd-schur"
        assert pl.fallback is None

    def test_probe_off_arms_fallback(self):
        pl = engine.plan(singular_minor_toeplitz(16, seed=1), probe=False)
        assert pl.algorithm == "spd-schur"
        assert pl.fallback == "indefinite+refine"

    def test_explicit_algorithm(self):
        for name in ("levinson", "pcg", "dense-chol"):
            assert engine.plan(kms_toeplitz(8, 0.5),
                               algorithm=name).algorithm == name

    def test_invalid_options(self):
        t = kms_toeplitz(8, 0.5)
        with pytest.raises(InvalidOptionError):
            engine.plan(t, assume="maybe")
        with pytest.raises(InvalidOptionError):
            engine.plan(t, algorithm="does-not-exist")
        with pytest.raises(InvalidOptionError):
            engine.plan(t, representation="nope")
        with pytest.raises(InvalidOptionError):
            engine.plan(np.eye(4))
        with pytest.raises(ShapeError):
            engine.plan(t, block_size=3)  # 3 does not divide 8

    def test_machine_spec_serial_tunes_ms(self):
        from repro.tuning import tune
        pl = engine.plan(kms_toeplitz(256, 0.5),
                         machine=MachineSpec())
        res = tune(256, 1)
        assert pl.block_size == res.block_size
        assert pl.representation == res.representation
        assert pl.predicted_seconds == res.predicted_seconds

    def test_machine_spec_parallel_picks_distribution(self):
        pl = engine.plan(kms_toeplitz(256, 0.5),
                         machine=MachineSpec(nproc=4))
        assert pl.nproc == 4
        assert pl.distribution_b is not None
        assert pl.distribution_version in (1, 2, 3)


class TestPlanObject:
    def test_describe(self):
        pl = engine.plan(kms_toeplitz(16, 0.5), panel=2)
        text = pl.describe()
        assert "spd-schur" in text
        assert "fallback" in text
        assert "panel" in text
        assert pl.fingerprint[:12] in text

    def test_round_trip(self):
        t = kms_toeplitz(16, 0.5)
        pl = engine.plan(t, panel=2, delta=1e-5)
        back = SolverPlan.from_dict(pl.to_dict(), operator=t)
        assert back == pl
        assert back.operator is t

    def test_plans_are_immutable(self):
        pl = engine.plan(kms_toeplitz(8, 0.5))
        with pytest.raises(AttributeError):
            pl.algorithm = "gko"

    def test_with_changes_cache_key(self):
        pl = engine.plan(kms_toeplitz(8, 0.5))
        assert pl.with_(panel=2).cache_key() != pl.cache_key()
        assert pl.with_(use_cache=False).cache_key() == pl.cache_key()

    def test_toeplitz_block_normalized_with_note(self):
        gammas = np.zeros((3, 2, 2))
        gammas[0] = 4 * np.eye(2)
        gammas[1] = 0.3 * np.eye(2)
        tb = SymmetricToeplitzBlock.from_cross_covariances(gammas)
        pl = engine.plan(tb)
        assert "shuffled" in pl.note
        b = np.ones(tb.order)
        x = engine.execute(pl, b).x
        np.testing.assert_allclose(
            tb.to_block_toeplitz().dense() @ x, b, atol=1e-8)

    def test_convolution_normalized_with_note(self):
        op = ConvolutionOperator(np.array([1.0, 0.5, 0.25]), 12)
        pl = engine.plan(op)
        assert "normal equations" in pl.note
        assert pl.order == op.normal_matrix().order


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class TestExecute:
    def test_each_algorithm_solves(self, rng):
        t = kms_toeplitz(24, 0.5)
        d = t.dense()
        b = rng.standard_normal(t.order)
        for name in ("spd-schur", "indefinite+refine", "levinson",
                     "pcg", "dense-chol"):
            res = engine.solve(t, b, algorithm=name)
            assert res.algorithm == name
            np.testing.assert_allclose(d @ res.x, b, atol=1e-7,
                                       err_msg=name)

    def test_gko_solves_nonsymmetric(self, rng):
        t = _nonsymmetric()
        b = rng.standard_normal(t.order)
        res = engine.solve(t, b)
        assert res.algorithm == "gko"
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-8)

    def test_fallback_on_breakdown(self, rng):
        t = singular_minor_toeplitz(24, seed=7)
        b = rng.standard_normal(t.order)
        pl = engine.plan(t, probe=False)     # plans SPD, arms fallback
        res = engine.execute(pl, b)
        assert res.fallback_used
        assert res.algorithm == "indefinite+refine"
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-7)

    def test_solve_kwargs_reach_algorithm(self, rng):
        t = singular_minor_toeplitz(24, seed=7)
        b = rng.standard_normal(t.order)
        pl = engine.plan(t)
        res = engine.execute(pl, b, keep_history=True, max_iter=5)
        assert res.detail.history  # refinement recorded its trace

    def test_factor_requires_factor_stage(self):
        pl = engine.plan(kms_toeplitz(8, 0.5), algorithm="levinson")
        with pytest.raises(InvalidOptionError):
            engine.factor(pl)

    def test_detached_plan_rejected(self):
        t = kms_toeplitz(8, 0.5)
        pl = engine.plan(t)
        detached = SolverPlan.from_dict(pl.to_dict())
        with pytest.raises(InvalidOptionError):
            engine.execute(detached, np.ones(8))

    def test_registry_lists_all_entry_points(self):
        names = set(engine.algorithms())
        assert {"spd-schur", "indefinite+refine", "gko", "levinson",
                "pcg", "dense-chol"} <= names


class TestOptionForwarding:
    def test_panel_and_in_place_forwarded(self, rng):
        from repro.core.solve import solve
        t = ar_block_toeplitz(6, 4, seed=2)
        b = rng.standard_normal(t.order)
        x = solve(t, b, panel=2, in_place=False)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_block_size_regroups(self, rng):
        t = kms_toeplitz(32, 0.5)
        b = rng.standard_normal(t.order)
        pl = engine.plan(t, block_size=4)
        res = engine.execute(pl, b)
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-8)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestCache:
    def test_hit_miss_counters(self, rng):
        cache = FactorizationCache()
        t = kms_toeplitz(32, 0.5)
        pl = engine.plan(t)
        b = rng.standard_normal(t.order)
        r1 = engine.execute(pl, b, cache=cache)
        r2 = engine.execute(pl, b, cache=cache)
        assert (r1.cache_hit, r2.cache_hit) == (False, True)
        s = cache.stats()
        assert (s.hits, s.misses, s.entries) == (1, 1, 1)
        assert s.current_bytes > 0
        assert s.hit_rate == 0.5
        np.testing.assert_allclose(r1.x, r2.x)

    def test_distinct_plans_never_collide(self):
        cache = FactorizationCache()
        t = kms_toeplitz(16, 0.5)
        b = np.ones(t.order)
        engine.execute(engine.plan(t), b, cache=cache)
        engine.execute(engine.plan(t, panel=2), b, cache=cache)
        engine.execute(engine.plan(t, representation="yty"), b,
                       cache=cache)
        assert cache.stats().misses == 3
        assert len(cache) == 3

    def test_lru_eviction(self):
        cache = FactorizationCache(max_entries=1)
        b8 = np.ones(8)
        pl1 = engine.plan(kms_toeplitz(8, 0.5))
        pl2 = engine.plan(kms_toeplitz(8, 0.6))
        engine.execute(pl1, b8, cache=cache)
        engine.execute(pl2, b8, cache=cache)       # evicts pl1's entry
        assert cache.stats().evictions == 1
        assert pl2.cache_key() in cache
        assert pl1.cache_key() not in cache
        res = engine.execute(pl1, b8, cache=cache)  # rebuilt
        assert not res.cache_hit

    def test_byte_budget_eviction(self):
        cache = FactorizationCache(max_bytes=10_000)
        n, b = 32, np.ones(32)
        engine.execute(engine.plan(kms_toeplitz(n, 0.5)), b, cache=cache)
        engine.execute(engine.plan(kms_toeplitz(n, 0.6)), b, cache=cache)
        s = cache.stats()
        assert s.current_bytes <= 10_000
        assert s.evictions >= 1

    def test_oversized_value_not_cached(self):
        cache = FactorizationCache(max_bytes=100)
        cache.put(("k",), np.zeros(1000))
        assert ("k",) not in cache
        assert len(cache) == 0

    def test_nbytes_counts_nested_payloads(self):
        """Arrays buried arbitrarily deep must count toward the byte
        budget (a depth cutoff used to blind eviction to them)."""
        from repro.engine.cache import _estimate_nbytes

        class Inner:
            def __init__(self):
                self.big = np.zeros(1000)          # 8000 bytes

        class Run:
            def __init__(self):
                self.workers = [{"payload": {"arrays": [Inner()]}}]

        class Fact:
            def __init__(self):
                self.r = np.zeros((10, 10))        # 800 bytes
                self.run = Run()

        est = _estimate_nbytes(Fact())
        assert est >= 8800
        # shared references count once, and cycles terminate
        shared = np.zeros(500)
        cyclic = Fact()
        cyclic.a, cyclic.b = shared, shared
        cyclic.me = cyclic
        est2 = _estimate_nbytes(cyclic)
        assert 8800 + 4000 <= est2 < 8800 + 2 * 4000 + 1000

    def test_oversized_nested_value_not_cached(self):
        """The byte gate sees nested arrays, so a factorization whose
        bulk hides below one container level is still rejected."""
        cache = FactorizationCache(max_bytes=1000)

        class Fact:
            def __init__(self):
                self.meta = {"run": {"workers": [np.zeros(1000)]}}

        cache.put(("k",), Fact())
        assert ("k",) not in cache

    def test_clear_and_reset(self):
        cache = FactorizationCache()
        cache.put(("k",), np.zeros(4))
        assert cache.get(("k",)) is not None
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1
        cache.reset_stats()
        assert cache.stats().hits == 0

    def test_use_cache_false_bypasses_default(self, rng):
        t = kms_toeplitz(16, 0.5)
        b = rng.standard_normal(t.order)
        pl = engine.plan(t, use_cache=False)
        engine.execute(pl, b)
        engine.execute(pl, b)
        s = engine.default_cache().stats()
        assert (s.hits, s.misses, s.entries) == (0, 0, 0)

    def test_default_cache_used_otherwise(self, rng):
        t = kms_toeplitz(16, 0.5)
        b = rng.standard_normal(t.order)
        engine.execute(engine.plan(t), b)
        res = engine.execute(engine.plan(t), b)
        assert res.cache_hit
        assert engine.default_cache().stats().hits == 1

    def test_two_thread_smoke(self, rng):
        cache = FactorizationCache()
        t = kms_toeplitz(48, 0.5)
        d = t.dense()
        pl = engine.plan(t)
        engine.execute(pl, np.ones(t.order), cache=cache)  # warm
        errors = []

        def worker(seed):
            r = np.random.default_rng(seed)
            for _ in range(5):
                b = r.standard_normal(t.order)
                res = engine.execute(pl, b, cache=cache)
                if not np.allclose(d @ res.x, b, atol=1e-7):
                    errors.append("bad residual")

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in (1, 2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        s = cache.stats()
        assert s.misses == 1            # only the warm-up factored
        assert s.hits == 10


# ----------------------------------------------------------------------
# Planner backend (tuning) integration
# ----------------------------------------------------------------------
class TestTuningBackend:
    def test_tuning_result_to_plan(self, rng):
        from repro.tuning import tune
        t = kms_toeplitz(128, 0.5)
        res = tune(t.order, t.block_size)
        pl = res.to_plan(t)
        assert pl.block_size == res.block_size
        assert pl.representation == res.representation
        b = rng.standard_normal(t.order)
        x = engine.execute(pl, b).x
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-7)

    def test_parallel_tuning_plan_drives_simulator(self):
        from repro.parallel import simulate_factorization
        from repro.tuning import tune
        t = kms_toeplitz(64, 0.5).regroup(4)
        res = tune(t.order, t.block_size, nproc=4)
        pl = res.to_plan(t)
        run = simulate_factorization(t, plan=pl)
        assert run.representation == pl.representation
        np.testing.assert_allclose(run.r.T @ run.r, t.dense(),
                                   atol=1e-8)
