"""Tests for the benchmark history / regression-diff harness."""

import json
import os

import pytest

from repro.bench import history
from repro.cli import main


@pytest.fixture
def results_dir(tmp_path):
    """A results directory with two benchmark artifacts."""
    d = str(tmp_path / "results")
    os.makedirs(d)
    with open(os.path.join(d, "BENCH_alpha.json"), "w") as fh:
        json.dump({
            "timings": {"speedup": 8.0, "cache_on_seconds": 0.05},
            "cache": {"hits": 9, "misses": 1, "evictions": 0},
        }, fh)
    with open(os.path.join(d, "BENCH_beta.json"), "w") as fh:
        json.dump({
            "cells": [
                {"nproc": 1, "speedup_vs_serial": 0.9,
                 "shift_words_total": 100},
                {"nproc": 2, "speedup_vs_serial": 0.5,
                 "shift_words_total": 200},
            ],
        }, fh)
    return d


def _write_metric(d, bench, path_keys, value):
    path = os.path.join(d, f"BENCH_{bench}.json")
    with open(path) as fh:
        data = json.load(fh)
    node = data
    for key in path_keys[:-1]:
        node = node[key]
    node[path_keys[-1]] = value
    with open(path, "w") as fh:
        json.dump(data, fh)


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = history.flatten_metrics({
            "a": {"b": 1, "c": [10.0, {"d": 2}]},
            "skip": "text", "flag": True,
        })
        assert flat == {"a.b": 1.0, "a.c.0": 10.0, "a.c.1.d": 2.0}

    def test_direction_rules(self):
        assert history._direction("timings.speedup") == "higher"
        assert history._direction("cache.hits") == "higher"
        assert history._direction("cache.misses") == "lower"
        assert history._direction("cells.1.shift_words_total") == "lower"
        # wall-clock and flops are informational, never gated
        assert history._direction("timings.cache_on_seconds") == "info"
        assert history._direction("model_flops_factorization") == "info"
        assert history._direction(
            "observability.disabled_overhead_pct") == "info"


class TestIngestDiff:
    def test_round_trip_no_regression(self, results_dir):
        results = history.load_results(results_dir)
        assert set(results) == {"alpha", "beta"}
        path = history.history_path(results_dir)
        count = history.append_history(results, "r1", path)
        assert count == len(history.load_baseline(path))
        entries = history.diff_results(results,
                                       history.load_baseline(path))
        assert entries
        assert not any(e.regression for e in entries)

    def test_injected_20pct_regression_flags(self, results_dir):
        results = history.load_results(results_dir)
        path = history.history_path(results_dir)
        history.append_history(results, "r1", path)
        _write_metric(results_dir, "alpha", ["timings", "speedup"],
                      8.0 * 0.8)
        entries = history.diff_results(
            history.load_results(results_dir),
            history.load_baseline(path))
        bad = [e for e in entries if e.regression]
        assert [e.label for e in bad] == ["alpha:timings.speedup"]
        assert bad[0].change == pytest.approx(-0.2)

    def test_lower_better_regression(self, results_dir):
        results = history.load_results(results_dir)
        path = history.history_path(results_dir)
        history.append_history(results, "r1", path)
        _write_metric(results_dir, "alpha", ["cache", "misses"], 2)
        _write_metric(results_dir, "alpha", ["cache", "evictions"], 1)
        entries = history.diff_results(
            history.load_results(results_dir),
            history.load_baseline(path))
        bad = sorted(e.metric for e in entries if e.regression)
        # misses doubled; evictions rose from a zero baseline
        assert bad == ["cache.evictions", "cache.misses"]

    def test_seconds_never_gate(self, results_dir):
        results = history.load_results(results_dir)
        path = history.history_path(results_dir)
        history.append_history(results, "r1", path)
        _write_metric(results_dir, "alpha",
                      ["timings", "cache_on_seconds"], 5.0)
        entries = history.diff_results(
            history.load_results(results_dir),
            history.load_baseline(path))
        assert not any(e.regression for e in entries)

    def test_latest_run_wins(self, results_dir):
        results = history.load_results(results_dir)
        path = history.history_path(results_dir)
        history.append_history(results, "r1", path)
        _write_metric(results_dir, "alpha", ["timings", "speedup"], 4.0)
        newer = history.load_results(results_dir)
        history.append_history(newer, "r2", path)
        baseline = history.load_baseline(path)
        assert baseline[("alpha", "timings.speedup")] == 4.0
        # against the r2 baseline the slower speedup is no regression
        entries = history.diff_results(newer, baseline)
        assert not any(e.regression for e in entries)

    def test_new_metrics_are_not_regressions(self, results_dir):
        results = history.load_results(results_dir)
        path = history.history_path(results_dir)
        history.append_history(results, "r1", path)
        _write_metric(results_dir, "alpha", ["brand_new_speedup"], 0.1)
        entries = history.diff_results(
            history.load_results(results_dir),
            history.load_baseline(path))
        assert not any(e.metric == "brand_new_speedup" for e in entries)

    def test_threshold_override(self, results_dir):
        results = history.load_results(results_dir)
        path = history.history_path(results_dir)
        history.append_history(results, "r1", path)
        _write_metric(results_dir, "alpha", ["timings", "speedup"], 7.5)
        current = history.load_results(results_dir)
        baseline = history.load_baseline(path)
        loose = history.diff_results(current, baseline, threshold=0.15)
        tight = history.diff_results(current, baseline, threshold=0.01)
        assert not any(e.regression for e in loose)
        assert any(e.regression for e in tight)

    def test_bad_history_version_rejected(self, results_dir):
        path = history.history_path(results_dir)
        with open(path, "w") as fh:
            fh.write(json.dumps({"v": 99, "run": "x", "bench": "a",
                                 "metric": "m", "value": 1.0}) + "\n")
        with pytest.raises(ValueError, match="version"):
            history.load_baseline(path)


class TestCli:
    def test_ingest_then_diff_exit_codes(self, results_dir, capsys):
        assert main(["bench", "ingest", "--results-dir", results_dir,
                     "--label", "base"]) == 0
        assert main(["bench", "diff", "--results-dir",
                     results_dir]) == 0
        _write_metric(results_dir, "alpha", ["timings", "speedup"],
                      8.0 * 0.8)
        assert main(["bench", "diff", "--results-dir",
                     results_dir]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "alpha:timings.speedup" in out

    def test_diff_all_shows_info_metrics(self, results_dir, capsys):
        main(["bench", "ingest", "--results-dir", results_dir,
              "--label", "base"])
        assert main(["bench", "diff", "--results-dir", results_dir,
                     "--all"]) == 0
        out = capsys.readouterr().out
        assert "cache_on_seconds" in out

    def test_ingest_empty_dir_fails(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        assert main(["bench", "ingest", "--results-dir", empty]) == 1

    def test_committed_baseline_passes(self):
        """The repo's own BENCH_history.jsonl must accept the committed
        BENCH_*.json artifacts (the CI bench-diff step)."""
        repo_results = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "results")
        if not os.path.exists(os.path.join(repo_results,
                                           "BENCH_history.jsonl")):
            pytest.skip("no committed baseline")
        assert main(["bench", "diff", "--results-dir",
                     repo_results]) == 0
