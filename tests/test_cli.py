"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.toeplitz import kms_toeplitz, paper_example_matrix


@pytest.fixture
def first_row_file(tmp_path):
    path = tmp_path / "row.npy"
    np.save(path, kms_toeplitz(16, 0.6).first_scalar_row())
    return str(path)


@pytest.fixture
def dense_file(tmp_path):
    path = tmp_path / "dense.npy"
    np.save(path, kms_toeplitz(12, 0.5).dense())
    return str(path)


@pytest.fixture
def rhs_file(tmp_path):
    path = tmp_path / "b.npy"
    np.save(path, np.ones(16))
    return str(path)


class TestInfo:
    def test_first_row_input(self, first_row_file, capsys):
        assert main(["info", first_row_file]) == 0
        out = capsys.readouterr().out
        assert "order:" in out and "16" in out
        assert "positive definite" in out
        assert "displacement rank:  2" in out

    def test_dense_input(self, dense_file, capsys):
        assert main(["info", dense_file, "--block-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "block size:         3" in out

    def test_indefinite_detected(self, tmp_path, capsys):
        path = tmp_path / "p.npy"
        np.save(path, paper_example_matrix().first_scalar_row())
        assert main(["info", str(path)]) == 0
        assert "indefinite" in capsys.readouterr().out


class TestFactor:
    def test_spd(self, first_row_file, capsys, tmp_path):
        out_file = str(tmp_path / "fact.npz")
        assert main(["factor", first_row_file, "-o", out_file]) == 0
        out = capsys.readouterr().out
        assert "SPD Cholesky" in out
        with np.load(out_file) as data:
            r = data["r"]
        t = kms_toeplitz(16, 0.6)
        np.testing.assert_allclose(r.T @ r, t.dense(), atol=1e-9)

    def test_indefinite_path(self, tmp_path, capsys):
        path = tmp_path / "p.npy"
        np.save(path, paper_example_matrix().first_scalar_row())
        assert main(["factor", str(path)]) == 0
        out = capsys.readouterr().out
        assert "indefinite factorization" in out
        assert "perturbation" in out

    def test_representation_choice(self, first_row_file, capsys):
        assert main(["factor", first_row_file,
                     "--representation", "yty"]) == 0
        assert "yty" in capsys.readouterr().out


class TestSolve:
    @pytest.mark.parametrize("method", ["auto", "gko", "levinson"])
    def test_methods(self, first_row_file, rhs_file, tmp_path, capsys,
                     method):
        out_file = str(tmp_path / "x.npy")
        assert main(["solve", first_row_file, rhs_file,
                     "--method", method, "-o", out_file]) == 0
        x = np.load(out_file)
        t = kms_toeplitz(16, 0.6)
        np.testing.assert_allclose(t.dense() @ x, np.ones(16),
                                   atol=1e-7)

    def test_prints_solution_without_output(self, first_row_file,
                                            rhs_file, capsys):
        assert main(["solve", first_row_file, rhs_file]) == 0
        out = capsys.readouterr().out
        assert "x =" in out
        assert "‖T x − b‖₂" in out

    def test_singular_minor_system(self, tmp_path, capsys):
        mp = tmp_path / "p.npy"
        rp = tmp_path / "b.npy"
        t = paper_example_matrix()
        np.save(mp, t.first_scalar_row())
        np.save(rp, t.dense() @ np.ones(6))
        assert main(["solve", str(mp), str(rp)]) == 0
        assert "refinement" in capsys.readouterr().out


class TestProfile:
    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        import repro.obs as obs
        was = obs.enabled()
        yield
        obs.enable() if was else obs.disable()

    def test_solve_profile_prints_span_tree(self, first_row_file,
                                            rhs_file, capsys):
        assert main(["solve", first_row_file, rhs_file,
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine.execute" in out
        assert "factor" in out and "solve" in out
        assert "ms" in out
        assert "model_flops" in out
        assert "repro_engine_executions_total" in out

    def test_solve_trace_out_jsonl(self, first_row_file, rhs_file,
                                   tmp_path, capsys):
        import repro.obs as obs
        trace = str(tmp_path / "trace.jsonl")
        assert main(["solve", first_row_file, rhs_file,
                     "--trace-out", trace]) == 0
        records = obs.read_jsonl(trace)
        assert records[0]["name"] == "engine.execute"
        assert records[0]["source"] == "engine"
        assert all(r["v"] == obs.SCHEMA_VERSION for r in records)

    def test_factor_profile(self, tmp_path, capsys):
        # a matrix no other test factors, so the cache can't elide the
        # schur spans
        path = tmp_path / "row.npy"
        np.save(path, kms_toeplitz(20, 0.37).first_scalar_row())
        assert main(["factor", str(path), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine.factor" in out
        assert "schur.eliminate" in out

    def test_simulate_trace_out(self, first_row_file, tmp_path, capsys):
        import repro.obs as obs
        trace = str(tmp_path / "sim.jsonl")
        assert main(["simulate", first_row_file, "--nproc", "4",
                     "--trace-out", trace]) == 0
        records = obs.read_jsonl(trace)
        assert records and records[0]["source"] == "simulator"
        assert all(r["rank"] is not None for r in records)


class TestSimulate:
    def test_simulate(self, first_row_file, capsys):
        assert main(["simulate", first_row_file, "--nproc", "4"]) == 0
        out = capsys.readouterr().out
        assert "simulated T3D" in out
        assert "time to factor" in out

    def test_version3(self, tmp_path, capsys):
        path = tmp_path / "row.npy"
        np.save(path, kms_toeplitz(32, 0.5).first_scalar_row())
        assert main(["simulate", str(path), "--block-size", "4",
                     "--nproc", "4", "--b", "0.5"]) == 0
        assert "v3" in capsys.readouterr().out


class TestMisc:
    def test_bench_info(self, capsys):
        assert main(["bench-info"]) == 0
        out = capsys.readouterr().out
        assert "bench_fig6_exp1.py" in out
        assert "Figure 10" in out

    def test_missing_file_errors(self, capsys):
        assert main(["info", "/nonexistent/file.npy"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_matrix_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.npy"
        np.save(path, np.arange(12.0).reshape(3, 4))
        assert main(["info", str(path)]) == 1

    def test_txt_input(self, tmp_path, capsys):
        path = tmp_path / "row.txt"
        np.savetxt(path, kms_toeplitz(8, 0.4).first_scalar_row())
        assert main(["info", str(path)]) == 0

    def test_npz_input(self, tmp_path, capsys):
        path = tmp_path / "row.npz"
        np.savez(path, row=kms_toeplitz(8, 0.4).first_scalar_row())
        assert main(["info", str(path)]) == 0


class TestTuneCommand:
    def test_tune_serial(self, first_row_file, capsys):
        assert main(["tune", first_row_file]) == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out
        assert "m_s" in out

    def test_tune_parallel(self, tmp_path, capsys):
        path = tmp_path / "row.npy"
        np.save(path, kms_toeplitz(256, 0.5).first_scalar_row())
        assert main(["tune", str(path), "--block-size", "4",
                     "--nproc", "8"]) == 0
        out = capsys.readouterr().out
        assert "Version" in out
        assert "top distribution candidates:" in out
