"""Tests for the Version 1/2/3 data-distribution layouts."""

import pytest

from repro.errors import DistributionError
from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)


class TestBlockCyclic:
    def test_version1_ownership(self):
        lay = BlockCyclicLayout(nproc=4, group_size=1)
        assert lay.version == 1
        assert [lay.owner(j) for j in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_version2_ownership(self):
        lay = BlockCyclicLayout(nproc=3, group_size=2)
        assert lay.version == 2
        assert [lay.owner(j) for j in range(8)] == [0, 0, 1, 1, 2, 2, 0, 0]

    def test_blocks_partition(self):
        lay = BlockCyclicLayout(nproc=4, group_size=3)
        p = 26
        seen = []
        for r in range(4):
            mine = lay.blocks_of(r, p)
            assert mine == sorted(mine)
            seen.extend(mine)
        assert sorted(seen) == list(range(p))

    def test_shift_crossings_version1(self):
        lay = BlockCyclicLayout(nproc=4, group_size=1)
        # every consecutive pair crosses
        assert lay.shift_crossings(10, 0) == 9

    def test_shift_crossings_version2(self):
        lay = BlockCyclicLayout(nproc=4, group_size=4)
        # one crossing per group boundary
        assert lay.shift_crossings(16, 0) == 3

    def test_invalid_params(self):
        with pytest.raises(DistributionError):
            BlockCyclicLayout(nproc=0)
        with pytest.raises(DistributionError):
            BlockCyclicLayout(nproc=2, group_size=0)
        with pytest.raises(DistributionError):
            BlockCyclicLayout(nproc=2).owner(-1)


class TestSpread:
    def test_ownership_adjacent(self):
        lay = SpreadLayout(nproc=8, spread=2)
        assert lay.owner(0, 0) == 0
        assert lay.owner(0, 1) == 1
        assert lay.owner(1, 0) == 2
        assert lay.owner(4, 1) == 1  # wraps

    def test_chunks_partition(self):
        lay = SpreadLayout(nproc=6, spread=3)
        p = 7
        seen = []
        for r in range(6):
            mine = lay.chunks_of(r, p)
            assert mine == sorted(mine)
            seen.extend(mine)
        assert sorted(seen) == [(j, c) for j in range(p) for c in range(3)]

    def test_chunk_width(self):
        lay = SpreadLayout(nproc=4, spread=4)
        assert lay.chunk_width(8) == 2
        with pytest.raises(DistributionError):
            lay.chunk_width(6)

    def test_invalid_params(self):
        with pytest.raises(DistributionError):
            SpreadLayout(nproc=4, spread=0)
        with pytest.raises(DistributionError):
            SpreadLayout(nproc=4, spread=5)
        with pytest.raises(DistributionError):
            SpreadLayout(nproc=4, spread=2).owner(0, 2)


class TestMakeLayout:
    def test_b_one_is_version1(self):
        lay = make_layout(4, b=1)
        assert isinstance(lay, BlockCyclicLayout)
        assert lay.group_size == 1

    def test_b_integer_is_version2(self):
        lay = make_layout(4, b=8)
        assert isinstance(lay, BlockCyclicLayout)
        assert lay.group_size == 8

    def test_b_fraction_is_version3(self):
        lay = make_layout(8, b=0.25)
        assert isinstance(lay, SpreadLayout)
        assert lay.spread == 4

    def test_invalid_b(self):
        with pytest.raises(DistributionError):
            make_layout(4, b=1.5)
        with pytest.raises(DistributionError):
            make_layout(4, b=0.3)
