"""Grab-bag coverage for less-traveled paths."""

import numpy as np
import pytest

from repro.core.generator import spd_generator
from repro.core.schur_spd import schur_spd_factor
from repro.core.streaming import iter_r_block_rows
from repro.machine import Machine
from repro.machine.ops import Reduce
from repro.toeplitz import ar_block_toeplitz, kms_toeplitz


class TestStreamingGeneratorInput:
    def test_stream_from_prebuilt_generator(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        g = spd_generator(t)
        fact = schur_spd_factor(t)
        for i, row in iter_r_block_rows(g):
            np.testing.assert_allclose(
                row, fact.r[i * 2:(i + 1) * 2, i * 2:], atol=1e-11)

    def test_generator_not_consumed(self):
        t = kms_toeplitz(12, 0.5)
        g = spd_generator(t)
        snap = np.array(g.gen)
        list(iter_r_block_rows(g))
        np.testing.assert_array_equal(g.gen, snap)


class TestReduceTracing:
    def test_reduce_appears_in_trace(self):
        def prog(ctx):
            got = yield Reduce(root=0, payload=np.ones(2), words=2)
            return None if got is None else float(got.sum())

        rep = Machine(3, trace=True).run(prog)
        assert rep.results[0] == 6.0
        kinds = {e.kind for e in rep.trace.events}
        assert "reduce" in kinds


class TestAccumulatorGrowth:
    @pytest.mark.parametrize("rep", ["vy1", "vy2", "yty"])
    def test_growth_past_initial_capacity(self, rep):
        # initial buffer capacity is 4; m = 12 forces two doublings
        from repro.core.schur_spd import SchurOptions
        t = kms_toeplitz(48, 0.5).regroup(12)
        fact = schur_spd_factor(t, options=SchurOptions(
            representation=rep))
        np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                   atol=1e-9)

    @pytest.mark.parametrize("rep", ["vy1", "vy2", "yty"])
    def test_finished_factors_independent_of_buffers(self, rep):
        from repro.core.block_reflector import make_accumulator
        from repro.core.hyperbolic import HyperbolicHouseholder
        from repro.core.signature import signature_vector
        rng = np.random.default_rng(3)
        w = signature_vector([1, 1, -1, -1])
        acc = make_accumulator(rep, w)
        refls = []
        while len(refls) < 6:
            x = rng.standard_normal(4)
            if abs((w * x) @ x) > 0.3:
                refl = HyperbolicHouseholder(x, w)
                refls.append(refl)
                acc.append(refl)
        u = acc.finish()
        before = u.matrix().copy()
        # further appends must not corrupt the frozen product
        x = rng.standard_normal(4) + 2.0
        acc.append(HyperbolicHouseholder(x, w))
        np.testing.assert_allclose(u.matrix(), before, atol=1e-12)


class TestCondestOptions:
    def test_max_iter_controls_work(self):
        from repro.core.condest import condest
        t = kms_toeplitz(24, 0.8)
        a = condest(t, max_iter=1)
        b = condest(t, max_iter=8)
        ref = np.linalg.cond(t.dense(), 1)
        assert b <= 1.5 * ref
        assert a > 0


class TestCliDenseSolve:
    def test_dense_matrix_with_block_size(self, tmp_path, capsys):
        from repro.cli import main
        t = ar_block_toeplitz(5, 2, seed=4)
        mp = tmp_path / "m.npy"
        bp = tmp_path / "b.npy"
        np.save(mp, t.dense())
        np.save(bp, np.ones(10))
        assert main(["solve", str(mp), str(bp),
                     "--block-size", "2"]) == 0
        assert "‖T x − b‖₂" in capsys.readouterr().out
