"""Tests for the GKO Cauchy-like LU (nonsymmetric block Toeplitz)."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.gko import (
    cauchy_like_lu,
    cyclic_displacement_generators,
    solve_toeplitz_gko,
    toeplitz_to_cauchy,
)
from repro.errors import BreakdownError, ShapeError
from repro.toeplitz import (
    BlockToeplitz,
    SymmetricBlockToeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
)


def _rand_bt(p, m, seed):
    r = np.random.default_rng(seed)
    col = [r.standard_normal((m, m)) for _ in range(p)]
    row = [col[0]] + [r.standard_normal((m, m)) for _ in range(p - 1)]
    return BlockToeplitz(col, row)


def _zphi(phi, m, p):
    n = m * p
    z = np.zeros((n, n))
    for i in range(1, p):
        z[i * m:(i + 1) * m, (i - 1) * m:i * m] = np.eye(m)
    z[:m, (p - 1) * m:] = phi * np.eye(m)
    return z


class TestDisplacement:
    @pytest.mark.parametrize("p,m", [(2, 1), (5, 1), (4, 2), (3, 3)])
    def test_generator_identity(self, p, m):
        t = _rand_bt(p, m, seed=p * 10 + m)
        d = t.dense()
        disp = _zphi(1, m, p) @ d - d @ _zphi(-1, m, p)
        g, b = cyclic_displacement_generators(t)
        np.testing.assert_allclose(g @ b, disp, atol=1e-12)
        assert g.shape == (t.order, 2 * m)

    def test_single_block_rejected(self):
        with pytest.raises(ShapeError):
            cyclic_displacement_generators(_rand_bt(1, 2, 0))

    def test_cauchy_identity(self):
        t = _rand_bt(6, 2, seed=3)
        d = t.dense()
        m, p, n = 2, 6, 12
        ghat, bhat, d1, d2 = toeplitz_to_cauchy(t)
        f = np.exp(2j * np.pi * np.outer(np.arange(p),
                                         np.arange(p)) / p) / np.sqrt(p)
        fm = np.kron(f, np.eye(m))
        theta = np.exp(1j * np.pi / p)
        dhat = np.kron(np.diag(theta ** np.arange(p)), np.eye(m))
        c = fm @ d @ np.linalg.inv(dhat) @ fm.conj().T
        lhs = np.diag(d1) @ c - c @ np.diag(d2)
        np.testing.assert_allclose(lhs, ghat @ bhat, atol=1e-11)

    def test_nodes_disjoint(self):
        t = _rand_bt(8, 1, seed=4)
        _, _, d1, d2 = toeplitz_to_cauchy(t)
        assert np.min(np.abs(d1[:, None] - d2[None, :])) > 1e-3


class TestLU:
    def test_pivoted_lu_reconstructs(self):
        t = _rand_bt(5, 2, seed=5)
        ghat, bhat, d1, d2 = toeplitz_to_cauchy(t)
        lu = cauchy_like_lu(ghat, bhat, d1, d2, block_size=2)
        m, p = 2, 5
        f = np.exp(2j * np.pi * np.outer(np.arange(p),
                                         np.arange(p)) / p) / np.sqrt(p)
        fm = np.kron(f, np.eye(m))
        theta = np.exp(1j * np.pi / p)
        dhat = np.kron(np.diag(theta ** np.arange(p)), np.eye(m))
        c = fm @ t.dense() @ np.linalg.inv(dhat) @ fm.conj().T
        np.testing.assert_allclose(lu.l @ lu.u, c[lu.perm], atol=1e-11)
        # unit lower / upper triangular structure
        np.testing.assert_allclose(np.diag(lu.l), 1.0)
        np.testing.assert_allclose(np.triu(lu.l, 1), 0.0, atol=1e-14)
        np.testing.assert_allclose(np.tril(lu.u, -1), 0.0, atol=1e-14)

    def test_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            cauchy_like_lu(np.ones((4, 2)), np.ones((2, 4)),
                           np.ones(4), np.ones(3))

    def test_singular_detected(self):
        # exactly singular Toeplitz: constant first row/col
        t = SymmetricBlockToeplitz.from_first_row([1.0, 1.0, 1.0])
        ghat, bhat, d1, d2 = toeplitz_to_cauchy(t)
        with pytest.raises(BreakdownError):
            cauchy_like_lu(ghat, bhat, d1, d2)


class TestSolve:
    @pytest.mark.parametrize("p,m", [(4, 1), (12, 1), (5, 2), (4, 3),
                                     (8, 2)])
    def test_nonsymmetric_systems(self, p, m, rng):
        t = _rand_bt(p, m, seed=p * 7 + m)
        d = t.dense()
        if abs(np.linalg.det(d)) < 1e-8:
            pytest.skip("singular draw")
        b = rng.standard_normal(t.order)
        x = solve_toeplitz_gko(t, b)
        ref = np.linalg.solve(d, b)
        np.testing.assert_allclose(x, ref,
                                   atol=1e-8 * max(1, np.linalg.cond(d)
                                                   ** 0.5))

    def test_matches_scipy_scalar(self, rng):
        r = rng.standard_normal(20)
        c = rng.standard_normal(20)
        c[0] = r[0] = 3.0
        t = BlockToeplitz([np.array([[v]]) for v in c],
                          [np.array([[v]]) for v in r])
        b = rng.standard_normal(20)
        ref = sla.solve_toeplitz((c, r), b)
        np.testing.assert_allclose(solve_toeplitz_gko(t, b), ref,
                                   atol=1e-7)

    def test_symmetric_input_accepted(self, rng):
        t = kms_toeplitz(16, 0.6)
        b = rng.standard_normal(16)
        x = solve_toeplitz_gko(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-10)

    def test_singular_minor_no_problem(self, rng):
        # pivoting handles the eq.-50 matrix without any perturbation
        t = paper_example_matrix()
        b = t.dense() @ np.ones(6)
        x = solve_toeplitz_gko(t, b)
        np.testing.assert_allclose(x, np.ones(6), atol=1e-10)

    def test_indefinite(self, rng):
        t = indefinite_toeplitz(11, seed=9)
        b = rng.standard_normal(11)
        x = solve_toeplitz_gko(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_multi_rhs(self, rng):
        t = _rand_bt(6, 2, seed=11)
        b = rng.standard_normal((12, 3))
        x = solve_toeplitz_gko(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_rhs_shape_mismatch(self):
        t = _rand_bt(4, 2, seed=12)
        ghat, bhat, d1, d2 = toeplitz_to_cauchy(t)
        lu = cauchy_like_lu(ghat, bhat, d1, d2, block_size=2)
        with pytest.raises(ShapeError):
            lu.solve(np.ones(5))

    def test_rejects_plain_array(self):
        with pytest.raises(ShapeError):
            solve_toeplitz_gko(np.eye(4), np.ones(4))


class TestReusableFactor:
    def test_factor_once_solve_many(self, rng):
        from repro.core.gko import gko_factor
        t = _rand_bt(6, 2, seed=21)
        d = t.dense()
        lu = gko_factor(t)
        for _ in range(3):
            b = rng.standard_normal(12)
            np.testing.assert_allclose(d @ lu.solve(b), b, atol=1e-9)
