"""Tests for the SPMD machine simulator."""

import numpy as np
import pytest

from repro.blas.cray import T3DNetworkParameters
from repro.errors import DeadlockError, MachineError, ShapeError
from repro.machine import (
    Barrier,
    Broadcast,
    Compute,
    LineTopology,
    Machine,
    Put,
    Recv,
    Torus3D,
)


class TestTopologies:
    def test_line_hops(self):
        t = LineTopology(8)
        assert t.hops(0, 0) == 0
        assert t.hops(2, 5) == 3
        assert t.hops(5, 2) == 3

    def test_line_bounds(self):
        t = LineTopology(4)
        with pytest.raises(ShapeError):
            t.hops(0, 4)

    def test_torus_dims_factorization(self):
        assert sorted(Torus3D(64).dims) == [4, 4, 4]
        assert sorted(Torus3D(16).dims) in ([2, 2, 4], [1, 4, 4])

    def test_torus_wraparound(self):
        t = Torus3D(8)  # 2×2×2
        for r in range(8):
            assert t.hops(r, r) == 0
        # neighbors at distance ≤ diameter
        dia = t.diameter()
        for a in range(8):
            for b in range(8):
                assert t.hops(a, b) <= dia

    def test_torus_symmetry(self):
        t = Torus3D(12)
        for a in range(12):
            for b in range(12):
                assert t.hops(a, b) == t.hops(b, a)

    def test_invalid_nproc(self):
        with pytest.raises(ShapeError):
            LineTopology(0)


class TestComputeAndClock:
    def test_compute_accumulates(self):
        def prog(ctx):
            yield Compute(1.0, category="alpha")
            yield Compute(0.5, category="beta")
            return ctx.rank

        rep = Machine(2).run(prog)
        assert rep.makespan == pytest.approx(1.5)
        for r in rep.ranks:
            assert r.by_category["alpha"] == pytest.approx(1.0)
            assert r.by_category["beta"] == pytest.approx(0.5)
        assert rep.results == [0, 1]

    def test_negative_compute_rejected(self):
        def prog(ctx):
            yield Compute(-1.0)

        with pytest.raises(MachineError):
            Machine(1).run(prog)

    def test_non_generator_program_rejected(self):
        def prog(ctx):
            return 42

        with pytest.raises(MachineError):
            Machine(1).run(prog)


class TestPointToPoint:
    def test_message_delivery_and_payload(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield Put(dest=1, tag="x", payload={"v": 7}, words=1)
                return None
            got = yield Recv(src=0, tag="x")
            return got["v"]

        rep = Machine(2).run(prog)
        assert rep.results[1] == 7

    def test_receiver_waits_for_arrival(self):
        net = T3DNetworkParameters(put_latency=1.0, bandwidth=8.0)

        def prog(ctx):
            if ctx.rank == 0:
                yield Compute(5.0)
                yield Put(dest=1, tag="x", payload=1, words=1)
            else:
                yield Recv(src=0, tag="x")
            return None

        rep = Machine(2, network=net).run(prog)
        # receiver idles until 5.0 (sender compute) + 1 (latency)
        # + 8 bytes / 8 B/s (bandwidth)
        assert rep.ranks[1].time == pytest.approx(7.0)
        assert rep.ranks[1].by_category["idle"] == pytest.approx(7.0)

    def test_sender_charged_transfer(self):
        net = T3DNetworkParameters(put_latency=2.0, bandwidth=8.0)

        def prog(ctx):
            if ctx.rank == 0:
                yield Put(dest=1, tag="x", payload=None, words=16)
            else:
                yield Recv(src=0, tag="x")
            return None

        rep = Machine(2, network=net).run(prog)
        assert rep.ranks[0].time == pytest.approx(2.0 + 16.0)
        assert rep.ranks[0].messages_sent == 1
        assert rep.ranks[0].words_sent == 16

    def test_put_count_charges_gap(self):
        net = T3DNetworkParameters(put_latency=1.0, put_gap=0.25,
                                   bandwidth=1e18)

        def prog(ctx):
            if ctx.rank == 0:
                yield Put(dest=1, tag="x", payload=None, words=0, count=5)
            else:
                yield Recv(src=0, tag="x")
            return None

        rep = Machine(2, network=net).run(prog)
        assert rep.ranks[0].time == pytest.approx(1.0 + 4 * 0.25)

    def test_fifo_ordering_same_tag(self):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(3):
                    yield Put(dest=1, tag="s", payload=i, words=1)
                return None
            got = []
            for _ in range(3):
                got.append((yield Recv(src=0, tag="s")))
            return got

        rep = Machine(2).run(prog)
        assert rep.results[1] == [0, 1, 2]

    def test_put_invalid_rank(self):
        def prog(ctx):
            yield Put(dest=9, tag="x", payload=None, words=0)

        with pytest.raises(MachineError):
            Machine(2).run(prog)

    def test_ring_exchange(self):
        def prog(ctx):
            r, n = ctx.rank, ctx.nproc
            yield Put(dest=(r + 1) % n, tag="ring", payload=r, words=1)
            got = yield Recv(src=(r - 1) % n, tag="ring")
            return got

        rep = Machine(5).run(prog)
        assert rep.results == [4, 0, 1, 2, 3]


class TestCollectives:
    def test_broadcast_payload_to_all(self):
        def prog(ctx):
            payload = "hello" if ctx.rank == 2 else None
            got = yield Broadcast(root=2, payload=payload, words=5)
            return got

        rep = Machine(4).run(prog)
        assert rep.results == ["hello"] * 4

    def test_broadcast_synchronizes_clocks(self):
        def prog(ctx):
            yield Compute(float(ctx.rank))
            yield Broadcast(root=0, payload=1, words=1)
            return None

        net = T3DNetworkParameters(broadcast_latency=0.5, bandwidth=1e18)
        rep = Machine(4, network=net).run(prog)
        # all ranks end at max-entry (3.0) + 2 stages × 0.5
        for r in rep.ranks:
            assert r.time == pytest.approx(4.0)
        assert rep.ranks[0].by_category["idle"] == pytest.approx(3.0)

    def test_barrier_synchronizes(self):
        def prog(ctx):
            yield Compute(1.0 if ctx.rank else 4.0)
            yield Barrier()
            return None

        net = T3DNetworkParameters(barrier_per_stage=0.0)
        rep = Machine(3, network=net).run(prog)
        for r in rep.ranks:
            assert r.time == pytest.approx(4.0)

    def test_mismatched_collectives_detected(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield Barrier()
            else:
                yield Broadcast(root=1, payload=1, words=1)

        with pytest.raises(DeadlockError):
            Machine(2).run(prog)

    def test_broadcast_root_disagreement_detected(self):
        def prog(ctx):
            yield Broadcast(root=ctx.rank, payload=1, words=1)

        with pytest.raises(DeadlockError):
            Machine(2).run(prog)

    def test_single_rank_collectives_free(self):
        def prog(ctx):
            got = yield Broadcast(root=0, payload=3, words=8)
            yield Barrier()
            return got

        rep = Machine(1).run(prog)
        assert rep.results == [3]
        assert rep.makespan == 0.0


class TestDeadlockAndReports:
    def test_recv_without_put_deadlocks(self):
        def prog(ctx):
            yield Recv(src=(ctx.rank + 1) % ctx.nproc, tag="never")

        with pytest.raises(DeadlockError):
            Machine(2).run(prog)

    def test_report_aggregation(self):
        def prog(ctx):
            yield Compute(2.0, category="work")
            return ctx.rank * 10

        rep = Machine(3).run(prog)
        assert rep.total_by_category()["work"] == pytest.approx(6.0)
        assert rep.category_of_critical_rank()["work"] == pytest.approx(2.0)
        assert rep.results == [0, 10, 20]

    def test_determinism(self):
        def prog(ctx):
            r, n = ctx.rank, ctx.nproc
            total = 0.0
            for i in range(4):
                yield Put(dest=(r + 1) % n, tag=i, payload=r, words=8)
                got = yield Recv(src=(r - 1) % n, tag=i)
                total += got
                yield Compute(0.001 * (r + 1))
                yield Barrier()
            return total

        r1 = Machine(4).run(prog)
        r2 = Machine(4).run(prog)
        assert r1.makespan == r2.makespan
        assert r1.results == r2.results

    def test_topology_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            Machine(4, topology=LineTopology(8))


class TestTopologyCosts:
    def test_distant_put_costs_more(self):
        from repro.blas.cray import T3DNetworkParameters

        def prog_to(dest):
            def prog(ctx):
                if ctx.rank == 0:
                    yield Put(dest=dest, tag="x", payload=None, words=8)
                elif ctx.rank == dest:
                    yield Recv(src=0, tag="x")
                return None
            return prog

        net = T3DNetworkParameters(put_latency=1.0, bandwidth=1e18)
        m = Machine(8, network=net, topology=LineTopology(8))
        near = m.run(prog_to(1)).ranks[0].time
        far = m.run(prog_to(7)).ranks[0].time
        assert far > near

    def test_torus_shortens_wraparound(self):
        from repro.blas.cray import T3DNetworkParameters

        def prog(ctx):
            if ctx.rank == 0:
                yield Put(dest=7, tag="x", payload=None, words=8)
            elif ctx.rank == 7:
                yield Recv(src=0, tag="x")
            return None

        net = T3DNetworkParameters(put_latency=1.0, bandwidth=1e18)
        line = Machine(8, network=net,
                       topology=LineTopology(8)).run(prog).makespan
        torus = Machine(8, network=net,
                        topology=Torus3D(8)).run(prog).makespan
        assert torus < line

    def test_simulated_factorization_topology_sensitivity(self):
        # a slower (line) interconnect must not make the run faster
        from repro.parallel import simulate_factorization
        from repro.toeplitz import kms_toeplitz
        t = kms_toeplitz(128, 0.5).regroup(4)
        torus = simulate_factorization(t, nproc=8, b=1,
                                       collect=False).time
        line = simulate_factorization(
            t, nproc=8, b=1, collect=False,
            topology=LineTopology(8)).time
        assert line >= torus * 0.99
