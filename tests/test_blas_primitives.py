"""Tests for the counted BLAS primitives."""

import numpy as np
import pytest

from repro.blas import primitives as blas


class TestCorrectness:
    def test_dot(self, rng):
        x, y = rng.standard_normal(10), rng.standard_normal(10)
        assert blas.dot(x, y) == pytest.approx(float(x @ y))

    def test_axpy_in_place(self, rng):
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)
        expect = y + 2.5 * x
        out = blas.axpy(2.5, x, y)
        assert out is y
        np.testing.assert_allclose(y, expect)

    def test_scal_in_place(self, rng):
        x = rng.standard_normal(6)
        expect = 3.0 * x
        blas.scal(3.0, x)
        np.testing.assert_allclose(x, expect)

    def test_gemv(self, rng):
        a = rng.standard_normal((4, 6))
        x = rng.standard_normal(6)
        np.testing.assert_allclose(blas.gemv(a, x), a @ x)
        xt = rng.standard_normal(4)
        np.testing.assert_allclose(blas.gemv(a, xt, trans=True), a.T @ xt)

    def test_ger_in_place(self, rng):
        a = rng.standard_normal((3, 4))
        x, y = rng.standard_normal(3), rng.standard_normal(4)
        expect = a + 0.5 * np.outer(x, y)
        blas.ger(0.5, x, y, a)
        np.testing.assert_allclose(a, expect)

    def test_gemm(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        np.testing.assert_allclose(blas.gemm(a, b), a @ b)

    def test_gemm_out_accumulate(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        c = rng.standard_normal((3, 5))
        expect = c + a @ b
        blas.gemm(a, b, out=c, accumulate=True)
        np.testing.assert_allclose(c, expect)

    def test_gemm_out_overwrite(self, rng):
        a = rng.standard_normal((2, 2))
        b = rng.standard_normal((2, 2))
        c = np.zeros((2, 2))
        blas.gemm(a, b, out=c)
        np.testing.assert_allclose(c, a @ b)

    def test_trsm_lower(self, rng):
        l = np.tril(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        b = rng.standard_normal((4, 3))
        x = blas.trsm_lower(l, b)
        np.testing.assert_allclose(l @ x, b, atol=1e-10)
        xt = blas.trsm_lower(l, b, trans=True)
        np.testing.assert_allclose(l.T @ xt, b, atol=1e-10)

    def test_syrk(self, rng):
        a = rng.standard_normal((3, 5))
        np.testing.assert_allclose(blas.syrk(a), a @ a.T)


class TestCounting:
    def test_no_counter_no_charge(self, rng):
        # must be callable (and uncounted) outside a counting scope
        blas.dot(rng.standard_normal(4), rng.standard_normal(4))
        assert blas.active_counter() is None

    def test_dot_count(self, rng):
        with blas.counting() as c:
            blas.dot(rng.standard_normal(10), rng.standard_normal(10))
        assert c.total == 19

    def test_gemm_count(self, rng):
        with blas.counting() as c:
            blas.gemm(rng.standard_normal((2, 3)),
                      rng.standard_normal((3, 4)))
        assert c.total == 2 * 2 * 4 * 3

    def test_nested_counters_both_charged(self, rng):
        x = rng.standard_normal(5)
        with blas.counting() as outer:
            blas.dot(x, x)
            with blas.counting() as inner:
                blas.dot(x, x)
        assert inner.total == 9
        assert outer.total == 18

    def test_categories(self, rng):
        x = rng.standard_normal(4)
        with blas.counting() as c:
            with blas.category("phase-a"):
                blas.dot(x, x)
            with blas.category("phase-b"):
                blas.scal(2.0, x)
        assert c.by_category["phase-a"] == 7
        assert c.by_category["phase-b"] == 4

    def test_by_primitive(self, rng):
        x = rng.standard_normal(4)
        with blas.counting() as c:
            blas.dot(x, x)
            blas.scal(1.5, x)
        assert c.by_primitive["dot"] == 7
        assert c.by_primitive["scal"] == 4

    def test_reset(self, rng):
        x = rng.standard_normal(4)
        with blas.counting() as c:
            blas.dot(x, x)
            c.reset()
            assert c.total == 0
            assert c.by_category == {}

    def test_explicit_counter_reuse(self, rng):
        c = blas.FlopCounter()
        x = rng.standard_normal(4)
        with blas.counting(c):
            blas.dot(x, x)
        with blas.counting(c):
            blas.dot(x, x)
        assert c.total == 14

    def test_charge_direct(self):
        with blas.counting() as c:
            blas.charge(123, "custom")
        assert c.total == 123
        assert c.by_primitive["custom"] == 123

    def test_counter_stack_restored_on_error(self, rng):
        try:
            with blas.counting():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert blas.active_counter() is None
