"""Tests for the solver service: dispatcher, service, TCP front end."""

from __future__ import annotations

import concurrent.futures
import threading
import time

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.errors import (
    DeadlineExceededError,
    InvalidOptionError,
    ServiceClosedError,
    ServiceOverloadError,
    ShapeError,
)
from repro.serve import (
    BatchDispatcher,
    InProcessClient,
    ServeRecord,
    ServeResponse,
    SolverService,
    TCPClient,
    start_tcp_server,
)
from repro.toeplitz.workloads import ar_block_toeplitz, kms_toeplitz


@pytest.fixture
def op():
    return ar_block_toeplitz(16, 4, seed=3)


@pytest.fixture
def rhs(op, rng):
    return rng.standard_normal(op.order)


def _reference(operator, b, **plan_kwargs):
    return engine.execute(engine.plan(operator, **plan_kwargs), b).x


class TestExecuteMany:
    def test_matches_individual_executes(self, op, rng):
        pl = engine.plan(op)
        bs = [rng.standard_normal(op.order) for _ in range(5)]
        results = engine.execute_many(pl, bs)
        assert len(results) == 5
        for b, res in zip(bs, results):
            assert res.x.ndim == 1
            np.testing.assert_allclose(res.x, _reference(op, b),
                                       atol=1e-10)

    def test_single_rhs_is_sequential_path(self, op, rhs):
        pl = engine.plan(op)
        [res] = engine.execute_many(pl, [rhs])
        assert np.array_equal(res.x, engine.execute(pl, rhs).x)
        assert res.record is not None and res.record.nrhs == 1

    def test_validates_input(self, op, rhs):
        pl = engine.plan(op)
        with pytest.raises(InvalidOptionError):
            engine.execute_many(pl, [])
        with pytest.raises(InvalidOptionError):
            engine.execute_many(pl, [np.ones((op.order, 2))])
        with pytest.raises(InvalidOptionError):
            engine.execute_many(pl, [rhs, rhs[:-1]])


class TestDispatcherCoalescing:
    def test_burst_coalesces_and_matches_sequential(self, op, rng):
        pl = engine.plan(op)
        bs = [rng.standard_normal(op.order) for _ in range(8)]
        with BatchDispatcher(max_wait_ms=200.0, max_batch_k=8) as disp:
            futs = [disp.submit(pl, b) for b in bs]
            resps = [f.result(timeout=10) for f in futs]
        ids = {r.record.batch_id for r in resps}
        assert len(ids) == 1, "one burst should ride one batch"
        assert all(r.record.batch_k == 8 for r in resps)
        for b, r in zip(bs, resps):
            np.testing.assert_allclose(r.x, _reference(op, b),
                                       atol=1e-10)

    def test_batch_of_one_is_bit_for_bit_sequential(self, op, rhs):
        pl = engine.plan(op)
        with BatchDispatcher(max_wait_ms=0.0) as disp:
            resp = disp.submit(pl, rhs).result(timeout=10)
        assert resp.record.batch_k == 1
        assert np.array_equal(resp.x, engine.execute(pl, rhs).x)

    def test_different_fingerprints_never_coalesce(self, rng):
        op_a = ar_block_toeplitz(16, 4, seed=1)
        op_b = ar_block_toeplitz(16, 4, seed=2)
        pa, pb = engine.plan(op_a), engine.plan(op_b)
        assert pa.cache_key() != pb.cache_key()
        with BatchDispatcher(max_wait_ms=100.0, max_batch_k=8) as disp:
            fa = [disp.submit(pa, rng.standard_normal(pa.order))
                  for _ in range(3)]
            fb = [disp.submit(pb, rng.standard_normal(pb.order))
                  for _ in range(3)]
            ra = [f.result(timeout=10) for f in fa]
            rb = [f.result(timeout=10) for f in fb]
        batches_a = {r.record.batch_id for r in ra}
        batches_b = {r.record.batch_id for r in rb}
        assert batches_a.isdisjoint(batches_b)

    def test_plan_knobs_split_batches(self, op, rng):
        """Same operator, different factorization knobs ⇒ no sharing."""
        p64 = engine.plan(op, assume="spd")
        p32 = engine.plan(op, assume="spd", precision="fp32")
        assert p64.cache_key() != p32.cache_key()
        with BatchDispatcher(max_wait_ms=100.0, max_batch_k=8) as disp:
            f64 = disp.submit(p64, rng.standard_normal(op.order))
            f32 = disp.submit(p32, rng.standard_normal(op.order))
            r64 = f64.result(timeout=10)
            r32 = f32.result(timeout=10)
        assert r64.record.batch_id != r32.record.batch_id

    def test_max_batch_k_caps_panel_width(self, op, rng):
        pl = engine.plan(op)
        with BatchDispatcher(max_wait_ms=200.0, max_batch_k=4) as disp:
            futs = [disp.submit(pl, rng.standard_normal(op.order))
                    for _ in range(10)]
            resps = [f.result(timeout=10) for f in futs]
        assert max(r.record.batch_k for r in resps) <= 4
        assert len({r.record.batch_id for r in resps}) >= 3

    def test_rejects_panels_and_wrong_length(self, op, rhs):
        pl = engine.plan(op)
        with BatchDispatcher() as disp:
            with pytest.raises(ShapeError):
                disp.submit(pl, np.ones((op.order, 2)))
            with pytest.raises(ShapeError):
                disp.submit(pl, rhs[:-1])


class TestDispatcherLimits:
    def test_overload_fast_fails(self, op, rhs):
        pl = engine.plan(op)
        disp = BatchDispatcher(max_wait_ms=10_000.0, max_batch_k=64,
                               max_queue_depth=2)
        try:
            f1 = disp.submit(pl, rhs)
            f2 = disp.submit(pl, rhs)
            with pytest.raises(ServiceOverloadError):
                disp.submit(pl, rhs)
            assert disp.stats().overloads == 1
        finally:
            disp.close(drain=True)
        assert f1.result(5) is not None and f2.result(5) is not None

    def test_deadline_expires_mid_queue(self, op, rhs):
        pl = engine.plan(op)
        disp = BatchDispatcher(max_wait_ms=10_000.0, max_batch_k=64)
        try:
            fut = disp.submit(pl, rhs, timeout_s=0.05)
            with pytest.raises(DeadlineExceededError):
                fut.result(timeout=10)
            deadline = time.perf_counter() + 5
            while (disp.stats().deadline_expirations < 1
                   and time.perf_counter() < deadline):
                time.sleep(0.005)
            stats = disp.stats()
            assert stats.deadline_expirations == 1
            assert stats.queue_depth == 0
        finally:
            disp.close(drain=True)

    def test_deadline_only_covers_queue_phase(self, op, rhs):
        """A generous deadline on an idle service never fires."""
        pl = engine.plan(op)
        with BatchDispatcher(max_wait_ms=0.0) as disp:
            resp = disp.submit(pl, rhs, timeout_s=30.0).result(timeout=10)
        assert resp.record.batch_k == 1

    def test_close_drains_every_admitted_request(self, op, rng):
        pl = engine.plan(op)
        disp = BatchDispatcher(max_wait_ms=60_000.0, max_batch_k=64)
        futs = [disp.submit(pl, rng.standard_normal(op.order))
                for _ in range(6)]
        disp.close(drain=True)
        resps = [f.result(timeout=10) for f in futs]
        assert all(isinstance(r, ServeResponse) for r in resps)
        stats = disp.stats()
        assert stats.completed == 6 and stats.failed == 0

    def test_close_without_drain_fails_queued(self, op, rhs):
        pl = engine.plan(op)
        disp = BatchDispatcher(max_wait_ms=60_000.0, max_batch_k=64)
        fut = disp.submit(pl, rhs)
        disp.close(drain=False)
        with pytest.raises(ServiceClosedError):
            fut.result(timeout=10)

    def test_submit_after_close_raises(self, op, rhs):
        pl = engine.plan(op)
        disp = BatchDispatcher()
        disp.close()
        with pytest.raises(ServiceClosedError):
            disp.submit(pl, rhs)
        disp.close()  # idempotent

    def test_invalid_knobs(self):
        with pytest.raises(ShapeError):
            BatchDispatcher(max_batch_k=0)
        with pytest.raises(ShapeError):
            BatchDispatcher(max_queue_depth=0)
        with pytest.raises(ShapeError):
            BatchDispatcher(max_wait_ms=-1.0)


class TestServeRecord:
    def test_exports_unified_trace_record(self, op, rhs):
        pl = engine.plan(op)
        with BatchDispatcher(max_wait_ms=0.0) as disp:
            resp = disp.submit(pl, rhs).result(timeout=10)
        rec = resp.record.to_record(rec_id=7)
        assert rec["source"] == obs.SOURCE_SERVE
        assert rec["kind"] == obs.KIND_REQUEST
        assert rec["name"] == "serve.request"
        assert rec["attrs"]["batch_k"] == 1
        assert rec["end"] >= rec["start"]

    def test_execution_record_attached(self, op, rng):
        pl = engine.plan(op)
        with BatchDispatcher(max_wait_ms=100.0, max_batch_k=4) as disp:
            futs = [disp.submit(pl, rng.standard_normal(op.order))
                    for _ in range(4)]
            resps = [f.result(timeout=10) for f in futs]
        for r in resps:
            assert r.execution is not None
            assert r.execution.nrhs == r.record.batch_k


class TestServeMetrics:
    def test_counters_and_gauges_published(self, op, rhs):
        obs.enable()
        try:
            pl = engine.plan(op)
            with BatchDispatcher(max_wait_ms=0.0,
                                 max_queue_depth=1) as disp:
                disp.submit(pl, rhs).result(timeout=10)
            text = obs.render_prometheus()
        finally:
            obs.disable()
        assert 'repro_serve_requests_total{status="admitted"}' in text
        assert 'repro_serve_requests_total{status="ok"}' in text
        assert "repro_serve_batches_total" in text
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_batch_occupancy" in text
        assert "repro_serve_latency_p50_seconds" in text
        assert "repro_serve_latency_p99_seconds" in text


class TestSolverService:
    def test_register_solve_stats(self, op, rhs):
        with SolverService(max_wait_ms=0.0) as svc:
            svc.register("toe", op, warm=True)
            assert svc.operators() == ("toe",)
            resp = svc.solve("toe", rhs)
            np.testing.assert_allclose(resp.x, _reference(op, rhs),
                                       atol=1e-10)
            assert resp.record.cache_hit  # warm=True prepaid the factor
            assert svc.stats().completed == 1

    def test_unknown_operator(self, op, rhs):
        with SolverService() as svc:
            svc.register("toe", op)
            with pytest.raises(InvalidOptionError):
                svc.solve("nope", rhs)

    def test_asolve(self, op, rhs):
        import asyncio

        with SolverService(max_wait_ms=0.0) as svc:
            svc.register("toe", op)
            resp = asyncio.run(svc.asolve("toe", rhs))
        np.testing.assert_allclose(resp.x, _reference(op, rhs),
                                   atol=1e-10)

    def test_in_process_client(self, op, rhs):
        with SolverService(max_wait_ms=0.0) as svc:
            svc.register("toe", op)
            client = InProcessClient(svc)
            assert client.ops() == ["toe"]
            resp = client.solve("toe", rhs)
            np.testing.assert_allclose(resp.x, _reference(op, rhs),
                                       atol=1e-10)
            assert client.stats().completed == 1

    def test_registration_plan_kwargs_flow_through(self, op):
        with SolverService() as svc:
            pl = svc.register("toe", op, precision="fp32", assume="spd")
        assert pl.precision == "fp32"


class TestTCP:
    def test_roundtrip_matches_sequential(self, op, rhs):
        with SolverService(max_wait_ms=0.0) as svc:
            svc.register("toe", op, warm=True)
            with start_tcp_server(svc) as handle:
                with TCPClient(handle.host, handle.port) as client:
                    assert client.ops() == ["toe"]
                    resp = client.solve("toe", rhs)
                    np.testing.assert_allclose(
                        resp.x, _reference(op, rhs), atol=1e-10)
                    assert isinstance(resp.record, ServeRecord)
                    stats = client.stats()
                    assert stats.completed == 1

    def test_concurrent_tcp_clients_coalesce(self, op, rng):
        bs = [rng.standard_normal(op.order) for _ in range(6)]
        with SolverService(max_wait_ms=200.0, max_batch_k=6) as svc:
            svc.register("toe", op, warm=True)
            with start_tcp_server(svc) as handle:
                barrier = threading.Barrier(6)

                def one(b):
                    with TCPClient(handle.host, handle.port) as client:
                        barrier.wait(timeout=10)
                        return client.solve("toe", b)

                with concurrent.futures.ThreadPoolExecutor(6) as pool:
                    resps = list(pool.map(one, bs))
        assert len({r.record.batch_id for r in resps}) == 1
        assert all(r.record.batch_k == 6 for r in resps)
        for b, r in zip(bs, resps):
            np.testing.assert_allclose(r.x, _reference(op, b),
                                       atol=1e-10)

    def test_remote_errors_map_to_local_types(self, op, rhs):
        with SolverService(max_wait_ms=0.0) as svc:
            svc.register("toe", op)
            with start_tcp_server(svc) as handle:
                with TCPClient(handle.host, handle.port) as client:
                    with pytest.raises(InvalidOptionError):
                        client.solve("missing-op", rhs)
                    with pytest.raises(ShapeError):
                        client.solve("toe", rhs[:-1])

    def test_metrics_command(self, op, rhs):
        obs.enable()
        try:
            with SolverService(max_wait_ms=0.0) as svc:
                svc.register("toe", op)
                with start_tcp_server(svc) as handle:
                    with TCPClient(handle.host, handle.port) as client:
                        client.solve("toe", rhs)
                        text = client.metrics()
        finally:
            obs.disable()
        assert "repro_serve_requests_total" in text


class TestServeCLI:
    def test_selftest(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "row.npy"
        np.save(path, kms_toeplitz(32, 0.55).first_scalar_row())
        rc = main(["serve", str(path), "--selftest", "6",
                   "--max-wait-ms", "50", "--explain"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "selftest passed" in out
        assert "solver plan" in out

    def test_explain_mentions_all_plan_axes(self, tmp_path, capsys):
        """--explain names the schedule/transport/precision axes."""
        from repro.cli import main
        path = tmp_path / "row.npy"
        np.save(path, kms_toeplitz(64, 0.55).first_scalar_row())
        rc = main(["solve", str(path), "--nrhs", "1", "--explain",
                   "--nproc", "4", "--schedule", "bulk"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "precision       fp64" in out
        assert "schedule        bulk" in out
        assert "transport       shared_memory" in out


class TestAdaptiveWait:
    def test_disabled_budget_is_constant(self, op, rng):
        with BatchDispatcher(max_wait_ms=50.0, max_batch_k=4) as disp:
            pl = engine.plan(op)
            disp.submit(pl, rng.standard_normal(op.order)).result()
            assert disp.stats().current_wait_ms == 50.0

    def test_budget_decays_to_zero_when_idle(self, op, rng):
        disp = BatchDispatcher(max_wait_ms=8.0, max_batch_k=32,
                               adaptive_wait=True)
        try:
            pl = engine.plan(op)
            # Lone requests (far below max_batch_k, nothing queued
            # behind them) halve the budget each dispatch until it
            # snaps to zero.
            for _ in range(12):
                disp.submit(pl, rng.standard_normal(op.order)).result()
            assert disp.stats().current_wait_ms == 0.0
        finally:
            disp.close()

    def test_budget_grows_under_load(self):
        # Unit-test the controller itself: full batches (or a backlog)
        # double the budget back toward the configured maximum.
        disp = BatchDispatcher(max_wait_ms=8.0, max_batch_k=4,
                               adaptive_wait=True)
        try:
            full = disp.max_wait_seconds
            with disp._wake:
                disp._wait_budget = 0.0
                disp._adapt_wait_locked(disp.max_batch_k)
                assert disp._wait_budget == pytest.approx(full / 8)
                disp._adapt_wait_locked(disp.max_batch_k)
                assert disp._wait_budget == pytest.approx(full / 4)
                for _ in range(8):
                    disp._adapt_wait_locked(disp.max_batch_k)
                assert disp._wait_budget == pytest.approx(full)
                # Small batch with an empty queue: decay kicks back in.
                disp._adapt_wait_locked(1)
                assert disp._wait_budget == pytest.approx(full / 2)
        finally:
            disp.close()

    def test_zero_max_wait_stays_zero(self):
        disp = BatchDispatcher(max_wait_ms=0.0, adaptive_wait=True)
        try:
            with disp._wake:
                disp._adapt_wait_locked(disp.max_batch_k)
            assert disp.stats().current_wait_ms == 0.0
        finally:
            disp.close()


class TestServeWarmFromStore:
    def test_restarted_service_loads_from_disk(self, op, rhs, tmp_path):
        from repro.engine import FactorizationCache, set_default_cache
        from repro.engine.cache_store import CacheStore

        store = CacheStore(str(tmp_path / "serve-cache"))
        prev = set_default_cache(FactorizationCache())
        try:
            with SolverService(max_wait_ms=0.0, store=store) as svc:
                svc.register("toe", op, warm=True, cache="persistent")
            assert store.stats().writes == 1

            # "Restart": fresh process-level memory cache, same store.
            set_default_cache(FactorizationCache())
            with SolverService(max_wait_ms=0.0, store=store) as svc:
                svc.register("toe", op, warm=True, cache="persistent")
                assert store.stats().disk_hits == 1
                resp = svc.solve("toe", rhs)
                # First request after restart rides the warm load.
                assert resp.record.cache_hit
                np.testing.assert_allclose(
                    resp.x, _reference(op, rhs), atol=1e-10)
        finally:
            set_default_cache(prev)
