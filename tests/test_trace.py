"""Tests for simulator event tracing and utilization analysis."""

import numpy as np
import pytest

from repro.machine import Barrier, Compute, Machine, Put, Recv
from repro.machine.trace import Trace, TraceEvent, render_gantt
from repro.parallel import simulate_factorization
from repro.toeplitz import ar_block_toeplitz


class TestTraceObject:
    def test_event_duration(self):
        e = TraceEvent(0, 1.0, 3.5, "compute")
        assert e.duration == pytest.approx(2.5)

    def test_zero_length_events_dropped(self):
        t = Trace()
        t.add(0, 1.0, 1.0, "compute")
        assert t.events == []

    def test_totals_and_filters(self):
        t = Trace()
        t.add(0, 0.0, 1.0, "compute")
        t.add(1, 0.0, 2.0, "idle")
        t.add(0, 1.0, 1.5, "idle")
        assert t.total() == pytest.approx(3.5)
        assert t.total("idle") == pytest.approx(2.5)
        assert len(t.for_rank(0)) == 2

    def test_phase_fractions_sum_to_one(self):
        t = Trace()
        t.add(0, 0.0, 1.0, "compute")
        t.add(0, 1.0, 3.0, "idle")
        fr = t.phase_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["idle"] == pytest.approx(2 / 3)

    def test_empty_trace(self):
        t = Trace()
        assert t.phase_fractions() == {}
        assert t.utilization(4, 0.0) == 0.0


class TestMachineTracing:
    def _run(self, trace):
        def prog(ctx):
            yield Compute(1.0 * (ctx.rank + 1))
            if ctx.rank == 0:
                yield Put(dest=1, tag="x", payload=None, words=8)
            elif ctx.rank == 1:
                yield Recv(src=0, tag="x")
            yield Barrier()
            return None

        return Machine(2, trace=trace).run(prog)

    def test_disabled_by_default(self):
        assert self._run(False).trace is None

    def test_events_cover_rank_time(self):
        rep = self._run(True)
        for r in rep.ranks:
            traced = sum(e.duration for e in rep.trace.for_rank(r.rank))
            assert traced == pytest.approx(r.time, rel=1e-9)

    def test_events_are_contiguous_per_rank(self):
        rep = self._run(True)
        for r in range(2):
            evs = sorted(rep.trace.for_rank(r), key=lambda e: e.start)
            for a, b in zip(evs, evs[1:]):
                assert b.start == pytest.approx(a.end)

    def test_utilization_bounds(self):
        rep = self._run(True)
        u = rep.trace.utilization(2, rep.makespan)
        assert 0.0 < u <= 1.0

    def test_render_gantt(self):
        rep = self._run(True)
        text = render_gantt(rep.trace, 2, rep.makespan, width=40)
        assert "PE0" in text and "PE1" in text
        assert render_gantt(Trace(), 2, 0.0) == "(empty trace)"


class TestDriverTracing:
    def test_simulated_run_trace(self):
        t = ar_block_toeplitz(8, 2, seed=1)
        run = simulate_factorization(t, nproc=4, b=1, collect=False,
                                     trace=True)
        assert run.report.trace is not None
        fr = run.report.trace.phase_fractions()
        assert "application" in fr or "compute" in fr
        # traced time per rank equals the rank clock
        for r in run.report.ranks:
            traced = sum(e.duration
                         for e in run.report.trace.for_rank(r.rank))
            assert traced == pytest.approx(r.time, rel=1e-9)

    def test_trace_off_by_default(self):
        t = ar_block_toeplitz(6, 2, seed=2)
        run = simulate_factorization(t, nproc=2, b=1, collect=False)
        assert run.report.trace is None
