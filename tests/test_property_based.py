"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.block_reflector import make_accumulator
from repro.core.generator import displacement, spd_generator
from repro.core.hyperbolic import HyperbolicHouseholder, \
    reflector_annihilating
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.core.signature import hyperbolic_norm_squared, signature_vector
from repro.baselines import block_levinson_solve
from repro.errors import BreakdownError, SingularMinorError
from repro.toeplitz import SymmetricBlockToeplitz, block_toeplitz_matvec
from repro.toeplitz.workloads import spectral_block_toeplitz

# Strategy: moderate sizes keep each example fast while varying shapes.
dims = st.tuples(st.integers(2, 8), st.integers(1, 4))  # (p, m)
seeds = st.integers(0, 10_000)


def _spd_from_seed(p, m, seed):
    return spectral_block_toeplitz(p, m, seed=seed)


def _sym_from_seed(p, m, seed):
    rng = np.random.default_rng(seed)
    blocks = [rng.uniform(-1, 1, size=(m, m)) for _ in range(p)]
    blocks[0] = blocks[0] + blocks[0].T
    return SymmetricBlockToeplitz(blocks)


class TestStructuralProperties:
    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_dense_symmetric_and_toeplitz(self, dim, seed):
        p, m = dim
        t = _sym_from_seed(p, m, seed)
        d = t.dense()
        np.testing.assert_allclose(d, d.T, atol=1e-12)
        for i in range(p - 1):
            np.testing.assert_allclose(
                d[i * m:(i + 1) * m, (i + 1) * m:(i + 2) * m],
                d[:m, m:2 * m], atol=1e-12)

    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_matvec_matches_dense(self, dim, seed):
        p, m = dim
        t = _sym_from_seed(p, m, seed)
        x = np.random.default_rng(seed + 1).standard_normal(t.order)
        np.testing.assert_allclose(block_toeplitz_matvec(t, x),
                                   t.dense() @ x, atol=1e-8)

    @given(dims, seeds)
    @settings(max_examples=30, deadline=None)
    def test_displacement_rank_bound(self, dim, seed):
        p, m = dim
        t = _sym_from_seed(p, m, seed)
        s = np.linalg.svd(displacement(t), compute_uv=False)
        if s[0] > 0:
            rank = int(np.sum(s > 1e-9 * s[0]))
            assert rank <= 2 * m

    @given(dims, seeds, st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_regroup_preserves_dense(self, dim, seed, factor):
        p, m = dim
        t = _sym_from_seed(p, m, seed)
        ms = m * factor
        assume(t.order % ms == 0)
        np.testing.assert_allclose(t.regroup(ms).dense(), t.dense(),
                                   atol=1e-12)


class TestReflectorProperties:
    @given(st.integers(2, 8), seeds)
    @settings(max_examples=40, deadline=None)
    def test_w_unitarity(self, n, seed):
        rng = np.random.default_rng(seed)
        w = signature_vector(rng.choice([-1, 1], size=n))
        x = rng.standard_normal(n)
        assume(abs(hyperbolic_norm_squared(x, w)) > 1e-3 * float(x @ x))
        u = HyperbolicHouseholder(x, w)
        wmat = np.diag(w.astype(float))
        umat = u.matrix()
        scale = max(1.0, np.linalg.norm(umat) ** 2)
        np.testing.assert_allclose(umat.T @ wmat @ umat, wmat,
                                   atol=1e-11 * scale)

    @given(st.integers(2, 6), seeds)
    @settings(max_examples=40, deadline=None)
    def test_annihilation_property(self, n, seed):
        rng = np.random.default_rng(seed)
        w = signature_vector(rng.choice([-1, 1], size=n))
        u_vec = rng.standard_normal(n)
        h = hyperbolic_norm_squared(u_vec, w)
        assume(abs(h) > 1e-3 * float(u_vec @ u_vec))
        targets = np.nonzero(w == (1 if h > 0 else -1))[0]
        assume(targets.size > 0)
        j = int(targets[0])
        refl, sigma = reflector_annihilating(u_vec, w, j)
        out = refl.apply_left(u_vec)
        expect = np.zeros(n)
        expect[j] = -sigma
        np.testing.assert_allclose(
            out, expect, atol=1e-8 * max(1.0, abs(sigma),
                                         np.linalg.norm(refl.x) ** 2))

    @given(st.integers(1, 5), seeds,
           st.sampled_from(["vy1", "vy2", "yty"]))
    @settings(max_examples=30, deadline=None)
    def test_accumulated_product(self, k, seed, rep):
        rng = np.random.default_rng(seed)
        n = 6
        w = signature_vector([1, 1, 1, -1, -1, -1])
        acc = make_accumulator(rep, w)
        explicit = np.eye(n)
        count = 0
        while count < k:
            x = rng.standard_normal(n)
            if abs(hyperbolic_norm_squared(x, w)) < 0.5:
                continue
            refl = HyperbolicHouseholder(x, w)
            acc.append(refl)
            explicit = refl.matrix() @ explicit
            count += 1
        scale = max(1.0, np.linalg.norm(explicit))
        np.testing.assert_allclose(acc.finish().matrix(), explicit,
                                   atol=1e-9 * scale)


class TestFactorizationProperties:
    @given(dims, seeds)
    @settings(max_examples=25, deadline=None)
    def test_spd_factorization(self, dim, seed):
        p, m = dim
        t = _spd_from_seed(p, m, seed)
        fact = schur_spd_factor(t)
        d = t.dense()
        scale = np.linalg.norm(d)
        cond = np.linalg.cond(d)
        assert np.max(np.abs(fact.r.T @ fact.r - d)) <= \
            1e-12 * scale * max(cond, 10)
        assert np.all(np.diag(fact.r) > 0)

    @given(dims, seeds, st.sampled_from(["vy1", "vy2", "yty"]),
           st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_representation_and_panel_equivalence(self, dim, seed, rep,
                                                  panel):
        p, m = dim
        t = _spd_from_seed(p, m, seed)
        base = schur_spd_factor(t).r
        alt = schur_spd_factor(
            t, options=SchurOptions(representation=rep,
                                    panel=min(panel, m))).r
        np.testing.assert_allclose(alt, base,
                                   atol=1e-8 * max(1, np.linalg.norm(base)))

    @given(dims, seeds)
    @settings(max_examples=20, deadline=None)
    def test_indefinite_factorization(self, dim, seed):
        p, m = dim
        t = _sym_from_seed(p, m, seed)
        try:
            fact = schur_indefinite_factor(t, perturb=False)
        except (SingularMinorError, BreakdownError):
            assume(False)
            return
        d = t.dense()
        scale = max(1.0, np.linalg.norm(d))
        growth = max(1.0, np.linalg.norm(fact.r) ** 2 / scale)
        assert np.max(np.abs(fact.reconstruct() - d)) <= \
            1e-10 * scale * growth

    @given(dims, seeds)
    @settings(max_examples=15, deadline=None)
    def test_levinson_agrees_with_schur(self, dim, seed):
        p, m = dim
        t = _spd_from_seed(p, m, seed)
        b = np.random.default_rng(seed + 2).standard_normal(t.order)
        x_lev = block_levinson_solve(t, b).x
        x_schur = schur_spd_factor(t).solve(b)
        cond = np.linalg.cond(t.dense())
        np.testing.assert_allclose(
            x_lev, x_schur,
            atol=1e-10 * max(cond, 10) * max(1, np.linalg.norm(x_schur)))

    @given(dims, seeds)
    @settings(max_examples=15, deadline=None)
    def test_solve_residual(self, dim, seed):
        p, m = dim
        t = _spd_from_seed(p, m, seed)
        b = np.random.default_rng(seed + 3).standard_normal(t.order)
        x = schur_spd_factor(t).solve(b)
        cond = np.linalg.cond(t.dense())
        resid = np.linalg.norm(t.dense() @ x - b)
        assert resid <= 1e-11 * max(cond, 10) * np.linalg.norm(b)
