"""Tests for the high-level API in :mod:`repro.core.solve`."""

import numpy as np
import pytest

from repro.core.solve import cholesky, ldlt, solve, solve_refined
from repro.errors import (
    InvalidOptionError,
    NotPositiveDefiniteError,
    ShapeError,
)
from repro.toeplitz import (
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
    singular_minor_toeplitz,
)


class TestCholeskyAPI:
    def test_block_toeplitz_input(self, small_spd_block):
        fact = cholesky(small_spd_block)
        np.testing.assert_allclose(fact.reconstruct(),
                                   small_spd_block.dense(), atol=1e-9)

    def test_first_row_input(self):
        fact = cholesky([1.0, 0.5, 0.25])
        t = kms_toeplitz(3, 0.5)
        np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                   atol=1e-12)

    def test_dense_input_with_block_size(self, small_spd_block):
        fact = cholesky(small_spd_block.dense(),
                        block_size=small_spd_block.block_size)
        np.testing.assert_allclose(fact.reconstruct(),
                                   small_spd_block.dense(), atol=1e-9)

    def test_dense_input_requires_block_size(self, small_spd_block):
        with pytest.raises(ShapeError):
            cholesky(small_spd_block.dense())

    def test_representation_kwarg(self, small_spd_block):
        r1 = cholesky(small_spd_block, representation="yty").r
        r2 = cholesky(small_spd_block).r
        np.testing.assert_allclose(r1, r2, atol=1e-10)

    def test_3d_input_rejected(self):
        with pytest.raises(ShapeError):
            cholesky(np.ones((2, 2, 2)))


class TestLdltAPI:
    def test_indefinite(self):
        t = indefinite_toeplitz(10, seed=1)
        fact = ldlt(t)
        if not fact.perturbed:
            np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                       atol=1e-7)

    def test_singular_minor_with_perturb(self):
        fact = ldlt(paper_example_matrix())
        assert fact.perturbed

    def test_perturb_false(self):
        from repro.errors import SingularMinorError
        with pytest.raises(SingularMinorError):
            ldlt(paper_example_matrix(), perturb=False)


class TestSolveAPI:
    def test_spd_path(self, small_spd_block, rng):
        b = rng.standard_normal(small_spd_block.order)
        x = solve(small_spd_block, b)
        np.testing.assert_allclose(small_spd_block.dense() @ x, b,
                                   atol=1e-8)

    def test_auto_fallback_to_indefinite(self, rng):
        t = indefinite_toeplitz(9, seed=2)
        b = rng.standard_normal(9)
        x = solve(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-6)

    def test_singular_minor_auto(self, rng):
        t = singular_minor_toeplitz(8, seed=3)
        b = rng.standard_normal(8)
        x = solve(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-6)

    def test_assume_spd_raises_on_indefinite(self):
        t = indefinite_toeplitz(8, seed=4)
        with pytest.raises(NotPositiveDefiniteError):
            solve(t, np.ones(8), assume="spd")

    def test_assume_indefinite_path(self, rng):
        t = kms_toeplitz(12, 0.5)
        b = rng.standard_normal(12)
        x = solve(t, b, assume="indefinite")
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_unknown_assume(self):
        with pytest.raises(InvalidOptionError):
            solve(kms_toeplitz(4, 0.5), np.ones(4), assume="maybe")

    def test_first_row_input(self, rng):
        b = rng.standard_normal(5)
        x = solve([2.0, 0.3, 0.1, 0.0, 0.0], b)
        t = np.array([[2.0, .3, .1, 0, 0]])
        from scipy.linalg import solve_toeplitz
        ref = solve_toeplitz([2.0, .3, .1, 0, 0], b)
        np.testing.assert_allclose(x, ref, atol=1e-9)


class TestSolveRefinedAPI:
    def test_paper_pipeline(self):
        t = paper_example_matrix()
        x_true = np.ones(6)
        b = t.dense() @ x_true
        res = solve_refined(t, b)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-11

    def test_returns_refinement_trace(self, rng):
        t = singular_minor_toeplitz(10, seed=5)
        b = rng.standard_normal(10)
        res = solve_refined(t, b, keep_history=True)
        assert len(res.history) >= 1
        assert res.residual_norms

    def test_custom_delta(self):
        t = paper_example_matrix()
        b = t.dense() @ np.ones(6)
        res = solve_refined(t, b, delta=1e-4)
        assert res.converged
        assert np.linalg.norm(res.x - np.ones(6)) < 1e-10
