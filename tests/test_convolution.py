"""Tests for convolution operators and structured least squares."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.toeplitz.convolution import ConvolutionOperator, toeplitz_lstsq


def _scalar_op(n_in=12, taps=(1.0, 0.5, 0.2)):
    return ConvolutionOperator(np.array(taps), n_in)


def _mimo_op(n_in=9, seed=0, m=2, L=4):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((L, m, m))
    h[0] += 2 * np.eye(m)
    return ConvolutionOperator(h, n_in)


class TestOperator:
    def test_shapes(self):
        op = _scalar_op()
        assert op.shape == (14, 12)
        op = _mimo_op()
        assert op.shape == (24, 18)

    def test_matvec_matches_dense(self, rng):
        for op in (_scalar_op(), _mimo_op()):
            d = op.dense()
            x = rng.standard_normal(op.shape[1])
            np.testing.assert_allclose(op.matvec(x), d @ x, atol=1e-12)

    def test_rmatvec_matches_dense(self, rng):
        for op in (_scalar_op(), _mimo_op()):
            d = op.dense()
            y = rng.standard_normal(op.shape[0])
            np.testing.assert_allclose(op.rmatvec(y), d.T @ y,
                                       atol=1e-12)

    def test_multi_column(self, rng):
        op = _mimo_op()
        x = rng.standard_normal((op.shape[1], 3))
        np.testing.assert_allclose(op.matvec(x), op.dense() @ x,
                                   atol=1e-12)

    def test_normal_matrix_exact(self):
        for op in (_scalar_op(), _mimo_op(), _mimo_op(seed=3, m=3, L=2)):
            d = op.dense()
            np.testing.assert_allclose(op.normal_matrix().dense(),
                                       d.T @ d, atol=1e-11)

    def test_normal_matrix_spd(self):
        op = _mimo_op()
        eig = np.linalg.eigvalsh(op.normal_matrix().dense())
        assert eig[0] > 0

    def test_short_filter_zero_padding(self):
        # L < n_in: the normal matrix is banded (zero blocks beyond L)
        op = _scalar_op(n_in=10, taps=(1.0, 0.4))
        a = op.normal_matrix()
        row = a.first_scalar_row()
        np.testing.assert_allclose(row[2:], 0.0)

    def test_validation(self):
        with pytest.raises(ShapeError):
            ConvolutionOperator(np.zeros(3), 5)
        with pytest.raises(ShapeError):
            ConvolutionOperator(np.ones((2, 2, 3)), 5)
        with pytest.raises(ShapeError):
            ConvolutionOperator(np.ones(3), 0)
        op = _scalar_op()
        with pytest.raises(ShapeError):
            op.matvec(np.ones(5))
        with pytest.raises(ShapeError):
            op.rmatvec(np.ones(5))


class TestLeastSquares:
    def test_matches_lstsq_scalar(self, rng):
        op = _scalar_op(n_in=20)
        d = op.dense()
        x_true = rng.standard_normal(20)
        y = d @ x_true + 0.01 * rng.standard_normal(d.shape[0])
        x = toeplitz_lstsq(np.array([1.0, 0.5, 0.2]), y, 20)
        ref, *_ = np.linalg.lstsq(d, y, rcond=None)
        np.testing.assert_allclose(x, ref, atol=1e-9)

    def test_matches_lstsq_mimo(self, rng):
        op = _mimo_op(n_in=12, seed=5)
        d = op.dense()
        y = rng.standard_normal(d.shape[0])
        x = toeplitz_lstsq(op.taps, y, 12)
        ref, *_ = np.linalg.lstsq(d, y, rcond=None)
        np.testing.assert_allclose(x, ref, atol=1e-8)

    def test_exact_data_recovers_input(self, rng):
        op = _scalar_op(n_in=16)
        x_true = rng.standard_normal(16)
        y = op.matvec(x_true)
        x = toeplitz_lstsq(np.array([1.0, 0.5, 0.2]), y, 16)
        np.testing.assert_allclose(x, x_true, atol=1e-10)

    def test_refinement_helps_conditioning(self, rng):
        # near-common-zero filter → badly conditioned normal equations
        taps = np.array([1.0, -1.99, 0.99])
        op = ConvolutionOperator(taps, 48)
        d = op.dense()
        x_true = rng.standard_normal(48)
        y = d @ x_true
        x0 = toeplitz_lstsq(taps, y, 48, refine_steps=0)
        x2 = toeplitz_lstsq(taps, y, 48, refine_steps=2)
        e0 = np.linalg.norm(x0 - x_true)
        e2 = np.linalg.norm(x2 - x_true)
        assert e2 <= e0 * 1.01

    def test_rhs_shape(self):
        with pytest.raises(ShapeError):
            toeplitz_lstsq(np.array([1.0, 0.3]), np.ones(7), 5)
