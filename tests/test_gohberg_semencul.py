"""Tests for the Gohberg–Semencul fast inverse operator."""

import numpy as np
import pytest

from repro.core.gohberg_semencul import ToeplitzInverse, toeplitz_inverse
from repro.errors import BreakdownError, ShapeError
from repro.toeplitz import (
    ar_block_toeplitz,
    fgn_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    singular_minor_toeplitz,
)


class TestOperator:
    @pytest.mark.parametrize("maker", [
        lambda: kms_toeplitz(32, 0.6),
        lambda: kms_toeplitz(17, 0.9),
        lambda: fgn_toeplitz(24, 0.8),
    ])
    def test_dense_matches_inverse(self, maker):
        t = maker()
        inv = toeplitz_inverse(t)
        ref = np.linalg.inv(t.dense())
        kappa = np.linalg.cond(t.dense())
        np.testing.assert_allclose(inv.dense(), ref,
                                   atol=1e-13 * max(kappa, 10))

    def test_matvec_vs_dense(self, rng):
        t = kms_toeplitz(50, 0.7)
        inv = toeplitz_inverse(t)
        b = rng.standard_normal(50)
        np.testing.assert_allclose(inv @ b,
                                   np.linalg.solve(t.dense(), b),
                                   atol=1e-10)

    def test_multiple_columns(self, rng):
        t = kms_toeplitz(20, 0.5)
        inv = toeplitz_inverse(t)
        b = rng.standard_normal((20, 4))
        np.testing.assert_allclose(inv.matvec(b),
                                   np.linalg.solve(t.dense(), b),
                                   atol=1e-10)

    def test_indefinite_matrix(self):
        t = indefinite_toeplitz(15, seed=4)
        inv = toeplitz_inverse(t)
        kappa = np.linalg.cond(t.dense())
        np.testing.assert_allclose(inv.dense(), np.linalg.inv(t.dense()),
                                   atol=1e-11 * max(kappa, 10))

    def test_singular_minor_matrix(self):
        # the refinement fallback makes the solve (and hence the GS
        # representation) accurate even with singular leading minors
        t = singular_minor_toeplitz(12, seed=5)
        inv = toeplitz_inverse(t)
        kappa = np.linalg.cond(t.dense())
        np.testing.assert_allclose(inv.dense(), np.linalg.inv(t.dense()),
                                   atol=1e-10 * max(kappa, 10))

    def test_inverse_property(self, rng):
        t = kms_toeplitz(30, 0.4)
        inv = toeplitz_inverse(t)
        b = rng.standard_normal(30)
        np.testing.assert_allclose(t.dense() @ (inv @ b), b, atol=1e-10)


class TestValidation:
    def test_block_matrix_rejected(self):
        with pytest.raises(ShapeError):
            toeplitz_inverse(ar_block_toeplitz(4, 2, seed=1))

    def test_zero_corner_rejected(self):
        with pytest.raises(BreakdownError):
            ToeplitzInverse(np.array([0.0, 1.0, 2.0]))

    def test_matrix_input_rejected(self):
        with pytest.raises(ShapeError):
            ToeplitzInverse(np.ones((3, 3)))

    def test_rhs_shape(self):
        inv = toeplitz_inverse(kms_toeplitz(8, 0.5))
        with pytest.raises(ShapeError):
            inv.matvec(np.ones(9))

    def test_order_property(self):
        assert toeplitz_inverse(kms_toeplitz(9, 0.5)).order == 9
