"""Tests for the pipelined (lookahead) distributed factorization."""

import numpy as np
import pytest

from repro.core.schur_spd import schur_spd_factor
from repro.errors import DistributionError
from repro.parallel import simulate_factorization
from repro.toeplitz import ar_block_toeplitz, kms_toeplitz


class TestLookaheadCorrectness:
    @pytest.mark.parametrize("nproc", [2, 3, 4, 7])
    def test_matches_serial(self, nproc):
        t = ar_block_toeplitz(11, 3, seed=nproc)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=nproc, b=1,
                                     program="lookahead")
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    def test_scalar_problem(self):
        t = kms_toeplitz(40, 0.6)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=4, b=1,
                                     program="lookahead")
        np.testing.assert_allclose(run.r, serial, atol=1e-11)

    @pytest.mark.parametrize("rep", ["vy1", "yty"])
    def test_representations(self, rep):
        t = ar_block_toeplitz(8, 2, seed=9)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=3, b=1,
                                     program="lookahead",
                                     representation=rep)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    def test_more_pes_than_blocks(self):
        t = ar_block_toeplitz(4, 2, seed=10)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=6, b=1,
                                     program="lookahead")
        np.testing.assert_allclose(run.r, serial, atol=1e-11)

    def test_collect_false(self):
        t = kms_toeplitz(32, 0.5)
        run = simulate_factorization(t, nproc=4, b=1,
                                     program="lookahead", collect=False)
        assert run.r is None
        assert run.time > 0


class TestLookaheadBehaviour:
    def test_hides_build_at_scale(self):
        # at large NP the serial build leaves the critical path
        t = kms_toeplitz(1024, 0.5).regroup(8)
        plain = simulate_factorization(t, nproc=32, b=1,
                                       collect=False).time
        look = simulate_factorization(t, nproc=32, b=1,
                                      program="lookahead",
                                      collect=False).time
        assert look < plain

    def test_fine_grained_messaging_costs_at_small_np(self):
        # the flip side: per-block messages hurt when blocks-per-PE is
        # large
        t = kms_toeplitz(1024, 0.5).regroup(8)
        plain = simulate_factorization(t, nproc=4, b=1,
                                       collect=False).time
        look = simulate_factorization(t, nproc=4, b=1,
                                      program="lookahead",
                                      collect=False).time
        assert look > 0.8 * plain  # no win expected here

    def test_deterministic(self):
        t = kms_toeplitz(64, 0.5).regroup(4)
        t1 = simulate_factorization(t, nproc=4, b=1,
                                    program="lookahead",
                                    collect=False).time
        t2 = simulate_factorization(t, nproc=4, b=1,
                                    program="lookahead",
                                    collect=False).time
        assert t1 == t2


class TestLookaheadValidation:
    def test_requires_version1(self):
        t = ar_block_toeplitz(8, 2, seed=11)
        with pytest.raises(DistributionError):
            simulate_factorization(t, nproc=2, b=2, program="lookahead")
        with pytest.raises(DistributionError):
            simulate_factorization(t, nproc=2, b=0.5,
                                   program="lookahead")

    def test_requires_two_pes(self):
        t = ar_block_toeplitz(6, 2, seed=12)
        with pytest.raises(DistributionError):
            simulate_factorization(t, nproc=1, b=1, program="lookahead")

    def test_unknown_program(self):
        t = ar_block_toeplitz(6, 2, seed=13)
        with pytest.raises(DistributionError):
            simulate_factorization(t, nproc=2, b=1, program="zzz")
