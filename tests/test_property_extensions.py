"""Property-based tests for the extension modules (GKO, streaming,
generalized displacement, Toeplitz-block)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.displacement_rank import (
    generalized_schur_factor,
    generator_from_dense,
    matrix_from_generator,
)
from repro.core.gko import solve_toeplitz_gko
from repro.core.schur_spd import schur_spd_factor
from repro.core.streaming import streaming_logdet, streaming_whiten
from repro.errors import BreakdownError, SingularMinorError
from repro.toeplitz import BlockToeplitz, SymmetricToeplitzBlock, \
    ar_block_toeplitz
from repro.toeplitz.workloads import spectral_block_toeplitz

dims = st.tuples(st.integers(2, 7), st.integers(1, 3))
seeds = st.integers(0, 10_000)


class TestGKOProperties:
    @given(dims, seeds)
    @settings(max_examples=25, deadline=None)
    def test_solve_residual(self, dim, seed):
        p, m = dim
        rng = np.random.default_rng(seed)
        col = [rng.uniform(-1, 1, (m, m)) for _ in range(p)]
        row = [col[0]] + [rng.uniform(-1, 1, (m, m))
                          for _ in range(p - 1)]
        t = BlockToeplitz(col, row)
        d = t.dense()
        assume(abs(np.linalg.det(d)) > 1e-8)
        cond = np.linalg.cond(d)
        assume(cond < 1e8)
        b = rng.standard_normal(t.order)
        try:
            x = solve_toeplitz_gko(t, b)
        except BreakdownError:
            assume(False)
            return
        assert np.linalg.norm(d @ x - b) <= \
            1e-10 * cond * max(np.linalg.norm(b), 1.0)


class TestStreamingProperties:
    @given(dims, seeds)
    @settings(max_examples=25, deadline=None)
    def test_whiten_equals_stored_solve(self, dim, seed):
        p, m = dim
        t = spectral_block_toeplitz(p, m, seed=seed)
        rng = np.random.default_rng(seed + 1)
        b = rng.standard_normal(t.order)
        import scipy.linalg as sla
        fact = schur_spd_factor(t)
        ref = sla.solve_triangular(fact.r, b, trans=1,
                                   check_finite=False)
        got = streaming_whiten(t, b)
        scale = max(1.0, np.linalg.norm(ref))
        np.testing.assert_allclose(got, ref, atol=1e-9 * scale)

    @given(dims, seeds)
    @settings(max_examples=20, deadline=None)
    def test_logdet_matches_slogdet(self, dim, seed):
        p, m = dim
        t = spectral_block_toeplitz(p, m, seed=seed)
        _, ref = np.linalg.slogdet(t.dense())
        got = streaming_logdet(t)
        assert abs(got - ref) <= 1e-8 * max(1.0, abs(ref))


class TestGeneralizedDisplacementProperties:
    @given(st.integers(4, 12), st.integers(2, 5), seeds)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_and_factor(self, n, alpha, seed):
        rng = np.random.default_rng(seed)
        g = rng.uniform(-1, 1, (alpha, n))
        w = np.array([1 if i % 2 == 0 else -1 for i in range(alpha)],
                     dtype=np.int8)
        a0 = matrix_from_generator(g, w)
        lam = np.linalg.eigvalsh(a0)
        a = a0 + (abs(lam[0]) + 1.0) * np.eye(n)
        g2, w2 = generator_from_dense(a)
        np.testing.assert_allclose(matrix_from_generator(g2, w2), a,
                                   atol=1e-8 * max(1, np.linalg.norm(a)))
        try:
            fact = generalized_schur_factor(g2, w2)
        except (SingularMinorError, BreakdownError):
            assume(False)
            return
        np.testing.assert_allclose(
            fact.reconstruct(), a,
            atol=1e-8 * max(1, np.linalg.norm(a)) *
            max(1, np.linalg.cond(a) ** 0.5))


class TestToeplitzBlockProperties:
    @given(st.tuples(st.integers(2, 6), st.integers(1, 3)), seeds)
    @settings(max_examples=20, deadline=None)
    def test_shuffle_identity(self, dim, seed):
        p, m = dim
        t = ar_block_toeplitz(p, m, seed=seed)
        gammas = np.stack([np.array(t.top_blocks[k]) for k in range(p)])
        tb = SymmetricToeplitzBlock.from_cross_covariances(gammas)
        d = tb.dense()
        perm = tb.permutation()
        np.testing.assert_allclose(d[np.ix_(perm, perm)],
                                   tb.to_block_toeplitz().dense(),
                                   atol=1e-10)

    @given(st.tuples(st.integers(2, 6), st.integers(1, 3)), seeds)
    @settings(max_examples=15, deadline=None)
    def test_solve_in_original_ordering(self, dim, seed):
        p, m = dim
        t = ar_block_toeplitz(p, m, seed=seed)
        gammas = np.stack([np.array(t.top_blocks[k]) for k in range(p)])
        tb = SymmetricToeplitzBlock.from_cross_covariances(gammas)
        rng = np.random.default_rng(seed + 5)
        b = rng.standard_normal(tb.order)
        x = tb.solve(b)
        d = tb.dense()
        cond = np.linalg.cond(d)
        assert np.linalg.norm(d @ x - b) <= \
            1e-10 * max(cond, 10) * np.linalg.norm(b)
