"""Tests for numerical-health telemetry: gauges, hooks, zero overhead."""

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.core.precision import refinement_admissible
from repro.core.refinement import refine
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.core.schur_spd import schur_spd_factor
from repro.engine import FactorizationCache, set_default_cache
from repro.obs import health
from repro.obs.metrics import MetricsRegistry
from repro.toeplitz import kms_toeplitz, paper_example_matrix


@pytest.fixture
def traced():
    registry = MetricsRegistry()
    prev_registry = obs.set_default_registry(registry)
    prev_cache = set_default_cache(FactorizationCache())
    obs.enable()
    yield registry
    obs.disable()
    obs.set_default_registry(prev_registry)
    set_default_cache(prev_cache)


@pytest.fixture
def untraced():
    registry = MetricsRegistry()
    prev_registry = obs.set_default_registry(registry)
    was = obs.enabled()
    obs.disable()
    yield registry
    if was:
        obs.enable()
    obs.set_default_registry(prev_registry)


# ----------------------------------------------------------------------
# Hooks fire when enabled
# ----------------------------------------------------------------------
class TestHooksEnabled:
    def test_spd_factor_records_margins_and_pivots(self, traced):
        schur_spd_factor(kms_toeplitz(64, 0.5))
        snap = traced.snapshot()
        assert snap["repro_health_reflectors_total"] == 63
        assert 0 < snap["repro_health_rotation_margin_min"]
        assert snap["repro_health_rotation_margin_ratio_min"] > 1.0
        assert 0 < snap["repro_health_pivot_ratio_min"] <= 1.0

    def test_margin_min_tracks_smallest(self, traced):
        # near-singular KMS (rho -> 1) has much thinner margins than a
        # well-conditioned one; the gauge keeps the run minimum
        schur_spd_factor(kms_toeplitz(32, 0.1))
        wide = traced.snapshot()["repro_health_rotation_margin_min"]
        schur_spd_factor(kms_toeplitz(32, 0.999))
        thin = traced.snapshot()["repro_health_rotation_margin_min"]
        assert thin < wide

    def test_indefinite_records_growth_and_events(self, traced):
        # the paper's eq.-50 example has a singular leading minor:
        # a perturbation must be recorded and growth spikes to ~2/sqrt(δ)
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        assert fact.perturbed
        snap = traced.snapshot()
        assert snap["repro_health_perturbations_total"] >= 1
        assert snap["repro_health_growth_factor_max"] == pytest.approx(
            fact.max_transform_norm)
        assert snap["repro_health_growth_steps_total"] == \
            fact.num_blocks - 1

    def test_admission_decisions_recorded(self, traced):
        assert refinement_admissible(10.0, "fp32")
        assert not refinement_admissible(1e12, "fp32")
        snap = traced.snapshot()
        key_t = ('repro_health_admission_total'
                 '{admitted="true",precision="fp32"}')
        key_f = ('repro_health_admission_total'
                 '{admitted="false",precision="fp32"}')
        assert snap[key_t] == 1
        assert snap[key_f] == 1
        assert snap["repro_health_cond_estimate"] == 1e12

    def test_fp64_admission_not_recorded(self, traced):
        assert refinement_admissible(1e30, "fp64")
        assert not any("admission" in k for k in traced.snapshot())

    def test_refinement_contraction_recorded(self, traced):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        res = refine(fact, t, np.ones(t.order))
        assert res.converged
        snap = traced.snapshot()
        # δ = ∛ε perturbation ⇒ strong contraction per sweep (§8.2)
        assert 0 < snap["repro_health_refinement_contraction"] < 0.5
        assert snap['repro_health_refinements_total{converged="true"}'] \
            == 1


# ----------------------------------------------------------------------
# Zero overhead when disabled
# ----------------------------------------------------------------------
class TestDisabled:
    def test_no_gauges_recorded_while_disabled(self, untraced):
        t = paper_example_matrix()
        schur_spd_factor(kms_toeplitz(64, 0.5))
        fact = schur_indefinite_factor(t)
        refine(fact, t, np.ones(t.order))
        refinement_admissible(10.0, "fp32")
        assert untraced.snapshot() == {}

    def test_direct_hook_calls_are_noops_while_disabled(self, untraced):
        health.record_rotation_margin(0.5, 1e-14)
        health.record_growth_factor(1, 100.0)
        health.record_pivot_spread(0.1, 1.0)
        health.record_indefinite_events(3, 2)
        health.record_admission("fp32", 10.0, True)
        health.record_refinement([1.0, 0.1], True)
        assert untraced.snapshot() == {}

    def test_disabled_guard_cost_is_tiny(self, untraced):
        # the disabled path is one module-global boolean check: bound
        # its per-call cost loosely (CI machines are noisy) — the real
        # budget gate lives in benchmarks/bench_engine_cache.py
        import time
        calls = 50_000
        t0 = time.perf_counter()
        for _ in range(calls):
            health.record_rotation_margin(0.5, 1e-14)
        per_call = (time.perf_counter() - t0) / calls
        assert per_call < 5e-6, per_call


# ----------------------------------------------------------------------
# Summary / early warnings
# ----------------------------------------------------------------------
class TestSummary:
    def test_clean_run_has_no_warnings(self, traced):
        schur_spd_factor(kms_toeplitz(64, 0.5))
        summary = health.health_summary()
        assert summary["observed"]
        assert summary["warnings"] == []
        assert "no early warnings" in health.render_health(summary)

    def test_perturbation_and_growth_warn(self, traced):
        t = paper_example_matrix()
        schur_indefinite_factor(t)
        summary = health.health_summary()
        text = " ".join(summary["warnings"])
        assert "perturbation" in text
        assert summary["perturbations"] >= 1
        rendered = health.render_health(summary)
        assert "early warnings" in rendered
        assert "!" in rendered

    def test_margin_ratio_warning(self):
        reg = MetricsRegistry()
        reg.gauge("repro_health_rotation_margin_ratio_min").set(2.0)
        summary = health.health_summary(reg.snapshot())
        assert any("breakdown tolerance" in w
                   for w in summary["warnings"])

    def test_rejection_and_nonconvergence_warn(self):
        reg = MetricsRegistry()
        reg.counter("repro_health_admission_total").inc(
            2, precision="fp32", admitted="false")
        reg.counter("repro_health_refinements_total").inc(
            1, converged="false")
        summary = health.health_summary(reg.snapshot())
        text = " ".join(summary["warnings"])
        assert "rejection" in text
        assert "did not converge" in text
        assert summary["admission_rejections"] == 2

    def test_contraction_warning(self):
        reg = MetricsRegistry()
        reg.gauge("repro_health_refinement_contraction_max").set(0.9)
        summary = health.health_summary(reg.snapshot())
        assert any("marginal" in w for w in summary["warnings"])

    def test_summary_accepts_profile_metrics(self, traced):
        t = kms_toeplitz(48, 0.5)
        pl = engine.plan(t, assume="spd")
        res = engine.execute(pl, np.ones(48))
        summary = health.health_summary(res.profile.metrics)
        assert summary["observed"]
        assert summary["reflectors"] > 0

    def test_empty_snapshot_not_observed(self):
        summary = health.health_summary({})
        assert not summary["observed"]
        assert summary["warnings"] == []
