"""Seeded fuzz grid: accuracy of every solver against LAPACK references.

Condition-scaled tolerances: for a backward-stable solver the forward
error is bounded by ≈ κ(T)·ε, so each comparison budgets
``tol = C · κ₁(T) · ε · ‖x‖`` with a generous constant.
"""

import numpy as np
import pytest

from repro.baselines import block_levinson_solve, dense_ldl_solve
from repro.core.gko import solve_toeplitz_gko
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.core.schur_spd import schur_spd_factor
from repro.core.solve import solve_refined
from repro.errors import SingularMinorError
from repro.toeplitz import (
    ar_block_toeplitz,
    fgn_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    ma_banded_toeplitz,
    prolate_toeplitz,
    singular_minor_toeplitz,
    spectral_block_toeplitz,
)

EPS = np.finfo(np.float64).eps

SPD_CASES = [
    ("kms-mild", lambda s: kms_toeplitz(48, 0.5)),
    ("kms-hard", lambda s: kms_toeplitz(48, 0.95)),
    ("prolate", lambda s: prolate_toeplitz(24, 0.42)),
    ("fgn", lambda s: fgn_toeplitz(40, 0.85)),
    ("ma", lambda s: ma_banded_toeplitz(36, (0.7, 0.4, 0.2))),
    ("ar-m2", lambda s: ar_block_toeplitz(16, 2, seed=s)),
    ("ar-m4", lambda s: ar_block_toeplitz(10, 4, seed=s)),
    ("spectral-m3", lambda s: spectral_block_toeplitz(12, 3, seed=s)),
]


def _tolerance(t, x, factor=1e3):
    kappa = np.linalg.cond(t.dense(), 1)
    return factor * kappa * EPS * max(np.linalg.norm(x), 1.0)


@pytest.mark.parametrize("name,maker", SPD_CASES)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestSPDGrid:
    def test_schur_solve(self, name, maker, seed):
        t = maker(seed)
        rng = np.random.default_rng(seed + 100)
        x_true = rng.standard_normal(t.order)
        b = t.dense() @ x_true
        x = schur_spd_factor(t).solve(b)
        assert np.linalg.norm(x - x_true) <= _tolerance(t, x_true)

    def test_levinson_solve(self, name, maker, seed):
        t = maker(seed)
        rng = np.random.default_rng(seed + 200)
        x_true = rng.standard_normal(t.order)
        b = t.dense() @ x_true
        x = block_levinson_solve(t, b).x
        assert np.linalg.norm(x - x_true) <= _tolerance(t, x_true)

    def test_gko_solve(self, name, maker, seed):
        t = maker(seed)
        rng = np.random.default_rng(seed + 300)
        x_true = rng.standard_normal(t.order)
        b = t.dense() @ x_true
        x = solve_toeplitz_gko(t, b)
        assert np.linalg.norm(x - x_true) <= _tolerance(t, x_true)


@pytest.mark.parametrize("seed", range(8))
class TestIndefiniteGrid:
    def test_indefinite_vs_lapack(self, seed):
        t = indefinite_toeplitz(15, seed=seed)
        rng = np.random.default_rng(seed + 400)
        x_true = rng.standard_normal(15)
        b = t.dense() @ x_true
        fact = schur_indefinite_factor(t)
        res = solve_refined(t, b)
        ref = dense_ldl_solve(t, b)
        tol = _tolerance(t, x_true, factor=1e4)
        assert np.linalg.norm(res.x - x_true) <= tol
        assert np.linalg.norm(ref - x_true) <= tol

    def test_singular_minor_refined(self, seed):
        t = singular_minor_toeplitz(14, minor=2, seed=seed)
        rng = np.random.default_rng(seed + 500)
        x_true = rng.standard_normal(14)
        b = t.dense() @ x_true
        res = solve_refined(t, b)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) <= \
            _tolerance(t, x_true, factor=1e4)

    def test_gko_on_indefinite(self, seed):
        t = indefinite_toeplitz(13, seed=seed)
        rng = np.random.default_rng(seed + 600)
        x_true = rng.standard_normal(13)
        b = t.dense() @ x_true
        x = solve_toeplitz_gko(t, b)
        assert np.linalg.norm(x - x_true) <= \
            _tolerance(t, x_true, factor=1e4)


class TestGrowthAndStability:
    @pytest.mark.parametrize("rho", [0.1, 0.5, 0.9, 0.99])
    def test_residual_backward_stable(self, rho, rng):
        # ‖RᵀR − T‖ should stay a modest multiple of ε‖T‖ for SPD
        # matrices regardless of conditioning (Schur is weakly stable).
        t = kms_toeplitz(64, rho)
        fact = schur_spd_factor(t)
        d = t.dense()
        resid = np.max(np.abs(fact.reconstruct() - d))
        assert resid <= 1e3 * EPS * np.linalg.norm(d) * \
            np.sqrt(np.linalg.cond(d))

    def test_factor_entries_bounded_spd(self):
        # SPD: |R[i, j]| ≤ √(T_jj); no element growth.
        t = ar_block_toeplitz(12, 3, seed=7)
        fact = schur_spd_factor(t)
        dmax = np.sqrt(np.max(np.diag(t.dense())))
        assert np.max(np.abs(fact.r)) <= dmax * (1 + 1e-10)

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13, 21, 34])
    def test_size_sweep(self, n, rng):
        t = kms_toeplitz(n, 0.6)
        b = rng.standard_normal(n)
        x = schur_spd_factor(t).solve(b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-9)
