"""Tests for the closed-form flop models (eqs. 25–32) and their
agreement with instrumented counts."""

import numpy as np
import pytest

from repro.blas import primitives as blas
from repro.core import flops as F
from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.errors import ShapeError
from repro.toeplitz import ar_block_toeplitz, kms_toeplitz


class TestBlockingFormulas:
    """Eqs. 25–28 with k = m reduce to the paper's printed totals."""

    @pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
    def test_dense_eq25(self, m):
        expect = 6 * m ** 3 + 1.5 * m ** 2 + 11.5 * m
        assert F.blocking_flops("dense", m) == pytest.approx(expect)

    @pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
    def test_vy1_eq26(self, m):
        expect = (2 + 1 / 3) * m ** 3 + 3.75 * m ** 2 + 8 * m
        assert F.blocking_flops("vy1", m) == pytest.approx(expect, rel=1e-2)

    @pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
    def test_vy2_eq27(self, m):
        expect = 2 * m ** 3 + 3 * m ** 2 + 8 * m
        assert F.blocking_flops("vy2", m) == pytest.approx(expect)

    @pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
    def test_yty_eq28(self, m):
        expect = (1 + 1 / 3) * m ** 3 + 3.75 * m ** 2 + 8 * m - 1
        assert F.blocking_flops("yty", m) == pytest.approx(expect, rel=1e-2)

    @pytest.mark.parametrize("m", [4, 8, 16, 32])
    def test_blocking_cost_ranking(self, m):
        """Section 6.2: YTYᵀ < VY2 < VY1 < naive U."""
        yty = F.blocking_flops("yty", m)
        vy2 = F.blocking_flops("vy2", m)
        vy1 = F.blocking_flops("vy1", m)
        dense = F.blocking_flops("dense", m)
        assert yty < vy2 < vy1 < dense

    def test_invalid_args(self):
        with pytest.raises(ShapeError):
            F.blocking_flops("vy1", 0)
        with pytest.raises(ShapeError):
            F.blocking_flops("vy1", 4, k=5)
        with pytest.raises(ShapeError):
            F.blocking_flops("zzz", 4)


class TestApplicationFormulas:
    """Eqs. 29–32 with k = m."""

    @pytest.mark.parametrize("m,p", [(2, 10), (4, 8), (8, 16), (7, 3)])
    def test_dense_eq29(self, m, p):
        expect = 7 * m ** 3 * p + m ** 2 * p
        assert F.application_flops("dense", m, p) == pytest.approx(expect)

    @pytest.mark.parametrize("m,p", [(3, 10), (5, 8)])
    def test_vy1_eq30_odd(self, m, p):
        expect = 5 * m ** 3 * p + 4 * m ** 2 * p
        assert F.application_flops("vy1", m, p) == pytest.approx(expect)

    @pytest.mark.parametrize("m,p", [(4, 10), (8, 6)])
    def test_vy1_eq30_even(self, m, p):
        expect = 5 * m ** 3 * p + 3 * m ** 2 * p
        assert F.application_flops("vy1", m, p) == pytest.approx(expect)

    @pytest.mark.parametrize("m,p", [(3, 10), (5, 8)])
    def test_vy2_eq31_odd(self, m, p):
        expect = 5 * m ** 3 * p + 3 * m ** 2 * p
        assert F.application_flops("vy2", m, p) == pytest.approx(expect)

    @pytest.mark.parametrize("m,p", [(4, 10), (8, 6)])
    def test_vy2_eq31_even(self, m, p):
        expect = 5 * m ** 3 * p + 2 * m ** 2 * p
        assert F.application_flops("vy2", m, p) == pytest.approx(expect)

    @pytest.mark.parametrize("m,p", [(4, 10), (5, 8)])
    def test_yty_eq32(self, m, p):
        expect = 5 * m ** 3 * p + 5 * m ** 2 * p
        assert F.application_flops("yty", m, p) == pytest.approx(expect)

    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_application_ranking(self, m):
        """Section 6.3: VY2 cheapest to apply, U most expensive."""
        p = 16
        vy2 = F.application_flops("vy2", m, p)
        vy1 = F.application_flops("vy1", m, p)
        yty = F.application_flops("yty", m, p)
        dense = F.application_flops("dense", m, p)
        assert vy2 <= vy1 < yty < dense

    def test_zero_width(self):
        assert F.application_flops("vy2", 4, 0) == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ShapeError):
            F.application_flops("vy2", 4, -1)


class TestTotals:
    def test_factorization_flops_scaling(self):
        # total ≈ c·m·n² — check linearity in m at fixed n
        n = 256
        f1 = F.factorization_flops(n, 1)
        f4 = F.factorization_flops(n, 4)
        f16 = F.factorization_flops(n, 16)
        assert 2.0 < f4 / f1 < 6.0
        assert 2.0 < f16 / f4 < 6.0

    def test_nominal_total(self):
        assert F.nominal_total_flops(100, 2) == 4 * 2 * 100 * 100

    def test_factorization_flops_same_order_as_nominal(self):
        # model total within a small constant factor of 4mn²
        n, m = 512, 4
        model = F.factorization_flops(n, m)
        nominal = F.nominal_total_flops(n, m)
        assert 0.2 < model / nominal < 3.0

    def test_nonconforming_rejected(self):
        with pytest.raises(ShapeError):
            F.factorization_flops(10, 3)


class TestPrimitiveCalls:
    def test_call_flops(self):
        assert F.PrimitiveCall("dot", (10,)).flops == 19
        assert F.PrimitiveCall("axpy", (10,)).flops == 20
        assert F.PrimitiveCall("scal", (10,)).flops == 10
        assert F.PrimitiveCall("gemv", (3, 4)).flops == 24
        assert F.PrimitiveCall("ger", (3, 4)).flops == 24
        assert F.PrimitiveCall("gemm", (2, 3, 4)).flops == 48
        assert F.PrimitiveCall("trsm", (3, 5)).flops == 45

    def test_unknown_primitive(self):
        with pytest.raises(ShapeError):
            F.PrimitiveCall("foo", (1,)).flops

    @pytest.mark.parametrize("rep", ["vy1", "vy2", "yty", "dense",
                                     "unblocked"])
    def test_step_calls_positive(self, rep):
        calls = F.primitive_calls_for_step(4, 32, representation=rep)
        assert calls
        assert all(c.flops > 0 for c in calls)

    @pytest.mark.parametrize("rep", ["vy2", "yty"])
    def test_step_calls_leading_order_matches_formula(self, rep):
        # primitive decomposition should track the closed form to
        # leading order in the application-dominated regime
        m, p = 8, 64
        calls = F.primitive_calls_for_step(m, p * m, representation=rep)
        total = sum(c.flops for c in calls)
        formula = F.step_flops(rep, m, p)
        assert 0.5 < total / formula < 2.0

    def test_factorization_calls_include_setup(self):
        calls = F.primitive_calls_for_factorization(16, 2)
        assert calls[0].name == "trsm"


class TestCountedVsModel:
    """Instrumented flop counts from the real implementation should track
    the paper's formulas to leading order."""

    @pytest.mark.parametrize("rep", ["vy1", "vy2", "yty"])
    def test_factorization_counted_flops(self, rep):
        t = ar_block_toeplitz(16, 4, seed=1)
        with blas.counting() as c:
            schur_spd_factor(t, options=SchurOptions(representation=rep))
        model = F.factorization_flops(64, 4, representation=rep)
        assert 0.3 < c.total / model < 3.0

    def test_categories_present(self):
        t = ar_block_toeplitz(8, 4, seed=2)
        with blas.counting() as c:
            schur_spd_factor(t)
        assert "application" in c.by_category
        assert "blocking" in c.by_category
        assert "panel" in c.by_category

    def test_application_dominates_for_wide_problems(self):
        t = kms_toeplitz(256, 0.5).regroup(4)
        with blas.counting() as c:
            schur_spd_factor(t)
        assert c.by_category["application"] > c.by_category["blocking"]

    def test_counted_scaling_linear_in_ms(self):
        # Section 6.5: counted work grows ≈ linearly with m_s.
        t = kms_toeplitz(128, 0.5)
        totals = {}
        for ms in (2, 4, 8):
            with blas.counting() as c:
                schur_spd_factor(t.regroup(ms))
            totals[ms] = c.total
        assert 1.5 < totals[4] / totals[2] < 2.8
        assert 1.5 < totals[8] / totals[4] < 2.8
