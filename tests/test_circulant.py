"""Tests for the circulant preconditioners."""

import numpy as np
import pytest

from repro.baselines import (
    circulant_pcg,
    strang_preconditioner,
    tchan_preconditioner,
)
from repro.baselines.pcg import pcg
from repro.errors import ShapeError
from repro.toeplitz import ar_block_toeplitz, fgn_toeplitz, kms_toeplitz


class TestPreconditionerOperators:
    def test_matvec_matches_dense(self, rng):
        pre = strang_preconditioner(kms_toeplitz(32, 0.6))
        x = rng.standard_normal(32)
        np.testing.assert_allclose(pre.matvec(x), pre.dense() @ x,
                                   atol=1e-12)

    def test_solve_is_inverse(self, rng):
        pre = tchan_preconditioner(kms_toeplitz(24, 0.5))
        x = rng.standard_normal(24)
        np.testing.assert_allclose(pre.matvec(pre.solve(x)), x,
                                   atol=1e-11)

    def test_strang_copies_central_band(self):
        t = kms_toeplitz(8, 0.5)
        pre = strang_preconditioner(t)
        row = t.first_scalar_row()
        np.testing.assert_allclose(pre.first_column[:5], row[:5])
        np.testing.assert_allclose(pre.first_column[5], row[3])

    def test_tchan_weighted_average(self):
        t = kms_toeplitz(6, 0.5)
        pre = tchan_preconditioner(t)
        row = t.first_scalar_row()
        k = 2
        expect = ((6 - k) * row[k] + k * row[6 - k]) / 6
        assert pre.first_column[k] == pytest.approx(expect)

    def test_spd_spectrum(self):
        pre = strang_preconditioner(kms_toeplitz(40, 0.8))
        assert np.all(pre.eigenvalues > 0)

    def test_eigenvalue_floor(self):
        # a circulant built from an alternating row is singular; the
        # floor must keep it usable
        from repro.baselines.circulant import CirculantPreconditioner
        pre = CirculantPreconditioner(np.array([1.0, -1.0, 1.0, -1.0]))
        assert np.all(pre.eigenvalues > 0)

    def test_block_input_rejected(self):
        t = ar_block_toeplitz(4, 2, seed=1)
        with pytest.raises(ShapeError):
            strang_preconditioner(t)

    def test_shape_checks(self, rng):
        pre = strang_preconditioner(kms_toeplitz(8, 0.5))
        with pytest.raises(ShapeError):
            pre.solve(np.ones(9))


class TestCirculantPCG:
    @pytest.mark.parametrize("kind", ["strang", "tchan"])
    def test_converges_fast(self, kind, rng):
        t = kms_toeplitz(128, 0.9)
        b = rng.standard_normal(128)
        plain = pcg(t, b, tol=1e-10)
        res = circulant_pcg(t, b, kind=kind, tol=1e-10)
        assert res.converged
        assert res.iterations < 0.3 * plain.iterations
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-6)

    def test_long_memory_symbol(self, rng):
        # fGn has a hard (near-singular at 0) symbol; circulant PCG
        # still converges, just with more iterations.
        t = fgn_toeplitz(96, 0.85)
        b = rng.standard_normal(96)
        res = circulant_pcg(t, b, tol=1e-9, max_iter=400)
        assert res.converged
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-5)

    def test_unknown_kind(self):
        with pytest.raises(ShapeError):
            circulant_pcg(kms_toeplitz(8, 0.5), np.ones(8), kind="zzz")

    def test_first_row_input(self, rng):
        row = kms_toeplitz(16, 0.4).first_scalar_row()
        pre = strang_preconditioner(row)
        assert pre.order == 16
