"""Property-based tests for the machine simulator's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Barrier, Broadcast, Compute, Machine, Put, Recv


def _ring_program(rounds, work):
    def prog(ctx):
        r, n = ctx.rank, ctx.nproc
        total = 0.0
        for k in range(rounds):
            yield Compute(work[(r + k) % len(work)])
            yield Put(dest=(r + 1) % n, tag=("m", k), payload=r,
                      words=4)
            got = yield Recv(src=(r - 1) % n, tag=("m", k))
            total += got
            yield Barrier()
        return total

    return prog


class TestSimulatorInvariants:
    @given(st.integers(2, 6), st.integers(1, 5),
           st.lists(st.floats(0.0, 1e-3), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, nproc, rounds, work):
        prog = _ring_program(rounds, work)
        r1 = Machine(nproc).run(prog)
        r2 = Machine(nproc).run(prog)
        assert r1.makespan == r2.makespan
        assert r1.results == r2.results
        for a, b in zip(r1.ranks, r2.ranks):
            assert a.time == b.time
            assert a.by_category == b.by_category

    @given(st.integers(2, 6), st.integers(1, 4),
           st.lists(st.floats(0.0, 1e-3), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_clock_conservation_with_trace(self, nproc, rounds, work):
        # sum of traced event durations equals the rank clock
        prog = _ring_program(rounds, work)
        rep = Machine(nproc, trace=True).run(prog)
        for r in rep.ranks:
            traced = sum(e.duration
                         for e in rep.trace.for_rank(r.rank))
            assert abs(traced - r.time) <= 1e-12 * max(r.time, 1.0)

    @given(st.integers(2, 5), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_ring_values_correct(self, nproc, rounds):
        prog = _ring_program(rounds, [1e-6])
        rep = Machine(nproc).run(prog)
        for r in range(nproc):
            assert rep.results[r] == rounds * ((r - 1) % nproc)

    @given(st.integers(1, 6), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_broadcast_value_and_sync(self, nproc, root_seed):
        root = root_seed % nproc

        def prog(ctx):
            yield Compute(1e-6 * (ctx.rank + 1))
            got = yield Broadcast(root=root,
                                  payload=("v", root)
                                  if ctx.rank == root else None,
                                  words=2)
            return got

        rep = Machine(nproc).run(prog)
        assert rep.results == [("v", root)] * nproc
        # all clocks equal after the collective
        times = {round(r.time, 15) for r in rep.ranks}
        assert len(times) == 1

    @given(st.integers(2, 5), st.floats(0.0, 1e-3))
    @settings(max_examples=20, deadline=None)
    def test_makespan_at_least_max_compute(self, nproc, work):
        def prog(ctx):
            yield Compute(work * (ctx.rank + 1))
            yield Barrier()
            return None

        rep = Machine(nproc).run(prog)
        assert rep.makespan >= work * nproc - 1e-15
