"""Tests for the SPD block Schur factorization (Sections 5–6)."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.block_reflector import REPRESENTATIONS
from repro.core.generator import spd_generator
from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.errors import (
    InvalidOptionError,
    NotPositiveDefiniteError,
    ShapeError,
)
from repro.toeplitz import (
    SymmetricBlockToeplitz,
    ar_block_toeplitz,
    kms_toeplitz,
    prolate_toeplitz,
    spectral_block_toeplitz,
)
from tests.conftest import assert_upper_triangular


def _check_factorization(t, fact, tol=1e-9):
    d = t.dense()
    scale = np.linalg.norm(d)
    assert np.max(np.abs(fact.r.T @ fact.r - d)) <= tol * scale
    assert_upper_triangular(fact.r, atol=tol * scale)


class TestBasicCorrectness:
    @pytest.mark.parametrize("p,m", [(2, 1), (4, 1), (16, 1), (2, 3),
                                     (6, 2), (5, 4), (8, 3), (3, 5)])
    def test_rtr_equals_t(self, p, m):
        t = ar_block_toeplitz(p, m, seed=p * 7 + m)
        _check_factorization(t, schur_spd_factor(t))

    def test_matches_scipy_cholesky(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        ref = sla.cholesky(small_spd_block.dense(), lower=False)
        np.testing.assert_allclose(fact.r, ref, atol=1e-9)

    def test_scalar_matches_scipy(self, small_spd_scalar):
        fact = schur_spd_factor(small_spd_scalar)
        ref = sla.cholesky(small_spd_scalar.dense(), lower=False)
        np.testing.assert_allclose(fact.r, ref, atol=1e-10)

    def test_positive_diagonal(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        assert np.all(np.diag(fact.r) > 0)

    def test_l_property(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        np.testing.assert_allclose(fact.l, fact.r.T)

    def test_accepts_prebuilt_generator(self, small_spd_block):
        g = spd_generator(small_spd_block)
        fact = schur_spd_factor(g)
        _check_factorization(small_spd_block, fact)

    def test_generator_not_mutated(self, small_spd_block):
        g = spd_generator(small_spd_block)
        snapshot = np.array(g.gen)
        schur_spd_factor(g)
        np.testing.assert_array_equal(g.gen, snapshot)

    def test_spectral_workload(self):
        t = spectral_block_toeplitz(10, 3, seed=2)
        _check_factorization(t, schur_spd_factor(t))

    def test_ill_conditioned_prolate(self):
        t = prolate_toeplitz(32, 0.4)
        fact = schur_spd_factor(t)
        d = t.dense()
        # looser tolerance: κ(T) is large
        assert np.max(np.abs(fact.r.T @ fact.r - d)) <= 1e-7


class TestRepresentations:
    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_each_representation(self, rep, small_spd_block):
        fact = schur_spd_factor(
            small_spd_block, options=SchurOptions(representation=rep))
        _check_factorization(small_spd_block, fact)

    def test_representations_agree(self, small_spd_block):
        rs = [schur_spd_factor(small_spd_block,
                               options=SchurOptions(representation=r)).r
              for r in REPRESENTATIONS]
        for r in rs[1:]:
            np.testing.assert_allclose(r, rs[0], atol=1e-9)

    def test_unknown_representation_raises(self, small_spd_block):
        with pytest.raises(InvalidOptionError):
            schur_spd_factor(small_spd_block,
                             options=SchurOptions(representation="nope"))


class TestTwoLevelBlocking:
    @pytest.mark.parametrize("panel", [1, 2, 3, 4])
    def test_panel_widths(self, panel):
        t = ar_block_toeplitz(6, 4, seed=3)
        fact = schur_spd_factor(t, options=SchurOptions(panel=panel))
        _check_factorization(t, fact)

    def test_panel_equals_default(self):
        t = ar_block_toeplitz(5, 4, seed=4)
        r1 = schur_spd_factor(t, options=SchurOptions(panel=4)).r
        r2 = schur_spd_factor(t).r
        np.testing.assert_allclose(r1, r2, atol=1e-12)

    @pytest.mark.parametrize("rep", ["vy1", "vy2", "yty"])
    def test_panel_with_each_representation(self, rep):
        t = ar_block_toeplitz(5, 6, seed=5)
        fact = schur_spd_factor(
            t, options=SchurOptions(representation=rep, panel=2))
        _check_factorization(t, fact)


class TestShiftVsInPlace:
    def test_explicit_shift_matches_in_place(self, small_spd_block):
        r_ip = schur_spd_factor(
            small_spd_block, options=SchurOptions(in_place=True)).r
        r_sh = schur_spd_factor(
            small_spd_block, options=SchurOptions(in_place=False)).r
        np.testing.assert_allclose(r_sh, r_ip, atol=1e-11)

    def test_shift_variant_scalar(self, small_spd_scalar):
        fact = schur_spd_factor(small_spd_scalar,
                                options=SchurOptions(in_place=False))
        _check_factorization(small_spd_scalar, fact)


class TestSolveAndDerived:
    def test_solve_single_rhs(self, small_spd_block, rng):
        fact = schur_spd_factor(small_spd_block)
        b = rng.standard_normal(small_spd_block.order)
        x = fact.solve(b)
        np.testing.assert_allclose(small_spd_block.dense() @ x, b,
                                   atol=1e-8)

    def test_solve_multiple_rhs(self, small_spd_block, rng):
        fact = schur_spd_factor(small_spd_block)
        b = rng.standard_normal((small_spd_block.order, 3))
        x = fact.solve(b)
        np.testing.assert_allclose(small_spd_block.dense() @ x, b,
                                   atol=1e-8)

    def test_solve_shape_mismatch(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        with pytest.raises(ShapeError):
            fact.solve(np.ones(5))

    def test_logdet(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        _, ref = np.linalg.slogdet(small_spd_block.dense())
        assert fact.logdet() == pytest.approx(ref, rel=1e-10)

    def test_reconstruct(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        np.testing.assert_allclose(fact.reconstruct(),
                                   small_spd_block.dense(), atol=1e-9)

    def test_order_property(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        assert fact.order == small_spd_block.order


class TestBreakdown:
    def test_indefinite_rejected(self):
        t = SymmetricBlockToeplitz.from_first_row([1.0, 2.0, 0.1, 0.05])
        assert np.linalg.eigvalsh(t.dense())[0] < 0
        with pytest.raises(NotPositiveDefiniteError):
            schur_spd_factor(t)

    def test_negative_diagonal_rejected(self):
        t = SymmetricBlockToeplitz.from_first_row([-1.0, 0.1])
        with pytest.raises(NotPositiveDefiniteError):
            schur_spd_factor(t)

    def test_semidefinite_rejected(self):
        t = SymmetricBlockToeplitz.from_first_row([1.0, 1.0, 1.0])
        with pytest.raises(NotPositiveDefiniteError):
            schur_spd_factor(t)


class TestReflectorCollection:
    def test_keep_reflectors(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block, keep_reflectors=True)
        # one block reflector per elimination step (single panel)
        assert len(fact.reflectors) == small_spd_block.num_blocks - 1

    def test_no_reflectors_by_default(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        assert fact.reflectors == []

    def test_panel_reflector_count(self):
        t = ar_block_toeplitz(4, 4, seed=6)
        fact = schur_spd_factor(t, options=SchurOptions(panel=2),
                                keep_reflectors=True)
        # two panels per step × 3 steps
        assert len(fact.reflectors) == 6


class TestRegroupedFactorizations:
    @pytest.mark.parametrize("ms", [1, 2, 4, 8, 16])
    def test_point_toeplitz_as_blocks(self, ms):
        t = kms_toeplitz(32, 0.6)
        ts = t.regroup(ms)
        fact = schur_spd_factor(ts)
        _check_factorization(t, fact)

    def test_regroup_gives_same_factor(self):
        # The Cholesky factor is unique ⇒ m_s must not change R.
        t = kms_toeplitz(24, 0.5)
        r1 = schur_spd_factor(t).r
        r4 = schur_spd_factor(t.regroup(4)).r
        np.testing.assert_allclose(r4, r1, atol=1e-10)
