"""Closing the modeling loop: the empirical host model must predict the
*real* wall-clock of the serial factorization to within a modest band.

This is the methodology the paper applied to the Y-MP ("an empirical
characterization of the primitives performance"), validated here
end-to-end against actual measurements on this machine.
"""

import time

import numpy as np
import pytest

from repro.blas.empirical import measure_host_model
from repro.core.regroup import choose_block_size
from repro.core.schur_spd import schur_spd_factor
from repro.toeplitz import kms_toeplitz


def _wall(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.slow
class TestHostModelValidation:
    def test_predictions_within_band(self):
        host = measure_host_model(quick=True)
        n = 1024
        t = kms_toeplitz(n, 0.5)
        _, preds = choose_block_size(n, 1, host,
                                     candidates=[1, 4, 16])
        pred = {p.block_size: p.seconds for p in preds}
        measured = {}
        for ms in (1, 4, 16):
            ts = t.regroup(ms)
            measured[ms] = _wall(lambda ts=ts: schur_spd_factor(ts))
        # absolute predictions within an order of magnitude …
        for ms in (1, 4, 16):
            ratio = pred[ms] / measured[ms]
            assert 0.1 < ratio < 10.0, (ms, pred[ms], measured[ms])
        # … and the model must know that m_s = 1 is not the fastest
        best_pred = min(pred, key=pred.get)
        best_meas = min(measured, key=measured.get)
        assert best_pred != 1
        assert best_meas != 1

    def test_relative_ordering_of_extremes(self):
        host = measure_host_model(quick=True)
        n = 512
        _, preds = choose_block_size(n, 1, host, candidates=[1, 16])
        pred = {p.block_size: p.seconds for p in preds}
        t = kms_toeplitz(n, 0.5)
        m1 = _wall(lambda: schur_spd_factor(t))
        m16 = _wall(lambda: schur_spd_factor(t.regroup(16)))
        assert (pred[16] < pred[1]) == (m16 < m1)
