"""Tests for the generalized (arbitrary displacement rank) Schur
factorization."""

import numpy as np
import pytest

from repro.core.displacement_rank import (
    displacement_rank,
    generalized_schur_factor,
    generator_from_dense,
    matrix_from_generator,
    scalar_displacement,
)
from repro.core.schur_spd import schur_spd_factor
from repro.errors import BreakdownError, ShapeError, SingularMinorError
from repro.toeplitz import indefinite_toeplitz, kms_toeplitz


def _low_rank_matrix(n, alpha, seed, *, spd=True):
    """Random symmetric matrix with displacement rank ≤ alpha (+1)."""
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((alpha, n))
    w = np.array([1, -1] * (alpha // 2) + [1] * (alpha % 2),
                 dtype=np.int8)
    a0 = matrix_from_generator(g, w)
    if spd:
        lam = np.linalg.eigvalsh(a0)
        return a0 + (abs(lam[0]) + 1.0) * np.eye(n)
    return a0


class TestDisplacementUtilities:
    def test_scalar_displacement_definition(self, rng):
        a = rng.standard_normal((6, 6))
        a = a + a.T
        z = np.eye(6, k=1)
        np.testing.assert_allclose(scalar_displacement(a),
                                   a - z.T @ a @ z, atol=1e-12)

    def test_toeplitz_has_rank_two(self):
        assert displacement_rank(kms_toeplitz(16, 0.5).dense()) == 2

    def test_identity_has_rank_one(self):
        assert displacement_rank(np.eye(8)) == 1

    def test_generic_matrix_full_rank(self, rng):
        a = rng.standard_normal((8, 8))
        a = a @ a.T + 8 * np.eye(8)
        assert displacement_rank(a) == 8

    def test_generator_round_trip(self, rng):
        a = _low_rank_matrix(12, 4, 1)
        g, w = generator_from_dense(a)
        assert g.shape[0] == displacement_rank(a)
        np.testing.assert_allclose(matrix_from_generator(g, w), a,
                                   atol=1e-9)

    def test_generator_signature_ordering(self):
        g, w = generator_from_dense(kms_toeplitz(10, 0.5).dense())
        # positive rows first
        assert w[0] == 1
        assert np.all(np.diff(w.astype(int)) <= 0)

    def test_nonsymmetric_rejected(self, rng):
        with pytest.raises(ShapeError):
            generator_from_dense(rng.standard_normal((4, 4)))

    def test_generator_shape_mismatch(self):
        with pytest.raises(ShapeError):
            matrix_from_generator(np.ones((2, 4)), [1, -1, 1])


class TestGeneralizedFactorization:
    def test_toeplitz_matches_block_schur(self):
        t = kms_toeplitz(20, 0.6)
        g, w = generator_from_dense(t.dense())
        f = generalized_schur_factor(g, w)
        ref = schur_spd_factor(t)
        np.testing.assert_allclose(f.r, ref.r, atol=1e-9)
        np.testing.assert_array_equal(f.d, np.ones(20))

    @pytest.mark.parametrize("alpha", [2, 3, 4, 6])
    def test_spd_low_displacement_rank(self, alpha):
        a = _low_rank_matrix(14, alpha, alpha * 11)
        g, w = generator_from_dense(a)
        f = generalized_schur_factor(g, w)
        np.testing.assert_allclose(f.reconstruct(), a,
                                   atol=1e-9 * np.linalg.norm(a))
        assert np.all(np.diag(f.r) > 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_indefinite_low_displacement_rank(self, seed):
        a = _low_rank_matrix(10, 4, seed + 50, spd=False)
        # skip degenerate draws with singular leading minors
        mins = [np.linalg.det(a[:k, :k]) for k in range(1, 11)]
        if min(abs(m) for m in mins) < 1e-6:
            pytest.skip("degenerate draw")
        g, w = generator_from_dense(a)
        f = generalized_schur_factor(g, w)
        growth = max(1.0, np.linalg.norm(f.r) ** 2)
        np.testing.assert_allclose(f.reconstruct(), a,
                                   atol=1e-11 * growth)
        eig = np.linalg.eigvalsh(a)
        assert int(np.sum(f.d > 0)) == int(np.sum(eig > 0))

    def test_solve(self, rng):
        a = _low_rank_matrix(12, 4, 7)
        g, w = generator_from_dense(a)
        f = generalized_schur_factor(g, w)
        b = rng.standard_normal(12)
        np.testing.assert_allclose(a @ f.solve(b), b, atol=1e-8)

    def test_indefinite_scalar_toeplitz(self, rng):
        t = indefinite_toeplitz(11, seed=13)
        g, w = generator_from_dense(t.dense())
        f = generalized_schur_factor(g, w)
        growth = max(1.0, np.linalg.norm(f.r) ** 2)
        np.testing.assert_allclose(f.reconstruct(), t.dense(),
                                   atol=1e-10 * growth)
        assert f.interchange_count >= 0

    def test_singular_minor_detected(self):
        from repro.toeplitz import paper_example_matrix
        g, w = generator_from_dense(paper_example_matrix().dense())
        with pytest.raises(SingularMinorError):
            generalized_schur_factor(g, w)

    def test_width_mismatch(self):
        g, w = generator_from_dense(kms_toeplitz(8, 0.5).dense())
        with pytest.raises(ShapeError):
            generalized_schur_factor(g, w, n=10)

    def test_input_generator_not_mutated(self):
        g, w = generator_from_dense(kms_toeplitz(8, 0.5).dense())
        snap = g.copy()
        generalized_schur_factor(g, w)
        np.testing.assert_array_equal(g, snap)

    def test_displacement_rank_recorded(self):
        a = _low_rank_matrix(10, 4, 3)
        g, w = generator_from_dense(a)
        f = generalized_schur_factor(g, w)
        assert f.displacement_rank == g.shape[0]
