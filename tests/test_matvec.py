"""Tests for the FFT block-circulant fast matvec."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.toeplitz import (
    BlockCirculantEmbedding,
    BlockToeplitz,
    SymmetricBlockToeplitz,
    block_toeplitz_matvec,
    kms_toeplitz,
)


def _sym(p, m, seed=0):
    rng = np.random.default_rng(seed)
    blocks = [rng.standard_normal((m, m)) for _ in range(p)]
    blocks[0] = blocks[0] + blocks[0].T
    return SymmetricBlockToeplitz(blocks)


@pytest.mark.parametrize("p,m", [(1, 1), (2, 1), (7, 1), (3, 4), (8, 3),
                                 (16, 2), (5, 5)])
def test_matvec_matches_dense_symmetric(p, m):
    t = _sym(p, m, seed=p * 10 + m)
    x = np.random.default_rng(1).standard_normal(t.order)
    np.testing.assert_allclose(block_toeplitz_matvec(t, x), t.dense() @ x,
                               atol=1e-10)


def test_matvec_matches_dense_general():
    rng = np.random.default_rng(2)
    col = [rng.standard_normal((3, 3)) for _ in range(6)]
    row = [col[0]] + [rng.standard_normal((3, 3)) for _ in range(5)]
    t = BlockToeplitz(col, row)
    x = rng.standard_normal(18)
    np.testing.assert_allclose(t.matvec(x), t.dense() @ x, atol=1e-10)


def test_matvec_multiple_rhs():
    t = _sym(6, 2, seed=3)
    x = np.random.default_rng(4).standard_normal((12, 5))
    np.testing.assert_allclose(t.matvec(x), t.dense() @ x, atol=1e-10)


def test_embedding_reuse_is_consistent():
    t = _sym(9, 2, seed=5)
    emb = BlockCirculantEmbedding(t)
    d = t.dense()
    rng = np.random.default_rng(6)
    for _ in range(4):
        x = rng.standard_normal(18)
        np.testing.assert_allclose(emb(x), d @ x, atol=1e-10)


def test_embedding_order_property():
    t = _sym(4, 3)
    assert BlockCirculantEmbedding(t).order == 12


def test_wrong_length_rejected():
    t = _sym(4, 2)
    with pytest.raises(ShapeError):
        t.matvec(np.ones(7))


def test_large_scalar_matvec_accuracy():
    t = kms_toeplitz(512, 0.8)
    x = np.random.default_rng(7).standard_normal(512)
    y = t.matvec(x)
    np.testing.assert_allclose(y, t.dense() @ x, rtol=1e-11, atol=1e-9)


def test_matvec_identity():
    t = SymmetricBlockToeplitz.identity(5, 3)
    x = np.random.default_rng(8).standard_normal(15)
    np.testing.assert_allclose(t.matvec(x), x, atol=1e-12)


def test_matvec_linear():
    t = _sym(5, 2, seed=9)
    rng = np.random.default_rng(10)
    x, y = rng.standard_normal(10), rng.standard_normal(10)
    np.testing.assert_allclose(t.matvec(2 * x - 3 * y),
                               2 * t.matvec(x) - 3 * t.matvec(y),
                               atol=1e-9)
