"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.toeplitz import (
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
    prolate_toeplitz,
    random_spd_block_toeplitz,
    singular_minor_toeplitz,
    spectral_block_toeplitz,
)


def _eigs(t):
    return np.linalg.eigvalsh(t.dense())


class TestKMS:
    def test_spd(self):
        assert _eigs(kms_toeplitz(40, 0.7))[0] > 0

    def test_first_row(self):
        t = kms_toeplitz(5, 0.5)
        np.testing.assert_allclose(t.first_scalar_row(),
                                   [1, .5, .25, .125, .0625])

    def test_invalid_rho(self):
        with pytest.raises(ShapeError):
            kms_toeplitz(10, 1.0)
        with pytest.raises(ShapeError):
            kms_toeplitz(10, -1.5)

    def test_invalid_n(self):
        with pytest.raises(ShapeError):
            kms_toeplitz(0)


class TestProlate:
    def test_spd_but_ill_conditioned(self):
        t = prolate_toeplitz(24, 0.3)
        e = _eigs(t)
        assert e[0] > 0
        assert e[-1] / e[0] > 1e3  # notoriously ill-conditioned

    def test_invalid_bandwidth(self):
        with pytest.raises(ShapeError):
            prolate_toeplitz(10, 0.5)
        with pytest.raises(ShapeError):
            prolate_toeplitz(10, 0.0)


class TestAR:
    @pytest.mark.parametrize("p,m", [(4, 1), (6, 2), (8, 4)])
    def test_spd(self, p, m):
        t = ar_block_toeplitz(p, m, seed=1)
        assert _eigs(t)[0] > 0

    def test_deterministic_with_seed(self):
        a = ar_block_toeplitz(5, 3, seed=7).dense()
        b = ar_block_toeplitz(5, 3, seed=7).dense()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ar_block_toeplitz(5, 3, seed=7).dense()
        b = ar_block_toeplitz(5, 3, seed=8).dense()
        assert not np.allclose(a, b)

    def test_block_structure(self):
        t = ar_block_toeplitz(6, 3, seed=2)
        assert t.block_size == 3 and t.num_blocks == 6

    def test_invalid_sizes(self):
        with pytest.raises(ShapeError):
            ar_block_toeplitz(0, 3)
        with pytest.raises(ShapeError):
            ar_block_toeplitz(3, 0)


class TestSpectral:
    @pytest.mark.parametrize("p,m", [(5, 1), (6, 3), (10, 2)])
    def test_spd(self, p, m):
        t = spectral_block_toeplitz(p, m, seed=3)
        assert _eigs(t)[0] > 0

    def test_deterministic(self):
        a = spectral_block_toeplitz(4, 2, seed=5).dense()
        b = spectral_block_toeplitz(4, 2, seed=5).dense()
        np.testing.assert_array_equal(a, b)


class TestRandomSPDFactory:
    @pytest.mark.parametrize("kind", ["ar", "spectral", "kms"])
    def test_kinds(self, kind):
        t = random_spd_block_toeplitz(6, 2, kind=kind, seed=1)
        assert t.order == 12
        assert _eigs(t)[0] > 0

    def test_unknown_kind(self):
        with pytest.raises(ShapeError):
            random_spd_block_toeplitz(4, 2, kind="nope")


class TestIndefinite:
    def test_is_indefinite(self):
        t = indefinite_toeplitz(14, seed=9)
        e = _eigs(t)
        assert e[0] < 0 < e[-1]

    def test_symmetric(self):
        d = indefinite_toeplitz(10, seed=10).dense()
        np.testing.assert_allclose(d, d.T)


class TestSingularMinor:
    def test_has_singular_minor(self):
        t = singular_minor_toeplitz(8, minor=2, seed=11)
        d = t.dense()
        assert abs(np.linalg.det(d[:2, :2])) < 1e-12
        assert abs(np.linalg.det(d)) > 1e-8

    @pytest.mark.parametrize("minor", [2, 3, 4])
    def test_minor_position(self, minor):
        t = singular_minor_toeplitz(10, minor=minor, seed=12)
        d = t.dense()
        assert abs(np.linalg.det(d[:minor, :minor])) < 1e-10

    def test_invalid_minor(self):
        with pytest.raises(ShapeError):
            singular_minor_toeplitz(5, minor=1)
        with pytest.raises(ShapeError):
            singular_minor_toeplitz(5, minor=6)


class TestFgn:
    def test_spd(self):
        from repro.toeplitz import fgn_toeplitz
        t = fgn_toeplitz(32, 0.75)
        assert _eigs(t)[0] > 0

    def test_long_memory_decay(self):
        from repro.toeplitz import fgn_toeplitz
        row = fgn_toeplitz(64, 0.9).first_scalar_row()
        # slow (power-law) decay: lag-32 correlation still substantial
        assert row[32] > 0.05 * row[0]

    def test_h_half_is_white_noise(self):
        from repro.toeplitz import fgn_toeplitz
        row = fgn_toeplitz(8, 0.5).first_scalar_row()
        np.testing.assert_allclose(row[1:], 0.0, atol=1e-12)
        assert row[0] == pytest.approx(1.0)

    def test_invalid_hurst(self):
        from repro.toeplitz import fgn_toeplitz
        with pytest.raises(ShapeError):
            fgn_toeplitz(8, 1.0)
        with pytest.raises(ShapeError):
            fgn_toeplitz(8, 0.0)


class TestMABanded:
    def test_band_structure(self):
        from repro.toeplitz import ma_banded_toeplitz
        row = ma_banded_toeplitz(12, (0.5, 0.2)).first_scalar_row()
        np.testing.assert_allclose(row[3:], 0.0)
        assert row[0] == pytest.approx(1 + 0.25 + 0.04)

    def test_spd(self):
        from repro.toeplitz import ma_banded_toeplitz
        assert _eigs(ma_banded_toeplitz(16, (0.7,)))[0] > 0

    def test_block_regrouping(self):
        from repro.toeplitz import ma_banded_toeplitz
        t = ma_banded_toeplitz(16, (0.4, 0.1), block_size=4)
        assert t.block_size == 4

    def test_factorizable(self):
        from repro.core.schur_spd import schur_spd_factor
        from repro.toeplitz import ma_banded_toeplitz
        t = ma_banded_toeplitz(20, (0.6, 0.3))
        fact = schur_spd_factor(t)
        np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                   atol=1e-10)


class TestPaperExample:
    def test_first_row_verbatim(self, paper_matrix):
        np.testing.assert_allclose(
            paper_matrix.first_scalar_row(),
            [1.0000, 1.0000, 0.5297, 0.6711, 0.0077, 0.3834])

    def test_singular_2x2_minor(self, paper_matrix):
        d = paper_matrix.dense()
        assert abs(np.linalg.det(d[:2, :2])) < 1e-14

    def test_rhs_of_paper(self, paper_matrix):
        # eq. after (50): b = T·1 = (3.5919 4.2085 4.7305 …)
        b = paper_matrix.dense() @ np.ones(6)
        np.testing.assert_allclose(
            b, [3.5919, 4.2085, 4.7305, 4.7305, 4.2085, 3.5919],
            atol=1e-12)

    def test_overall_nonsingular(self, paper_matrix):
        assert abs(np.linalg.det(paper_matrix.dense())) > 1e-6
