"""The precision axis: reduced factorization + fp64 refinement recovery.

Covers the end-to-end contract of ``precision`` ∈ {fp64, fp32, mixed}:
dtype round-trips through every registered algorithm, per-precision
cache keys with zero cross-precision hits, the condest admission
fallback, dtype-aware fingerprints and refinement tolerances, and the
precision fields on :class:`~repro.engine.ExecutionRecord`.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine as engine
from repro.core.precision import (
    PRECISIONS,
    elimination_dtype,
    precision_eps,
    refinement_admissible,
    validate_precision,
    working_dtype,
)
from repro.engine import FactorizationCache, set_default_cache
from repro.errors import InvalidOptionError
from repro.toeplitz import (
    BlockToeplitz,
    ar_block_toeplitz,
    kms_toeplitz,
)
from repro.utils.fingerprint import content_fingerprint

REDUCED = ("fp32", "mixed")


@pytest.fixture(autouse=True)
def fresh_default_cache():
    previous = set_default_cache(FactorizationCache())
    yield
    set_default_cache(previous)


def _nonsymmetric(p=8, m=2, seed=7):
    r = np.random.default_rng(seed)
    col = [r.standard_normal((m, m)) * 0.5 ** j for j in range(p)]
    col[0] = col[0] + 4 * np.eye(m)
    row = [col[0]] + [r.standard_normal((m, m)) * 0.5 ** j
                      for j in range(1, p)]
    return BlockToeplitz(col, row)


def _residual(t, x, b):
    r = t.dense() @ x - b
    return float(np.max(np.abs(r)) / np.max(np.abs(b)))


# ----------------------------------------------------------------------
# Helpers module
# ----------------------------------------------------------------------
class TestPrecisionHelpers:
    def test_validate(self):
        for p in PRECISIONS:
            validate_precision(p)
        with pytest.raises(InvalidOptionError):
            validate_precision("fp16")

    def test_dtypes(self):
        assert working_dtype("fp64") == np.float64
        assert working_dtype("fp32") == np.float32
        assert working_dtype("mixed") == np.float64
        assert elimination_dtype("fp64") == np.float64
        assert elimination_dtype("fp32") == np.float32
        assert elimination_dtype("mixed") == np.float32

    def test_eps_ordering(self):
        assert precision_eps("fp64") < precision_eps("fp32")
        assert precision_eps("mixed") == precision_eps("fp32")

    def test_admission(self):
        # fp64 is always admissible; reduced precision is gated on
        # cond · eps32 ≤ 0.05.
        assert refinement_admissible(1e15, "fp64")
        assert refinement_admissible(1e3, "fp32")
        assert not refinement_admissible(1e7, "fp32")
        assert not refinement_admissible(float("inf"), "mixed")


# ----------------------------------------------------------------------
# Round-trips through every registered algorithm
# ----------------------------------------------------------------------
class TestAlgorithmRoundTrips:
    """Every algorithm accepts any float input dtype and returns a
    float64 solution; precision-capable algorithms recover fp64
    accuracy from reduced factors."""

    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("algorithm",
                             ["spd-schur", "indefinite+refine"])
    def test_symmetric_algorithms(self, algorithm, precision):
        t = ar_block_toeplitz(8, 3, seed=5)
        b = np.random.default_rng(0).standard_normal((t.order, 3))
        res = engine.solve(t, b, algorithm=algorithm,
                           precision=precision)
        assert res.x.dtype == np.float64
        assert _residual(t, res.x, b) < 1e-10

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_gko(self, precision):
        t = _nonsymmetric()
        b = np.random.default_rng(1).standard_normal(t.order)
        res = engine.solve(t, b, algorithm="gko", precision=precision)
        assert res.x.dtype == np.float64
        assert _residual(t, res.x, b) < 1e-10

    @pytest.mark.parametrize("in_dtype",
                             [np.float32, np.float64, np.int64])
    @pytest.mark.parametrize("algorithm", sorted(engine.algorithms()))
    def test_input_dtype_round_trip(self, algorithm, in_dtype):
        """Registry-wide: b in any reasonable dtype solves to float64."""
        t = kms_toeplitz(24, 0.5)
        b = (np.linspace(-1.0, 1.0, t.order) * 8).astype(in_dtype)
        res = engine.solve(t, b, algorithm=algorithm)
        assert res.x.dtype == np.float64
        assert _residual(t, res.x,
                         np.asarray(b, dtype=np.float64)) < 1e-8

    @pytest.mark.parametrize("precision", REDUCED)
    def test_reduced_factor_storage(self, precision):
        """The cached factor really is stored at the working dtype."""
        t = ar_block_toeplitz(8, 2, seed=3)
        pl = engine.plan(t, assume="spd", precision=precision)
        fact = engine.factor(pl).factorization
        assert fact.precision == precision
        assert np.dtype(fact.dtype) == working_dtype(precision)

    def test_mixed_tracks_fp32_error_level(self):
        """Mixed rounds only the pivot columns: its raw factor error
        sits between fp64 and fp32."""
        t = ar_block_toeplitz(16, 2, seed=9)
        d = t.dense()

        def raw_err(precision):
            pl = engine.plan(t, assume="spd", precision=precision,
                             use_cache=False)
            f = engine.factor(pl).factorization
            r = np.asarray(f.r, dtype=np.float64)
            return float(np.max(np.abs(r.T @ r - d)))

        e64, emix, e32 = (raw_err(p) for p in PRECISIONS[:1] +
                          ("mixed", "fp32"))
        assert e64 < emix < 1e-2
        assert emix < 10 * e32


# ----------------------------------------------------------------------
# Cache isolation
# ----------------------------------------------------------------------
class TestCacheIsolation:
    def test_distinct_keys(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        keys = {engine.plan(t, assume="spd", precision=p).cache_key()
                for p in PRECISIONS}
        assert len(keys) == len(PRECISIONS)

    def test_zero_cross_precision_hits(self):
        """Factoring the same operator at each precision never reuses
        another precision's factor: three misses, then three hits."""
        t = ar_block_toeplitz(6, 2, seed=1)
        cache = FactorizationCache()
        for p in PRECISIONS:
            engine.factor(engine.plan(t, assume="spd", precision=p),
                          cache=cache)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 3)
        facts = {}
        for p in PRECISIONS:
            fr = engine.factor(engine.plan(t, assume="spd", precision=p),
                               cache=cache)
            assert fr.cache_hit
            facts[p] = fr.factorization
        assert cache.stats().hits == 3
        # and each precision got its own factor object back
        assert facts["fp32"].dtype != facts["fp64"].dtype
        assert facts["mixed"].precision == "mixed"

    def test_fingerprint_sees_dtype(self):
        """Same values, different source dtype ⇒ different fingerprint
        (the other half of cross-precision cache safety)."""
        a64 = 0.5 ** np.arange(16)
        a32 = a64.astype(np.float32)
        assert np.array_equal(a64, a32.astype(np.float64))
        assert (content_fingerprint("t", a64)
                != content_fingerprint("t", a32))


# ----------------------------------------------------------------------
# Admission + recovery behavior
# ----------------------------------------------------------------------
class TestAdmissionAndRecovery:
    def test_ill_conditioned_falls_back_to_fp64(self):
        """cond ≈ 1e6 fails the fp32 admission test (1e6 · eps32 > 0.05)
        and the engine silently refactors in double."""
        from repro.toeplitz import SymmetricBlockToeplitz
        n = 96
        col = 0.9999 ** np.arange(n) * np.cos(0.1 * np.arange(n))
        col[0] = 1.0 + 1e-7
        t = SymmetricBlockToeplitz.from_first_row(col)
        pl = engine.plan(t, assume="spd", precision="fp32",
                         use_cache=False)
        fact = engine.factor(pl).factorization
        assert fact.precision == "fp64"
        assert np.dtype(fact.dtype) == np.float64

    @pytest.mark.parametrize("precision", REDUCED)
    def test_solve_reports_refinement(self, precision):
        t = ar_block_toeplitz(8, 2, seed=2)
        b = np.random.default_rng(2).standard_normal(t.order)
        res = engine.solve(t, b, assume="spd", precision=precision)
        detail = res.detail
        assert detail.converged
        assert detail.converged_precision == "fp64"
        assert detail.factor_dtype == working_dtype(precision).name
        assert detail.iterations >= 1

    def test_refinement_tol_tracks_dtype(self):
        """A float32 target keeps the default tolerance at fp32 level;
        the engine's fp64 recovery still uses the double tolerance."""
        from repro.core.refinement import refine
        from repro.core.schur_spd import SchurOptions, schur_spd_factor
        t = ar_block_toeplitz(8, 2, seed=4)
        fact = schur_spd_factor(
            t, options=SchurOptions(precision="fp32"))
        b64 = np.random.default_rng(3).standard_normal(t.order)
        r64 = refine(fact, t, b64)
        r32 = refine(fact, t, b64.astype(np.float32))
        eps32, eps64 = (float(np.finfo(d).eps)
                        for d in (np.float32, np.float64))
        assert r64.tol == pytest.approx(4 * eps64)
        assert r32.tol == pytest.approx(4 * eps32)
        assert r64.converged_precision == "fp64"
        assert r64.iterations > 0


# ----------------------------------------------------------------------
# Records and plans
# ----------------------------------------------------------------------
class TestRecordsAndPlans:
    def test_execution_record_fields(self):
        t = ar_block_toeplitz(8, 2, seed=6)
        b = np.random.default_rng(4).standard_normal((t.order, 2))
        rec = engine.solve(t, b, assume="spd", precision="fp32").record
        assert rec.precision == "fp32"
        assert rec.factor_dtype == "float32"
        assert rec.refine_sweeps >= 1
        attrs = rec.to_record()["attrs"]
        assert attrs["precision"] == "fp32"
        assert attrs["factor_dtype"] == "float32"
        assert attrs["refine_sweeps"] == rec.refine_sweeps

    def test_fp64_record_is_direct(self):
        t = ar_block_toeplitz(8, 2, seed=6)
        b = np.random.default_rng(4).standard_normal(t.order)
        rec = engine.solve(t, b, assume="spd").record
        assert rec.precision == "fp64"
        assert rec.factor_dtype == "float64"
        assert rec.refine_sweeps is None

    def test_plan_validation(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        with pytest.raises(InvalidOptionError):
            engine.plan(t, precision="fp16")
        with pytest.raises(InvalidOptionError):
            engine.plan(t, assume="spd", precision="fp32", nproc=4)

    def test_describe_mentions_precision(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        text = engine.plan(t, assume="spd", precision="fp32").describe()
        assert "fp32" in text
        assert "refinement" in text

    def test_plan_round_trips_serialization(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        pl = engine.plan(t, assume="spd", precision="mixed")
        back = engine.SolverPlan.from_dict(pl.to_dict(), operator=t)
        assert back.precision == "mixed"
        assert back.cache_key() == pl.cache_key()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_solve_precision_flag(self, tmp_path, capsys):
        from repro.cli import main
        col = 0.5 ** np.arange(32)
        col[0] = 3.0
        mat = tmp_path / "t.npy"
        np.save(mat, col)
        rc = main(["solve", str(mat), "--nrhs", "2",
                   "--precision", "fp32", "--profile"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fp32" in out
        assert "refinement sweep" in out

    def test_factor_precision_line(self, tmp_path, capsys):
        from repro.cli import main
        col = 0.5 ** np.arange(32)
        col[0] = 3.0
        mat = tmp_path / "t.npy"
        np.save(mat, col)
        rc = main(["factor", str(mat), "--precision", "mixed"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "requested mixed" in out
