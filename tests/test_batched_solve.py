"""Multi-RHS (panel) execution: parity, batching economics, records, CLI.

The batched paths must agree with column-by-column solves to ≤1e-10
across every algorithm family, regardless of how the caller ordered or
sliced ``B`` — and must do the work in fewer factored solves / matvecs
than the sequential loop.
"""

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.baselines import BlockPCGResult, pcg, pcg_block
from repro.cli import main
from repro.core import (
    refine,
    schur_indefinite_factor,
    schur_spd_factor,
    solve_toeplitz_gko,
)
from repro.core.gohberg_semencul import toeplitz_inverse
from repro.engine import ExecutionRecord, FactorizationCache, set_default_cache
from repro.errors import InvalidOptionError
from repro.toeplitz import (
    BlockToeplitz,
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    singular_minor_toeplitz,
)
from repro.toeplitz.matvec import BlockCirculantEmbedding

PARITY = 1e-10


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Give every test its own default cache (and restore afterwards)."""
    previous = set_default_cache(FactorizationCache())
    yield
    set_default_cache(previous)


def _columnwise(solve, b):
    """Reference result: apply a single-RHS ``solve`` per column."""
    return np.stack([solve(b[:, j]) for j in range(b.shape[1])], axis=1)


def _rel_diff(x, y):
    return np.max(np.abs(x - y)) / max(np.max(np.abs(y)), 1e-300)


def _nonsymmetric(p=6, m=2, seed=11):
    r = np.random.default_rng(seed)
    col = [r.standard_normal((m, m)) + 3 * np.eye(m) for _ in range(p)]
    row = [col[0]] + [r.standard_normal((m, m)) for _ in range(p - 1)]
    return BlockToeplitz(col, row)


# ----------------------------------------------------------------------
# Factorization-level parity
# ----------------------------------------------------------------------
class TestPanelParity:
    def test_spd_panel_matches_columnwise(self):
        t = ar_block_toeplitz(16, 4, seed=0)
        fact = schur_spd_factor(t)
        b = np.random.default_rng(1).standard_normal((t.order, 8))
        batched = fact.solve(b)
        assert batched.shape == b.shape
        assert _rel_diff(batched, _columnwise(fact.solve, b)) <= PARITY

    def test_spd_vector_stays_one_dimensional(self):
        t = kms_toeplitz(24, 0.5)
        fact = schur_spd_factor(t)
        x = fact.solve(np.ones(24))
        assert x.ndim == 1 and x.shape == (24,)

    def test_fortran_ordered_panel(self):
        t = ar_block_toeplitz(12, 4, seed=2)
        fact = schur_spd_factor(t)
        b = np.random.default_rng(3).standard_normal((t.order, 5))
        bf = np.asfortranarray(b)
        assert not bf.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(fact.solve(bf), fact.solve(b))

    def test_noncontiguous_slice_panel(self):
        t = ar_block_toeplitz(12, 4, seed=4)
        fact = schur_spd_factor(t)
        wide = np.random.default_rng(5).standard_normal((t.order, 15))
        view = wide[:, ::3]
        assert not view.flags["C_CONTIGUOUS"]
        assert _rel_diff(fact.solve(view),
                         _columnwise(fact.solve, view)) <= PARITY

    def test_indefinite_panel_matches_columnwise(self):
        t = indefinite_toeplitz(48, seed=1)
        fact = schur_indefinite_factor(t)
        b = np.random.default_rng(6).standard_normal((48, 7))
        assert _rel_diff(fact.solve(b), _columnwise(fact.solve, b)) <= PARITY

    def test_gko_panel_matches_columnwise(self):
        t = _nonsymmetric()
        b = np.random.default_rng(7).standard_normal((t.order, 6))
        batched = solve_toeplitz_gko(t, b)
        reference = _columnwise(lambda col: solve_toeplitz_gko(t, col), b)
        assert _rel_diff(batched, reference) <= PARITY

    def test_gohberg_semencul_panel_apply(self):
        t = kms_toeplitz(32, 0.5)
        inv = toeplitz_inverse(t)
        b = np.random.default_rng(8).standard_normal((32, 4))
        assert _rel_diff(inv.matvec(b), _columnwise(inv.matvec, b)) <= PARITY

    def test_fft_matvec_panel(self):
        t = ar_block_toeplitz(16, 3, seed=9)
        emb = BlockCirculantEmbedding(t)
        x = np.random.default_rng(10).standard_normal((t.order, 5))
        batched = emb.matvec(x)
        assert _rel_diff(batched, _columnwise(emb.matvec, x)) <= PARITY
        assert _rel_diff(batched, t.dense() @ x) <= 1e-9


# ----------------------------------------------------------------------
# Blocked iterative refinement
# ----------------------------------------------------------------------
class TestBlockedRefinement:
    def _problem(self, k=6):
        t = indefinite_toeplitz(48, seed=3)
        fact = schur_indefinite_factor(t)
        b = np.random.default_rng(11).standard_normal((48, k))
        return t, fact, b

    def test_panel_matches_columnwise(self):
        t, fact, b = self._problem()
        res = refine(fact, t, b)
        reference = _columnwise(lambda col: refine(fact, t, col).x, b)
        assert _rel_diff(res.x, reference) <= PARITY

    def test_fewer_factored_solves_than_sequential(self):
        t, fact, b = self._problem()
        res = refine(fact, t, b)
        sequential = [refine(fact, t, b[:, j]) for j in range(b.shape[1])]
        total_sequential = sum(r.solve_calls for r in sequential)
        assert res.solve_calls < total_sequential
        # Same accuracy: worst batched residual no worse than 2× the
        # worst sequential one.
        dense = t.dense()
        worst = max(np.linalg.norm(dense @ res.x[:, j] - b[:, j])
                    for j in range(b.shape[1]))
        worst_seq = max(np.linalg.norm(dense @ r.x - b[:, j])
                        for j, r in enumerate(sequential))
        assert worst <= 2 * worst_seq + 1e-12

    def test_result_metadata(self):
        t, fact, b = self._problem(k=4)
        res = refine(fact, t, b)
        assert res.nrhs == 4
        assert res.per_column_iterations is not None
        assert res.per_column_iterations.shape == (4,)
        assert res.solve_columns >= 4
        assert bool(res.converged)

    def test_scalar_counters_unchanged(self):
        t, fact, b = self._problem()
        res = refine(fact, t, b[:, 0])
        assert res.nrhs == 1
        assert res.solve_calls == res.iterations + 1
        assert res.per_column_iterations is None


# ----------------------------------------------------------------------
# Block PCG
# ----------------------------------------------------------------------
class TestBlockPCG:
    def test_pcg_rejects_panel_with_pointer(self):
        t = kms_toeplitz(24, 0.5)
        b = np.ones((24, 3))
        with pytest.raises(InvalidOptionError, match="pcg_block"):
            pcg(t, b)

    def test_block_matches_single_rhs(self):
        t = kms_toeplitz(48, 0.5)
        b = np.random.default_rng(12).standard_normal((48, 5))
        res = pcg_block(t, b, tol=1e-13)
        assert isinstance(res, BlockPCGResult)
        reference = _columnwise(lambda col: pcg(t, col, tol=1e-13).x, b)
        assert _rel_diff(res.x, reference) <= PARITY
        assert res.converged

    def test_shares_matvecs_across_columns(self):
        t = kms_toeplitz(48, 0.5)
        b = np.random.default_rng(13).standard_normal((48, 6))
        res = pcg_block(t, b, tol=1e-12)
        sequential_iters = sum(pcg(t, b[:, j], tol=1e-12).iterations
                               for j in range(6))
        # One block iteration is one (batched) matvec for all active
        # columns; the sequential loop pays one per column per step.
        assert res.matvecs < sequential_iters
        assert res.matvec_columns <= sequential_iters + 6
        assert res.per_column_iterations.shape == (6,)

    def test_identical_columns_deflate(self):
        t = kms_toeplitz(32, 0.4)
        col = np.random.default_rng(14).standard_normal(32)
        b = np.stack([col, col, 2 * col], axis=1)
        res = pcg_block(t, b, tol=1e-12)
        assert res.converged
        assert res.deflations >= 1
        assert _rel_diff(res.x[:, 0], res.x[:, 1]) <= PARITY

    def test_engine_routes_panel_through_block_pcg(self):
        t = kms_toeplitz(40, 0.5)
        b = np.random.default_rng(15).standard_normal((40, 4))
        pl = engine.plan(t, algorithm="pcg")
        res = engine.execute(pl, b)
        assert _rel_diff(res.x, np.linalg.solve(t.dense(), b)) <= 1e-8
        assert res.record is not None and res.record.nrhs == 4
        assert isinstance(res.detail, BlockPCGResult)


# ----------------------------------------------------------------------
# Execution records
# ----------------------------------------------------------------------
class TestExecutionRecord:
    def test_record_attached_and_sane(self):
        t = ar_block_toeplitz(16, 4, seed=0)
        pl = engine.plan(t)
        b = np.random.default_rng(16).standard_normal((t.order, 8))
        cold = engine.execute(pl, b)
        warm = engine.execute(pl, b)
        for res, hit in ((cold, False), (warm, True)):
            rec = res.record
            assert isinstance(rec, ExecutionRecord)
            assert rec.algorithm == res.algorithm
            assert rec.order == t.order and rec.nrhs == 8
            assert rec.cache_hit is hit
            assert rec.wall_seconds > 0.0
            assert rec.rhs_per_second > 0.0
        # Warm model cost is the pure triangular-sweep cost.
        assert warm.record.model_flops == pytest.approx(
            2 * t.order ** 2 * 8)
        assert cold.record.model_flops > warm.record.model_flops

    def test_record_exports_unified_schema(self):
        t = kms_toeplitz(24, 0.5)
        res = engine.execute(engine.plan(t), np.ones((24, 2)))
        rec = res.record.to_record(rec_id=7)
        assert rec["v"] == obs.SCHEMA_VERSION
        assert rec["source"] == obs.SOURCE_ENGINE
        assert rec["kind"] == obs.KIND_EXECUTION
        assert rec["name"] == "engine.execute"
        assert rec["attrs"]["nrhs"] == 2
        assert rec["attrs"]["cache_hit"] is False
        assert rec["end"] >= rec["start"]
        assert not obs.is_compute_kind(rec["kind"])

    def test_counted_flops_with_observability(self):
        t = ar_block_toeplitz(8, 4, seed=5)
        pl = engine.plan(t)
        engine.execute(pl, np.ones(t.order))  # prime the cache
        obs.enable()
        try:
            res = engine.execute(pl, np.ones((t.order, 4)))
        finally:
            obs.disable()
        rec = res.record
        assert rec.counted_flops is not None
        # The warm-cache solve is exactly two n×n panel dtrsm sweeps.
        assert rec.counted_flops == 2 * t.order ** 2 * 4

    def test_fallback_marks_record(self):
        t = singular_minor_toeplitz(24, seed=7)
        res = engine.execute(engine.plan(t, probe=False),
                             np.ones((24, 3)))
        assert res.fallback_used
        assert res.record.fallback_used
        assert res.record.algorithm == res.algorithm


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSolveCLI:
    @pytest.fixture
    def matrix_file(self, tmp_path):
        path = tmp_path / "row.npy"
        np.save(path, kms_toeplitz(16, 0.6).first_scalar_row())
        return str(path)

    def test_synthetic_panel(self, matrix_file, capsys):
        assert main(["solve", matrix_file, "--nrhs", "4"]) == 0
        out = capsys.readouterr().out
        assert "panel of 4 right-hand sides" in out

    def test_panel_rhs_file(self, matrix_file, tmp_path, capsys):
        rhs = tmp_path / "b.npy"
        np.save(rhs, np.random.default_rng(17).standard_normal((16, 3)))
        assert main(["solve", matrix_file, str(rhs)]) == 0
        assert "panel of 3 right-hand sides" in capsys.readouterr().out

    def test_profile_reports_throughput(self, matrix_file, capsys):
        assert main(["solve", matrix_file, "--nrhs", "8",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "panel solve throughput" in out
        assert "RHS/s" in out

    def test_rhs_and_nrhs_conflict(self, matrix_file, tmp_path, capsys):
        rhs = tmp_path / "b.npy"
        np.save(rhs, np.ones(16))
        assert main(["solve", matrix_file, str(rhs), "--nrhs", "2"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_missing_rhs(self, matrix_file, capsys):
        assert main(["solve", matrix_file]) == 1
        assert "--nrhs" in capsys.readouterr().err
