"""Tests for the benchmark-harness helpers."""

import os

import pytest

from repro.bench import bench_scale, format_series, format_table, \
    write_result
from repro.bench.runner import full_scale


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.123457" in text

    def test_format_series(self):
        text = format_series("n", [1, 2], {"t": [0.5, 0.25]})
        assert "n" in text and "t" in text
        assert "0.5" in text and "0.25" in text

    def test_write_result(self, tmp_path, capsys):
        path = write_result("unit", "hello\n", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read() == "hello\n"
        out = capsys.readouterr().out
        assert "hello" in out

    def test_write_result_no_echo(self, tmp_path, capsys):
        write_result("unit2", "quiet", directory=str(tmp_path),
                     echo=False)
        assert capsys.readouterr().out == ""


class TestRunner:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert not full_scale()
        assert bench_scale(10, 100) == 10

    def test_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert full_scale()
        assert bench_scale(10, 100) == 100

    def test_explicit_zero_is_quick(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "0")
        assert not full_scale()
