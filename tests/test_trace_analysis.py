"""Tests for trace analysis, the Chrome timeline export, and the CLI."""

import json

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.cli import main
from repro.engine import FactorizationCache, set_default_cache
from repro.obs.analyze import analyze_file, analyze_records
from repro.obs.export import merge_rank_traces, read_jsonl, write_jsonl
from repro.obs.schema import make_record
from repro.obs.timeline import chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.parallel import simulate_factorization
from repro.parallel.mp_backend import multiprocess_available
from repro.toeplitz import kms_toeplitz

requires_mp = pytest.mark.skipif(
    not multiprocess_available()[0],
    reason=f"multiprocess backend unavailable: "
           f"{multiprocess_available()[1]}")


@pytest.fixture
def traced():
    registry = MetricsRegistry()
    prev_registry = obs.set_default_registry(registry)
    prev_cache = set_default_cache(FactorizationCache())
    obs.enable()
    yield registry
    obs.disable()
    obs.set_default_registry(prev_registry)
    set_default_cache(prev_cache)


def _engine_records(traced, n=128, nrhs=3):
    t = kms_toeplitz(n, 0.5)
    pl = engine.plan(t, assume="spd")
    rng = np.random.default_rng(0)
    res = engine.execute(pl, rng.standard_normal((n, nrhs)))
    assert res.profile is not None
    return res.to_trace_records()


def _sim_records(n=64, nproc=4):
    run = simulate_factorization(kms_toeplitz(n, 0.5), nproc=nproc,
                                 collect=False, trace=True)
    return run.report.trace.to_records()


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------
class TestAnalyze:
    def test_engine_trace_report(self, traced):
        report = analyze_records(_engine_records(traced))
        assert report.makespan > 0
        # critical path descends the span tree from engine.execute
        assert report.critical_path[0].name == "engine.execute"
        assert len(report.critical_path) >= 2
        assert report.critical_path[1].depth == 1
        durations = [e.duration for e in report.critical_path]
        assert durations == sorted(durations, reverse=True)
        # engine trace is a single serial lane
        assert len(report.ranks) == 1
        assert report.ranks[0].rank is None
        assert report.imbalance is None
        # summary record feeds the flop report
        assert report.flops.available
        assert report.flops.model_flops > 0
        assert report.flops.achieved_mflops > 0

    def test_execution_record_not_critical_path_root(self, traced):
        records = _engine_records(traced)
        assert any(r["kind"] == "execution" for r in records)
        report = analyze_records(records)
        assert report.critical_path[0].kind != "execution"

    def test_simulated_trace_report(self):
        report = analyze_records(_sim_records(nproc=4))
        # one utilization lane per PE, makespan-paced critical rank
        assert [r.rank for r in report.ranks] == [0, 1, 2, 3]
        assert report.imbalance is not None and report.imbalance >= 1.0
        assert report.critical_path[0].kind == "rank"
        assert all(e.depth == 1 for e in report.critical_path[1:])
        for r in report.ranks:
            assert r.busy + r.comm + r.idle == pytest.approx(
                report.makespan, rel=1e-6)
        # simulated traces carry no flop attrs: n/a, not a crash
        assert not report.flops.available
        assert "n/a" in report.render()

    def test_render_mentions_all_sections(self, traced):
        text = analyze_records(_engine_records(traced)).render()
        for needle in ("critical path", "per-rank utilization",
                       "flop efficiency", "makespan"):
            assert needle in text

    def test_analyze_file_round_trip(self, traced, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(_engine_records(traced), path)
        report = analyze_file(path)
        assert report.num_records == len(read_jsonl(path))

    def test_empty_trace(self):
        report = analyze_records([])
        assert report.makespan == 0.0
        assert report.critical_path == ()
        assert "(empty trace)" in report.render()

    def test_to_dict_is_json_ready(self, traced):
        doc = analyze_records(_engine_records(traced)).to_dict()
        json.dumps(doc)
        assert doc["flops"]["model_flops"] > 0


# ----------------------------------------------------------------------
# timeline
# ----------------------------------------------------------------------
class TestTimeline:
    def test_chrome_trace_structure(self):
        doc = chrome_trace(_sim_records(nproc=2))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert xs and ms
        for e in xs:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
        # metadata names both the process and each rank lane
        names = {e["name"] for e in ms}
        assert names == {"process_name", "thread_name"}
        lanes = {e["tid"] for e in xs}
        assert lanes == {0, 1}

    def test_write_chrome_trace_validates_as_json(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        write_chrome_trace(_sim_records(), path)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]

    def test_accepts_jsonl_path(self, tmp_path):
        src = str(tmp_path / "t.jsonl")
        write_jsonl(_sim_records(), src)
        out = str(tmp_path / "chrome.json")
        write_chrome_trace(src, out)
        assert json.load(open(out))["traceEvents"]

    def test_nan_attrs_survive(self, tmp_path):
        rec = make_record(source="engine", rec_id=0, parent=None,
                          name="s", kind="span", rank=None,
                          start=0.0, end=1.0,
                          attrs={"bad": float("nan")})
        path = str(tmp_path / "chrome.json")
        write_chrome_trace([rec], path)
        doc = json.load(open(path))
        assert doc["traceEvents"][-1]["args"]["bad"] is None


# ----------------------------------------------------------------------
# real multiprocess backend end to end
# ----------------------------------------------------------------------
@requires_mp
class TestMultiprocessTrace:
    def test_mp_trace_reports_per_rank(self, traced, tmp_path):
        t = kms_toeplitz(96, 0.5)
        pl = engine.plan(t, assume="spd", nproc=2,
                         backend="multiprocess")
        fres = engine.factor(pl)
        assert fres.factorization.backend == "multiprocess"
        records = fres.factorization.run.to_records()
        # merged stream: time-ordered, globally unique ids
        ids = [r["id"] for r in records]
        assert ids == list(range(len(records)))
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)
        report = analyze_records(records)
        assert [r.rank for r in report.ranks] == [0, 1]
        assert report.imbalance is not None
        # per-PE phase breakdown feeds busy + comm time
        assert all(r.busy > 0 for r in report.ranks)
        assert all(r.comm > 0 for r in report.ranks)
        doc = chrome_trace(records)
        lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert lanes == {0, 1}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def matrix_file(self, tmp_path):
        path = str(tmp_path / "row.npy")
        np.save(path, 0.5 ** np.arange(64))
        return path

    def test_trace_report_engine(self, matrix_file, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["solve", matrix_file, "--nrhs", "2",
                     "--trace-out", trace]) == 0
        assert main(["trace", "report", trace]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "flop efficiency" in out

    def test_trace_report_simulated(self, matrix_file, tmp_path, capsys):
        trace = str(tmp_path / "sim.jsonl")
        assert main(["simulate", matrix_file, "--nproc", "4",
                     "--trace-out", trace]) == 0
        assert main(["trace", "report", trace]) == 0
        out = capsys.readouterr().out
        assert "rank 3" in out
        assert "imbalance" in out

    def test_trace_report_json(self, matrix_file, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        main(["solve", matrix_file, "--nrhs", "1", "--trace-out", trace])
        assert main(["trace", "report", trace, "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert "critical_path" in doc

    def test_trace_timeline(self, matrix_file, tmp_path, capsys):
        trace = str(tmp_path / "sim.jsonl")
        main(["simulate", matrix_file, "--nproc", "2",
              "--trace-out", trace])
        out_path = str(tmp_path / "chrome.json")
        assert main(["trace", "timeline", trace, "-o", out_path]) == 0
        assert json.load(open(out_path))["traceEvents"]

    def test_trace_report_merges_multiple_files(self, tmp_path, capsys):
        a = [make_record(source="multiprocess", rec_id=0, parent=None,
                         name="compute", kind="compute", rank=0,
                         start=0.0, end=1.0)]
        b = [make_record(source="multiprocess", rec_id=0, parent=None,
                         name="compute", kind="compute", rank=1,
                         start=0.5, end=1.5)]
        pa, pb = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_jsonl(a, pa)
        write_jsonl(b, pb)
        assert main(["trace", "report", pa, pb]) == 0
        out = capsys.readouterr().out
        assert "rank 0" in out and "rank 1" in out


# ----------------------------------------------------------------------
# merge_rank_traces
# ----------------------------------------------------------------------
class TestMergeRankTraces:
    def test_merge_orders_and_remaps_parents(self, tmp_path):
        a = [
            make_record(source="multiprocess", rec_id=0, parent=None,
                        name="pe", kind="span", rank=0,
                        start=0.0, end=2.0),
            make_record(source="multiprocess", rec_id=1, parent=0,
                        name="compute", kind="compute", rank=0,
                        start=1.0, end=1.5),
        ]
        b = [
            make_record(source="multiprocess", rec_id=0, parent=None,
                        name="pe", kind="span", rank=1,
                        start=0.5, end=2.0),
            make_record(source="multiprocess", rec_id=1, parent=0,
                        name="compute", kind="compute", rank=1,
                        start=0.75, end=1.75),
        ]
        merged = merge_rank_traces([a, b])
        assert [r["id"] for r in merged] == [0, 1, 2, 3]
        starts = [r["start"] for r in merged]
        assert starts == sorted(starts)
        # each child still points at its own stream's root
        for rec in merged:
            if rec["parent"] is not None:
                parent = merged[rec["parent"]]
                assert parent["rank"] == rec["rank"]
                assert parent["start"] <= rec["start"]

    def test_merge_reads_files_and_writes_out(self, tmp_path):
        recs = [make_record(source="simulator", rec_id=0, parent=None,
                            name="compute", kind="compute", rank=0,
                            start=0.0, end=1.0)]
        src = str(tmp_path / "r0.jsonl")
        out = str(tmp_path / "merged.jsonl")
        write_jsonl(recs, src)
        merged = merge_rank_traces([src, src], out_path=out)
        assert len(merged) == 2
        assert read_jsonl(out) == merged

    def test_tie_breaks_enclosing_span_first(self):
        child = make_record(source="engine", rec_id=1, parent=0,
                            name="inner", kind="span", rank=None,
                            start=0.0, end=0.5)
        root = make_record(source="engine", rec_id=0, parent=None,
                           name="outer", kind="span", rank=None,
                           start=0.0, end=1.0)
        merged = merge_rank_traces([[child, root]])
        assert merged[0]["name"] == "outer"
        assert merged[1]["parent"] == 0
