"""Tests for the distributed triangular-solve data plane.

The contract: a distributed plan keeps the solve distributed — the
forward/backward SPMD sweeps run on the same backend that factored,
for vectors and panels, on every Figure-5 distribution that supports
them — with parity ≤ 1e-10 against the serial factorization, exact
comm-counter parity between the real and simulated programs, and a
recorded serial fallback everywhere the distributed path cannot run.
The Section-7 lookahead schedule must factor identically to the bulk
schedule on both backends.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.engine as engine
from repro.core.refinement import refine
from repro.core.schur_spd import schur_spd_factor
from repro.errors import (
    DistributionError,
    InvalidOptionError,
    NotPositiveDefiniteError,
)
from repro.parallel import (
    DistributedFactorization,
    factor_distributed,
    make_layout,
    mp_factorization,
    mp_triangular_solve,
    multiprocess_available,
    simulate_factorization,
    simulate_triangular_solve,
)
from repro.parallel.transport import (
    SEGMENT_PREFIX,
    SharedMemoryTransport,
    available_transports,
    get_transport,
)
from repro.toeplitz import ar_block_toeplitz

requires_mp = pytest.mark.skipif(
    not multiprocess_available()[0],
    reason="multiprocess backend unavailable on this platform")

#: (nproc, distribution_b) for the three Figure-5 distributions.
DISTRIBUTIONS = [
    pytest.param(2, 1.0, id="v1"),
    pytest.param(4, 2.0, id="v2"),
    pytest.param(2, 0.5, id="v3"),
]


def _rhs(t, k):
    rng = np.random.default_rng(7)
    return (rng.standard_normal(t.order) if k == 1
            else rng.standard_normal((t.order, k)))


class TestSimulatedSolve:
    """Distributed sweeps on the discrete-event machine."""

    @pytest.mark.parametrize("k", [1, 32])
    @pytest.mark.parametrize("nproc,b", DISTRIBUTIONS)
    def test_parity_through_engine(self, nproc, b, k):
        t = ar_block_toeplitz(8, 4, seed=nproc)
        serial = schur_spd_factor(t)
        rhs = _rhs(t, k)
        pl = engine.plan(t, nproc=nproc, distribution_b=b,
                         backend="simulated", use_cache=False)
        res = engine.execute(pl, rhs)
        np.testing.assert_allclose(res.x, serial.solve(rhs), atol=1e-10)
        route = res.detail.last_solve_backend
        if b < 1:
            # Version 3 splits block columns: the solve sweeps need
            # whole columns, so the serial fallback runs — recorded.
            assert route == "serial"
            assert "spread" in res.detail.last_solve_fallback_reason
        else:
            assert route == "simulated"
            assert res.detail.last_solve_run is not None

    @pytest.mark.parametrize("k", [1, 32])
    def test_panel_matches_columnwise(self, k):
        t = ar_block_toeplitz(10, 3, seed=3)
        run = simulate_factorization(t, 2)
        rhs = _rhs(t, k)
        x, report = simulate_triangular_solve(run, rhs)
        assert x.shape == rhs.shape
        np.testing.assert_allclose(
            x, schur_spd_factor(t).solve(rhs), atol=1e-10)
        # one broadcast per block row per sweep, m·k words each, plus
        # one reduce per block row in the backward sweep
        m, p = run.block_size, run.num_blocks
        words = m * (1 if k == 1 else k)
        assert report.broadcast_words_by_rank() == {
            r: 2 * p * words for r in range(2)}
        assert report.reduce_words_by_rank() == {
            r: p * words for r in range(2)}

    def test_rejects_spread_layout(self):
        t = ar_block_toeplitz(8, 4, seed=1)
        run = simulate_factorization(t, 2, b=0.5)
        with pytest.raises(DistributionError):
            simulate_triangular_solve(run, np.ones(t.order))


@requires_mp
class TestMultiprocessSolve:
    """Real worker processes running the solve sweeps."""

    @pytest.mark.parametrize("k", [1, 32])
    @pytest.mark.parametrize("nproc,b", DISTRIBUTIONS)
    def test_parity_through_engine(self, nproc, b, k):
        t = ar_block_toeplitz(8, 4, seed=nproc + 10)
        serial = schur_spd_factor(t)
        rhs = _rhs(t, k)
        pl = engine.plan(t, nproc=nproc, distribution_b=b,
                         backend="multiprocess", use_cache=False)
        res = engine.execute(pl, rhs)
        np.testing.assert_allclose(res.x, serial.solve(rhs), atol=1e-10)
        route = res.detail.last_solve_backend
        if b < 1:
            assert route == "serial"
        else:
            assert route == "multiprocess"
            assert res.detail.last_solve_run.nrhs == k

    @pytest.mark.parametrize("k", [1, 32])
    def test_comm_parity_with_simulator(self, k):
        """Real solve counters equal the simulated program's, per rank."""
        t = ar_block_toeplitz(10, 3, seed=5)
        serial = schur_spd_factor(t)
        rhs = _rhs(t, k)
        sim_run = simulate_factorization(t, 3)
        _x, sim_rep = simulate_triangular_solve(sim_run, rhs)
        real = mp_triangular_solve(serial.r, make_layout(3, b=1), rhs,
                                   block_size=3)
        assert real.broadcast_words_by_rank() == \
            sim_rep.broadcast_words_by_rank()
        assert real.reduce_words_by_rank() == \
            sim_rep.reduce_words_by_rank()
        np.testing.assert_allclose(real.x, serial.solve(rhs), atol=1e-10)

    def test_solve_trace_records(self):
        t = ar_block_toeplitz(8, 3, seed=6)
        serial = schur_spd_factor(t)
        run = mp_triangular_solve(serial.r, make_layout(2, b=1),
                                  np.ones(t.order), block_size=3)
        records = run.to_records()
        pe = [r for r in records if r["name"] == "mp.solve.pe"]
        assert sorted(r["rank"] for r in pe) == [0, 1]
        for w in run.workers:
            assert {"solve", "barrier", "application"} <= set(w["phases"])

    def test_group_size_layout(self):
        """Version 2 (b > 1) solves distributed too."""
        t = ar_block_toeplitz(8, 3, seed=8)
        serial = schur_spd_factor(t)
        rhs = _rhs(t, 4)
        run = mp_triangular_solve(serial.r, make_layout(2, b=2), rhs,
                                  block_size=3)
        np.testing.assert_allclose(run.x, serial.solve(rhs), atol=1e-10)


class TestSolveFallback:
    def test_bare_factorization_solves_serially(self):
        """A DistributedFactorization without a run (back-compat
        construction) still solves, via the recorded serial fallback."""
        t = ar_block_toeplitz(8, 3, seed=5)
        serial = schur_spd_factor(t)
        fact = DistributedFactorization(
            r=serial.r.copy(), block_size=3, num_blocks=8,
            representation="vy2", nproc=2, backend="multiprocess",
            requested_backend="multiprocess")
        b = np.ones(t.order)
        np.testing.assert_allclose(fact.solve(b), serial.solve(b),
                                   atol=1e-10)
        assert fact.last_solve_backend == "serial"
        assert "no backend run" in fact.last_solve_fallback_reason

    def test_mp_unavailable_solve_falls_back(self, monkeypatch):
        t = ar_block_toeplitz(8, 3, seed=5)
        pl = engine.plan(t, nproc=2, backend="multiprocess",
                         use_cache=False)
        fact = factor_distributed(t, pl)
        monkeypatch.setenv("REPRO_MP_DISABLE", "1")
        b = np.ones(t.order)
        x = fact.solve(b)
        np.testing.assert_allclose(t.matvec(x), b, atol=1e-8)
        assert fact.last_solve_backend == "serial"
        assert "REPRO_MP_DISABLE" in fact.last_solve_fallback_reason

    def test_refinement_over_distributed_solves(self):
        """Blocked refinement drives the distributed solve path."""
        t = ar_block_toeplitz(8, 3, seed=9)
        pl = engine.plan(t, nproc=2, backend="simulated",
                         use_cache=False)
        fact = factor_distributed(t, pl)
        rhs = _rhs(t, 4)
        res = refine(fact, t, rhs)
        assert res.converged
        np.testing.assert_allclose(res.x, schur_spd_factor(t).solve(rhs),
                                   atol=1e-9)
        assert fact.last_solve_backend == "simulated"


class TestLookaheadSchedule:
    def test_simulated_lookahead_through_engine(self):
        t = ar_block_toeplitz(10, 3, seed=2)
        serial = schur_spd_factor(t)
        pl = engine.plan(t, nproc=2, schedule="lookahead",
                         backend="simulated", use_cache=False)
        res = engine.execute(pl, np.ones(t.order))
        np.testing.assert_allclose(t.matvec(res.x), np.ones(t.order),
                                   atol=1e-8)
        np.testing.assert_allclose(res.detail.r, serial.r, atol=1e-10)

    def test_plan_validates_lookahead(self):
        t = ar_block_toeplitz(8, 3, seed=2)
        with pytest.raises(InvalidOptionError):
            engine.plan(t, nproc=1, schedule="lookahead")
        with pytest.raises(InvalidOptionError):
            engine.plan(t, nproc=4, distribution_b=2,
                        schedule="lookahead")
        with pytest.raises(InvalidOptionError):
            engine.plan(t, nproc=2, schedule="eager")

    def test_schedule_in_cache_key(self):
        t = ar_block_toeplitz(8, 3, seed=2)
        bulk = engine.plan(t, nproc=2)
        look = engine.plan(t, nproc=2, schedule="lookahead")
        assert bulk.cache_key() != look.cache_key()

    @requires_mp
    @pytest.mark.parametrize("nproc", [2, 4])
    def test_mp_lookahead_parity(self, nproc):
        t = ar_block_toeplitz(12, 3, seed=nproc)
        serial = schur_spd_factor(t).r
        run = mp_factorization(t, nproc, schedule="lookahead")
        assert run.schedule == "lookahead"
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    @requires_mp
    def test_mp_lookahead_comm_parity(self):
        """Shift + broadcast words match the simulated lookahead."""
        t = ar_block_toeplitz(10, 4, seed=3)
        real = mp_factorization(t, 2, schedule="lookahead")
        sim = simulate_factorization(t, 2, program="lookahead")
        assert real.words_by_rank() == sim.report.words_by_rank()
        assert real.broadcast_words_by_rank() == \
            sim.report.broadcast_words_by_rank()

    @requires_mp
    def test_mp_lookahead_phases(self):
        """Lookahead runs barrier-free: waits are dataflow stalls."""
        t = ar_block_toeplitz(10, 3, seed=4)
        run = mp_factorization(t, 2, schedule="lookahead")
        for w in run.workers:
            assert "barrier" not in w["phases"]
            assert {"blocking", "broadcast"} <= set(w["phases"])

    @requires_mp
    def test_mp_lookahead_rejects_bad_layout(self):
        t = ar_block_toeplitz(8, 2, seed=1)
        with pytest.raises(DistributionError):
            mp_factorization(t, 4, b=2, schedule="lookahead")
        with pytest.raises(DistributionError):
            mp_factorization(t, 1, schedule="lookahead")

    @requires_mp
    def test_mp_lookahead_breakdown(self):
        """A non-SPD matrix raises through the lookahead schedule too."""
        from repro.toeplitz import SymmetricBlockToeplitz
        m, p = 2, 4
        blocks = np.zeros((p, m, m))
        blocks[0] = np.eye(m)
        blocks[1] = 2.0 * np.eye(m)
        t = SymmetricBlockToeplitz(blocks)
        with pytest.raises(NotPositiveDefiniteError):
            mp_factorization(t, 2, schedule="lookahead")


class TestTransportRegistry:
    def test_shared_memory_registered(self):
        assert "shared_memory" in available_transports()
        tr = get_transport("shared_memory")
        assert isinstance(tr, SharedMemoryTransport)

    def test_unknown_transport_rejected(self):
        with pytest.raises(DistributionError):
            get_transport("carrier_pigeon")
        t = ar_block_toeplitz(6, 2, seed=1)
        with pytest.raises(InvalidOptionError):
            engine.plan(t, nproc=2, transport="carrier_pigeon")

    def test_transport_in_cache_key_fields(self):
        from repro.engine.plan import _PLAN_KEY_FIELDS
        assert "transport" in _PLAN_KEY_FIELDS
        assert "schedule" in _PLAN_KEY_FIELDS

    @requires_mp
    def test_session_cleanup_tolerates_double_unlink(self):
        tr = get_transport("shared_memory")
        with tr.session() as sess:
            _arr, handle = sess.ndarray((4, 4))
            assert handle.name.startswith(SEGMENT_PREFIX)
            sess.cleanup()   # explicit …
        # … and the context-manager exit cleans up again: no raise.


@requires_mp
class TestCrashRobustness:
    """A worker dying mid-run must not leak /dev/shm segments."""

    CRASH_SCRIPT = """
import numpy as np
from repro.toeplitz import ar_block_toeplitz
from repro.parallel import mp_factorization
from repro.errors import DistributionError

t = ar_block_toeplitz(8, 3, seed=1)
for schedule in ("bulk", "lookahead"):
    try:
        mp_factorization(t, 2, schedule=schedule)
        raise SystemExit(f"{schedule}: crash injection did not fire")
    except DistributionError:
        pass
print("OK")
"""

    @pytest.mark.parametrize("stage", ["spawn", "attach"])
    def test_no_segment_leak_on_worker_crash(self, stage, tmp_path):
        """Child dies at ``stage``; parent must raise and clean up
        every segment with no resource-tracker warnings."""
        env = dict(os.environ)
        env["REPRO_MP_CRASH"] = f"1:{stage}"
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), "..", "src")])
        proc = subprocess.run(
            [sys.executable, "-c", self.CRASH_SCRIPT],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        # the resource tracker prints leak warnings at interpreter exit
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        if os.path.isdir("/dev/shm"):
            leftovers = [f for f in os.listdir("/dev/shm")
                         if f.startswith(SEGMENT_PREFIX)]
            assert leftovers == []

    def test_crash_during_solve_cleans_up(self):
        t = ar_block_toeplitz(8, 3, seed=2)
        serial = schur_spd_factor(t)
        os.environ["REPRO_MP_CRASH"] = "0:attach"
        try:
            with pytest.raises(DistributionError):
                mp_triangular_solve(serial.r, make_layout(2, b=1),
                                    np.ones(t.order), block_size=3)
        finally:
            del os.environ["REPRO_MP_CRASH"]
        if os.path.isdir("/dev/shm"):
            leftovers = [f for f in os.listdir("/dev/shm")
                         if f.startswith(SEGMENT_PREFIX)]
            assert leftovers == []


class TestLogdetGuard:
    def test_valid_logdet_matches_dense(self):
        t = ar_block_toeplitz(8, 3, seed=3)
        pl = engine.plan(t, nproc=2, use_cache=False)
        fact = factor_distributed(t, pl)
        expected = np.linalg.slogdet(t.dense())[1]
        assert abs(fact.logdet() - expected) < 1e-8

    def test_nonpositive_diagonal_raises(self):
        """abs() used to mask a failed factorization — now it raises."""
        t = ar_block_toeplitz(8, 3, seed=3)
        pl = engine.plan(t, nproc=2, use_cache=False)
        fact = factor_distributed(t, pl)
        fact.r[0, 0] = -fact.r[0, 0]
        with pytest.raises(NotPositiveDefiniteError):
            fact.logdet()
        fact.r[0, 0] = 0.0
        with pytest.raises(NotPositiveDefiniteError):
            fact.logdet()
