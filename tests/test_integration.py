"""End-to-end integration tests crossing module boundaries."""

import numpy as np
import pytest

from repro import (
    SchurOptions,
    ar_block_toeplitz,
    cholesky,
    kms_toeplitz,
    paper_example_matrix,
    schur_spd_factor,
    singular_minor_toeplitz,
    solve,
    solve_refined,
)
from repro.baselines import block_levinson_solve, dense_cholesky_solve, pcg
from repro.core.regroup import choose_block_size, regrouped_factor
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.blas.cray import cray_ymp_model, t3d_node_model
from repro.parallel import analytic_factor_time, simulate_factorization
from repro.toeplitz.matvec import BlockCirculantEmbedding


class TestSolverAgreement:
    """All solvers must agree on the same well-conditioned system."""

    def test_four_way_agreement_spd(self, rng):
        t = ar_block_toeplitz(10, 3, seed=99)
        b = rng.standard_normal(t.order)
        x_schur = cholesky(t).solve(b)
        x_lev = block_levinson_solve(t, b).x
        x_dense = dense_cholesky_solve(t, b)
        x_pcg = pcg(t, b, preconditioner=cholesky(t), tol=1e-13).x
        for x in (x_lev, x_dense, x_pcg):
            np.testing.assert_allclose(x, x_schur, atol=1e-7)

    def test_scalar_agreement_with_scipy(self, rng):
        import scipy.linalg as sla
        t = kms_toeplitz(64, 0.8)
        b = rng.standard_normal(64)
        x_ref = sla.solve_toeplitz(t.first_scalar_row(), b)
        np.testing.assert_allclose(solve(t, b), x_ref, atol=1e-8)


class TestSingularMinorPipeline:
    """The full Section-8 pipeline on progressively harder matrices."""

    @pytest.mark.parametrize("n", [6, 12, 24, 48])
    def test_solve_refined_scales(self, n, rng):
        t = singular_minor_toeplitz(n, minor=2, seed=n)
        x_true = rng.standard_normal(n)
        b = BlockCirculantEmbedding(t)(x_true)
        res = solve_refined(t, b)
        assert res.converged
        cond = np.linalg.cond(t.dense())
        assert np.linalg.norm(res.x - x_true) <= \
            1e-12 * max(cond, 100) * np.linalg.norm(x_true)

    def test_refinement_beats_unrefined(self):
        t = paper_example_matrix()
        x_true = np.ones(6)
        b = t.dense() @ x_true
        fact = schur_indefinite_factor(t)
        x_raw = fact.solve(b)
        res = solve_refined(t, b)
        assert np.linalg.norm(res.x - x_true) < \
            1e-4 * np.linalg.norm(x_raw - x_true)

    def test_deeper_minor_position(self, rng):
        t = singular_minor_toeplitz(16, minor=4, seed=3)
        b = rng.standard_normal(16)
        res = solve_refined(t, b)
        assert res.converged
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-6)


class TestBlockSizePipeline:
    def test_regrouped_factor_same_answer(self):
        t = kms_toeplitz(48, 0.6)
        r1 = schur_spd_factor(t).r
        for ms in (2, 4, 8):
            r = regrouped_factor(t, ms).r
            np.testing.assert_allclose(r, r1, atol=1e-9)

    def test_choose_block_size_prefers_larger_on_ymp(self):
        # the Y-MP model's level-3 shape penalty must make m_s = 1
        # suboptimal in MFLOPS terms
        best, preds = choose_block_size(256, 1, cray_ymp_model(),
                                        candidates=[1, 2, 4, 8])
        mflops = {p.block_size: p.mflops for p in preds}
        assert mflops[8] > mflops[1]

    def test_choose_block_size_flops_linear(self):
        _, preds = choose_block_size(256, 1, t3d_node_model(),
                                     candidates=[1, 2, 4])
        flops = {p.block_size: p.flops for p in preds}
        assert 1.4 < flops[2] / flops[1] < 3.0


class TestDistributedPipeline:
    def test_distributed_factor_solves_system(self, rng):
        import scipy.linalg as sla
        t = ar_block_toeplitz(12, 2, seed=101)
        run = simulate_factorization(t, nproc=4, b=1)
        b = rng.standard_normal(t.order)
        y = sla.solve_triangular(run.r, b, trans=1, check_finite=False)
        x = sla.solve_triangular(run.r, y, check_finite=False)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_all_three_versions_same_factor(self):
        t = ar_block_toeplitz(8, 4, seed=103)
        serial = schur_spd_factor(t).r
        for b in (1, 2, 0.5):
            run = simulate_factorization(t, nproc=4, b=b)
            np.testing.assert_allclose(run.r, serial, atol=1e-9,
                                       err_msg=f"b={b}")

    def test_simulated_time_scales_down_with_pes(self):
        t = kms_toeplitz(256, 0.5).regroup(4)
        t2 = simulate_factorization(t, nproc=2, b=1, collect=False).time
        t8 = simulate_factorization(t, nproc=8, b=1, collect=False).time
        assert t8 < t2

    def test_analytic_and_simulator_rank_layouts_alike(self):
        # both models must agree on which of b=1 / b=16 is faster
        t = kms_toeplitz(256, 0.5)
        sims = {b: simulate_factorization(t, nproc=4, b=b,
                                          collect=False).time
                for b in (1, 16)}
        anas = {b: analytic_factor_time(256, 1, 4, b=b).total
                for b in (1, 16)}
        assert (sims[1] < sims[16]) == (anas[1] < anas[16])


class TestNumericalStressCases:
    def test_moderately_ill_conditioned(self):
        t = kms_toeplitz(64, 0.97)
        fact = schur_spd_factor(t)
        d = t.dense()
        resid = np.max(np.abs(fact.reconstruct() - d))
        assert resid < 1e-10 * np.linalg.norm(d) * np.linalg.cond(d) ** 0.5

    def test_tiny_scale_invariance(self):
        t = ar_block_toeplitz(6, 2, seed=7).scaled(1e-8)
        fact = schur_spd_factor(t)
        np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                   rtol=1e-10, atol=1e-22)

    def test_huge_scale_invariance(self):
        t = ar_block_toeplitz(6, 2, seed=8).scaled(1e8)
        fact = schur_spd_factor(t)
        np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                   rtol=1e-10)

    def test_order_two(self):
        t = kms_toeplitz(2, 0.5)
        fact = schur_spd_factor(t)
        np.testing.assert_allclose(fact.reconstruct(), t.dense(),
                                   atol=1e-14)

    def test_large_scalar_problem(self):
        t = kms_toeplitz(512, 0.5)
        fact = schur_spd_factor(t.regroup(8))
        b = np.ones(512)
        x = fact.solve(b)
        resid = np.linalg.norm(BlockCirculantEmbedding(t)(x) - b)
        assert resid < 1e-9 * np.linalg.norm(b) * 512
