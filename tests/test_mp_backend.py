"""Tests for the real multiprocess distributed backend.

The contract: same plan, either backend, same ``R`` (to 1e-10 against
the serial factorization) and the same communication-volume counters;
per-PE spans land in the unified trace schema; unavailability degrades
gracefully to the simulator with a recorded reason.
"""

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.cli import main as cli_main
from repro.core.schur_spd import schur_spd_factor
from repro.errors import (
    DistributionError,
    MultiprocessUnavailableError,
    NotPositiveDefiniteError,
)
from repro.obs.schema import SCHEMA_VERSION
from repro.parallel import (
    DistributedFactorization,
    factor_distributed,
    mp_factorization,
    multiprocess_available,
    simulate_factorization,
)
from repro.toeplitz import SymmetricBlockToeplitz, ar_block_toeplitz

requires_mp = pytest.mark.skipif(
    not multiprocess_available()[0],
    reason="multiprocess backend unavailable on this platform")


class TestAvailability:
    def test_probe_returns_pair(self):
        ok, reason = multiprocess_available()
        assert isinstance(ok, bool)
        assert isinstance(reason, str)
        if ok:
            assert reason == ""

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_DISABLE", "1")
        ok, reason = multiprocess_available()
        assert not ok
        assert "REPRO_MP_DISABLE" in reason

    def test_disabled_factorization_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_DISABLE", "1")
        t = ar_block_toeplitz(6, 2, seed=0)
        with pytest.raises(MultiprocessUnavailableError):
            mp_factorization(t, 2)


@requires_mp
class TestParity:
    """Real workers reproduce the serial factor on every distribution."""

    @pytest.mark.parametrize("nproc", [1, 2, 4])
    def test_version1(self, nproc):
        t = ar_block_toeplitz(10, 3, seed=nproc)
        serial = schur_spd_factor(t).r
        run = mp_factorization(t, nproc, b=1)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    @pytest.mark.parametrize("b", [2, 3])
    def test_version2(self, b):
        t = ar_block_toeplitz(12, 2, seed=b)
        serial = schur_spd_factor(t).r
        run = mp_factorization(t, 4, b=b)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    @pytest.mark.parametrize("spread", [2, 4])
    def test_version3(self, spread):
        t = ar_block_toeplitz(8, 4, seed=spread)
        serial = schur_spd_factor(t).r
        run = mp_factorization(t, 4, b=1.0 / spread)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    def test_real_vs_simulated_same_plan(self):
        """Same plan, both backends: identical R."""
        t = ar_block_toeplitz(8, 4, seed=3)
        pl = engine.plan(t, nproc=4, distribution_b=2, use_cache=False)
        real = mp_factorization(t, plan=pl)
        sim = simulate_factorization(t, plan=pl)
        np.testing.assert_allclose(real.r, sim.r, atol=1e-10)

    def test_solve_through_backend(self):
        t = ar_block_toeplitz(8, 3, seed=5)
        run = mp_factorization(t, 2)
        fact = DistributedFactorization(
            r=run.r, block_size=run.block_size,
            num_blocks=run.num_blocks, representation=run.representation,
            nproc=2, backend="multiprocess",
            requested_backend="multiprocess")
        b = np.ones(t.order)
        x = fact.solve(b)
        np.testing.assert_allclose(t.matvec(x), b, atol=1e-8)


@requires_mp
class TestCommVolume:
    """Shift traffic of the real run matches the simulator per rank."""

    @pytest.mark.parametrize("nproc,b", [(2, 1), (4, 1), (4, 2), (4, 0.5)])
    def test_words_by_rank_match(self, nproc, b):
        t = ar_block_toeplitz(8, 4, seed=1)
        real = mp_factorization(t, nproc, b=b)
        sim = simulate_factorization(t, nproc, b=b)
        assert real.words_by_rank() == sim.report.words_by_rank()

    def test_broadcast_words_counted(self):
        t = ar_block_toeplitz(6, 3, seed=2)
        run = mp_factorization(t, 2, b=1)
        # Every PE receives transform_words + m words per step.
        from repro.parallel.costs import transform_words
        per_step = transform_words("vy2", 3) + 3
        expected = per_step * (run.num_blocks - 1)
        assert all(v == expected
                   for v in run.broadcast_words_by_rank().values())


@requires_mp
class TestEngineIntegration:
    def test_acceptance_nproc4(self):
        """engine.factor, nproc=4, multiprocess: R ≤1e-10 vs serial."""
        t = ar_block_toeplitz(8, 4, seed=9)
        serial = schur_spd_factor(t).r
        pl = engine.plan(t, nproc=4, backend="multiprocess",
                         use_cache=False)
        fres = engine.factor(pl)
        fact = fres.factorization
        assert fact.backend == "multiprocess"
        assert not fact.fell_back
        np.testing.assert_allclose(fact.r, serial, atol=1e-10)

    def test_execute_solves(self):
        t = ar_block_toeplitz(6, 3, seed=11)
        b = np.ones(t.order)
        pl = engine.plan(t, nproc=2, backend="multiprocess",
                         use_cache=False)
        res = engine.execute(pl, b)
        assert res.algorithm == "spd-schur"
        np.testing.assert_allclose(t.matvec(res.x), b, atol=1e-8)

    def test_backends_do_not_alias_in_cache(self):
        """Serial/simulated/multiprocess plans have distinct cache keys."""
        t = ar_block_toeplitz(6, 3, seed=13)
        serial_pl = engine.plan(t)
        sim_pl = engine.plan(t, nproc=2)
        mp_pl = engine.plan(t, nproc=2, backend="multiprocess")
        keys = {serial_pl.cache_key(), sim_pl.cache_key(),
                mp_pl.cache_key()}
        assert len(keys) == 3

    def test_breakdown_falls_back_to_indefinite(self):
        """Worker-side Schur breakdown triggers the armed fallback."""
        m, p = 2, 4
        blocks = np.zeros((p, m, m))
        blocks[0] = np.eye(m)
        blocks[1] = 2.0 * np.eye(m)   # SPD leading block, indefinite T
        t = SymmetricBlockToeplitz(blocks)
        with pytest.raises(NotPositiveDefiniteError):
            mp_factorization(t, 2)
        pl = engine.plan(t, nproc=2, backend="multiprocess",
                         probe=False, use_cache=False)
        assert pl.algorithm == "spd-schur"
        fres = engine.factor(pl)
        assert fres.algorithm == "indefinite+refine"

    def test_plan_requires_known_backend(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        from repro.errors import InvalidOptionError
        with pytest.raises(InvalidOptionError):
            engine.plan(t, nproc=2, backend="threads")

    def test_nproc_required_without_plan(self):
        t = ar_block_toeplitz(6, 2, seed=1)
        with pytest.raises(DistributionError):
            mp_factorization(t)


class TestFallback:
    def test_factor_distributed_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_DISABLE", "1")
        t = ar_block_toeplitz(8, 3, seed=4)
        serial = schur_spd_factor(t).r
        pl = engine.plan(t, nproc=2, backend="multiprocess",
                         use_cache=False)
        fact = factor_distributed(t, pl)
        assert fact.backend == "simulated"
        assert fact.requested_backend == "multiprocess"
        assert fact.fell_back
        assert "REPRO_MP_DISABLE" in fact.fallback_reason
        np.testing.assert_allclose(fact.r, serial, atol=1e-10)

    def test_engine_factor_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_DISABLE", "1")
        t = ar_block_toeplitz(6, 2, seed=8)
        pl = engine.plan(t, nproc=2, backend="multiprocess",
                         use_cache=False)
        fres = engine.factor(pl)
        assert fres.factorization.backend == "simulated"
        assert fres.factorization.fell_back


@requires_mp
class TestTraceSchema:
    def test_records_conform(self):
        t = ar_block_toeplitz(6, 3, seed=6)
        run = mp_factorization(t, 2)
        records = run.to_records()
        assert records
        pe = [r for r in records if r["name"] == "mp.pe"]
        assert sorted(r["rank"] for r in pe) == [0, 1]
        for rec in records:
            assert rec["v"] == SCHEMA_VERSION
            assert rec["source"] == "multiprocess"
            assert rec["rank"] in (0, 1)
            assert rec["end"] >= rec["start"]
            assert set(rec) >= {"v", "source", "id", "parent", "name",
                                "kind", "rank", "start", "end"}
        # phase children reference their mp.pe parent
        ids = {r["id"] for r in records}
        for rec in records:
            if rec["parent"] is not None:
                assert rec["parent"] in ids

    def test_worker_spans_merge_into_profile(self):
        t = ar_block_toeplitz(6, 3, seed=6)
        pl = engine.plan(t, nproc=2, backend="multiprocess",
                         use_cache=False)
        obs.enable()
        try:
            fres = engine.factor(pl)
        finally:
            obs.disable()
        assert fres.profile is not None
        records = fres.profile.to_records()
        pe = [r for r in records if r["name"] == "mp.pe"]
        assert sorted(r["rank"] for r in pe) == [0, 1]
        # engine spans carry no rank; worker spans do
        root = [r for r in records if r["parent"] is None]
        assert root[0]["name"] == "engine.factor"
        assert root[0]["rank"] is None
        # source identifies the producer even inside the engine tree
        assert root[0]["source"] == "engine"
        assert all(r["source"] == "multiprocess" for r in records
                   if r["rank"] is not None)

    def test_phase_accounting_present(self):
        t = ar_block_toeplitz(6, 3, seed=6)
        run = mp_factorization(t, 2)
        for w in run.workers:
            assert {"shift", "broadcast", "blocking", "application",
                    "barrier", "gather"} <= set(w["phases"])
        assert run.breakdown()
        assert run.wall_seconds > 0


@requires_mp
class TestCli:
    def test_factor_multiprocess(self, tmp_path, capsys):
        t = ar_block_toeplitz(6, 3, seed=2)
        mat = tmp_path / "t.npy"
        np.save(mat, t.dense())
        rc = cli_main(["factor", str(mat), "--block-size", "3",
                       "--nproc", "2", "--backend", "multiprocess",
                       "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend=multiprocess" in out

    def test_solve_fallback_message(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_MP_DISABLE", "1")
        t = ar_block_toeplitz(6, 3, seed=2)
        mat = tmp_path / "t.npy"
        rhs = tmp_path / "b.npy"
        np.save(mat, t.dense())
        np.save(rhs, np.ones(t.order))
        rc = cli_main(["solve", str(mat), str(rhs), "--block-size", "3",
                       "--nproc", "2", "--backend", "multiprocess",
                       "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend=simulated" in out
        assert "multiprocess unavailable" in out
