"""Tests for the observability layer: spans, metrics, trace export."""

import json

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.engine import FactorizationCache, set_default_cache
from repro.machine.trace import Trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import _NULL_CONTEXT, _STATE
from repro.toeplitz import kms_toeplitz, paper_example_matrix


@pytest.fixture
def traced():
    """Enable tracing with a fresh registry and cache; restore after."""
    registry = MetricsRegistry()
    prev_registry = obs.set_default_registry(registry)
    prev_cache = set_default_cache(FactorizationCache())
    obs.enable()
    yield registry
    obs.disable()
    obs.set_default_registry(prev_registry)
    set_default_cache(prev_cache)


@pytest.fixture
def untraced():
    """Force-disable tracing (even under REPRO_OBS=1 CI runs)."""
    was = obs.enabled()
    obs.disable()
    yield
    if was:
        obs.enable()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_timing(self, traced):
        with obs.span("outer", kind="test") as outer:
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
            with obs.span("inner2"):
                pass
        assert obs.current_span() is None
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert inner.parent is outer
        # timing monotonicity: children nested within the parent window
        assert outer.end >= outer.start
        for child in outer.children:
            assert child.start >= outer.start
            assert child.end <= outer.end
        assert outer.children[1].start >= outer.children[0].end
        assert outer.duration >= sum(c.duration for c in outer.children)
        assert outer.attributes == {"kind": "test"}

    def test_walk_depth_first(self, traced):
        with obs.span("a") as a:
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        assert [s.name for s in a.walk()] == ["a", "b", "c", "d"]

    def test_record_phase_accumulates(self, traced):
        with obs.span("s") as sp:
            obs.record_phase("blocking", 0.25)
            obs.record_phase("blocking", 0.5)
            obs.record_phase("application", 1.0)
        assert sp.phases == {"blocking": 0.75, "application": 1.0}

    def test_disabled_fast_path(self, untraced):
        # disabled mode hands out one shared no-op context manager and
        # never touches the span stack — the zero-allocation fast path
        assert obs.span("x") is _NULL_CONTEXT
        assert obs.span("y") is obs.span("z")
        depth = len(_STATE.stack)
        with obs.span("x") as sp:
            assert not sp          # null record is falsy
            sp.set(anything=1)     # and absorbs attributes
            assert len(_STATE.stack) == depth
            assert obs.current_span() is None

    def test_profile_from_nested_span_is_none(self, traced):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert obs.profile_from(inner) is None
        profile = obs.profile_from(outer)
        assert profile is not None and profile.root is outer

    def test_render_tree(self, traced):
        with obs.span("root", algorithm="spd-schur") as root:
            with obs.span("child"):
                pass
        text = obs.render_tree(root)
        assert "root" in text and "child" in text
        assert "ms" in text and "algorithm=spd-schur" in text


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2, algorithm="gko")
        gauge = registry.gauge("repro_test_bytes")
        gauge.set(128)
        gauge.inc(64)
        assert counter.value() == 1
        assert counter.value(algorithm="gko") == 2
        assert gauge.value() == 192
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")  # kind mismatch

    def test_snapshot_names(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(3)
        registry.gauge("repro_b").set(1.5, shard="x")
        snap = registry.snapshot()
        assert snap == {"repro_a_total": 3.0, 'repro_b{shard="x"}': 1.5}

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_solves_total",
                         "Solves executed").inc(4, algorithm="gko")
        registry.gauge("repro_cache_bytes", "Cache bytes").set(1024)
        registry.gauge("repro_unsampled")
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_solves_total Solves executed" in lines
        assert "# TYPE repro_solves_total counter" in lines
        assert 'repro_solves_total{algorithm="gko"} 4' in lines
        assert "# TYPE repro_cache_bytes gauge" in lines
        assert "repro_cache_bytes 1024" in lines
        assert "repro_unsampled 0" in lines
        assert text.endswith("\n")
        assert obs.render_prometheus(registry) == text

    def test_registry_thread_safety(self):
        import threading
        registry = MetricsRegistry()
        counter = registry.counter("repro_race_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000


# ----------------------------------------------------------------------
# Cache gauges
# ----------------------------------------------------------------------
class TestCacheGauges:
    def test_gauges_track_cache_counters(self, traced):
        cache = FactorizationCache(max_entries=2)
        cache.put(("a",), np.zeros(4))
        cache.put(("b",), np.zeros(4))
        cache.get(("a",))        # hit
        cache.get(("zz",))       # miss
        cache.put(("c",), np.zeros(4))  # evicts LRU
        stats = cache.stats()
        assert stats.evictions == 1
        for gauge_name, expected in [
            ("repro_cache_hits", stats.hits),
            ("repro_cache_misses", stats.misses),
            ("repro_cache_evictions", stats.evictions),
            ("repro_cache_entries", stats.entries),
            ("repro_cache_bytes", stats.current_bytes),
        ]:
            assert traced.gauge(gauge_name).value() == expected, gauge_name

    def test_no_gauges_when_disabled(self, untraced):
        registry = MetricsRegistry()
        previous = obs.set_default_registry(registry)
        try:
            cache = FactorizationCache()
            cache.put(("a",), np.zeros(4))
            cache.get(("a",))
            assert registry.snapshot() == {}
        finally:
            obs.set_default_registry(previous)


# ----------------------------------------------------------------------
# Engine profiles
# ----------------------------------------------------------------------
class TestEngineProfile:
    def test_execute_attaches_profile(self, traced):
        t = kms_toeplitz(24, 0.5)
        res = engine.solve(t, np.ones(24))
        profile = res.profile
        assert profile is not None
        assert profile.root.name == "engine.execute"
        names = [s.name for s in profile.root.walk()]
        assert "factor" in names and "solve" in names
        assert "schur.generator" in names and "schur.eliminate" in names
        factor_span = profile.root.children[0]
        assert factor_span.attributes["cache_hit"] is False
        assert factor_span.attributes["model_flops"] > 0
        # the blocking/application wall-time split made it onto the span
        eliminate = next(s for s in profile.root.walk()
                         if s.name == "schur.eliminate")
        assert "application" in eliminate.phases
        assert eliminate.attributes["counted_flops"] > 0
        assert profile.metrics[
            'repro_engine_executions_total{algorithm="spd-schur"}'] == 1

    def test_profile_none_when_disabled(self, untraced):
        t = kms_toeplitz(16, 0.5)
        res = engine.solve(t, np.ones(16))
        assert res.profile is None

    def test_factor_result_profile(self, traced):
        t = kms_toeplitz(16, 0.5)
        fres = engine.factor(engine.plan(t, assume="spd"))
        assert fres.profile is not None
        assert fres.profile.root.name == "engine.factor"

    def test_fallback_profile_and_counters(self, traced):
        t = paper_example_matrix()
        pl = engine.plan(t, probe=False)  # arms the fallback blind
        res = engine.execute(pl, t.dense() @ np.ones(t.order))
        assert res.fallback_used
        assert res.profile is not None
        assert res.profile.root.attributes["fallback"] == \
            "indefinite+refine"
        assert traced.counter("repro_engine_fallbacks_total").value(
            algorithm="indefinite+refine") == 1
        # refinement published its residual gauge while iterating
        assert traced.gauge("repro_refinement_residual").value() >= 0.0
        refine_span = next(s for s in res.profile.root.walk()
                           if s.name == "refine")
        assert refine_span.attributes["converged"] is True

    def test_pcg_gauge_and_span(self, traced):
        from repro.baselines.pcg import pcg
        t = kms_toeplitz(16, 0.5)
        with obs.span("harness") as sp:
            result = pcg(t, np.ones(16), tol=1e-10)
        assert result.converged
        pcg_span = next(s for s in sp.walk() if s.name == "pcg")
        assert pcg_span.attributes["iterations"] == result.iterations
        assert ('repro_pcg_residual'
                in obs.default_registry().snapshot())


# ----------------------------------------------------------------------
# Unified export schema
# ----------------------------------------------------------------------
class TestExport:
    def test_span_jsonl_round_trip(self, traced, tmp_path):
        t = kms_toeplitz(24, 0.5)
        res = engine.solve(t, np.ones(24))
        records = res.profile.to_records()
        path = str(tmp_path / "trace.jsonl")
        obs.write_jsonl(records, path)
        loaded = obs.read_jsonl(path)
        assert loaded == json.loads(json.dumps(records))
        # parent ids form a tree rooted at record 0
        assert loaded[0]["parent"] is None
        ids = {r["id"] for r in loaded}
        assert all(r["parent"] in ids for r in loaded[1:])
        assert all(r["v"] == obs.SCHEMA_VERSION for r in loaded)
        assert all(r["end"] >= r["start"] for r in loaded)

    def test_simulated_trace_records(self, tmp_path):
        trace = Trace()
        trace.add(0, 0.0, 1.0, "compute")
        trace.add(1, 0.0, 0.5, "shift")
        records = trace.to_records()
        assert [r["rank"] for r in records] == [0, 1]
        assert records[0]["source"] == "simulator"
        assert records[0]["kind"] == "compute"
        path = str(tmp_path / "sim.jsonl")
        obs.write_jsonl(records, path)
        assert obs.read_jsonl(path) == records

    def test_nan_inf_attrs_round_trip(self, tmp_path):
        # regression: json.dumps emits bare NaN/Infinity tokens by
        # default, which are invalid JSON and break downstream readers
        from repro.obs.export import _json_safe
        from repro.obs.schema import make_record
        rec = make_record(
            source="engine", rec_id=0, parent=None, name="s",
            kind="span", rank=None, start=0.0, end=1.0,
            attrs={"nan": float("nan"), "inf": float("inf"),
                   "ninf": float("-inf"), "np_nan": np.float64("nan"),
                   "ok": 1.5, "nested": [float("nan"), {"x": np.inf}]})
        path = str(tmp_path / "nan.jsonl")
        obs.write_jsonl([rec], path)
        # every line must parse under a strict (no NaN tokens) decoder
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                json.loads(line, parse_constant=lambda tok: pytest.fail(
                    f"invalid bare JSON constant {tok!r}"))
        attrs = obs.read_jsonl(path)[0]["attrs"]
        assert attrs["nan"] is None
        assert attrs["np_nan"] is None
        assert attrs["inf"] == "Infinity"
        assert attrs["ninf"] == "-Infinity"
        assert attrs["ok"] == 1.5
        assert attrs["nested"] == [None, {"x": "Infinity"}]
        safe = _json_safe({"a": np.float32("nan")})
        assert safe == {"a": None}

    def test_read_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 99}\n')
        with pytest.raises(ValueError):
            obs.read_jsonl(str(path))

    def test_phase_accumulators_become_child_records(self, traced):
        with obs.span("factor") as sp:
            obs.record_phase("blocking", 0.25)
            obs.record_phase("application", 0.75)
        records = obs.span_records(sp)
        kinds = {r["kind"] for r in records}
        assert {"span", "blocking", "application"} <= kinds
        blocking = next(r for r in records if r["kind"] == "blocking")
        assert blocking["parent"] == 0
        assert blocking["end"] - blocking["start"] == pytest.approx(0.25)

    def test_compute_kinds_shared_with_utilization(self):
        # every kind the exporter treats as compute counts as busy
        # machine-time in Trace.utilization, and vice versa
        for kind in obs.COMPUTE_KINDS:
            trace = Trace()
            trace.add(0, 0.0, 1.0, kind)
            assert trace.utilization(1, 1.0) == pytest.approx(1.0), kind
            assert obs.is_compute_kind(kind)
        idle = Trace()
        idle.add(0, 0.0, 1.0, "idle")
        assert idle.utilization(1, 1.0) == 0.0
