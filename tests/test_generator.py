"""Tests for generators and displacement structure (Section 2)."""

import numpy as np
import pytest

from repro.core.generator import (
    block_shift_matrix,
    displacement,
    generator_to_full,
    indefinite_generator,
    signed_cholesky,
    spd_generator,
)
from repro.errors import (
    NotPositiveDefiniteError,
    ShapeError,
    SingularMinorError,
)
from repro.toeplitz import (
    SymmetricBlockToeplitz,
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
)
from repro.utils.lintools import is_upper_triangular


class TestDisplacement:
    def test_shift_matrix_eq3(self):
        z = block_shift_matrix(2, 3)
        # Z moves block column j to block column j+1 when right-applied.
        expect = np.zeros((6, 6))
        expect[0:2, 2:4] = np.eye(2)
        expect[2:4, 4:6] = np.eye(2)
        np.testing.assert_allclose(z, expect)

    def test_displacement_matches_definition(self, small_spd_block):
        t = small_spd_block
        d = t.dense()
        m, p = t.block_size, t.num_blocks
        z = block_shift_matrix(m, p)
        np.testing.assert_allclose(displacement(t), d - z.T @ d @ z,
                                   atol=1e-12)

    def test_displacement_rank_at_most_2m(self):
        # Section 2: rank(T − ZᵀTZ) ≤ 2m (eq. 4).
        for m in (1, 2, 3):
            t = ar_block_toeplitz(6, m, seed=m)
            s = np.linalg.svd(displacement(t), compute_uv=False)
            rank = int(np.sum(s > 1e-10 * s[0]))
            assert rank <= 2 * m

    def test_displacement_factorization_eq10(self, small_spd_block):
        # T − ZᵀTZ = Genᵀ diag(Σ,−Σ) Gen
        t = small_spd_block
        g = spd_generator(t)
        wmat = np.diag(g.w.astype(float))
        np.testing.assert_allclose(g.gen.T @ wmat @ g.gen,
                                   displacement(t), atol=1e-10)


class TestSPDGenerator:
    def test_shapes(self, small_spd_block):
        g = spd_generator(small_spd_block)
        m, p = small_spd_block.block_size, small_spd_block.num_blocks
        assert g.gen.shape == (2 * m, m * p)
        assert g.w.shape == (2 * m,)
        np.testing.assert_array_equal(g.sigma, np.ones(m))

    def test_t1_is_upper_triangular(self, small_spd_block):
        # By construction T₁ = L₁ᵀ.
        g = spd_generator(small_spd_block)
        m = g.block_size
        assert is_upper_triangular(g.gen[:m, :m], atol=1e-13)

    def test_lower_row_first_block_zero(self, small_spd_block):
        g = spd_generator(small_spd_block)
        m = g.block_size
        np.testing.assert_allclose(g.gen[m:, :m], 0.0)

    def test_lower_row_equals_upper_tail(self, small_spd_block):
        # Gen = [[T₁ … T_p], [0 T₂ … T_p]] (eq. 21).
        g = spd_generator(small_spd_block)
        m = g.block_size
        np.testing.assert_allclose(g.gen[m:, m:], g.gen[:m, m:])

    def test_full_g_identity_eq6(self, small_spd_block):
        # T = Gᵀ W_mp G with the stacked triangular G₁, G₂ (eq. 6).
        t = small_spd_block
        g = spd_generator(t)
        gfull, sig = generator_to_full(g)
        wmat = np.diag(sig.astype(float))
        np.testing.assert_allclose(gfull.T @ wmat @ gfull, t.dense(),
                                   atol=1e-9)

    def test_not_pd_diagonal_block_rejected(self):
        blocks = [-np.eye(2), np.zeros((2, 2))]
        t = SymmetricBlockToeplitz(blocks)
        with pytest.raises(NotPositiveDefiniteError):
            spd_generator(t)

    def test_scalar_generator(self):
        t = kms_toeplitz(8, 0.5)
        g = spd_generator(t)
        assert g.gen.shape == (2, 8)
        # T₁ = √t₀ = 1
        assert g.gen[0, 0] == pytest.approx(1.0)

    def test_copy_is_independent(self, small_spd_block):
        g = spd_generator(small_spd_block)
        g2 = g.copy()
        g2.gen[0, 0] += 1.0
        assert g.gen[0, 0] != g2.gen[0, 0]


class TestSignedCholesky:
    def test_spd_gives_identity_signature(self, rng):
        a = rng.standard_normal((4, 4))
        a = a @ a.T + 4 * np.eye(4)
        l, sigma = signed_cholesky(a)
        np.testing.assert_array_equal(sigma, np.ones(4))
        np.testing.assert_allclose(l @ np.diag(sigma.astype(float)) @ l.T,
                                   a, atol=1e-10)

    def test_indefinite_factorization(self, rng):
        a = rng.standard_normal((5, 5))
        a = a + a.T  # generically indefinite with nonsingular minors
        l, sigma = signed_cholesky(a)
        assert np.any(sigma == -1) or np.linalg.eigvalsh(a)[0] > 0
        np.testing.assert_allclose(l @ np.diag(sigma.astype(float)) @ l.T,
                                   a, atol=1e-8)

    def test_inertia_matches_eigenvalues(self, rng):
        for seed in range(5):
            r = np.random.default_rng(seed)
            a = r.standard_normal((6, 6))
            a = a + a.T
            _, sigma = signed_cholesky(a)
            eig = np.linalg.eigvalsh(a)
            assert np.sum(sigma > 0) == np.sum(eig > 0)

    def test_singular_minor_detected(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SingularMinorError):
            signed_cholesky(a)

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            signed_cholesky(np.ones((2, 3)))

    def test_lower_triangular_factor(self, rng):
        a = rng.standard_normal((4, 4))
        a = a + a.T + np.diag([5.0, -5.0, 5.0, -5.0])
        l, _ = signed_cholesky(a)
        np.testing.assert_allclose(np.triu(l, k=1), 0.0)


class TestIndefiniteGenerator:
    def test_displacement_identity(self):
        t = indefinite_toeplitz(10, seed=4).regroup(2)
        g = indefinite_generator(t)
        wmat = np.diag(g.w.astype(float))
        np.testing.assert_allclose(g.gen.T @ wmat @ g.gen,
                                   displacement(t), atol=1e-9)

    def test_full_identity(self):
        t = indefinite_toeplitz(12, seed=5).regroup(3)
        g = indefinite_generator(t)
        gfull, sig = generator_to_full(g)
        wmat = np.diag(sig.astype(float))
        np.testing.assert_allclose(gfull.T @ wmat @ gfull, t.dense(),
                                   atol=1e-8)

    def test_t1_upper_triangular(self):
        t = indefinite_toeplitz(8, seed=6).regroup(2)
        g = indefinite_generator(t)
        m = g.block_size
        assert is_upper_triangular(g.gen[:m, :m], atol=1e-12)

    def test_scalar_negative_diagonal(self):
        t = SymmetricBlockToeplitz.from_first_row([-2.0, 0.3, 0.1])
        g = indefinite_generator(t)
        np.testing.assert_array_equal(g.sigma, [-1])
        wmat = np.diag(g.w.astype(float))
        np.testing.assert_allclose(g.gen.T @ wmat @ g.gen,
                                   displacement(t), atol=1e-12)

    def test_singular_diagonal_block_detected(self):
        t = paper_example_matrix().regroup(2)  # T̂₁ = [[1,1],[1,1]] singular
        with pytest.raises(SingularMinorError):
            indefinite_generator(t)
