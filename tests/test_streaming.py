"""Tests for the streaming (O(m·n)-memory) Schur consumers."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.schur_spd import SchurOptions, schur_spd_factor
from repro.core.streaming import (
    gaussian_loglikelihood,
    iter_r_block_rows,
    streaming_logdet,
    streaming_whiten,
)
from repro.errors import NotPositiveDefiniteError, ShapeError
from repro.toeplitz import (
    SymmetricBlockToeplitz,
    ar_block_toeplitz,
    fgn_toeplitz,
    kms_toeplitz,
)


class TestRowStream:
    def test_rows_match_stored_factor(self, small_spd_block):
        fact = schur_spd_factor(small_spd_block)
        m = small_spd_block.block_size
        for i, row in iter_r_block_rows(small_spd_block):
            expect = fact.r[i * m:(i + 1) * m, i * m:]
            np.testing.assert_allclose(row, expect, atol=1e-11)

    def test_row_count_and_widths(self):
        t = ar_block_toeplitz(7, 2, seed=1)
        widths = [row.shape for _i, row in iter_r_block_rows(t)]
        assert widths == [(2, 14 - 2 * i) for i in range(7)]

    def test_respects_options(self, small_spd_scalar):
        opts = SchurOptions(representation="yty")
        rows = [r.copy() for _i, r in
                iter_r_block_rows(small_spd_scalar, options=opts)]
        fact = schur_spd_factor(small_spd_scalar)
        for i, row in enumerate(rows):
            np.testing.assert_allclose(row, fact.r[i:i + 1, i:],
                                       atol=1e-11)

    def test_not_pd_raises_mid_stream(self):
        t = SymmetricBlockToeplitz.from_first_row([1.0, 2.0, 0.1])
        with pytest.raises(NotPositiveDefiniteError):
            list(iter_r_block_rows(t))


class TestWhiten:
    def test_matches_triangular_solve(self, small_spd_block, rng):
        b = rng.standard_normal(small_spd_block.order)
        fact = schur_spd_factor(small_spd_block)
        ref = sla.solve_triangular(fact.r, b, trans=1, check_finite=False)
        np.testing.assert_allclose(streaming_whiten(small_spd_block, b),
                                   ref, atol=1e-10)

    def test_multi_rhs(self, small_spd_block, rng):
        b = rng.standard_normal((small_spd_block.order, 3))
        fact = schur_spd_factor(small_spd_block)
        ref = sla.solve_triangular(fact.r, b, trans=1, check_finite=False)
        np.testing.assert_allclose(streaming_whiten(small_spd_block, b),
                                   ref, atol=1e-10)

    def test_whitening_property(self, rng):
        # cov(y) = I when x ~ N(0, T): check ‖y‖² ≈ χ²_n mean on a batch
        t = ar_block_toeplitz(8, 2, seed=3)
        d = t.dense()
        c = np.linalg.cholesky(d)
        samples = c @ rng.standard_normal((16, 200))
        y = streaming_whiten(t, samples)
        var = y.var()
        assert 0.8 < var < 1.2

    def test_returns_logdet(self, small_spd_block, rng):
        b = rng.standard_normal(small_spd_block.order)
        _, ld = streaming_whiten(small_spd_block, b, return_logdet=True)
        _, ref = np.linalg.slogdet(small_spd_block.dense())
        assert ld == pytest.approx(ref, rel=1e-10)

    def test_shape_mismatch(self, small_spd_block):
        with pytest.raises(ShapeError):
            streaming_whiten(small_spd_block, np.ones(5))


class TestLogdetAndLikelihood:
    @pytest.mark.parametrize("maker", [
        lambda: kms_toeplitz(24, 0.6),
        lambda: ar_block_toeplitz(6, 4, seed=5),
        lambda: fgn_toeplitz(20, 0.8),
    ])
    def test_logdet(self, maker):
        t = maker()
        _, ref = np.linalg.slogdet(t.dense())
        assert streaming_logdet(t) == pytest.approx(ref, rel=1e-9)

    def test_loglikelihood_matches_scipy(self, rng):
        from scipy.stats import multivariate_normal
        t = ar_block_toeplitz(8, 3, seed=7)
        x = rng.standard_normal(24)
        ref = multivariate_normal(mean=np.zeros(24),
                                  cov=t.dense()).logpdf(x)
        assert gaussian_loglikelihood(t, x) == pytest.approx(ref,
                                                             rel=1e-10)

    def test_loglikelihood_prefers_true_model(self, rng):
        # likelihood evaluated at the generating covariance should beat
        # a mismatched one, on average
        t_true = kms_toeplitz(64, 0.7)
        t_bad = kms_toeplitz(64, 0.1)
        c = np.linalg.cholesky(t_true.dense())
        wins = 0
        for _ in range(10):
            x = c @ rng.standard_normal(64)
            if gaussian_loglikelihood(t_true, x) > \
                    gaussian_loglikelihood(t_bad, x):
                wins += 1
        assert wins >= 8

    def test_loglikelihood_shape(self):
        t = kms_toeplitz(8, 0.5)
        with pytest.raises(ShapeError):
            gaussian_loglikelihood(t, np.ones(9))

    def test_large_problem_streams(self):
        # order 2048 with m = 8: the stream must complete quickly without
        # materializing R (smoke test for the memory-lean path)
        t = kms_toeplitz(2048, 0.5).regroup(8)
        ld = streaming_logdet(t)
        assert np.isfinite(ld)
