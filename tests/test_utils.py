"""Tests for the utility helpers and the error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.utils import (
    as_float_matrix,
    as_float_vector,
    check_block_conformance,
    check_square,
    check_symmetric,
    default_rng,
    is_lower_triangular,
    is_upper_triangular,
    solve_lower_triangular,
    solve_upper_triangular,
)


class TestValidation:
    def test_as_float_matrix_conversion(self):
        a = as_float_matrix([[1, 2], [3, 4]])
        assert a.dtype == np.float64
        assert a.flags["C_CONTIGUOUS"]

    def test_as_float_matrix_copy_flag(self):
        src = np.eye(2)
        a = as_float_matrix(src, copy=True)
        a[0, 0] = 9
        assert src[0, 0] == 1.0

    def test_as_float_matrix_rejects_3d(self):
        with pytest.raises(errors.ShapeError):
            as_float_matrix(np.ones((2, 2, 2)))

    def test_as_float_matrix_rejects_nan(self):
        with pytest.raises(errors.ShapeError):
            as_float_matrix([[np.nan, 0], [0, 1]])

    def test_as_float_vector(self):
        v = as_float_vector([1, 2, 3])
        assert v.shape == (3,)

    def test_as_float_vector_flattens_columns(self):
        v = as_float_vector(np.ones((4, 1)))
        assert v.shape == (4,)

    def test_as_float_vector_rejects_matrix(self):
        with pytest.raises(errors.ShapeError):
            as_float_vector(np.ones((2, 3)))

    def test_check_square(self):
        assert check_square(np.eye(3)) == 3
        with pytest.raises(errors.ShapeError):
            check_square(np.ones((2, 3)))

    def test_check_symmetric(self):
        check_symmetric(np.eye(2))
        with pytest.raises(errors.ShapeError):
            check_symmetric(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_check_block_conformance(self):
        assert check_block_conformance(12, 3) == 4
        with pytest.raises(errors.ShapeError):
            check_block_conformance(10, 3)
        with pytest.raises(errors.ShapeError):
            check_block_conformance(10, 0)


class TestLintools:
    def test_solve_lower(self, rng):
        l = np.tril(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        b = rng.standard_normal(4)
        np.testing.assert_allclose(l @ solve_lower_triangular(l, b), b,
                                   atol=1e-10)
        np.testing.assert_allclose(
            l.T @ solve_lower_triangular(l, b, trans=True), b, atol=1e-10)

    def test_solve_upper(self, rng):
        u = np.triu(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        b = rng.standard_normal(4)
        np.testing.assert_allclose(u @ solve_upper_triangular(u, b), b,
                                   atol=1e-10)
        np.testing.assert_allclose(
            u.T @ solve_upper_triangular(u, b, trans=True), b, atol=1e-10)

    def test_triangular_predicates(self):
        assert is_upper_triangular(np.triu(np.ones((3, 3))))
        assert not is_upper_triangular(np.ones((3, 3)))
        assert is_lower_triangular(np.tril(np.ones((3, 3))))
        assert not is_lower_triangular(np.ones((3, 3)))
        assert not is_upper_triangular(np.ones(3))
        assert is_upper_triangular(np.triu(np.ones((3, 3))) +
                                   1e-12 * np.ones((3, 3)), atol=1e-10)


class TestRng:
    def test_seed_reproducibility(self):
        a = default_rng(5).standard_normal(4)
        b = default_rng(5).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert default_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("ShapeError", "NotBlockToeplitzError",
                     "NotPositiveDefiniteError", "SingularMinorError",
                     "BreakdownError", "ConvergenceError", "MachineError",
                     "DeadlockError", "DistributionError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_value_error_compat(self):
        # callers catching ValueError still work for misuse errors
        assert issubclass(errors.ShapeError, ValueError)
        assert issubclass(errors.NotPositiveDefiniteError, ValueError)

    def test_singular_minor_carries_step(self):
        e = errors.SingularMinorError("msg", step=3)
        assert e.step == 3

    def test_convergence_error_fields(self):
        e = errors.ConvergenceError("msg", iterations=5, residual=0.5)
        assert e.iterations == 5
        assert e.residual == 0.5

    def test_deadlock_is_machine_error(self):
        assert issubclass(errors.DeadlockError, errors.MachineError)
