"""Tests for the executable §8.1 error analysis."""

import numpy as np
import pytest

from repro.core.error_analysis import estimate_gamma, refinement_forecast
from repro.core.refinement import refine
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.core.schur_spd import schur_spd_factor
from repro.errors import ShapeError
from repro.toeplitz import (
    kms_toeplitz,
    paper_example_matrix,
    singular_minor_toeplitz,
)


class TestGammaEstimate:
    def test_paper_example_magnitude(self):
        # paper: ‖δT·T⁻¹‖ ≈ 2.9e−5 at δ = 1e−5
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t, delta=1e-5)
        gamma = estimate_gamma(fact, t)
        assert 1e-6 < gamma < 1e-3

    def test_exact_factorization_gamma_tiny(self):
        t = kms_toeplitz(20, 0.5)
        fact = schur_spd_factor(t)
        assert estimate_gamma(fact, t) < 1e-10

    def test_scales_with_delta(self):
        t = paper_example_matrix()
        g_small = estimate_gamma(
            schur_indefinite_factor(t, delta=1e-7), t)
        g_large = estimate_gamma(
            schur_indefinite_factor(t, delta=1e-3), t)
        assert g_small < g_large

    def test_order_mismatch(self):
        t = kms_toeplitz(8, 0.5)
        fact = schur_spd_factor(kms_toeplitz(10, 0.5))
        with pytest.raises(ShapeError):
            estimate_gamma(fact, t)


class TestForecast:
    def test_paper_example_steps(self):
        # γ ≈ ∛ε ⇒ ≈ 3 refinement steps (§8.2's analysis)
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        fc = refinement_forecast(fact, t)
        assert fc.will_converge
        assert 2 <= fc.predicted_steps <= 6

    def test_forecast_tracks_actual(self):
        for seed in range(3):
            t = singular_minor_toeplitz(12, seed=seed)
            fact = schur_indefinite_factor(t)
            fc = refinement_forecast(fact, t)
            b = t.dense() @ np.ones(12)
            res = refine(fact, t, b)
            assert res.converged
            # actual steps within a small margin of the forecast
            assert res.iterations <= fc.predicted_steps + 3

    def test_exact_factorization_forecast(self):
        t = kms_toeplitz(16, 0.4)
        fc = refinement_forecast(schur_spd_factor(t), t)
        assert fc.predicted_steps <= 2
        assert fc.convergence_factor < 1e-9

    def test_convergence_factor_formula(self):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        fc = refinement_forecast(fact, t)
        assert fc.convergence_factor == pytest.approx(
            fc.gamma / (1 + fc.gamma))
