"""Tests for Toeplitz-block matrices and the shuffle reduction."""

import numpy as np
import pytest

from repro.errors import NotBlockToeplitzError, ShapeError
from repro.toeplitz import (
    SymmetricToeplitzBlock,
    ar_block_toeplitz,
    shuffle_permutation,
)


def _make_tb(p, m, seed=0):
    """Toeplitz-block matrix from the cross-covariances of an AR draw."""
    t = ar_block_toeplitz(p, m, seed=seed)
    gammas = np.stack([np.array(t.top_blocks[k]) for k in range(p)])
    return SymmetricToeplitzBlock.from_cross_covariances(gammas)


class TestShufflePermutation:
    def test_is_permutation(self):
        perm = shuffle_permutation(3, 4)
        assert sorted(perm) == list(range(12))

    def test_index_formula(self):
        perm = shuffle_permutation(2, 3)
        # time-major position t·m + c ← channel-major c·p + t
        for t in range(3):
            for c in range(2):
                assert perm[t * 2 + c] == c * 3 + t

    def test_invalid(self):
        with pytest.raises(ShapeError):
            shuffle_permutation(0, 3)


class TestConstruction:
    def test_basic_properties(self):
        tb = _make_tb(5, 3)
        assert tb.num_channels == 3
        assert tb.block_order == 5
        assert tb.order == 15
        assert tb.shape == (15, 15)

    def test_dense_symmetric(self):
        d = _make_tb(6, 2, seed=1).dense()
        np.testing.assert_allclose(d, d.T, atol=1e-12)

    def test_blocks_are_toeplitz(self):
        tb = _make_tb(5, 2, seed=2)
        d = tb.dense()
        p = 5
        for r in range(2):
            for s in range(2):
                blk = d[r * p:(r + 1) * p, s * p:(s + 1) * p]
                for k in range(p - 1):
                    np.testing.assert_allclose(
                        np.diag(blk, k)[0] * np.ones(p - k),
                        np.diag(blk, k))

    def test_toeplitz_entry_accessor(self):
        tb = _make_tb(4, 2, seed=3)
        d = tb.dense()
        p = 4
        for r in range(2):
            for s in range(2):
                for i in range(4):
                    for j in range(4):
                        assert tb.toeplitz_entry(r, s, i, j) == \
                            pytest.approx(d[r * p + i, s * p + j])

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            SymmetricToeplitzBlock(np.ones((2, 3, 4)), np.ones((2, 3, 4)))
        with pytest.raises(ShapeError):
            SymmetricToeplitzBlock(np.ones((2, 2, 4)), np.ones((2, 2, 5)))

    def test_corner_mismatch(self):
        rows = np.ones((2, 2, 3))
        cols = np.ones((2, 2, 3))
        cols[0, 1, 0] = 2.0
        with pytest.raises(NotBlockToeplitzError):
            SymmetricToeplitzBlock(rows, cols)

    def test_symmetry_violation(self):
        rng = np.random.default_rng(4)
        rows = rng.standard_normal((2, 2, 3))
        cols = rng.standard_normal((2, 2, 3))
        cols[..., 0] = rows[..., 0]
        with pytest.raises(NotBlockToeplitzError):
            SymmetricToeplitzBlock(rows, cols)

    def test_cross_covariance_shape_check(self):
        with pytest.raises(ShapeError):
            SymmetricToeplitzBlock.from_cross_covariances(
                np.ones((4, 2, 3)))


class TestShuffleReduction:
    @pytest.mark.parametrize("p,m", [(3, 2), (5, 3), (8, 2)])
    def test_shuffled_is_block_toeplitz(self, p, m):
        tb = _make_tb(p, m, seed=p + m)
        d = tb.dense()
        perm = tb.permutation()
        bt = tb.to_block_toeplitz()
        np.testing.assert_allclose(d[np.ix_(perm, perm)], bt.dense(),
                                   atol=1e-12)

    def test_spd_preserved(self):
        tb = _make_tb(6, 3, seed=9)
        assert np.linalg.eigvalsh(tb.dense())[0] > 0
        assert np.linalg.eigvalsh(
            tb.to_block_toeplitz().dense())[0] > 0


class TestSolveAndFactor:
    def test_solve_channel_major(self, rng):
        tb = _make_tb(7, 2, seed=10)
        b = rng.standard_normal(tb.order)
        x = tb.solve(b)
        np.testing.assert_allclose(tb.dense() @ x, b, atol=1e-8)

    def test_solve_multi_rhs(self, rng):
        tb = _make_tb(5, 3, seed=11)
        b = rng.standard_normal((tb.order, 2))
        x = tb.solve(b)
        np.testing.assert_allclose(tb.dense() @ x, b, atol=1e-8)

    def test_solve_shape_check(self):
        tb = _make_tb(4, 2, seed=12)
        with pytest.raises(ShapeError):
            tb.solve(np.ones(5))

    def test_cholesky_of_shuffled(self):
        tb = _make_tb(6, 2, seed=13)
        fact = tb.cholesky()
        np.testing.assert_allclose(fact.reconstruct(),
                                   tb.to_block_toeplitz().dense(),
                                   atol=1e-9)
