"""Tests for the persistent factorization store and compact forms.

Covers the two-tier cache end to end: compact round-trips for every
representation (≤1e-12 parity), the on-disk store's hit/stale/corrupt
outcomes (quarantine included), concurrent writers racing on one entry,
version-stamp invalidation, engine wiring (memory → disk → compute),
and the memmap-aware in-memory size accounting.
"""

import multiprocessing
import os
import zipfile

import numpy as np
import pytest

import repro.engine as engine
import repro.obs as obs
from repro.core import CompactFactorization
from repro.engine import FactorizationCache, set_default_cache
from repro.engine.cache_store import CacheStore, version_stamp
from repro.errors import (
    InvalidOptionError,
    UnsupportedFactorizationError,
)
from repro.obs.metrics import MetricsRegistry
from repro.toeplitz import kms_toeplitz, singular_minor_toeplitz


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Give every test its own in-memory cache (restore afterwards)."""
    previous = set_default_cache(FactorizationCache())
    yield
    set_default_cache(previous)


@pytest.fixture
def store(tmp_path):
    return CacheStore(str(tmp_path / "factor-cache"))


def _factor(t, **plan_kwargs):
    pl = engine.plan(t, **plan_kwargs)
    return pl, engine.factor(pl, cache=FactorizationCache()).factorization


# ----------------------------------------------------------------------
# Compact representations round-trip
# ----------------------------------------------------------------------
class TestCompactRoundTrip:
    @pytest.mark.parametrize("precision", ["fp64", "fp32", "mixed"])
    def test_spd_dense_r(self, precision):
        t = kms_toeplitz(48, 0.5)
        pl, fact = _factor(t, precision=precision)
        compact = CompactFactorization.from_factorization(fact)
        assert compact.kind == "spd-dense-r"
        restored = compact.restore()
        b = np.ones(48)
        assert np.allclose(restored.solve(b), fact.solve(b),
                           rtol=0, atol=1e-12)
        np.testing.assert_array_equal(restored.r, fact.r)

    def test_indefinite_with_events(self):
        t = singular_minor_toeplitz(12)
        pl, fact = _factor(t, assume="indefinite")
        assert fact.perturbations  # the singular minor forces an event
        compact = CompactFactorization.from_factorization(fact)
        assert compact.kind == "indefinite-dense-r"
        restored = compact.restore()
        b = np.ones(t.shape[0])
        assert np.allclose(restored.solve(b), fact.solve(b),
                           rtol=0, atol=1e-12)
        assert len(restored.perturbations) == len(fact.perturbations)
        assert restored.perturbations[0] == fact.perturbations[0]
        assert restored.transform_norms == fact.transform_norms

    def test_gko_generators_compact(self):
        t = kms_toeplitz(32, 0.5)
        pl, fact = _factor(t, algorithm="gko")
        compact = CompactFactorization.from_factorization(fact)
        assert compact.kind == "gko-generators"
        # O(mn) storage: generators, not the O(n^2) LU factors.
        assert compact.nbytes < fact.l.nbytes / 2
        restored = compact.restore()
        b = np.linspace(-1, 1, 32)
        assert np.allclose(restored.solve(b), fact.solve(b),
                           rtol=0, atol=1e-12)

    def test_gs_operator(self):
        t = kms_toeplitz(64, 0.5)
        pl, fact = _factor(t, algorithm="gs")
        compact = CompactFactorization.from_factorization(fact)
        assert compact.kind == "gs"
        restored = compact.restore()
        b = np.ones(64)
        np.testing.assert_allclose(restored.solve(b), fact.solve(b),
                                   rtol=0, atol=1e-12)
        # O(n) storage against the O(n^2) operator it represents.
        assert compact.nbytes <= 64 * 8 * 2

    def test_unsupported_payload_raises(self):
        with pytest.raises(UnsupportedFactorizationError):
            CompactFactorization.from_factorization(object())

    def test_content_hashes_change_with_data(self):
        t = kms_toeplitz(16, 0.5)
        _, fact = _factor(t, algorithm="gs")
        compact = CompactFactorization.from_factorization(fact)
        h = compact.content_hashes()
        compact.arrays["x"] = compact.arrays["x"].copy()
        compact.arrays["x"][0] += 1.0
        assert compact.content_hashes() != h


# ----------------------------------------------------------------------
# Store behavior
# ----------------------------------------------------------------------
class TestCacheStore:
    def test_put_get_roundtrip(self, store):
        t = kms_toeplitz(32, 0.5)
        pl, fact = _factor(t)
        assert store.get(pl.cache_key()) is None  # absent
        assert store.put(pl.cache_key(), fact, describe={"order": 32})
        loaded = store.get(pl.cache_key())
        assert loaded is not None
        b = np.ones(32)
        assert np.allclose(loaded.solve(b), fact.solve(b),
                           rtol=0, atol=1e-12)
        st = store.stats()
        assert (st.writes, st.disk_hits, st.disk_misses) == (1, 1, 1)
        assert st.entries == 1 and st.disk_bytes > 0
        (entry,) = store.entries()
        assert entry.describe["order"] == 32
        assert entry.stamp == version_stamp()

    def test_mmap_zero_copy_load(self, store):
        t = kms_toeplitz(64, 0.5)
        pl, fact = _factor(t)
        store.put(pl.cache_key(), fact)
        loaded = store.get(pl.cache_key())
        assert isinstance(loaded.r, np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded.r), fact.r)

    def test_stamp_mismatch_is_stale_miss(self, store):
        t = kms_toeplitz(24, 0.5)
        pl, fact = _factor(t)
        store.put(pl.cache_key(), fact)
        store._stamp = "numpy=0.0.0;scipy=0.0.0"  # simulate an upgrade
        assert store.get(pl.cache_key()) is None
        st = store.stats()
        assert st.stale == 1 and st.disk_hits == 0
        # Entry still on disk (not quarantined) until overwritten.
        assert st.entries == 1
        store._stamp = version_stamp()
        assert store.get(pl.cache_key()) is not None

    def test_corrupted_payload_quarantined(self, store):
        t = kms_toeplitz(24, 0.5)
        pl, fact = _factor(t)
        store.put(pl.cache_key(), fact)
        path = store.path_for(pl.cache_key())
        with zipfile.ZipFile(path) as zf:
            info = [i for i in zf.infolist()
                    if i.filename.endswith(".npy")][0]
        with open(path, "r+b") as fh:  # flip one array-data byte
            fh.seek(info.header_offset + 26)
            namelen = int.from_bytes(fh.read(2), "little")
            extralen = int.from_bytes(fh.read(2), "little")
            data_start = info.header_offset + 30 + namelen + extralen
            fh.seek(data_start + 200)  # past the .npy header
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert store.get(pl.cache_key()) is None
        st = store.stats()
        assert st.quarantined == 1 and st.entries == 0
        assert len(os.listdir(store.quarantine_dir)) == 1

    def test_truncated_entry_quarantined(self, store):
        t = kms_toeplitz(24, 0.5)
        pl, fact = _factor(t)
        store.put(pl.cache_key(), fact)
        path = store.path_for(pl.cache_key())
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        assert store.get(pl.cache_key()) is None
        assert store.stats().quarantined == 1
        # A recompute + put replaces the quarantined entry cleanly.
        assert store.put(pl.cache_key(), fact)
        assert store.get(pl.cache_key()) is not None

    def test_verify_detects_damage(self, store):
        # verify() hashes everything, including arrays the hot path
        # skips, and quarantines on the first mismatch.
        t = kms_toeplitz(48, 0.5)
        pl, fact = _factor(t)
        store.put(pl.cache_key(), fact)
        assert store.verify(pl.cache_key())
        path = store.path_for(pl.cache_key())
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) // 2)
            fh.write(b"\xde\xad\xbe\xef")
        assert not store.verify(pl.cache_key())
        assert store.stats().quarantined == 1

    def test_prune_by_age_and_size(self, store):
        for n in (16, 24, 32):
            pl, fact = _factor(kms_toeplitz(n, 0.5))
            store.put(pl.cache_key(), fact)
        assert store.stats().entries == 3
        total = store.stats().disk_bytes
        assert store.prune(max_bytes=total - 1) >= 1
        assert store.stats().disk_bytes <= total - 1
        remaining = store.stats().entries
        assert store.prune(max_age_seconds=0.0) == remaining
        assert store.stats().entries == 0
        pl, fact = _factor(kms_toeplitz(16, 0.5))
        store.put(pl.cache_key(), fact)
        assert store.clear() == 1
        assert store.stats().entries == 0

    def test_unsupported_factorization_skipped(self, store):
        assert not store.put(("k",), object())
        assert store.stats().unsupported == 1
        with pytest.raises(UnsupportedFactorizationError):
            store.put(("k",), object(), strict=True)


# ----------------------------------------------------------------------
# Concurrent writers
# ----------------------------------------------------------------------
def _race_worker(root, barrier, out):
    t = kms_toeplitz(48, 0.5)
    pl = engine.plan(t, cache="persistent")
    st = CacheStore(root)
    barrier.wait(timeout=30)
    res = engine.factor(pl, cache=FactorizationCache(), store=st)
    x = res.factorization.solve(np.ones(48))
    out.put(float(np.linalg.norm(t.dense() @ x - np.ones(48))))


class TestConcurrentWriters:
    def test_two_processes_race_on_one_entry(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        root = str(tmp_path / "shared-cache")
        barrier = ctx.Barrier(2)
        out = ctx.Queue()
        procs = [ctx.Process(target=_race_worker,
                             args=(root, barrier, out))
                 for _ in range(2)]
        for p in procs:
            p.start()
        residuals = [out.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert all(r < 1e-10 for r in residuals)
        # Exactly one entry file survives; no temp droppings.
        st = CacheStore(root)
        assert st.stats().entries == 1
        leftovers = [f for f in os.listdir(st.entries_dir)
                     if f.endswith(".tmp")]
        assert not leftovers
        # And the surviving entry is readable from a third process' view.
        pl = engine.plan(kms_toeplitz(48, 0.5), cache="persistent")
        assert st.get(pl.cache_key()) is not None


# ----------------------------------------------------------------------
# Engine wiring: memory -> disk -> compute
# ----------------------------------------------------------------------
class TestEngineWiring:
    def test_cache_axis_validation(self):
        t = kms_toeplitz(16, 0.5)
        pl = engine.plan(t)
        assert pl.cache == "memory" and pl.use_cache
        off = engine.plan(t, cache="off")
        assert not off.use_cache and off.cache == "off"
        from repro.engine.plan import _PLAN_KEY_FIELDS
        assert "cache" not in _PLAN_KEY_FIELDS
        with pytest.raises(InvalidOptionError):
            engine.plan(t, cache="bogus")
        # The tiering choice is not part of the identity of the result.
        assert (engine.plan(t, cache="persistent").cache_key()
                == pl.cache_key())

    def test_disk_tier_survives_restart(self, store):
        t = kms_toeplitz(64, 0.5)
        pl = engine.plan(t, cache="persistent")
        cold = engine.factor(pl, cache=FactorizationCache(), store=store)
        assert not cold.cache_hit
        assert store.stats().writes == 1
        # "Restart": a fresh in-memory cache, same store.
        warm = engine.factor(pl, cache=FactorizationCache(), store=store)
        assert warm.cache_hit
        assert store.stats().disk_hits == 1
        b = np.ones(64)
        assert np.allclose(warm.factorization.solve(b),
                           cold.factorization.solve(b),
                           rtol=0, atol=1e-12)

    def test_memory_tier_resolves_no_store(self, store):
        # With cache="memory" the disk tier stays out of the path
        # (unless an explicit store is handed in, which always wins).
        from repro.engine.engine import _resolve_store
        t = kms_toeplitz(32, 0.5)
        assert _resolve_store(engine.plan(t, cache="memory"), None) is None
        assert _resolve_store(engine.plan(t, cache="off"), None) is None
        assert _resolve_store(engine.plan(t, cache="memory"),
                              store) is store
        c = FactorizationCache()
        pl = engine.plan(t, cache="memory")
        engine.factor(pl, cache=c)
        engine.factor(pl, cache=c)
        assert store.stats().writes == 0

    def test_disk_hit_emits_cache_load_span(self, store):
        t = kms_toeplitz(32, 0.5)
        pl = engine.plan(t, cache="persistent")
        engine.factor(pl, cache=FactorizationCache(), store=store)
        registry = MetricsRegistry()
        prev = obs.set_default_registry(registry)
        obs.enable()
        try:
            warm = engine.factor(pl, cache=FactorizationCache(),
                                 store=store)
        finally:
            obs.disable()
            obs.set_default_registry(prev)
        assert warm.cache_hit
        factor_span = warm.profile.root.children[0]
        assert factor_span.name == "factor"
        assert factor_span.attributes["disk_hit"] is True
        loads = [c for c in factor_span.children
                 if c.name == "cache.load"]
        assert loads and loads[0].attributes["outcome"] == "hit"

    def test_execute_end_to_end_persistent(self, store):
        t = kms_toeplitz(48, 0.5)
        b = np.linspace(0, 1, 48)
        pl = engine.plan(t, cache="persistent")
        first = engine.execute(pl, b, cache=FactorizationCache(),
                               store=store)
        second = engine.execute(pl, b, cache=FactorizationCache(),
                                store=store)
        assert second.record.cache_hit
        np.testing.assert_allclose(second.x, first.x, rtol=0, atol=1e-12)

    def test_solve_passes_store_through(self, store):
        t = kms_toeplitz(32, 0.5)
        b = np.ones(32)
        res = engine.solve(t, b, cache="persistent", store=store)
        assert store.stats().writes == 1
        assert np.linalg.norm(t.dense() @ res.x - b) < 1e-10


# ----------------------------------------------------------------------
# Memory-tier accounting of mmap-backed entries
# ----------------------------------------------------------------------
class TestMemmapAccounting:
    def test_estimate_counts_resident_bytes_only(self, store):
        t = kms_toeplitz(64, 0.5)
        pl = engine.plan(t, cache="persistent")
        engine.factor(pl, cache=FactorizationCache(), store=store)
        c = FactorizationCache()
        warm = engine.factor(pl, cache=c, store=store)
        assert isinstance(warm.factorization.r, np.memmap)
        resident = c.stats().current_bytes
        dense = FactorizationCache()
        engine.factor(engine.plan(t, cache="memory"),
                      cache=dense)  # computes; holds the real array
        assert resident < dense.stats().current_bytes / 4
