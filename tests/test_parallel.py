"""Tests for the distributed block Schur implementation on the simulated
machine (Section 7)."""

import numpy as np
import pytest

from repro.core.schur_spd import schur_spd_factor
from repro.errors import DistributionError
from repro.parallel import (
    BlockCyclicLayout,
    SpreadLayout,
    analytic_factor_time,
    simulate_factorization,
)
from repro.toeplitz import ar_block_toeplitz, indefinite_toeplitz, \
    kms_toeplitz


class TestNumericalEquivalence:
    """The distributed algorithm must compute the serial factor."""

    @pytest.mark.parametrize("nproc", [1, 2, 3, 4, 7])
    def test_version1_block(self, nproc):
        t = ar_block_toeplitz(10, 3, seed=nproc)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=nproc, b=1)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    @pytest.mark.parametrize("b", [2, 3, 8])
    def test_version2_block(self, b):
        t = ar_block_toeplitz(12, 2, seed=b)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=4, b=b)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    @pytest.mark.parametrize("spread", [2, 4])
    def test_version3_block(self, spread):
        t = ar_block_toeplitz(9, 4, seed=spread)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=8, b=1.0 / spread)
        np.testing.assert_allclose(run.r, serial, atol=1e-9)

    def test_scalar_problem(self):
        t = kms_toeplitz(48, 0.6)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=6, b=1)
        np.testing.assert_allclose(run.r, serial, atol=1e-11)

    @pytest.mark.parametrize("rep", ["vy1", "vy2", "yty"])
    def test_representations(self, rep):
        t = ar_block_toeplitz(8, 2, seed=5)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=3, b=1, representation=rep)
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    def test_more_pes_than_blocks(self):
        t = ar_block_toeplitz(4, 2, seed=6)
        serial = schur_spd_factor(t).r
        run = simulate_factorization(t, nproc=9, b=1)
        np.testing.assert_allclose(run.r, serial, atol=1e-11)

    def test_solve_through_simulated_factor(self, rng):
        t = ar_block_toeplitz(8, 3, seed=7)
        run = simulate_factorization(t, nproc=4, b=1)
        b = rng.standard_normal(t.order)
        import scipy.linalg as sla
        y = sla.solve_triangular(run.r, b, trans=1)
        x = sla.solve_triangular(run.r, y)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)


class TestReports:
    def test_collect_false_returns_no_factor(self):
        t = kms_toeplitz(32, 0.5)
        run = simulate_factorization(t, nproc=4, b=1, collect=False)
        assert run.r is None
        assert run.time > 0

    def test_phase_categories_present(self):
        t = ar_block_toeplitz(10, 2, seed=8)
        run = simulate_factorization(t, nproc=4, b=1)
        bd = run.breakdown()
        for key in ("broadcast", "application", "barrier"):
            assert key in bd, f"missing phase {key}"

    def test_messages_counted(self):
        t = kms_toeplitz(24, 0.5)
        run = simulate_factorization(t, nproc=4, b=1)
        assert sum(r.messages_sent for r in run.report.ranks) > 0

    def test_time_positive_and_deterministic(self):
        t = kms_toeplitz(24, 0.5)
        t1 = simulate_factorization(t, nproc=4, b=1).time
        t2 = simulate_factorization(t, nproc=4, b=1).time
        assert t1 == t2 > 0

    def test_version2_fewer_shift_messages_than_version1(self):
        t = kms_toeplitz(64, 0.5)
        r1 = simulate_factorization(t, nproc=4, b=1, collect=False)
        r2 = simulate_factorization(t, nproc=4, b=8, collect=False)
        m1 = sum(r.messages_sent for r in r1.report.ranks)
        m2 = sum(r.messages_sent for r in r2.report.ranks)
        assert m2 < m1

    def test_version3_more_broadcast_time_than_version1(self):
        t = ar_block_toeplitz(8, 4, seed=9)
        r1 = simulate_factorization(t, nproc=4, b=1, collect=False)
        r3 = simulate_factorization(t, nproc=4, b=0.25, collect=False)
        b1 = r1.report.total_by_category().get("broadcast", 0)
        b3 = r3.report.total_by_category().get("broadcast", 0)
        assert b3 > b1


class TestValidation:
    def test_spread_requires_divisible_block(self):
        t = ar_block_toeplitz(6, 3, seed=10)
        with pytest.raises(DistributionError):
            simulate_factorization(t, nproc=4, b=0.5)

    def test_explicit_layout(self):
        t = ar_block_toeplitz(8, 2, seed=11)
        lay = BlockCyclicLayout(nproc=3, group_size=2)
        run = simulate_factorization(t, nproc=3, layout=lay)
        serial = schur_spd_factor(t).r
        np.testing.assert_allclose(run.r, serial, atol=1e-10)

    def test_unknown_layout_rejected(self):
        t = ar_block_toeplitz(4, 2, seed=12)
        with pytest.raises(DistributionError):
            simulate_factorization(t, nproc=2, layout="bogus")

    def test_single_block_rejected(self):
        t = ar_block_toeplitz(1, 2, seed=13)
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            simulate_factorization(t, nproc=2, b=1)


class TestAnalyticModel:
    @pytest.mark.parametrize("b", [1, 4])
    def test_tracks_simulator_block_cyclic(self, b):
        t = kms_toeplitz(128, 0.5).regroup(2)
        sim = simulate_factorization(t, nproc=4, b=b, collect=False)
        ana = analytic_factor_time(128, 2, 4, b=b)
        assert 0.5 < ana.total / sim.time < 2.0

    def test_tracks_simulator_spread(self):
        t = kms_toeplitz(64, 0.5).regroup(4)
        sim = simulate_factorization(t, nproc=4, b=0.5, collect=False)
        ana = analytic_factor_time(64, 4, 4, b=0.5)
        assert 0.4 < ana.total / sim.time < 2.5

    def test_breakdown_phases(self):
        ana = analytic_factor_time(64, 2, 4, b=1)
        for key in ("shift", "blocking", "broadcast", "application",
                    "barrier"):
            assert key in ana.by_phase
        assert ana.total == pytest.approx(sum(ana.by_phase.values()))

    def test_invalid_sizes(self):
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            analytic_factor_time(10, 3, 4)
