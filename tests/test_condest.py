"""Tests for the condition-number estimator."""

import numpy as np
import pytest

from repro.core.condest import condest, invnorm_estimate, one_norm
from repro.core.schur_spd import schur_spd_factor
from repro.errors import ShapeError
from repro.toeplitz import (
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    prolate_toeplitz,
)


class TestOneNorm:
    @pytest.mark.parametrize("maker", [
        lambda: kms_toeplitz(17, 0.6),
        lambda: ar_block_toeplitz(6, 3, seed=1),
        lambda: indefinite_toeplitz(11, seed=2),
    ])
    def test_matches_dense(self, maker):
        t = maker()
        ref = float(np.max(np.abs(t.dense()).sum(axis=0)))
        assert one_norm(t) == pytest.approx(ref, rel=1e-12)


class TestInvNorm:
    def test_estimate_is_lower_bound_within_factor(self, rng):
        for seed in range(4):
            t = ar_block_toeplitz(7, 2, seed=seed + 10)
            fact = schur_spd_factor(t)
            truth = float(np.max(
                np.abs(np.linalg.inv(t.dense())).sum(axis=0)))
            est = invnorm_estimate(fact.solve, t.order)
            assert est <= truth * (1 + 1e-10)
            assert est >= 0.1 * truth

    def test_identity(self):
        est = invnorm_estimate(lambda x: x, 10)
        assert 0.3 <= est <= 1.0 + 1e-12

    def test_invalid_n(self):
        with pytest.raises(ShapeError):
            invnorm_estimate(lambda x: x, 0)


class TestCondest:
    def test_well_conditioned(self):
        t = kms_toeplitz(32, 0.3)
        ref = np.linalg.cond(t.dense(), 1)
        est = condest(t)
        assert 0.1 * ref <= est <= 1.5 * ref

    def test_ill_conditioned_detected(self):
        t = prolate_toeplitz(24, 0.4)
        assert condest(t) > 1e4

    def test_indefinite_fallback(self):
        t = indefinite_toeplitz(12, seed=3)
        ref = np.linalg.cond(t.dense(), 1)
        est = condest(t)
        assert est <= 2.0 * ref
        assert est >= 0.05 * ref

    def test_reuses_factorization(self):
        t = kms_toeplitz(16, 0.5)
        fact = schur_spd_factor(t)
        assert condest(t, fact) == pytest.approx(condest(t), rel=1e-6)
