"""Tests for the block representations of reflector products
(Section 4, Lemmas 4.0.1–4.0.3)."""

import numpy as np
import pytest

from repro.core.block_reflector import (
    REPRESENTATIONS,
    make_accumulator,
)
from repro.core.hyperbolic import HyperbolicHouseholder
from repro.core.signature import (
    hyperbolic_norm_squared,
    signature_matrix,
    signature_vector,
)
from repro.errors import ShapeError


def _random_reflectors(w, k, seed=0):
    """k random hyperbolic reflectors for signature w."""
    rng = np.random.default_rng(seed)
    n = w.shape[0]
    out = []
    while len(out) < k:
        x = rng.standard_normal(n)
        if abs(hyperbolic_norm_squared(x, w)) > 0.3:
            out.append(HyperbolicHouseholder(x, w))
    return out


def _explicit_product(reflectors, n):
    """U_k ⋯ U_1 multiplied out densely."""
    u = np.eye(n)
    for refl in reflectors:
        u = refl.matrix() @ u
    return u


W4 = signature_vector([1, 1, -1, -1])
W6 = signature_vector([1, 1, 1, -1, -1, -1])
WMIX = signature_vector([1, -1, 1, -1])


class TestAccumulatorsMatchProduct:
    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matrix_equals_explicit_product(self, rep, k):
        reflectors = _random_reflectors(W4, k, seed=k)
        acc = make_accumulator(rep, W4)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        np.testing.assert_allclose(u.matrix(),
                                   _explicit_product(reflectors, 4),
                                   atol=1e-9)

    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_larger_window(self, rep):
        reflectors = _random_reflectors(W6, 5, seed=9)
        acc = make_accumulator(rep, W6)
        for refl in reflectors:
            acc.append(refl)
        np.testing.assert_allclose(acc.finish().matrix(),
                                   _explicit_product(reflectors, 6),
                                   atol=1e-8)

    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_mixed_signature(self, rep):
        reflectors = _random_reflectors(WMIX, 3, seed=11)
        acc = make_accumulator(rep, WMIX)
        for refl in reflectors:
            acc.append(refl)
        np.testing.assert_allclose(acc.finish().matrix(),
                                   _explicit_product(reflectors, 4),
                                   atol=1e-9)

    def test_representations_agree_pairwise(self):
        reflectors = _random_reflectors(W4, 3, seed=13)
        mats = {}
        for rep in REPRESENTATIONS:
            acc = make_accumulator(rep, W4)
            for refl in reflectors:
                acc.append(refl)
            mats[rep] = acc.finish().matrix()
        base = mats["unblocked"]
        for rep, mat in mats.items():
            np.testing.assert_allclose(mat, base, atol=1e-9,
                                       err_msg=f"{rep} disagrees")


class TestWUnitarity:
    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_product_is_w_unitary(self, rep):
        reflectors = _random_reflectors(W4, 4, seed=17)
        acc = make_accumulator(rep, W4)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish().matrix()
        wmat = signature_matrix(W4)
        np.testing.assert_allclose(u.T @ wmat @ u, wmat, atol=1e-8)


class TestApplication:
    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_apply_left_matches_matrix(self, rep, rng):
        reflectors = _random_reflectors(W4, 3, seed=19)
        acc = make_accumulator(rep, W4)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        a = rng.standard_normal((4, 7))
        np.testing.assert_allclose(u.apply_left(a), u.matrix() @ a,
                                   atol=1e-9)

    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_apply_left_vector(self, rep, rng):
        reflectors = _random_reflectors(W4, 2, seed=23)
        acc = make_accumulator(rep, W4)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        v = rng.standard_normal(4)
        np.testing.assert_allclose(u.apply_left(v), u.matrix() @ v,
                                   atol=1e-10)

    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_apply_left_out_aliasing(self, rep, rng):
        reflectors = _random_reflectors(W4, 3, seed=29)
        acc = make_accumulator(rep, W4)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        a = rng.standard_normal((4, 5))
        expect = u.matrix() @ a
        u.apply_left(a, out=a)
        np.testing.assert_allclose(a, expect, atol=1e-9)

    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_apply_pair_matches_stacked(self, rep, rng):
        reflectors = _random_reflectors(W6, 4, seed=31)
        acc = make_accumulator(rep, W6)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        upper = rng.standard_normal((3, 8))
        lower = rng.standard_normal((3, 8))
        expect = u.matrix() @ np.vstack([upper, lower])
        u.apply_pair(upper, lower)
        np.testing.assert_allclose(upper, expect[:3], atol=1e-9)
        np.testing.assert_allclose(lower, expect[3:], atol=1e-9)

    def test_apply_pair_shape_mismatch(self):
        reflectors = _random_reflectors(W4, 2, seed=37)
        acc = make_accumulator("vy2", W4)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        with pytest.raises(ShapeError):
            u.apply_pair(np.ones((3, 4)), np.ones((2, 4)))

    def test_apply_left_row_mismatch(self):
        reflectors = _random_reflectors(W4, 1, seed=41)
        acc = make_accumulator("yty", W4)
        acc.append(reflectors[0])
        u = acc.finish()
        with pytest.raises(ShapeError):
            u.apply_left(np.ones((5, 2)))


class TestAccumulatorValidation:
    def test_unknown_representation(self):
        with pytest.raises(ShapeError):
            make_accumulator("wxyz", W4)

    def test_signature_mismatch_rejected(self):
        refl = _random_reflectors(W4, 1, seed=43)[0]
        acc = make_accumulator("vy1", WMIX)
        with pytest.raises(ShapeError):
            acc.append(refl)

    def test_size_mismatch_rejected(self):
        refl = _random_reflectors(W6, 1, seed=47)[0]
        acc = make_accumulator("vy2", W4)
        with pytest.raises(ShapeError):
            acc.append(refl)

    def test_k_counter(self):
        reflectors = _random_reflectors(W4, 3, seed=53)
        acc = make_accumulator("yty", W4)
        for i, refl in enumerate(reflectors, start=1):
            acc.append(refl)
            assert acc.k == i


class TestStructuralShapes:
    def test_vy_factor_shapes(self):
        reflectors = _random_reflectors(W6, 4, seed=59)
        for rep in ("vy1", "vy2"):
            acc = make_accumulator(rep, W6)
            for refl in reflectors:
                acc.append(refl)
            u = acc.finish()
            assert u.v.shape == (6, 4)
            assert u.y.shape == (6, 4)

    def test_yty_factor_shapes(self):
        reflectors = _random_reflectors(W6, 4, seed=61)
        acc = make_accumulator("yty", W6)
        for refl in reflectors:
            acc.append(refl)
        u = acc.finish()
        assert u.y.shape == (6, 4)
        assert u.t.shape == (4, 4)

    def test_yty_t_is_lower_triangular(self):
        # Lemma 4.0.3: T_k is lower triangular by construction.
        reflectors = _random_reflectors(W6, 5, seed=67)
        acc = make_accumulator("yty", W6)
        for refl in reflectors:
            acc.append(refl)
        t = acc.finish().t
        np.testing.assert_allclose(np.triu(t, k=1), 0.0)
