"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.bench.plots import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0]},
                          width=20, height=5, title="T", x_label="n")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "[n]" in text
        assert "o a" in text
        assert "o" in "".join(lines[1:6])

    def test_extremes_on_axis_rows(self):
        text = ascii_plot([0, 1], {"a": [0.0, 10.0]}, width=10, height=4)
        lines = text.splitlines()
        assert lines[0].strip().startswith("10")
        assert lines[3].strip().startswith("0")

    def test_multiple_series_markers(self):
        text = ascii_plot([0, 1], {"a": [1, 2], "b": [2, 1]},
                          width=12, height=4)
        assert "o a" in text and "x b" in text

    def test_logy(self):
        text = ascii_plot([1, 2, 3], {"a": [1.0, 10.0, 100.0]},
                          width=12, height=5, logy=True)
        assert "100" in text

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {"a": [0.0]}, logy=True)

    def test_nan_gap(self):
        text = ascii_plot([1, 2, 3], {"a": [1.0, math.nan, 3.0]},
                          width=12, height=4)
        assert "(no data)" not in text

    def test_empty_inputs(self):
        assert ascii_plot([], {}) == "(no data)"
        assert ascii_plot([1], {"a": [math.nan]}) == "(no data)"

    def test_constant_series(self):
        text = ascii_plot([1, 2], {"a": [5.0, 5.0]}, width=10, height=4)
        assert "5" in text
