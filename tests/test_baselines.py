"""Tests for the baseline solvers."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.baselines import (
    block_levinson_solve,
    dense_cholesky_solve,
    dense_ldl_solve,
    pcg,
)
from repro.baselines.dense_chol import dense_cholesky
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.core.schur_spd import schur_spd_factor
from repro.errors import (
    ConvergenceError,
    NotPositiveDefiniteError,
    ShapeError,
    SingularMinorError,
)
from repro.toeplitz import (
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
    singular_minor_toeplitz,
)


class TestBlockLevinson:
    @pytest.mark.parametrize("p,m", [(2, 1), (10, 1), (5, 2), (7, 3),
                                     (4, 4)])
    def test_spd_systems(self, p, m, rng):
        t = ar_block_toeplitz(p, m, seed=p + m)
        b = rng.standard_normal(t.order)
        res = block_levinson_solve(t, b)
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-8)
        assert res.steps == p

    def test_matches_scipy_solve_toeplitz(self, rng):
        t = kms_toeplitz(40, 0.7)
        b = rng.standard_normal(40)
        ours = block_levinson_solve(t, b).x
        ref = sla.solve_toeplitz(t.first_scalar_row(), b)
        np.testing.assert_allclose(ours, ref, atol=1e-9)

    def test_matches_schur_solve(self, rng):
        t = ar_block_toeplitz(9, 2, seed=3)
        b = rng.standard_normal(18)
        lev = block_levinson_solve(t, b).x
        schur = schur_spd_factor(t).solve(b)
        np.testing.assert_allclose(lev, schur, atol=1e-8)

    def test_indefinite_nonsingular(self, rng):
        t = indefinite_toeplitz(11, seed=4)
        b = rng.standard_normal(11)
        res = block_levinson_solve(t, b)
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-6)

    def test_multiple_rhs(self, rng):
        t = ar_block_toeplitz(6, 3, seed=5)
        b = rng.standard_normal((18, 4))
        res = block_levinson_solve(t, b)
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-8)

    def test_singular_minor_raises(self):
        with pytest.raises(SingularMinorError):
            block_levinson_solve(paper_example_matrix(), np.ones(6))

    def test_shape_mismatch(self):
        t = kms_toeplitz(8, 0.5)
        with pytest.raises(ShapeError):
            block_levinson_solve(t, np.ones(5))

    def test_rcond_diagnostic(self, rng):
        t = kms_toeplitz(16, 0.3)
        res = block_levinson_solve(t, rng.standard_normal(16))
        assert 0 < res.min_border_rcond <= 1.0


class TestDenseBaselines:
    def test_dense_cholesky(self, small_spd_block):
        r = dense_cholesky(small_spd_block)
        np.testing.assert_allclose(r.T @ r, small_spd_block.dense(),
                                   atol=1e-9)

    def test_dense_cholesky_rejects_indefinite(self):
        with pytest.raises(NotPositiveDefiniteError):
            dense_cholesky(indefinite_toeplitz(8, seed=6))

    def test_dense_cholesky_solve(self, small_spd_block, rng):
        b = rng.standard_normal(small_spd_block.order)
        x = dense_cholesky_solve(small_spd_block, b)
        np.testing.assert_allclose(small_spd_block.dense() @ x, b,
                                   atol=1e-8)

    def test_dense_ldl_handles_singular_minors(self, rng):
        t = paper_example_matrix()
        b = rng.standard_normal(6)
        x = dense_ldl_solve(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-9)

    def test_dense_ldl_multi_rhs(self, rng):
        t = indefinite_toeplitz(10, seed=7)
        b = rng.standard_normal((10, 3))
        x = dense_ldl_solve(t, b)
        np.testing.assert_allclose(t.dense() @ x, b, atol=1e-8)

    def test_shape_checks(self, small_spd_block):
        with pytest.raises(ShapeError):
            dense_cholesky_solve(small_spd_block, np.ones(3))
        with pytest.raises(ShapeError):
            dense_ldl_solve(small_spd_block, np.ones(3))


class TestPCG:
    def test_unpreconditioned_spd(self, rng):
        t = kms_toeplitz(32, 0.4)
        b = rng.standard_normal(32)
        res = pcg(t, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-7)

    def test_preconditioned_faster(self, rng):
        t = kms_toeplitz(64, 0.9)  # moderately ill-conditioned
        b = rng.standard_normal(64)
        plain = pcg(t, b, tol=1e-10)
        fact = schur_spd_factor(t)
        pre = pcg(t, b, preconditioner=fact, tol=1e-10)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_perturbed_preconditioner_indefinite(self):
        # the Section 8 comparator: perturbed RᵀDR preconditioner
        t = singular_minor_toeplitz(10, seed=8)
        x_true = np.arange(1.0, 11.0)
        b = t.dense() @ x_true
        fact = schur_indefinite_factor(t)
        res = pcg(t, b, preconditioner=fact, tol=1e-12)
        assert res.converged
        assert res.iterations <= 10
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_work_counters(self, rng):
        t = kms_toeplitz(16, 0.5)
        fact = schur_spd_factor(t)
        res = pcg(t, rng.standard_normal(16), preconditioner=fact)
        assert res.matvecs >= res.iterations
        assert res.precond_solves >= res.iterations

    def test_zero_rhs(self):
        t = kms_toeplitz(8, 0.5)
        res = pcg(t, np.zeros(8))
        assert res.converged
        np.testing.assert_allclose(res.x, 0.0)

    def test_max_iter_and_raise(self, rng):
        t = kms_toeplitz(32, 0.95)
        b = rng.standard_normal(32)
        with pytest.raises(ConvergenceError):
            pcg(t, b, tol=1e-15, max_iter=2, raise_on_fail=True)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            pcg(kms_toeplitz(8, 0.5), np.ones(7))

    def test_residual_history(self, rng):
        t = kms_toeplitz(24, 0.5)
        res = pcg(t, rng.standard_normal(24))
        assert len(res.residual_norms) == res.iterations + 1
        assert res.residual_norms[-1] < res.residual_norms[0]
