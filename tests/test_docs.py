"""Execute every fenced ``python`` block in the documentation.

Documentation drift is a bug: each ``.md`` file under ``docs/`` (plus
the top-level README) is a test case, and all of its ```` ```python ````
blocks run top to bottom in one shared namespace — so later snippets can
build on earlier ones, exactly as a reader would follow them.  Blocks
execute in a temporary working directory, so examples may write files
(traces, factors) freely.

Illustrative, non-runnable fragments belong in ```` ```text ```` /
unlabeled fences; labeling a block ``python`` is the commitment that it
executes.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$",
                    re.MULTILINE | re.DOTALL)


def _doc_files() -> list[Path]:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def extract_blocks(text: str) -> list[str]:
    """All ``python``-labeled fenced code blocks, in order."""
    return [m.group(1) for m in _FENCE.finditer(text)]


@pytest.mark.parametrize("path", _doc_files(),
                         ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_doc_examples_execute(path: Path, tmp_path, monkeypatch):
    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    if not blocks:
        pytest.skip(f"{path.name} has no python examples")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"doc_{path.stem}"}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {i}]", "exec"),
                 namespace)
        except Exception as exc:
            pytest.fail(
                f"{path.name}, python block {i} failed: "
                f"{type(exc).__name__}: {exc}\n--- block ---\n{block}")


def test_every_doc_page_is_indexed():
    """docs/README.md links every other page in docs/."""
    index = (REPO_ROOT / "docs" / "README.md").read_text(encoding="utf-8")
    for page in _doc_files():
        if page.name == "README.md" or page.parent.name != "docs":
            continue
        assert page.name in index, \
            f"docs/README.md does not link {page.name}"


def test_readme_mentions_docs_pages():
    """The top-level README points readers at the docs/ pages."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for name in ("docs/api.md", "docs/algorithm.md",
                 "docs/machine_model.md", "docs/distributed.md",
                 "docs/serving.md", "docs/caching.md",
                 "docs/benchmarks.md", "docs/observability.md"):
        assert name in readme, f"README.md does not mention {name}"
