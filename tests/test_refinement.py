"""Tests for iterative refinement (Section 8.1)."""

import numpy as np
import pytest

from repro.core.refinement import refine
from repro.core.schur_indefinite import schur_indefinite_factor
from repro.core.schur_spd import schur_spd_factor
from repro.errors import ShapeError
from repro.toeplitz import (
    ar_block_toeplitz,
    indefinite_toeplitz,
    paper_example_matrix,
    singular_minor_toeplitz,
)


class TestPaperExample:
    """Section 8.2's numbers: ‖x−x₁‖ ≈ 3.6e−5 → ≈ 7e−10 → ≈ 1.6e−14."""

    def setup_method(self):
        self.t = paper_example_matrix()
        self.x_true = np.ones(6)
        self.b = self.t.dense() @ self.x_true

    def test_error_sequence_magnitudes(self):
        fact = schur_indefinite_factor(self.t)
        res = refine(fact, self.t, self.b, keep_history=True)
        errs = [np.linalg.norm(self.x_true - x) for x in res.history]
        # x₁ error at the δ ≈ 1e−5 level
        assert 1e-7 < errs[0] < 1e-3
        # one refinement: ~1e−10 level
        assert errs[1] < 1e-7
        # two refinements: machine precision
        assert errs[2] < 1e-12

    def test_converges_within_a_few_steps(self):
        fact = schur_indefinite_factor(self.t)
        res = refine(fact, self.t, self.b)
        assert res.converged
        assert res.iterations <= 6  # paper: typically 2 suffice

    def test_final_solution_accuracy(self):
        fact = schur_indefinite_factor(self.t)
        res = refine(fact, self.t, self.b)
        assert np.linalg.norm(res.x - self.x_true) < 1e-11

    def test_residual_norms_decrease(self):
        fact = schur_indefinite_factor(self.t)
        res = refine(fact, self.t, self.b)
        assert res.residual_norms[1] < res.residual_norms[0]

    def test_correction_norms_decrease_linearly(self):
        # eq. 41: linear convergence with factor ≈ γ ≪ 1.
        fact = schur_indefinite_factor(self.t)
        res = refine(fact, self.t, self.b, keep_history=True)
        c = res.correction_norms
        assert c[1] < 1e-2 * c[0]


class TestGeneralBehaviour:
    @pytest.mark.parametrize("seed", range(5))
    def test_singular_minor_family_full_accuracy(self, seed):
        t = singular_minor_toeplitz(12, minor=2, seed=seed)
        x_true = np.random.default_rng(seed).standard_normal(12)
        b = t.dense() @ x_true
        fact = schur_indefinite_factor(t)
        res = refine(fact, t, b)
        assert res.converged
        cond = np.linalg.cond(t.dense())
        tol = 1e-13 * max(cond, 1.0) * np.linalg.norm(x_true)
        assert np.linalg.norm(res.x - x_true) < max(tol, 1e-10)

    def test_spd_factorization_refines_too(self, rng):
        t = ar_block_toeplitz(8, 2, seed=1)
        fact = schur_spd_factor(t)
        b = rng.standard_normal(16)
        res = refine(fact, t, b)
        assert res.converged
        assert res.iterations <= 3  # already backward stable

    def test_indefinite_nonsingular(self, rng):
        t = indefinite_toeplitz(11, seed=2)
        fact = schur_indefinite_factor(t)
        b = rng.standard_normal(11)
        res = refine(fact, t, b)
        assert res.converged
        np.testing.assert_allclose(t.dense() @ res.x, b, atol=1e-7)

    def test_max_iter_respected(self):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        b = t.dense() @ np.ones(6)
        res = refine(fact, t, b, max_iter=1, tol=1e-30)
        assert res.iterations <= 1

    def test_tolerance_controls_stop(self):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        b = t.dense() @ np.ones(6)
        loose = refine(fact, t, b, tol=1e-2)
        tight = refine(fact, t, b, tol=1e-14)
        assert loose.iterations <= tight.iterations

    def test_history_only_when_requested(self):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        b = t.dense() @ np.ones(6)
        assert refine(fact, t, b).history == []
        assert len(refine(fact, t, b, keep_history=True).history) >= 1

    def test_shape_mismatch(self):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        with pytest.raises(ShapeError):
            refine(fact, t, np.ones(4))

    def test_residual_tracking_lengths(self):
        t = paper_example_matrix()
        fact = schur_indefinite_factor(t)
        b = t.dense() @ np.ones(6)
        res = refine(fact, t, b)
        assert len(res.residual_norms) >= 1
        assert len(res.correction_norms) == res.iterations
