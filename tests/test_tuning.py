"""Tests for the configuration autotuner."""

import pytest

from repro.blas.cray import cray_ymp_model
from repro.errors import ShapeError
from repro.toeplitz import kms_toeplitz
from repro.tuning import DistributionChoice, choose_distribution, tune


class TestChooseDistribution:
    def test_reproduces_experiment1_optimum(self):
        best, _ = choose_distribution(4096, 1, 16)
        assert best.b == 16.0          # the paper's Figure-6 optimum
        assert best.version == 2

    def test_reproduces_experiment2_optimum(self):
        best, _ = choose_distribution(4096, 8, 64)
        assert best.b == 1.0           # Version 1 fastest at m = 8
        assert best.version == 1

    def test_large_blocks_prefer_spreading(self):
        best, _ = choose_distribution(4096, 32, 64)
        assert best.b < 1              # Version 3 pays at m = 32
        assert best.version == 3

    def test_candidates_sorted(self):
        _, choices = choose_distribution(1024, 4, 8)
        secs = [c.seconds for c in choices]
        # leading entries sorted ascending
        assert secs[0] == min(secs)

    def test_candidate_set_contents(self):
        _, choices = choose_distribution(256, 4, 4)
        bs = {c.b for c in choices}
        assert 1.0 in bs
        assert any(b > 1 for b in bs)
        assert any(b < 1 for b in bs)

    def test_verify_top_simulates(self):
        t = kms_toeplitz(256, 0.5)
        best, choices = choose_distribution(256, 1, 4, verify_top=2,
                                            matrix=t)
        verified = [c for c in choices if c.simulated_seconds is not None]
        assert len(verified) == 2
        assert best.simulated_seconds is not None or \
            best.predicted_seconds > 0

    def test_verify_top_needs_matrix(self):
        with pytest.raises(ShapeError):
            choose_distribution(64, 1, 4, verify_top=1)

    def test_invalid_sizes(self):
        with pytest.raises(ShapeError):
            choose_distribution(10, 3, 4)
        with pytest.raises(ShapeError):
            choose_distribution(12, 3, 0)


class TestTune:
    def test_serial_prefers_larger_blocks_on_ymp(self):
        res = tune(1024, 1, node_model=cray_ymp_model())
        assert res.distribution is None
        assert res.block_size >= 1
        assert res.representation in ("vy1", "vy2", "yty")
        assert res.predicted_seconds > 0

    def test_parallel_returns_distribution(self):
        res = tune(1024, 8, nproc=16)
        assert res.distribution is not None
        assert res.block_size == 8
        assert res.predicted_seconds > 0

    def test_describe_mentions_choices(self):
        res = tune(512, 4, nproc=8)
        text = res.describe()
        assert "m_s" in text and "representation" in text
        assert "Version" in text

    def test_candidates_exposed(self):
        res = tune(256, 2, nproc=4)
        assert len(res.candidates) >= 3
