"""repro — block Schur factorization of symmetric block Toeplitz systems.

Reproduction of Thirumalai, Gallivan & Van Dooren, *"On Solving Block
Toeplitz Systems Using a Block Schur Algorithm"* (ICPP 1994).

Quickstart
----------
>>> import numpy as np
>>> from repro import ar_block_toeplitz, cholesky
>>> t = ar_block_toeplitz(num_blocks=32, block_size=4, seed=0)
>>> fact = cholesky(t)
>>> x = fact.solve(np.ones(t.order))
>>> bool(np.allclose(t.dense() @ x, np.ones(t.order)))
True

Public surface
--------------
* factorizations / solves: :func:`cholesky`, :func:`ldlt`, :func:`solve`,
  :func:`solve_refined`
* structured matrices: :class:`SymmetricBlockToeplitz`,
  :class:`BlockToeplitz`, the workload generators
* block-size trade-off: :func:`regrouped_factor`, :func:`choose_block_size`
* machine study: :mod:`repro.machine`, :mod:`repro.parallel`,
  :mod:`repro.blas`
* baselines: :mod:`repro.baselines`
* solver engine (plan/execute + factorization cache): :mod:`repro.engine`
"""

from repro._version import __version__
from repro.core import (
    cholesky,
    ldlt,
    solve,
    solve_refined,
    schur_spd_factor,
    schur_indefinite_factor,
    refine,
    SchurOptions,
    SPDFactorization,
    IndefiniteFactorization,
    RefinementResult,
    regrouped_factor,
    choose_block_size,
    generalized_schur_factor,
    generator_from_dense,
    matrix_from_generator,
    iter_r_block_rows,
    streaming_whiten,
    streaming_logdet,
    gaussian_loglikelihood,
    condest,
    solve_toeplitz_gko,
)
from repro.toeplitz import (
    BlockToeplitz,
    SymmetricBlockToeplitz,
    SymmetricToeplitzBlock,
    ar_block_toeplitz,
    indefinite_toeplitz,
    kms_toeplitz,
    paper_example_matrix,
    prolate_toeplitz,
    random_spd_block_toeplitz,
    singular_minor_toeplitz,
    spectral_block_toeplitz,
)
from repro.tuning import tune, choose_distribution
from repro import engine
from repro.engine import (
    FactorizationCache,
    MachineSpec,
    SolverPlan,
    StructuredOperator,
    execute,
    plan,
)
from repro import errors

__all__ = [
    "__version__",
    "cholesky",
    "ldlt",
    "solve",
    "solve_refined",
    "schur_spd_factor",
    "schur_indefinite_factor",
    "refine",
    "SchurOptions",
    "SPDFactorization",
    "IndefiniteFactorization",
    "RefinementResult",
    "regrouped_factor",
    "choose_block_size",
    "generalized_schur_factor",
    "generator_from_dense",
    "matrix_from_generator",
    "iter_r_block_rows",
    "streaming_whiten",
    "streaming_logdet",
    "gaussian_loglikelihood",
    "condest",
    "solve_toeplitz_gko",
    "BlockToeplitz",
    "SymmetricBlockToeplitz",
    "SymmetricToeplitzBlock",
    "ar_block_toeplitz",
    "indefinite_toeplitz",
    "kms_toeplitz",
    "paper_example_matrix",
    "prolate_toeplitz",
    "random_spd_block_toeplitz",
    "singular_minor_toeplitz",
    "spectral_block_toeplitz",
    "tune",
    "choose_distribution",
    "engine",
    "FactorizationCache",
    "MachineSpec",
    "SolverPlan",
    "StructuredOperator",
    "execute",
    "plan",
    "errors",
]
