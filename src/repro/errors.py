"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing numerical breakdowns from plain misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible or non-conforming shape."""


class InvalidOptionError(ReproError, ValueError):
    """A string/enumeration option has a value outside its legal set.

    Distinct from :class:`ShapeError` (which is about array geometry):
    raised for bad ``assume=``, ``representation=``, ``algorithm=`` and
    similar configuration strings.
    """


class NotBlockToeplitzError(ReproError, ValueError):
    """A dense matrix claimed to be (symmetric) block Toeplitz is not."""


class NotPositiveDefiniteError(ReproError, ValueError):
    """A matrix required to be symmetric positive definite is not.

    Raised by the SPD Schur factorization when a pivot column of the
    generator has non-positive hyperbolic norm, which certifies that the
    input matrix has a non-positive leading principal minor.
    """


class SingularMinorError(ReproError, ValueError):
    """A leading principal submatrix is (numerically) singular.

    The plain Schur recursion cannot proceed past a singular principal
    minor.  Callers may retry with ``perturb=True`` (Section 8 of the
    paper) to obtain an approximate factorization suitable for iterative
    refinement.
    """

    def __init__(self, message: str, step: int | None = None):
        super().__init__(message)
        #: Index of the (scalar) elimination step at which the breakdown
        #: occurred, if known.
        self.step = step


class BreakdownError(ReproError, ArithmeticError):
    """Unrecoverable numerical breakdown inside a factorization loop."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method failed to reach its tolerance."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class MachineError(ReproError, RuntimeError):
    """Error raised by the distributed-machine simulator."""


class DeadlockError(MachineError):
    """All simulated ranks are blocked and no event can make progress."""


class DistributionError(ReproError, ValueError):
    """Invalid data-distribution parameters (Version 1/2/3 layouts)."""


class ServiceOverloadError(ReproError, RuntimeError):
    """The solver service's admission control rejected a request.

    Raised by :meth:`repro.serve.BatchDispatcher.submit` when the number
    of queued requests has reached the configured ``max_queue_depth``.
    Fast-fail by design: shedding load at the door keeps queue wait
    bounded for the requests already admitted.  Clients should back off
    and retry.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A queued solve request's deadline expired before it was batched.

    The request never reached the numeric layer; no partial work is
    returned.  Raised asynchronously through the request's future.
    """


class ServiceClosedError(ReproError, RuntimeError):
    """The solver service is shutting down and not accepting requests.

    In-flight and queued work submitted before shutdown still completes
    when the service drains (``close(drain=True)``); only new
    submissions fail.
    """


class UnsupportedFactorizationError(ReproError, TypeError):
    """A factorization object has no compact on-disk representation.

    Raised by :func:`repro.core.compact.CompactFactorization.from_factorization`
    for result objects the persistent cache cannot serialize (distributed
    factorizations holding live backend state, iterative-method records,
    …).  The store treats it as "skip the spill", never as a failure.
    """


class CacheStoreError(ReproError, RuntimeError):
    """A persistent cache entry failed integrity or staleness checks.

    Raised internally by :mod:`repro.engine.cache_store` when an entry's
    zip structure, npy headers, content hashes or byte bounds do not
    check out; the store converts it into a quarantine move plus a cache
    miss, so corruption never crashes a solve.
    """


class MultiprocessUnavailableError(ReproError, RuntimeError):
    """The real multiprocess backend cannot run on this platform.

    Raised by :func:`repro.parallel.mp_backend.mp_factorization` when
    shared memory or process synchronization primitives are missing (or
    ``REPRO_MP_DISABLE`` is set).  The engine treats it as a signal to
    fall back to the simulated backend, recording the reason in the
    execution result.
    """
