"""Block Levinson–Durbin solver for symmetric block Toeplitz systems.

The classical ``O(p² m³)`` Toeplitz solver, implemented from scratch as
the algorithmic baseline for the Schur approach.  A bordering recursion
maintains three quantities on the leading ``k``-block system ``T_k``:

* ``V_k`` solving ``T_k V_k = E_1`` (first block column of the identity),
* ``U_k`` solving ``T_k U_k = E_k`` (last block column),
* ``X_k`` solving ``T_k X_k = B_k`` (leading blocks of the RHS),

and extends all three by one block row/column per step using the
rank-``m`` border.  Maintaining both ``V`` and ``U`` (rather than using
the persymmetry shortcut) keeps the recursion valid for any symmetric
block Toeplitz with nonsingular leading principal block minors — the
same existence condition as the Schur factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.blas import primitives as blas
from repro.errors import ShapeError, SingularMinorError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["LevinsonResult", "block_levinson_solve"]


@dataclass
class LevinsonResult:
    """Solution plus diagnostics of the block Levinson recursion."""

    x: np.ndarray
    steps: int
    #: condition estimate of the final (I − δ_u γ_v) border solve
    min_border_rcond: float


def _solve_small(a: np.ndarray, rhs: np.ndarray, step: int) -> np.ndarray:
    """Solve the m×m border system, diagnosing singular minors."""
    try:
        return sla.solve(a, rhs, check_finite=False)
    except sla.LinAlgError as exc:
        raise SingularMinorError(
            f"block Levinson border system singular at step {step}; the "
            f"matrix has a (numerically) singular leading principal "
            f"minor", step=step) from exc


def block_levinson_solve(t: SymmetricBlockToeplitz,
                         b: np.ndarray) -> LevinsonResult:
    """Solve ``T x = b`` by the block Levinson recursion.

    Parameters
    ----------
    t : SymmetricBlockToeplitz
        Symmetric block Toeplitz matrix with nonsingular leading
        principal block minors (SPD always qualifies).
    b : (n,) or (n, nrhs) array
        Right-hand side(s).

    Raises
    ------
    SingularMinorError
        When a leading principal minor is numerically singular (use the
        Schur algorithm with ``perturb=True`` for those systems).
    """
    m, p = t.block_size, t.num_blocks
    n = t.order
    b = np.asarray(b, dtype=np.float64)
    single = b.ndim == 1
    if single:
        b = b[:, None]
    if b.shape[0] != n:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {n}")
    nrhs = b.shape[1]

    # Γ_d blocks, d = 0 … p−1 (Γ_{−d} = Γ_dᵀ).
    gam = np.asarray(t.top_blocks)

    gamma0 = gam[0]
    v = np.empty((1, m, m))
    v[0] = _solve_small(gamma0, np.eye(m), 0)
    u = v.copy()
    x = np.empty((p, m, nrhs))
    x[0] = _solve_small(gamma0, b[:m], 0)

    min_rcond = 1.0
    for k in range(1, p):
        # Border row of T_{k+1}: block (k+1, j) = Γ_{k+1−j}ᵀ ⇒ the row
        # against a stacked block vector Y is Σ_j Γ_{k−j}ᵀ Y_j (0-based:
        # j = 0 … k−1 with offsets k−j).
        # γ_v = last-row residual of [V; 0]; δ_u = first-row residual of
        # [0; U]; β = last-row residual of [X; 0].
        offs = np.arange(k, 0, -1)                # k−j for j = 0 … k−1
        gv = np.einsum("jab,jar->br", gam[offs], v[:k])
        du = np.einsum("jab,jbr->ar", gam[np.arange(1, k + 1)], u[:k])
        beta = np.einsum("jab,jar->br", gam[offs], x[:k])
        blas.charge(6 * k * m ** 3, "levinson-border")

        # Border solves (m×m).
        eye = np.eye(m)
        a_newv = _solve_small(eye - du @ gv, eye, k)
        q_newu = _solve_small(eye - gv @ du, eye, k)
        s_x = _solve_small(eye - gv @ du, b[k * m:(k + 1) * m] - beta, k)
        min_rcond = min(min_rcond,
                        1.0 / max(np.linalg.cond(eye - gv @ du), 1.0))

        # V_{k+1} = [V;0]·a + [0;U]·c,  c = −γ_v a
        c = -gv @ a_newv
        new_v = np.zeros((k + 1, m, m))
        new_v[:k] = v[:k] @ a_newv
        new_v[1:k + 1] += u[:k] @ c
        blas.charge(4 * k * m ** 3, "levinson-update")

        # U_{k+1} = [V;0]·p' + [0;U]·q,  p' = −δ_u q
        pmat = -du @ q_newu
        new_u = np.zeros((k + 1, m, m))
        new_u[:k] = v[:k] @ pmat
        new_u[1:k + 1] += u[:k] @ q_newu

        # X_{k+1} = [X;0] + [0;U]·s + [V;0]·t,  t = −δ_u s
        tmat = -du @ s_x
        x[k] = 0.0
        x[:k] += v[:k] @ tmat
        x[1:k + 1] += u[:k] @ s_x
        blas.charge(4 * k * m * m * nrhs, "levinson-rhs")

        v = new_v
        u = new_u

    out = x.reshape(n, nrhs)
    return LevinsonResult(x=out[:, 0] if single else out,
                          steps=p, min_border_rcond=min_rcond)
