"""Baselines the paper compares against (or that validate our results).

* :mod:`repro.baselines.levinson` — a from-scratch block Levinson–Durbin
  solver (the classical ``O(p² m³)`` alternative to the Schur approach;
  the Concus–Saylor perturbation idea was developed for this algorithm);
* :mod:`repro.baselines.dense_chol` — dense LAPACK Cholesky / LDLᵀ via
  SciPy, the ``O(n³)`` reference for accuracy and crossover timing;
* :mod:`repro.baselines.pcg` — preconditioned conjugate gradients with
  the perturbed ``Rᵀ D R`` factorization as preconditioner, the
  Section 8 comparator for iterative refinement.
"""

from repro.baselines.levinson import block_levinson_solve, LevinsonResult
from repro.baselines.dense_chol import (
    dense_cholesky_solve,
    dense_ldl_solve,
)
from repro.baselines.pcg import pcg, PCGResult
from repro.baselines.circulant import (
    CirculantPreconditioner,
    strang_preconditioner,
    tchan_preconditioner,
    circulant_pcg,
)

__all__ = [
    "block_levinson_solve",
    "LevinsonResult",
    "dense_cholesky_solve",
    "dense_ldl_solve",
    "pcg",
    "PCGResult",
    "CirculantPreconditioner",
    "strang_preconditioner",
    "tchan_preconditioner",
    "circulant_pcg",
]
