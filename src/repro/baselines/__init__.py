"""Baselines the paper compares against (or that validate our results).

* :mod:`repro.baselines.levinson` — a from-scratch block Levinson–Durbin
  solver (the classical ``O(p² m³)`` alternative to the Schur approach;
  the Concus–Saylor perturbation idea was developed for this algorithm);
* :mod:`repro.baselines.dense_chol` — dense LAPACK Cholesky / LDLᵀ via
  SciPy, the ``O(n³)`` reference for accuracy and crossover timing;
* :mod:`repro.baselines.pcg` — preconditioned conjugate gradients with
  the perturbed ``Rᵀ D R`` factorization as preconditioner, the
  Section 8 comparator for iterative refinement.

Each baseline also registers itself as a solver-engine algorithm
(:func:`repro.engine.register_algorithm`), so
``repro.engine.algorithms()`` exposes Schur solvers and baselines
through one uniform plan/execute interface — the comparison benchmarks
iterate that registry instead of hard-wiring call sites.
"""

import numpy as np

from repro.baselines.levinson import block_levinson_solve, LevinsonResult
from repro.baselines.dense_chol import (
    dense_cholesky_solve,
    dense_ldl_solve,
)
from repro.baselines.pcg import pcg, pcg_block, BlockPCGResult, PCGResult
from repro.baselines.circulant import (
    CirculantPreconditioner,
    strang_preconditioner,
    tchan_preconditioner,
    circulant_pcg,
)

__all__ = [
    "block_levinson_solve",
    "LevinsonResult",
    "dense_cholesky_solve",
    "dense_ldl_solve",
    "pcg",
    "pcg_block",
    "PCGResult",
    "BlockPCGResult",
    "CirculantPreconditioner",
    "strang_preconditioner",
    "tchan_preconditioner",
    "circulant_pcg",
]


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
def _levinson_solve(op, b, pl, fact, **_kwargs):
    res = block_levinson_solve(op, b)
    return res.x, res


class _DenseCholeskyFactor:
    """Cached dense ``cho_factor`` wrapper with the engine's ``solve``."""

    def __init__(self, op):
        import scipy.linalg as sla
        from repro.errors import NotPositiveDefiniteError
        try:
            self._factor = sla.cho_factor(op.assemble(),
                                          check_finite=False)
        except sla.LinAlgError as exc:
            raise NotPositiveDefiniteError(str(exc)) from exc

    def solve(self, b):
        import scipy.linalg as sla
        return sla.cho_solve(self._factor, b, check_finite=False)


def _dense_chol_factor(op, pl):
    return _DenseCholeskyFactor(op)


def _dense_chol_solve(op, b, pl, fact, **_kwargs):
    return fact.solve(b), fact


def _pcg_factor(op, pl):
    # The Section 8 preconditioner: perturbed RᵀDR of the same matrix.
    from repro.core.schur_indefinite import schur_indefinite_factor
    return schur_indefinite_factor(op, perturb=True, delta=pl.delta)


def _pcg_solve(op, b, pl, fact, *, tol: float = 1e-12,
               max_iter: int | None = None, **_kwargs):
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 1:
        res = pcg(op, b, preconditioner=fact, tol=tol, max_iter=max_iter)
        return res.x, res
    # Panel RHS: one block-CG run over all columns (batched matvecs,
    # batched preconditioner solves) instead of a per-column loop.
    res = pcg_block(op, b, preconditioner=fact, tol=tol,
                    max_iter=max_iter)
    return res.x, res


def _register_engine_algorithms() -> None:
    from repro.engine.engine import _REGISTRY, register_algorithm
    if "levinson" in _REGISTRY:  # already registered (re-import)
        return
    register_algorithm(
        "levinson", solve=_levinson_solve,
        description="block Levinson–Durbin recursion, O(p² m³)")
    register_algorithm(
        "pcg", factor=_pcg_factor, solve=_pcg_solve,
        description="CG preconditioned by the perturbed RᵀDR "
                    "factorization (Section 8 comparator)")
    register_algorithm(
        "dense-chol", factor=_dense_chol_factor, solve=_dense_chol_solve,
        description="dense LAPACK Cholesky, the O(n³) reference")


_register_engine_algorithms()
