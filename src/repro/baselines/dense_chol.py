"""Dense LAPACK reference solvers (via SciPy).

``O(n³)`` baselines used to validate accuracy and to show the structured
algorithms' complexity advantage in the benchmark crossover tables.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.errors import NotPositiveDefiniteError, ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["dense_cholesky_solve", "dense_ldl_solve", "dense_cholesky"]


def _dense(t) -> np.ndarray:
    if isinstance(t, SymmetricBlockToeplitz):
        return t.dense()
    return np.asarray(t, dtype=np.float64)


def dense_cholesky(t) -> np.ndarray:
    """Upper-triangular ``R`` with ``T = Rᵀ R`` via LAPACK ``potrf``."""
    a = _dense(t)
    try:
        return sla.cholesky(a, lower=False, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc


def dense_cholesky_solve(t, b: np.ndarray) -> np.ndarray:
    """Solve SPD ``T x = b`` densely (``cho_factor``/``cho_solve``)."""
    a = _dense(t)
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != a.shape[0]:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {a.shape[0]}")
    try:
        factor = sla.cho_factor(a, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc
    return sla.cho_solve(factor, b, check_finite=False)


def dense_ldl_solve(t, b: np.ndarray) -> np.ndarray:
    """Solve symmetric indefinite ``T x = b`` densely via LAPACK LDLᵀ
    (Bunch–Kaufman pivoting — handles singular principal minors without
    perturbation, at ``O(n³)``)."""
    a = _dense(t)
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != a.shape[0]:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {a.shape[0]}")
    lu, d, perm = sla.ldl(a, check_finite=False)
    # Solve L D Lᵀ x = b with the permutation folded into L.
    lp = lu[perm]
    y = sla.solve_triangular(lp, b[perm], lower=True, unit_diagonal=True,
                             check_finite=False)
    # D is block diagonal with 1×1 / 2×2 blocks.
    z = np.linalg.solve(d, y) if y.ndim == 1 else np.linalg.solve(d, y)
    w = sla.solve_triangular(lp.T, z, lower=False, unit_diagonal=True,
                             check_finite=False)
    x = np.empty_like(w)
    x[perm] = w
    return x
