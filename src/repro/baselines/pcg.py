"""Preconditioned conjugate gradients with a factored preconditioner.

The Section 8 comparator: Concus & Saylor use the perturbed direct
factorization as a *preconditioner* for CG on indefinite symmetric
Toeplitz systems.  The paper's refinement scheme does strictly less work
per iteration (one factored solve + one fast matvec versus the same plus
the CG vector recurrences); the benchmark harness counts both.

This is a from-scratch PCG with work counters, using the FFT fast matvec
for the operator.  With the ``Rᵀ D R`` preconditioner the preconditioned
operator is a tiny perturbation of the identity, so CG converges in a
handful of iterations even for (mildly) indefinite ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.errors import ConvergenceError, ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.toeplitz.matvec import BlockCirculantEmbedding

__all__ = ["PCGResult", "pcg"]


@dataclass
class PCGResult:
    """Solution and work accounting for one PCG run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    #: number of operator applications (fast matvecs)
    matvecs: int = 0
    #: number of preconditioner solves
    precond_solves: int = 0


def pcg(t: SymmetricBlockToeplitz, b: np.ndarray, *,
        preconditioner=None,
        tol: float = 1e-12, max_iter: int | None = None,
        raise_on_fail: bool = False) -> PCGResult:
    """Solve ``T x = b`` by (preconditioned) conjugate gradients.

    Parameters
    ----------
    t : SymmetricBlockToeplitz
        System matrix (applied via the FFT embedding).
    preconditioner : object with ``solve``, optional
        E.g. an :class:`~repro.core.schur_indefinite.IndefiniteFactorization`
        of ``T + δT``.
    tol : float
        Relative residual stopping tolerance ``‖r‖ ≤ tol·‖b‖``.
    max_iter : int
        Iteration cap (default ``2n``).
    raise_on_fail : bool
        Raise :class:`~repro.errors.ConvergenceError` instead of
        returning ``converged=False``.
    """
    n = t.order
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b.shape}")
    if max_iter is None:
        max_iter = 2 * n
    emb = BlockCirculantEmbedding(t)
    res = PCGResult(x=np.zeros(n), iterations=0, converged=False)

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        res.converged = True
        return res
    traced = obs.enabled()
    residual_gauge = obs.default_registry().gauge(
        "repro_pcg_residual",
        "‖b − T x‖₂ after the most recent PCG iteration"
    ) if traced else None
    with obs.span("pcg", order=n, tol=tol, max_iter=max_iter,
                  preconditioned=preconditioner is not None) as sp:
        x = np.zeros(n)
        r = b.copy()
        if preconditioner is not None:
            z = preconditioner.solve(r)
            res.precond_solves += 1
        else:
            z = r.copy()
        p = z.copy()
        rz = float(r @ z)
        res.residual_norms.append(float(np.linalg.norm(r)))
        if traced:
            residual_gauge.set(res.residual_norms[0])
        for it in range(1, max_iter + 1):
            ap = emb(p)
            res.matvecs += 1
            pap = float(p @ ap)
            if pap == 0.0:
                break
            alpha = rz / pap
            x += alpha * p
            r -= alpha * ap
            rnorm = float(np.linalg.norm(r))
            res.residual_norms.append(rnorm)
            res.iterations = it
            if traced:
                residual_gauge.set(rnorm)
            if rnorm <= tol * bnorm:
                res.converged = True
                break
            if preconditioner is not None:
                z = preconditioner.solve(r)
                res.precond_solves += 1
            else:
                z = r.copy()
            rz_new = float(r @ z)
            beta = rz_new / rz if rz != 0.0 else 0.0
            p = z + beta * p
            rz = rz_new
        sp.set(iterations=res.iterations, converged=res.converged,
               matvecs=res.matvecs, precond_solves=res.precond_solves)
    res.x = x
    if not res.converged and raise_on_fail:
        raise ConvergenceError(
            f"PCG failed to reach tol={tol} in {res.iterations} iterations",
            iterations=res.iterations,
            residual=res.residual_norms[-1])
    return res
