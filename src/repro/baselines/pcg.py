"""Preconditioned conjugate gradients with a factored preconditioner.

The Section 8 comparator: Concus & Saylor use the perturbed direct
factorization as a *preconditioner* for CG on indefinite symmetric
Toeplitz systems.  The paper's refinement scheme does strictly less work
per iteration (one factored solve + one fast matvec versus the same plus
the CG vector recurrences); the benchmark harness counts both.

This is a from-scratch PCG with work counters, using the FFT fast matvec
for the operator.  With the ``Rᵀ D R`` preconditioner the preconditioned
operator is a tiny perturbation of the identity, so CG converges in a
handful of iterations even for (mildly) indefinite ``T``.

:func:`pcg_block` is the multi-RHS variant (O'Leary's block CG): the
whole panel shares each fast matvec, each factored preconditioner solve
and the ``k × k`` recurrence algebra, so the per-iteration work is
level-3 shaped.  Converged columns are deflated out of the active block,
and the small Gram systems are solved rank-revealingly (eigenvalue
thresholding) so near-dependent search directions degrade gracefully
instead of dividing by ~0 — the classical block-CG breakdown mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.errors import ConvergenceError, InvalidOptionError, ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.toeplitz.matvec import BlockCirculantEmbedding
from repro.utils.lintools import as_panel

__all__ = ["PCGResult", "BlockPCGResult", "pcg", "pcg_block"]


@dataclass
class PCGResult:
    """Solution and work accounting for one PCG run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    #: number of operator applications (fast matvecs)
    matvecs: int = 0
    #: number of preconditioner solves
    precond_solves: int = 0


@dataclass
class BlockPCGResult:
    """Solution and work accounting for one block-PCG run.

    ``matvecs`` / ``precond_solves`` count *batched calls* (one panel
    application each); ``matvec_columns`` / ``precond_columns`` count
    the column-equivalents those calls carried, so
    ``matvec_columns / matvecs`` is the achieved average panel width.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    #: worst still-active column ‖r_j‖₂ after each iteration
    residual_norms: list[float] = field(default_factory=list)
    nrhs: int = 0
    matvecs: int = 0
    precond_solves: int = 0
    matvec_columns: int = 0
    precond_columns: int = 0
    #: iteration at which each column's residual passed the tolerance
    #: (0 = converged at the initial guess; max_iter+… never means more
    #: than ``iterations``); -1 for columns that did not converge
    per_column_iterations: np.ndarray | None = None
    #: number of rank-deficient Gram systems handled by thresholding
    deflations: int = 0


def pcg(t: SymmetricBlockToeplitz, b: np.ndarray, *,
        preconditioner=None,
        tol: float = 1e-12, max_iter: int | None = None,
        raise_on_fail: bool = False) -> PCGResult:
    """Solve ``T x = b`` by (preconditioned) conjugate gradients.

    Parameters
    ----------
    t : SymmetricBlockToeplitz
        System matrix (applied via the FFT embedding).
    b : array
        A single right-hand-side *vector*; for an ``n × k`` panel use
        :func:`pcg_block`.
    preconditioner : object with ``solve``, optional
        E.g. an :class:`~repro.core.schur_indefinite.IndefiniteFactorization`
        of ``T + δT``.
    tol : float
        Relative residual stopping tolerance ``‖r‖ ≤ tol·‖b‖``.
    max_iter : int
        Iteration cap (default ``2n``).
    raise_on_fail : bool
        Raise :class:`~repro.errors.ConvergenceError` instead of
        returning ``converged=False``.
    """
    n = t.order
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        raise InvalidOptionError(
            f"pcg() takes a single right-hand-side vector; for a panel "
            f"of {b.shape[1]} columns use pcg_block(), which batches "
            "the matvecs, preconditioner solves and CG recurrences "
            "across the panel")
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b.shape}")
    if max_iter is None:
        max_iter = 2 * n
    emb = BlockCirculantEmbedding(t)
    res = PCGResult(x=np.zeros(n), iterations=0, converged=False)

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        res.converged = True
        return res
    traced = obs.enabled()
    residual_gauge = obs.default_registry().gauge(
        "repro_pcg_residual",
        "‖b − T x‖₂ after the most recent PCG iteration"
    ) if traced else None
    with obs.span("pcg", order=n, tol=tol, max_iter=max_iter,
                  preconditioned=preconditioner is not None) as sp:
        x = np.zeros(n)
        r = b.copy()
        if preconditioner is not None:
            z = preconditioner.solve(r)
            res.precond_solves += 1
        else:
            z = r.copy()
        p = z.copy()
        rz = float(r @ z)
        res.residual_norms.append(float(np.linalg.norm(r)))
        if traced:
            residual_gauge.set(res.residual_norms[0])
        for it in range(1, max_iter + 1):
            ap = emb(p)
            res.matvecs += 1
            pap = float(p @ ap)
            if pap == 0.0:
                break
            alpha = rz / pap
            x += alpha * p
            r -= alpha * ap
            rnorm = float(np.linalg.norm(r))
            res.residual_norms.append(rnorm)
            res.iterations = it
            if traced:
                residual_gauge.set(rnorm)
            if rnorm <= tol * bnorm:
                res.converged = True
                break
            if preconditioner is not None:
                z = preconditioner.solve(r)
                res.precond_solves += 1
            else:
                z = r.copy()
            rz_new = float(r @ z)
            beta = rz_new / rz if rz != 0.0 else 0.0
            p = z + beta * p
            rz = rz_new
        sp.set(iterations=res.iterations, converged=res.converged,
               matvecs=res.matvecs, precond_solves=res.precond_solves)
    res.x = x
    if not res.converged and raise_on_fail:
        raise ConvergenceError(
            f"PCG failed to reach tol={tol} in {res.iterations} iterations",
            iterations=res.iterations,
            residual=res.residual_norms[-1])
    return res


def _solve_gram_rr(g: np.ndarray, s: np.ndarray,
                   rtol: float = 1e-12) -> tuple[np.ndarray, bool]:
    """Rank-revealing solve of the small Gram system ``G A = S``.

    ``G`` is symmetric (``Pᵀ(AP)`` or ``RᵀZ``); near-dependent search
    directions make it numerically rank-deficient.  A symmetric
    eigendecomposition reveals the rank: modes with ``|λ| ≤ rtol·max|λ|``
    are dropped (pseudo-inverse), which deflates the dependent direction
    instead of amplifying it.  Returns ``(solution, deflated)``.
    """
    g = 0.5 * (g + g.T)
    lam, q = np.linalg.eigh(g)
    scale = float(np.max(np.abs(lam), initial=0.0))
    if scale == 0.0:
        return np.zeros_like(s), True
    keep = np.abs(lam) > rtol * scale
    inv = np.where(keep, 1.0 / np.where(keep, lam, 1.0), 0.0)
    sol = q @ (inv[:, None] * (q.T @ s))
    return sol, bool(np.any(~keep))


def pcg_block(t: SymmetricBlockToeplitz, b: np.ndarray, *,
              preconditioner=None,
              tol: float = 1e-12, max_iter: int | None = None,
              raise_on_fail: bool = False) -> BlockPCGResult:
    """Solve ``T X = B`` for a panel ``B ∈ R^{n×k}`` by block CG.

    One iteration applies the fast matvec, the (optional) factored
    preconditioner and the CG recurrences to the whole active panel at
    once — level-3 shapes throughout.  Columns whose residual passes
    ``‖r_j‖ ≤ tol·‖b_j‖`` are deflated out of the active block; the
    ``k × k`` Gram systems are solved rank-revealingly
    (:func:`_solve_gram_rr`) so a breakdown from linearly dependent
    search directions degrades to a smaller effective block instead of
    destroying the iteration.

    Parameters match :func:`pcg`; a 1-D ``b`` is treated as a width-1
    panel (the result's ``x`` is then ``n × 1``).
    """
    n = t.order
    panel, _ = as_panel(b, n)
    k = panel.shape[1]
    if max_iter is None:
        max_iter = 2 * n
    emb = BlockCirculantEmbedding(t)
    res = BlockPCGResult(x=np.zeros((n, k)), iterations=0,
                         converged=False, nrhs=k)
    bnorm = np.linalg.norm(panel, axis=0)
    col_iter = np.full(k, -1, dtype=np.intp)
    col_iter[bnorm == 0.0] = 0
    active = np.nonzero(bnorm > 0.0)[0]
    if active.size == 0:
        res.converged = True
        res.per_column_iterations = col_iter
        return res
    traced = obs.enabled()
    residual_gauge = obs.default_registry().gauge(
        "repro_pcg_residual",
        "‖b − T x‖₂ after the most recent PCG iteration"
    ) if traced else None
    with obs.span("pcg_block", order=n, nrhs=k, tol=tol,
                  max_iter=max_iter,
                  preconditioned=preconditioner is not None) as sp:
        x = res.x
        r = panel[:, active].copy()
        if preconditioner is not None:
            z = preconditioner.solve(r)
            res.precond_solves += 1
            res.precond_columns += int(active.size)
        else:
            z = r.copy()
        p = z.copy()
        s = r.T @ z                    # RᵀZ, a×a
        res.residual_norms.append(float(np.max(
            np.linalg.norm(r, axis=0))))
        if traced:
            residual_gauge.set(res.residual_norms[0])
        for it in range(1, max_iter + 1):
            ap = emb(p)
            res.matvecs += 1
            res.matvec_columns += int(active.size)
            g = p.T @ ap               # PᵀAP, a×a
            alpha, deflated = _solve_gram_rr(g, s)
            if deflated:
                res.deflations += 1
            x[:, active] += p @ alpha
            r -= ap @ alpha
            rnorm = np.linalg.norm(r, axis=0)
            res.iterations = it
            done = rnorm <= tol * bnorm[active]
            col_iter[active[done]] = it
            if np.any(done):
                # Deflate converged columns out of the active block.
                live = ~done
                active = active[live]
                r = np.ascontiguousarray(r[:, live])
                p = np.ascontiguousarray(p[:, live])
                s = np.ascontiguousarray(s[np.ix_(live, live)])
                rnorm = rnorm[live]
            if traced and rnorm.size:
                residual_gauge.set(float(np.max(rnorm)))
            if rnorm.size:
                res.residual_norms.append(float(np.max(rnorm)))
            if active.size == 0:
                res.converged = True
                break
            if preconditioner is not None:
                z = preconditioner.solve(r)
                res.precond_solves += 1
                res.precond_columns += int(active.size)
            else:
                z = r.copy()
            s_new = r.T @ z
            beta, deflated = _solve_gram_rr(s, s_new)
            if deflated:
                res.deflations += 1
            p = z + p @ beta
            s = s_new
        sp.set(iterations=res.iterations, converged=res.converged,
               matvecs=res.matvecs, precond_solves=res.precond_solves,
               deflations=res.deflations)
    res.per_column_iterations = col_iter
    if not res.converged and raise_on_fail:
        raise ConvergenceError(
            f"block PCG failed to reach tol={tol} in {res.iterations} "
            f"iterations ({int(np.sum(col_iter < 0))} of {k} columns "
            "unconverged)",
            iterations=res.iterations,
            residual=res.residual_norms[-1])
    return res
