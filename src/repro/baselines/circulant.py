"""Circulant preconditioners for Toeplitz CG (Strang / T. Chan).

The other classical route to Toeplitz systems: preconditioned conjugate
gradients with a circulant approximation of ``T``, invertible in
``O(n log n)`` by FFT.  Included as the canonical iterative baseline
next to the paper's direct method — the benchmark harness compares
iteration counts and per-iteration work against the Schur factorization
and the Section 8 refinement scheme.

Two classical choices for scalar symmetric Toeplitz ``T = [t_{|i−j|}]``:

* **Strang**: copy the central diagonals —
  ``c_k = t_k`` for ``k ≤ n/2``, ``c_k = t_{n−k}`` beyond;
* **T. Chan**: the Frobenius-optimal circulant —
  ``c_k = ((n−k) t_k + k t_{n−k}) / n``.

Both are SPD for large classes of SPD Toeplitz matrices and give
clustered spectra (superlinear CG convergence) for Wiener-class symbols.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pcg import PCGResult, pcg
from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = [
    "CirculantPreconditioner",
    "strang_preconditioner",
    "tchan_preconditioner",
    "circulant_pcg",
]


class CirculantPreconditioner:
    """SPD circulant operator ``C`` applied via FFT (``solve`` = C⁻¹·).

    Parameters
    ----------
    first_column : (n,) array
        First column of the circulant.
    min_eig : float
        Eigenvalues (the DFT of the first column) below this floor are
        clamped, keeping the preconditioner SPD even when the recipe
        produces a (near-)singular circulant.
    """

    def __init__(self, first_column: np.ndarray, *,
                 min_eig: float = 1e-12):
        c = np.asarray(first_column, dtype=np.float64)
        if c.ndim != 1:
            raise ShapeError("first_column must be 1-D")
        eig = np.fft.rfft(c)
        lam = eig.real  # symmetric circulant ⇒ real spectrum
        scale = float(np.max(np.abs(lam))) or 1.0
        self.eigenvalues = np.maximum(lam, min_eig * scale)
        self._n = c.shape[0]
        self.first_column = c

    @property
    def order(self) -> int:
        return self._n

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``C x`` via FFT."""
        return np.fft.irfft(self.eigenvalues * np.fft.rfft(x, n=self._n),
                            n=self._n)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """``C⁻¹ b`` via FFT — ``O(n log n)``."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self._n:
            raise ShapeError(f"b has {b.shape[0]} rows, expected {self._n}")
        return np.fft.irfft(np.fft.rfft(b, n=self._n) / self.eigenvalues,
                            n=self._n)

    def dense(self) -> np.ndarray:
        """Dense circulant (diagnostics)."""
        c = self.first_column
        n = self._n
        return np.array([[c[(i - j) % n] for j in range(n)]
                         for i in range(n)])


def _first_row(t) -> np.ndarray:
    if isinstance(t, SymmetricBlockToeplitz):
        if t.block_size != 1:
            raise ShapeError(
                "circulant preconditioners implemented for scalar "
                "(m = 1) symmetric Toeplitz matrices")
        return t.first_scalar_row()
    row = np.asarray(t, dtype=np.float64)
    if row.ndim != 1:
        raise ShapeError("expected a scalar Toeplitz matrix or first row")
    return row


def strang_preconditioner(t) -> CirculantPreconditioner:
    """Strang's circulant: copy the central band of ``T``."""
    row = _first_row(t)
    n = row.shape[0]
    c = np.empty(n)
    half = n // 2
    c[:half + 1] = row[:half + 1]
    for k in range(half + 1, n):
        c[k] = row[n - k]
    return CirculantPreconditioner(c)


def tchan_preconditioner(t) -> CirculantPreconditioner:
    """T. Chan's Frobenius-optimal circulant approximation."""
    row = _first_row(t)
    n = row.shape[0]
    k = np.arange(n)
    c = ((n - k) * row + k * row[(n - k) % n]) / n
    return CirculantPreconditioner(c)


def circulant_pcg(t: SymmetricBlockToeplitz, b: np.ndarray, *,
                  kind: str = "strang",
                  tol: float = 1e-12,
                  max_iter: int | None = None) -> PCGResult:
    """CG on a scalar SPD Toeplitz system with a circulant preconditioner.

    ``O(n log n)`` per iteration (FFT matvec + FFT preconditioner solve);
    iteration counts are small for Wiener-class symbols — the classic
    comparison point for direct ``O(n²)`` methods.
    """
    if kind == "strang":
        pre = strang_preconditioner(t)
    elif kind == "tchan":
        pre = tchan_preconditioner(t)
    else:
        raise ShapeError(f"unknown preconditioner kind {kind!r}")
    return pcg(t, b, preconditioner=pre, tol=tol, max_iter=max_iter)
