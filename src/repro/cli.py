"""Command-line interface: ``python -m repro <command> …``.

Commands
--------
``info <matrix>``
    Structure report: order, block size, displacement rank, definiteness,
    condition estimate.
``factor <matrix> [-o out.npz]``
    Factor (SPD Cholesky or indefinite RᵀDR with perturbation) and
    report diagnostics; optionally save the factor.  With
    ``--nproc NP`` the factorization runs distributed —
    ``--backend multiprocess`` on real worker processes,
    ``--backend simulated`` (default) on the T3D model; ``--dist-b``
    picks the Version 1/2/3 data distribution, ``--schedule lookahead``
    the Section-7 pipelined schedule, ``--transport`` the fabric.
``solve <matrix> [<rhs>] [-o x.npy]``
    Solve ``T x = b`` with the automatic SPD → indefinite+refinement
    pipeline (or ``--method gko`` / ``levinson``); accepts the same
    ``--nproc``/``--backend``/``--dist-b``/``--schedule``/
    ``--transport`` distribution flags — distributed plans keep the
    triangular solves distributed too (the report names the solve
    backend).  The RHS
    may be a 2-D ``n × k`` panel (batched level-3 solve path), or be
    synthesized with ``--nrhs k``; ``--profile`` then reports the
    per-panel solve throughput.  ``--precision fp32|mixed`` (also on
    ``factor``) runs the factorization reduced and recovers fp64
    accuracy through refinement.
``simulate <matrix> --nproc NP [--b B]``
    Run the distributed factorization on the simulated T3D and print the
    time/phase breakdown.
``tune <matrix> [--nproc NP]``
    Recommend a configuration (block size, representation, data
    distribution) for this problem on the modeled machine.
``trace report <trace.jsonl> […]``
    Analyze a recorded JSONL trace (from ``--trace-out``): critical
    path, per-rank utilization/imbalance, achieved-vs-modeled flop
    efficiency.  Several per-rank files merge time-ordered.
``trace timeline <trace.jsonl> […] -o chrome.json``
    Export to Chrome trace-event JSON for ``chrome://tracing`` /
    Perfetto.
``bench ingest / bench diff``
    Maintain ``BENCH_history.jsonl`` from the ``BENCH_*.json``
    benchmark artifacts and diff the current results against the
    committed baseline (nonzero exit on regression).
``serve <matrix> [--port P]``
    Run the matrix as a solver service: a TCP front end
    (newline-delimited JSON) over the micro-batching dispatcher that
    coalesces concurrent requests sharing a factorization into one
    panel solve (``--max-wait-ms`` latency budget, ``--max-batch-k``
    panel cap, ``--max-queue-depth`` admission bound).  ``--selftest K``
    starts the server on an ephemeral port, drives K concurrent client
    requests through it, prints the coalescing stats, and exits.
``bench-info``
    List the paper figures/tables and the benchmark that regenerates
    each.

Matrix files: ``.npy``/``.npz``/``.txt``.  A 1-D array is the first row
of a scalar symmetric Toeplitz matrix; a 2-D array is a dense symmetric
block Toeplitz matrix (pass ``--block-size``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _load_array(path: str) -> np.ndarray:
    if path.endswith(".npz"):
        with np.load(path) as data:
            key = list(data.keys())[0]
            return np.asarray(data[key], dtype=np.float64)
    if path.endswith(".npy"):
        return np.asarray(np.load(path), dtype=np.float64)
    return np.loadtxt(path, dtype=np.float64)


def _load_matrix(path: str, block_size: int | None):
    from repro.toeplitz import SymmetricBlockToeplitz, \
        symmetric_from_dense
    arr = _load_array(path)
    if arr.ndim == 1:
        t = SymmetricBlockToeplitz.from_first_row(arr)
        if block_size and block_size > 1:
            t = t.regroup(block_size)
        return t
    return symmetric_from_dense(arr, block_size or 1)


def _cmd_info(args) -> int:
    from repro.core.condest import condest
    from repro.core.displacement_rank import displacement_rank
    t = _load_matrix(args.matrix, args.block_size)
    print(f"order:              {t.order}")
    print(f"block size:         {t.block_size}")
    print(f"block rows:         {t.num_blocks}")
    if t.order <= 2048:
        d = t.dense()
        eig = np.linalg.eigvalsh(d)
        kind = ("positive definite" if eig[0] > 0 else
                "negative definite" if eig[-1] < 0 else "indefinite")
        print(f"definiteness:       {kind} "
              f"(λmin={eig[0]:.3e}, λmax={eig[-1]:.3e})")
        print(f"displacement rank:  {displacement_rank(d)}")
    try:
        print(f"cond₁ estimate:     {condest(t):.3e}")
    except ReproError as exc:
        print(f"cond₁ estimate:     unavailable ({exc})")
    return 0


def _want_profile(args) -> bool:
    """Enable observability for this run when asked; returns whether."""
    if getattr(args, "profile", False) or getattr(args, "trace_out", None):
        import repro.obs as obs
        obs.enable()
        return True
    return False


def _emit_profile(args, profile, result=None) -> None:
    """Print the span tree / metrics / health and write the JSONL trace.

    ``result`` (an engine ``ExecutionResult``) lets the trace carry the
    always-on per-execution summary record alongside the span tree, so
    ``repro trace report`` can pair phase timings with flop totals.
    """
    if profile is None:
        return
    if args.profile:
        print()
        print(profile.render())
        from repro.obs import health_summary, render_health
        summary = health_summary(profile.metrics)
        if summary["observed"]:
            print()
            print(render_health(summary))
    if args.trace_out:
        from repro.obs import write_jsonl
        records = (result.to_trace_records() if result is not None
                   else profile.to_records())
        write_jsonl(records, args.trace_out)
        print(f"trace written to {args.trace_out}")


def _report_backend(fact, pl) -> None:
    """One line about which distributed backend actually ran."""
    backend = getattr(fact, "backend", None)
    if backend is None:
        return
    run = fact.run
    secs = getattr(run, "wall_seconds", None)
    clock = (f"{secs * 1e3:.3f} ms wall" if secs is not None
             else f"{run.time * 1e3:.3f} ms virtual")
    line = (f"distributed: backend={backend}, NP={fact.nproc}, "
            f"Version {pl.distribution_version} "
            f"(b={pl.distribution_b}), {clock}")
    if getattr(pl, "schedule", "bulk") != "bulk":
        line += f", schedule={pl.schedule}"
    if fact.fell_back:
        line += f"\n  (multiprocess unavailable: {fact.fallback_reason})"
    solve_route = getattr(fact, "last_solve_backend", "")
    if solve_route:
        sline = f"distributed solve: {solve_route}"
        srun = getattr(fact, "last_solve_run", None)
        swall = getattr(srun, "wall_seconds", None)
        if swall is not None:
            sline += f", {swall * 1e3:.3f} ms wall"
        elif getattr(srun, "makespan", None) is not None:
            sline += f", {srun.makespan * 1e3:.3f} ms virtual"
        reason = getattr(fact, "last_solve_fallback_reason", "")
        if reason:
            sline += f"\n  (distributed solve unavailable: {reason})"
        line += "\n" + sline
    print(line)


def _cmd_factor(args) -> int:
    import repro.engine as engine
    _want_profile(args)
    t = _load_matrix(args.matrix, args.block_size)
    pl = engine.plan(t, representation=args.representation,
                     use_cache=not args.no_cache, cache=args.cache,
                     nproc=args.nproc,
                     distribution_b=args.dist_b, backend=args.backend,
                     schedule=args.schedule, transport=args.transport,
                     precision=args.precision)
    if args.explain:
        print(pl.describe())
    fres = engine.factor(pl)
    fact = fres.factorization
    _report_backend(fact, pl)
    if args.precision != "fp64":
        ran = getattr(fact, "precision", "fp64")
        fd = np.dtype(getattr(fact, "dtype", np.float64)).name
        line = (f"precision: requested {args.precision}, ran {ran} "
                f"(factor dtype {fd})")
        if ran != args.precision:
            line += " — condest admission fell back to fp64"
        print(line)
    if fres.algorithm == "spd-schur":
        d = np.ones(t.order, dtype=np.int8)
        print(f"SPD Cholesky factorization T = RᵀR "
              f"(representation {args.representation})")
        print(f"log det T = {fact.logdet():.6e}")
        r = fact.r
    else:
        r, d = fact.r, fact.d
        print(f"indefinite factorization T ≈ RᵀDR: "
              f"inertia {fact.inertia}, "
              f"{len(fact.perturbations)} perturbation(s), "
              f"{len(fact.interchanges)} interchange(s)")
        if fact.perturbed:
            print("note: factorization is of a nearby matrix; solve "
                  "with iterative refinement (`repro solve`)")
    resid = np.max(np.abs(r.T @ (d.astype(float)[:, None] * r)
                          - t.dense())) if t.order <= 2048 else None
    if resid is not None:
        print(f"max |RᵀDR − T| = {resid:.3e}")
    if args.output:
        np.savez(args.output, r=r, d=d)
        print(f"factor written to {args.output}")
    _emit_profile(args, fres.profile)
    return 0


_METHOD_MESSAGES = {
    "spd-schur": "solved with SPD block Schur factorization T = RᵀR",
    "indefinite+refine": "solved with perturbed RᵀDR + refinement",
    "gko": "solved with GKO Cauchy-like LU (partial pivoting)",
    "gs": "solved by applying the Gohberg–Semencul form of T⁻¹",
    "levinson": "solved with block Levinson recursion",
    "pcg": "solved with preconditioned conjugate gradients",
    "dense-chol": "solved with dense LAPACK Cholesky",
}


def _solve_rhs(args, order: int) -> np.ndarray:
    """The right-hand side: a file (vector or ``n × k`` panel) or a
    synthetic ``--nrhs k`` panel."""
    from repro.errors import InvalidOptionError
    if args.rhs is not None and args.nrhs is not None:
        raise InvalidOptionError(
            "pass either a rhs file or --nrhs, not both")
    if args.rhs is not None:
        return _load_array(args.rhs)
    if args.nrhs is not None:
        if args.nrhs < 1:
            raise InvalidOptionError(
                f"--nrhs must be positive, got {args.nrhs}")
        from repro.utils.rng import default_rng
        return default_rng(0).standard_normal((order, args.nrhs))
    raise InvalidOptionError(
        "solve needs a right-hand side: a rhs file, or --nrhs K for a "
        "synthetic K-column panel")


def _cmd_solve(args) -> int:
    import repro.engine as engine
    _want_profile(args)
    t = _load_matrix(args.matrix, args.block_size)
    b = _solve_rhs(args, t.order)
    pl = engine.plan(
        t, algorithm=None if args.method == "auto" else args.method,
        use_cache=not args.no_cache, cache=args.cache,
        nproc=args.nproc,
        distribution_b=args.dist_b, backend=args.backend,
        schedule=args.schedule, transport=args.transport,
        precision=args.precision)
    if args.explain:
        print(pl.describe())
    res = engine.execute(pl, b)
    if res.algorithm == "spd-schur":
        _report_backend(res.detail, pl)
    x = res.x
    msg = _METHOD_MESSAGES.get(res.algorithm,
                               f"solved with {res.algorithm}")
    if res.algorithm == "indefinite+refine":
        msg += (f": {res.detail.iterations} correction step(s), "
                f"converged={res.detail.converged}")
    elif res.cache_hit:
        msg += " (cached factorization)"
    print(msg)
    from repro.toeplitz.matvec import BlockCirculantEmbedding
    r = BlockCirculantEmbedding(t)(x) - b
    if r.ndim == 1:
        print(f"‖T x − b‖₂ = {float(np.linalg.norm(r)):.3e}")
    else:
        worst = float(np.max(np.linalg.norm(r, axis=0)))
        print(f"panel of {r.shape[1]} right-hand sides; "
              f"worst column ‖T x − b‖₂ = {worst:.3e}")
    if args.profile and res.record is not None:
        rec = res.record
        print(f"panel solve throughput: {rec.nrhs} RHS in "
              f"{rec.wall_seconds * 1e3:.3f} ms → "
              f"{rec.rhs_per_second:.1f} RHS/s"
              + (" (cached factorization)" if rec.cache_hit else ""))
        if rec.precision != "fp64" or rec.refine_sweeps is not None:
            sweeps = ("direct triangular solve"
                      if rec.refine_sweeps is None else
                      f"{rec.refine_sweeps} refinement sweep(s)")
            print(f"precision: {rec.precision} "
                  f"(factor {rec.factor_dtype}), {sweeps}")
    if args.output:
        np.save(args.output, x)
        print(f"solution written to {args.output}")
    else:
        np.set_printoptions(precision=6, suppress=False, threshold=20)
        print(f"x = {x}")
    _emit_profile(args, res.profile, result=res)
    return 0


def _cmd_simulate(args) -> int:
    from repro.parallel import simulate_factorization
    t = _load_matrix(args.matrix, args.block_size)
    run = simulate_factorization(t, nproc=args.nproc, b=args.b,
                                 collect=False,
                                 representation=args.representation,
                                 trace=bool(args.trace_out))
    scheme = "v3" if args.b < 1 else ("v1" if args.b == 1 else "v2")
    print(f"simulated T3D: NP={args.nproc}, b={args.b} ({scheme}), "
          f"m={t.block_size}")
    print(f"time to factor: {run.time * 1e3:.3f} ms (virtual)")
    print("slowest-PE phase breakdown:")
    for k, v in sorted(run.breakdown().items(), key=lambda kv: -kv[1]):
        print(f"  {k:<12} {v * 1e3:9.3f} ms")
    if args.trace_out:
        from repro.obs import write_jsonl
        write_jsonl(run.report.trace.to_records(), args.trace_out)
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_tune(args) -> int:
    from repro.tuning import tune
    t = _load_matrix(args.matrix, args.block_size)
    res = tune(t.order, t.block_size, nproc=args.nproc)
    print(f"problem: n={t.order}, m={t.block_size}, NP={args.nproc}")
    print("recommendation:", res.describe())
    print(res.to_plan(t).describe())
    if res.distribution is not None:
        print("top distribution candidates:")
        seen = set()
        for rep, c in res.candidates:
            key = (rep, c.b)
            if key in seen:
                continue
            seen.add(key)
            print(f"  rep={rep:<4} b={c.b:<6} version {c.version}: "
                  f"{c.seconds * 1e3:9.3f} ms")
            if len(seen) >= 8:
                break
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import SolverService, start_tcp_server
    _want_profile(args)
    t = _load_matrix(args.matrix, args.block_size)
    service = SolverService(max_wait_ms=args.max_wait_ms,
                            max_batch_k=args.max_batch_k,
                            max_queue_depth=args.max_queue_depth,
                            workers=args.workers,
                            adaptive_wait=args.adaptive_wait)
    pl = service.register(args.op, t,
                          representation=args.representation,
                          precision=args.precision,
                          cache=args.cache,
                          warm=not args.no_warm)
    if args.explain:
        print(pl.describe())
    port = 0 if args.selftest else args.port
    handle = start_tcp_server(service, host=args.host, port=port)
    print(f"serving operator {args.op!r} (n={t.order}, "
          f"m={t.block_size}) on {handle.host}:{handle.port} — "
          f"max_wait_ms={args.max_wait_ms:g}, "
          f"max_batch_k={args.max_batch_k}, "
          f"max_queue_depth={args.max_queue_depth}")
    try:
        if args.selftest:
            return _serve_selftest(args, handle, service)
        import time as _time
        while True:  # pragma: no cover - interactive loop
            _time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("shutting down (draining in-flight batches)")
        return 0
    finally:
        handle.close()
        service.close(drain=True)


def _serve_selftest(args, handle, service) -> int:
    """Drive K concurrent requests through the TCP path, then report."""
    import concurrent.futures

    from repro.serve import TCPClient
    from repro.utils.rng import default_rng
    k = args.selftest
    order = service.plan_for(args.op).order
    panel = default_rng(0).standard_normal((order, k))

    def one(j: int):
        with TCPClient(handle.host, handle.port) as client:
            return client.solve(args.op, panel[:, j])

    with concurrent.futures.ThreadPoolExecutor(max_workers=k) as pool:
        responses = list(pool.map(one, range(k)))
    stats = service.stats()
    widths = sorted({r.record.batch_k for r in responses})
    print(f"selftest: {k} concurrent requests → {stats.batches} "
          f"batch(es), mean panel width {stats.mean_batch_k:.1f} "
          f"(widths seen: {widths})")
    print(f"latency p50 {stats.latency_p50_seconds * 1e3:.3f} ms, "
          f"p99 {stats.latency_p99_seconds * 1e3:.3f} ms")
    ok = (stats.completed == k and stats.failed == 0)
    print("selftest " + ("passed" if ok else
                         f"FAILED: {stats.failed} request(s) failed"))
    return 0 if ok else 1


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return (f"{n:.0f} {unit}" if unit == "B"
                    else f"{n:.1f} {unit}")
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def _cache_store(args):
    from repro.engine.cache_store import CacheStore, default_store
    if args.dir:
        return CacheStore(args.dir)
    return default_store()


def _cmd_cache_ls(args) -> int:
    store = _cache_store(args)
    entries = store.entries()
    if not entries:
        print(f"persistent cache at {store.root}: empty")
        return 0
    import time as _time
    now = _time.time()
    print(f"persistent cache at {store.root}:")
    for e in entries:
        age = max(0.0, now - e.created)
        print(f"  {e.digest[:12]}  {e.kind:<17} "
              f"{_fmt_bytes(e.file_bytes):>10}  "
              f"(payload {_fmt_bytes(e.payload_bytes)}, "
              f"age {age / 3600:.1f} h)")
    total = sum(e.file_bytes for e in entries)
    print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
          f"{_fmt_bytes(total)} total")
    return 0


def _cmd_cache_info(args) -> int:
    from repro.errors import InvalidOptionError
    store = _cache_store(args)
    matches = [e for e in store.entries()
               if e.digest.startswith(args.digest)]
    if not matches:
        raise InvalidOptionError(
            f"no cache entry matches digest prefix {args.digest!r} "
            f"under {store.root}")
    for e in matches:
        print(f"entry {e.digest}")
        print(f"  path        {e.path}")
        print(f"  kind        {e.kind}")
        print(f"  file size   {_fmt_bytes(e.file_bytes)}")
        print(f"  payload     {_fmt_bytes(e.payload_bytes)}")
        print(f"  stamp       {e.stamp}")
        if e.describe:
            for k, v in sorted(e.describe.items()):
                print(f"  {k:<11} {v}")
        if e.key:
            print(f"  key         {e.key}")
    return 0


def _cmd_cache_prune(args) -> int:
    from repro.errors import InvalidOptionError
    if args.max_bytes is None and args.max_age is None:
        raise InvalidOptionError(
            "prune needs a budget: --max-bytes and/or --max-age")
    store = _cache_store(args)
    removed = store.prune(max_bytes=args.max_bytes,
                          max_age_seconds=args.max_age)
    stats = store.stats()
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}; "
          f"{stats.entries} left ({_fmt_bytes(stats.disk_bytes)})")
    return 0


def _cmd_cache_clear(args) -> int:
    store = _cache_store(args)
    removed = store.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {store.root}")
    return 0


def _cmd_cache_warm(args) -> int:
    import repro.engine as engine
    store = _cache_store(args)
    t = _load_matrix(args.matrix, args.block_size)
    pl = engine.plan(
        t, algorithm=None if args.method == "auto" else args.method,
        representation=args.representation, precision=args.precision,
        cache="persistent")
    fres = engine.factor(pl, store=store)
    path = store.path_for(pl.cache_key())
    if fres.cache_hit:
        print(f"already warm: {pl.algorithm} factorization for "
              f"fingerprint {pl.fingerprint[:12]}… is cached")
    else:
        print(f"factored with {fres.algorithm} and published to "
              f"{path}")
    stats = store.stats()
    print(f"store now holds {stats.entries} entr"
          f"{'y' if stats.entries == 1 else 'ies'} "
          f"({_fmt_bytes(stats.disk_bytes)})")
    return 0


def _cmd_bench_info(_args) -> int:
    rows = [
        ("Figure 6 / Exp 1", "bench_fig6_exp1.py",
         "4096 point Toeplitz, NP=16, time vs b"),
        ("Figure 7 / Exp 2", "bench_fig7_exp2.py",
         "m=8, NP=64, all three distribution schemes"),
        ("Figure 8 / Exp 3", "bench_fig8_exp3.py",
         "m=32, NP=64, Version-3 spreads"),
        ("Figure 9", "bench_fig9_blocksize.py",
         "m=2 vs m=4 crossover over NP"),
        ("Figure 10", "bench_fig10_ymp.py",
         "performance vs m_s (real + Y-MP model)"),
        ("§8.2 example", "bench_section8_refinement.py",
         "eq.-50 matrix, perturbation + refinement"),
        ("eqs. 25–32", "bench_flop_models.py",
         "blocking/application flop tables"),
        ("§6.3 volume", "bench_comm_volume.py",
         "representation message volumes"),
        ("§8.1 comparator", "bench_refinement_vs_pcg.py",
         "refinement vs preconditioned CG"),
        ("eq. 45 ablation", "bench_delta_ablation.py",
         "perturbation size sweep"),
        ("ablations", "bench_representations.py / bench_real_blocksize.py",
         "representation / panel / m_s wall-clock"),
        ("complexity", "bench_solver_comparison.py",
         "structured O(n²) vs dense O(n³)"),
    ]
    width = max(len(r[0]) for r in rows)
    w2 = max(len(r[1]) for r in rows)
    for name, bench, desc in rows:
        print(f"{name:<{width}}  {bench:<{w2}}  {desc}")
    print("\nrun: pytest benchmarks/ --benchmark-only "
          "[REPRO_BENCH_FULL=1 for paper sizes]")
    return 0


def _trace_input(paths) -> list[dict]:
    """Load one JSONL trace, or merge several per-rank files."""
    from repro.obs import merge_rank_traces, read_jsonl
    if len(paths) == 1:
        return read_jsonl(paths[0])
    return merge_rank_traces(paths)


def _cmd_trace_report(args) -> int:
    import json as _json

    from repro.obs import analyze_records
    report = analyze_records(_trace_input(args.trace))
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_trace_timeline(args) -> int:
    from repro.obs import write_chrome_trace
    write_chrome_trace(_trace_input(args.trace), args.output)
    print(f"chrome trace written to {args.output} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_bench_ingest(args) -> int:
    from repro.bench import history
    results = history.load_results(args.results_dir)
    if not results:
        print("no BENCH_*.json results found", file=sys.stderr)
        return 1
    path = args.history or history.history_path(args.results_dir)
    count = history.append_history(results, args.label, path)
    print(f"ingested {len(results)} benchmark(s), {count} metric(s) "
          f"into {path} as run {args.label!r}")
    return 0


def _cmd_bench_diff(args) -> int:
    from repro.bench import history
    results = history.load_results(args.results_dir)
    path = args.history or history.history_path(args.results_dir)
    baseline = history.load_baseline(path)
    threshold = (args.threshold if args.threshold is not None
                 else history.DEFAULT_THRESHOLD)
    entries = history.diff_results(results, baseline,
                                   threshold=threshold)
    print(history.render_diff(entries, show_all=args.show_all))
    return 1 if any(e.regression for e in entries) else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Block Schur solvers for (block) Toeplitz systems "
                    "(ICPP'94 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_matrix_args(p):
        p.add_argument("matrix", help="matrix file (.npy/.npz/.txt)")
        p.add_argument("--block-size", type=int, default=None,
                       help="block size m (required for dense input; "
                            "optional regrouping for first-row input)")

    p = sub.add_parser("info", help="structure report")
    add_matrix_args(p)
    p.set_defaults(func=_cmd_info)

    def add_engine_args(p):
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the factorization cache")
        p.add_argument("--cache", default=None,
                       choices=["memory", "persistent", "off"],
                       help="cache tiering: in-process LRU only, LRU "
                            "backed by the on-disk store (REPRO_CACHE_DIR"
                            " or ~/.cache/repro), or none; overrides "
                            "--no-cache when given")
        p.add_argument("--explain", action="store_true",
                       help="print the solver plan before running it")
        p.add_argument("--profile", action="store_true",
                       help="enable observability and print the span "
                            "tree + metrics table after the run")
        p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the execution trace as JSON lines "
                            "(implies observability)")
        p.add_argument("--nproc", type=int, default=None,
                       help="run the factorization distributed over NP "
                            "PEs")
        p.add_argument("--backend", default="simulated",
                       choices=["simulated", "multiprocess"],
                       help="distributed backend (with --nproc > 1): "
                            "the discrete-event T3D model or real "
                            "worker processes; multiprocess falls back "
                            "to simulated when unavailable")
        p.add_argument("--dist-b", type=float, default=None,
                       dest="dist_b", metavar="B",
                       help="distribution parameter b (b≥1: Versions "
                            "1/2; b<1 ⇒ Version 3)")
        p.add_argument("--schedule", default="bulk",
                       choices=["bulk", "lookahead"],
                       help="distributed per-step schedule: the "
                            "barrier-synchronized bulk loop, or the "
                            "Section-7 lookahead pipeline (Version 1, "
                            "NP ≥ 2) that overlaps the serial "
                            "generator build with application work")
        p.add_argument("--transport", default="shared_memory",
                       help="named transport the multiprocess "
                            "backend's shared segments run over "
                            "(default: shared_memory)")
        p.add_argument("--precision", default="fp64",
                       choices=["fp64", "fp32", "mixed"],
                       help="factorization working precision; fp32/"
                            "mixed factor reduced and recover fp64 via "
                            "refinement (distributed plans factor at "
                            "fp64)")

    p = sub.add_parser("factor", help="factor the matrix")
    add_matrix_args(p)
    p.add_argument("--representation", default="vy2",
                   choices=["vy1", "vy2", "yty", "unblocked", "dense"])
    add_engine_args(p)
    p.add_argument("-o", "--output", help="write factor to .npz")
    p.set_defaults(func=_cmd_factor)

    p = sub.add_parser("solve", help="solve T x = b")
    add_matrix_args(p)
    p.add_argument("rhs", nargs="?", default=None,
                   help="right-hand side file — 1-D (single solve) or "
                        "2-D n×k (batched panel solve); omit with "
                        "--nrhs for a synthetic panel")
    p.add_argument("--nrhs", type=int, default=None, metavar="K",
                   help="solve against a synthetic K-column Gaussian "
                        "panel (seeded; alternative to a rhs file)")
    p.add_argument("--method", default="auto",
                   choices=["auto", "spd-schur", "indefinite+refine",
                            "gko", "gs", "levinson", "pcg",
                            "dense-chol"])
    add_engine_args(p)
    p.add_argument("-o", "--output", help="write solution to .npy")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("simulate",
                       help="factor on the simulated T3D")
    add_matrix_args(p)
    p.add_argument("--nproc", type=int, required=True)
    p.add_argument("--b", type=float, default=1.0,
                   help="distribution parameter (b<1 ⇒ Version 3)")
    p.add_argument("--representation", default="vy2",
                   choices=["vy1", "vy2", "yty"])
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write the simulated per-PE event trace as "
                        "JSON lines (same schema as solve --trace-out)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("tune", help="recommend a configuration")
    add_matrix_args(p)
    p.add_argument("--nproc", type=int, default=1)
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("trace",
                       help="analyze / export recorded JSONL traces")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    pt = tsub.add_parser(
        "report",
        help="critical path, per-rank utilization/imbalance, and "
             "achieved-vs-modeled flop efficiency")
    pt.add_argument("trace", nargs="+",
                    help="JSONL trace file(s) from --trace-out; "
                         "several files merge time-ordered")
    pt.add_argument("--json", action="store_true",
                    help="emit the report as JSON instead of text")
    pt.set_defaults(func=_cmd_trace_report)
    pt = tsub.add_parser(
        "timeline",
        help="export to Chrome trace-event JSON "
             "(chrome://tracing / Perfetto)")
    pt.add_argument("trace", nargs="+",
                    help="JSONL trace file(s); several files merge "
                         "time-ordered")
    pt.add_argument("-o", "--output", required=True,
                    help="output .json path for the Chrome trace")
    pt.set_defaults(func=_cmd_trace_timeline)

    p = sub.add_parser("bench",
                       help="benchmark history and regression diffing")
    bsub = p.add_subparsers(dest="bench_command", required=True)
    pb = bsub.add_parser(
        "ingest",
        help="append current BENCH_*.json results to the history "
             "baseline")
    pb.add_argument("--results-dir", default=None,
                    help="directory holding BENCH_*.json "
                         "(default benchmarks/results)")
    pb.add_argument("--history", default=None,
                    help="history JSONL path "
                         "(default <results-dir>/BENCH_history.jsonl)")
    pb.add_argument("--label", default="current",
                    help="run label recorded on every ingested metric")
    pb.set_defaults(func=_cmd_bench_ingest)
    pb = bsub.add_parser(
        "diff",
        help="diff current BENCH_*.json against the baseline; exits "
             "nonzero on regression")
    pb.add_argument("--results-dir", default=None)
    pb.add_argument("--history", default=None)
    pb.add_argument("--threshold", type=float, default=None,
                    help="relative regression threshold for gated "
                         "metrics (default 0.15)")
    pb.add_argument("--all", action="store_true", dest="show_all",
                    help="show every compared metric, not just "
                         "regressions")
    pb.set_defaults(func=_cmd_bench_diff)

    p = sub.add_parser(
        "cache",
        help="inspect and manage the persistent factorization store")
    csub = p.add_subparsers(dest="cache_command", required=True)

    def add_dir_arg(pc):
        pc.add_argument("--dir", default=None, metavar="DIR",
                        help="store root (default: REPRO_CACHE_DIR or "
                             "~/.cache/repro/factorizations)")

    pc = csub.add_parser("ls", help="list cached entries")
    add_dir_arg(pc)
    pc.set_defaults(func=_cmd_cache_ls)
    pc = csub.add_parser("info",
                         help="show one entry's metadata and key")
    pc.add_argument("digest", help="entry digest (prefix accepted)")
    add_dir_arg(pc)
    pc.set_defaults(func=_cmd_cache_info)
    pc = csub.add_parser(
        "prune",
        help="evict oldest entries past a size and/or age budget")
    pc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="keep total store size at or under N bytes")
    pc.add_argument("--max-age", type=float, default=None, metavar="S",
                    help="drop entries older than S seconds")
    add_dir_arg(pc)
    pc.set_defaults(func=_cmd_cache_prune)
    pc = csub.add_parser("clear",
                         help="remove every entry (quarantine too)")
    add_dir_arg(pc)
    pc.set_defaults(func=_cmd_cache_clear)
    pc = csub.add_parser(
        "warm",
        help="factor a matrix into the store so later runs start warm")
    add_matrix_args(pc)
    pc.add_argument("--representation", default="vy2",
                    choices=["vy1", "vy2", "yty", "unblocked", "dense"])
    pc.add_argument("--precision", default="fp64",
                    choices=["fp64", "fp32", "mixed"])
    pc.add_argument("--method", default="auto",
                    choices=["auto", "spd-schur", "indefinite+refine",
                             "gko", "gs", "levinson", "pcg",
                             "dense-chol"])
    add_dir_arg(pc)
    pc.set_defaults(func=_cmd_cache_warm)

    p = sub.add_parser(
        "serve",
        help="run the matrix as a coalescing solver service over TCP")
    add_matrix_args(p)
    p.add_argument("--op", default="default", metavar="NAME",
                   help="operator name requests address "
                        "(default: 'default')")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8571,
                   help="TCP port (0 picks a free one; default 8571)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   metavar="MS",
                   help="latency budget: longest a request waits for "
                        "batch-mates before its panel dispatches")
    p.add_argument("--adaptive-wait", action="store_true",
                   help="adapt the wait budget to traffic: decay toward "
                        "0 while the queue is empty, grow back toward "
                        "--max-wait-ms under sustained load")
    p.add_argument("--max-batch-k", type=int, default=32, metavar="K",
                   help="panel-width cap per coalesced batch")
    p.add_argument("--max-queue-depth", type=int, default=256,
                   metavar="N",
                   help="admission bound; submits past it fast-fail "
                        "with ServiceOverloadError")
    p.add_argument("--workers", type=int, default=2,
                   help="threads executing dispatched batches")
    p.add_argument("--representation", default="vy2",
                   choices=["vy1", "vy2", "yty", "unblocked", "dense"])
    p.add_argument("--precision", default="fp64",
                   choices=["fp64", "fp32", "mixed"])
    p.add_argument("--cache", default=None,
                   choices=["memory", "persistent", "off"],
                   help="cache tiering for the served plan; "
                        "'persistent' warms from the on-disk store at "
                        "startup and publishes fresh factorizations "
                        "back for the next restart")
    p.add_argument("--no-warm", action="store_true",
                   help="skip prepaying the factorization at startup")
    p.add_argument("--explain", action="store_true",
                   help="print the solver plan before serving")
    p.add_argument("--profile", action="store_true",
                   help="enable observability (service metrics become "
                        "available via the 'metrics' command)")
    p.add_argument("--selftest", type=int, default=None, metavar="K",
                   help="start on an ephemeral port, drive K "
                        "concurrent TCP requests, print coalescing "
                        "stats, exit")
    p.set_defaults(func=_cmd_serve, trace_out=None)

    p = sub.add_parser("bench-info",
                       help="list paper artifacts and their benches")
    p.set_defaults(func=_cmd_bench_info)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
