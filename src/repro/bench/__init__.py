"""Shared helpers for the benchmark harness (table formatting, sizing)."""

from repro.bench.tables import (
    format_table,
    format_series,
    write_result,
    write_json_result,
)
from repro.bench.runner import bench_scale, full_scale
from repro.bench.plots import ascii_plot

__all__ = ["format_table", "format_series", "write_result",
           "write_json_result", "bench_scale", "full_scale", "ascii_plot"]
