"""Shared helpers for the benchmark harness (table formatting, sizing)."""

from repro.bench.tables import (
    format_table,
    format_series,
    write_result,
    write_json_result,
)
from repro.bench.runner import bench_scale, full_scale
from repro.bench.plots import ascii_plot
from repro.bench.history import (
    append_history,
    diff_results,
    flatten_metrics,
    load_baseline,
    load_results,
    render_diff,
)

__all__ = ["format_table", "format_series", "write_result",
           "write_json_result", "bench_scale", "full_scale", "ascii_plot",
           "append_history", "diff_results", "flatten_metrics",
           "load_baseline", "load_results", "render_diff"]
