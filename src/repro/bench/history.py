"""Benchmark history: ingest ``BENCH_*.json`` runs, diff vs baseline.

The benchmark harness has been writing machine-readable
``benchmarks/results/BENCH_<name>.json`` artifacts since PR 2, but the
perf trajectory was write-only — nothing compared one run against the
last.  This module closes the loop:

* :func:`flatten_metrics` — turn a nested benchmark payload into flat
  dot-path numeric metrics (``timings.speedup``,
  ``cells.3.speedup_vs_serial``);
* :func:`append_history` — append one versioned line per metric to
  ``BENCH_history.jsonl`` (the committed baseline file);
* :func:`diff_results` — compare the current ``BENCH_*.json`` set
  against the latest baseline run with per-metric direction +
  threshold rules, flagging regressions.

Direction rules are keyed on the metric leaf name: throughput-style
metrics (``speedup``, ``rhs_per_second``, ``hits``) regress when they
*drop* more than the threshold; deterministic cost counters
(``misses``, ``evictions``, ``*_words_total``) regress when they
*rise*.  Raw wall-clock metrics (``*_seconds``, ``*_overhead_pct``)
are reported but never gated — CI machines are too noisy for absolute
time comparisons, while speedup *ratios* and exact counts are stable.

The CLI surface is ``repro bench ingest`` / ``repro bench diff``
(nonzero exit on regression), wired into CI against the committed
baseline.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass

from repro.bench.tables import _results_dir

__all__ = [
    "HISTORY_VERSION",
    "DEFAULT_THRESHOLD",
    "DiffEntry",
    "flatten_metrics",
    "load_results",
    "append_history",
    "load_baseline",
    "diff_results",
    "render_diff",
    "history_path",
]

HISTORY_VERSION = 1

#: Default relative-change threshold for gated metrics (15%): an
#: injected 20% regression flags, benchmark jitter below does not.
DEFAULT_THRESHOLD = 0.15

#: Metric leaf names where *lower* is a regression (throughput-style).
_HIGHER_BETTER = ("speedup", "rhs_per_second", "mflops", "hits")

#: Metric leaf names where *higher* is a regression — deterministic
#: algorithmic cost counters, so the gate can be tight.
_LOWER_BETTER = ("misses", "evictions", "words", "messages",
                 "solve_calls", "solve_columns", "refine_sweeps")

#: Leaf-name fragments that are machine-noise dominated: recorded in
#: the history, shown in the diff, never gated.
_INFORMATIONAL = ("seconds", "overhead", "bytes", "flops", "err",
                  "residual")


def history_path(directory: str | None = None) -> str:
    """Default location of the baseline: ``benchmarks/results/``."""
    return os.path.join(_results_dir(directory), "BENCH_history.jsonl")


def _direction(metric: str) -> str:
    """``"higher"`` / ``"lower"`` (gated) or ``"info"`` (not gated)."""
    leaf = metric.rsplit(".", 1)[-1]
    for frag in _INFORMATIONAL:
        if frag in leaf:
            return "info"
    for frag in _HIGHER_BETTER:
        if frag in leaf:
            return "higher"
    for frag in _LOWER_BETTER:
        if frag in leaf:
            return "lower"
    return "info"


def flatten_metrics(payload, prefix: str = "") -> dict[str, float]:
    """Flat ``{dot.path: value}`` of every numeric leaf in ``payload``.

    Lists index positionally (benchmark cell order is deterministic);
    booleans and strings are skipped — only quantities diff.
    """
    out: dict[str, float] = {}
    if isinstance(payload, bool):
        return out
    if isinstance(payload, (int, float)):
        out[prefix] = float(payload)
        return out
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(payload[key], path))
    elif isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            path = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten_metrics(item, path))
    return out


def load_results(directory: str | None = None) -> dict[str, dict]:
    """Read every ``BENCH_<name>.json`` under the results directory."""
    directory = _results_dir(directory)
    results: dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, "r", encoding="utf-8") as fh:
            results[name] = json.load(fh)
    return results


def append_history(results: dict[str, dict], label: str,
                   path: str | None = None) -> int:
    """Append one line per metric for run ``label``; returns the count.

    Every line is self-describing:
    ``{"v": 1, "run": label, "bench": name, "metric": path,
    "value": v}`` — so the baseline file stays greppable and a future
    schema bump can coexist with old lines.
    """
    path = path or history_path()
    count = 0
    with open(path, "a", encoding="utf-8") as fh:
        for bench in sorted(results):
            for metric, value in flatten_metrics(results[bench]).items():
                fh.write(json.dumps({
                    "v": HISTORY_VERSION, "run": label, "bench": bench,
                    "metric": metric, "value": value,
                }, sort_keys=True) + "\n")
                count += 1
    return count


def load_baseline(path: str | None = None
                  ) -> dict[tuple[str, str], float]:
    """Latest value per (bench, metric) from the history file.

    Later runs overwrite earlier ones, so the baseline is always the
    most recent ingested state.
    """
    path = path or history_path()
    baseline: dict[tuple[str, str], float] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("v") != HISTORY_VERSION:
                raise ValueError(
                    f"unsupported history version {rec.get('v')!r} "
                    f"in {path}")
            baseline[(rec["bench"], rec["metric"])] = float(rec["value"])
    return baseline


@dataclass(frozen=True)
class DiffEntry:
    """One metric compared against its baseline."""

    bench: str
    metric: str
    baseline: float
    current: float
    direction: str          #: "higher" / "lower" / "info"
    change: float | None    #: relative change (None when baseline = 0)
    regression: bool

    @property
    def label(self) -> str:
        return f"{self.bench}:{self.metric}"


def diff_results(results: dict[str, dict],
                 baseline: dict[tuple[str, str], float], *,
                 threshold: float = DEFAULT_THRESHOLD
                 ) -> list[DiffEntry]:
    """Compare current results against the baseline.

    Only metrics present on both sides diff (new benchmarks are not
    regressions, removed ones are caught by the ingest step's count).
    A gated metric regresses when it moves against its direction by
    more than ``threshold`` (relative); a lower-is-better metric with
    a zero baseline regresses on any nonzero value.
    """
    entries: list[DiffEntry] = []
    for bench in sorted(results):
        for metric, value in flatten_metrics(results[bench]).items():
            base = baseline.get((bench, metric))
            if base is None:
                continue
            direction = _direction(metric)
            change = (value - base) / abs(base) if base != 0.0 else None
            regression = False
            if direction == "higher" and base != 0.0:
                regression = value < base * (1.0 - threshold)
            elif direction == "lower":
                if base == 0.0:
                    regression = value > 0.0
                else:
                    regression = value > base * (1.0 + threshold)
            entries.append(DiffEntry(
                bench=bench, metric=metric, baseline=base,
                current=value, direction=direction, change=change,
                regression=regression))
    return entries


def render_diff(entries: list[DiffEntry], *,
                show_all: bool = False) -> str:
    """Human-readable diff: regressions always, the rest on request."""
    regressions = [e for e in entries if e.regression]
    gated = [e for e in entries if e.direction != "info"]
    lines = [f"bench diff: {len(entries)} metrics compared, "
             f"{len(gated)} gated, {len(regressions)} regression(s)"]
    shown = entries if show_all else regressions
    for e in shown:
        delta = (f"{e.change:+.1%}" if e.change is not None
                 else f"{e.current:+.3g} from 0")
        mark = "REGRESSION" if e.regression else (
            e.direction if e.direction != "info" else "info")
        lines.append(f"  [{mark}] {e.label}: {e.baseline:.6g} -> "
                     f"{e.current:.6g} ({delta})")
    if not shown and not show_all:
        lines.append("  all gated metrics within threshold")
    return "\n".join(lines)
