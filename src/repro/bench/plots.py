"""ASCII charts for the benchmark outputs.

The paper's evaluation is figures; the harness renders each regenerated
series as a terminal plot next to the numeric table so the shape (falls,
optima, crossovers) is visible at a glance in ``benchmarks/results/``.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_plot"]

_MARKS = "ox+*#@%&"


def _fmt(v: float) -> str:
    return f"{v:.3g}"


def ascii_plot(xs: Sequence[float], series: dict[str, Sequence[float]],
               *, width: int = 64, height: int = 16,
               logy: bool = False, title: str | None = None,
               x_label: str = "x") -> str:
    """Render series as a character-grid scatter/line chart.

    ``xs`` are placed at even horizontal spacing (category axis — the
    benches sweep log-spaced parameters), values on a linear or log
    vertical axis.
    """
    xs = list(xs)
    if not xs or not series:
        return "(no data)"
    vals = [v for s in series.values() for v in s
            if v is not None and not math.isnan(v)]
    if not vals:
        return "(no data)"
    lo, hi = min(vals), max(vals)
    if logy:
        if lo <= 0:
            raise ValueError("logy requires positive values")
        lo, hi = math.log10(lo), math.log10(hi)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def put(col, row, ch):
        if 0 <= col < width and 0 <= row < height:
            grid[row][col] = ch

    n = len(xs)
    for si, (name, ys) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        last = None
        for i, y in enumerate(ys):
            if y is None or math.isnan(y):
                last = None
                continue
            yv = math.log10(y) if logy else y
            col = int(i / max(n - 1, 1) * (width - 1))
            row = height - 1 - int((yv - lo) / (hi - lo) * (height - 1))
            # connect to the previous point with a sparse line
            if last is not None:
                c0, r0 = last
                steps = max(abs(col - c0), abs(row - r0))
                for s in range(1, steps):
                    put(c0 + (col - c0) * s // steps,
                        r0 + (row - r0) * s // steps, "·")
            put(col, row, mark)
            last = (col, row)

    top = 10 ** hi if logy else hi
    bot = 10 ** lo if logy else lo
    lines = []
    if title:
        lines.append(title)
    axis_w = max(len(_fmt(top)), len(_fmt(bot)))
    for r, rowchars in enumerate(grid):
        label = ""
        if r == 0:
            label = _fmt(top)
        elif r == height - 1:
            label = _fmt(bot)
        lines.append(f"{label:>{axis_w}} |" + "".join(rowchars))
    lines.append(" " * axis_w + " +" + "-" * width)
    ticks = " " * (axis_w + 2)
    tick_line = list(ticks + " " * width)
    for i, x in enumerate(xs):
        col = axis_w + 2 + int(i / max(n - 1, 1) * (width - 1))
        s = _fmt(float(x)) if isinstance(x, (int, float)) else str(x)
        for j, ch in enumerate(s):
            if col + j < len(tick_line):
                tick_line[col + j] = ch
    lines.append("".join(tick_line) + f"   [{x_label}]")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * (axis_w + 2) + legend)
    return "\n".join(lines)
