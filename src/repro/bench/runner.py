"""Benchmark sizing: quick (CI-friendly) versus full (paper-scale) runs.

The paper's T3D experiments use ``n = 4096``; simulating those takes tens
of seconds per data point.  By default the harness runs a scaled-down but
shape-preserving configuration; set ``REPRO_BENCH_FULL=1`` to reproduce
the exact paper sizes.
"""

from __future__ import annotations

import os

__all__ = ["full_scale", "bench_scale"]


def full_scale() -> bool:
    """True when the harness should run exact paper-scale experiments."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def bench_scale(quick: int, full: int) -> int:
    """Pick the quick or full value of a size parameter."""
    return full if full_scale() else quick
