"""Plain-text table/series formatting for the benchmark harness.

Every reproduction bench prints the rows/series the paper's table or
figure reports and mirrors them to ``benchmarks/results/<name>.txt`` so
the output survives pytest's capture.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

__all__ = ["format_table", "format_series", "write_result",
           "write_json_result"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.6g}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, xs: Sequence, series: dict[str, Sequence],
                  title: str | None = None) -> str:
    """A figure as a table: one x column, one column per series."""
    headers = [x_label] + list(series.keys())
    rows = [[x] + [series[k][i] for k in series] for i, x in enumerate(xs)]
    return format_table(headers, rows, title=title)


def _results_dir(directory: str | None) -> str:
    if directory is None:
        directory = os.environ.get(
            "REPRO_RESULTS_DIR",
            os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks", "results"))
    os.makedirs(directory, exist_ok=True)
    return directory


def write_result(name: str, text: str, *, directory: str | None = None,
                 echo: bool = True) -> str:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    directory = _results_dir(directory)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    if echo:
        print("\n" + text)
        print(f"[written to {path}]")
    return path


def write_json_result(name: str, payload: dict, *,
                      directory: str | None = None,
                      echo: bool = True) -> str:
    """Persist a machine-readable benchmark record.

    Written as ``benchmarks/results/BENCH_<name>.json`` next to the
    human-readable ``<name>.txt``, so the perf trajectory (timings,
    flops, cache statistics) can be diffed and plotted PR-over-PR.
    """
    directory = _results_dir(directory)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    if echo:
        print(f"[json written to {path}]")
    return path
