"""Generator matrices and displacement structure (Section 2).

The displacement of a block Toeplitz matrix ``T − ZᵀTZ`` (with ``Z`` the
block right-shift, eq. 3) has rank at most ``2m`` (eq. 4) and factors as

    ``T − ZᵀTZ = Genᵀ · diag(Σ, −Σ) · Gen``          (eqs. 9–10)

with the compact ``2m × mp`` generator

    ``Gen = [[T_1, T_2, …, T_p], [0, T_2, …, T_p]]``,   ``T_j = (L_1Σ)⁻¹ T̂_j``

where ``T̂_1 = L_1 Σ L_1ᵀ`` is the signed Cholesky factorization of the
diagonal block (``Σ = I`` in the SPD case).  The Schur algorithm
triangularizes this generator with block hyperbolic Householder
transformations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.blas import primitives as blas
from repro.core.signature import block_schur_signature, signature_vector
from repro.errors import (
    NotPositiveDefiniteError,
    ShapeError,
    SingularMinorError,
)
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.lintools import solve_lower_triangular

__all__ = [
    "Generator",
    "spd_generator",
    "indefinite_generator",
    "signed_cholesky",
    "displacement",
    "block_shift_matrix",
    "generator_to_full",
]


@dataclass
class Generator:
    """Compact generator of a symmetric block Toeplitz matrix.

    Attributes
    ----------
    gen : (2m, mp) array
        Rows ``0:m`` hold ``[T_1 … T_p]``; rows ``m:2m`` hold
        ``[0 T_2 … T_p]``.
    w : (2m,) ±1 array
        Window signature ``diag(Σ, −Σ)``.
    sigma : (m,) ±1 array
        Signature of the diagonal block factorization (``+1``s when SPD).
    block_size : int
    num_blocks : int
    """

    gen: np.ndarray
    w: np.ndarray
    sigma: np.ndarray
    block_size: int
    num_blocks: int

    def copy(self) -> "Generator":
        """Deep copy (the factorizations mutate their working copy)."""
        return Generator(np.array(self.gen), self.w.copy(),
                         self.sigma.copy(), self.block_size, self.num_blocks)

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the generator entries (signatures stay int8)."""
        return self.gen.dtype

    def astype(self, dtype) -> "Generator":
        """Copy with ``gen`` cast to ``dtype``.

        The generator is always *built* in float64 (Cholesky of the
        diagonal block, triangular solves); a reduced-precision
        factorization rounds it once here before elimination starts, so
        the rounding happens to well-scaled data rather than inside the
        hyperbolic recurrences.
        """
        return Generator(np.array(self.gen, dtype=dtype), self.w.copy(),
                         self.sigma.copy(), self.block_size, self.num_blocks)


def signed_cholesky(a: np.ndarray, *,
                    singular_tol: float = 1e-13
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Factor a symmetric matrix as ``A = L Σ Lᵀ`` with diagonal ``Σ = ±1``.

    This is the unpivoted LDLᵀ with ``|D|`` folded into ``L``; it exists
    exactly when every leading principal submatrix of ``A`` is nonsingular
    (the paper's standing assumption for the diagonal block).  Raises
    :class:`~repro.errors.SingularMinorError` otherwise.
    """
    a = np.asarray(a, dtype=np.float64)
    m = a.shape[0]
    if a.shape != (m, m):
        raise ShapeError(f"expected a square block, got shape {a.shape}")
    scale = float(np.max(np.abs(a))) or 1.0
    l = np.zeros((m, m))
    d = np.zeros(m)
    for k in range(m):
        lk = l[k, :k]
        dk = a[k, k] - np.dot(lk * d[:k], lk)
        if abs(dk) <= singular_tol * scale:
            raise SingularMinorError(
                f"leading principal minor {k + 1} of the diagonal block is "
                f"numerically singular (pivot {dk:.3e})", step=k)
        d[k] = dk
        l[k, k] = 1.0
        if k + 1 < m:
            rest = a[k + 1:, k] - l[k + 1:, :k] @ (d[:k] * lk)
            l[k + 1:, k] = rest / dk
    sigma = np.where(d > 0, 1, -1).astype(np.int8)
    l_signed = l * np.sqrt(np.abs(d))[None, :]
    blas.charge(m ** 3 // 3, "potrf")
    return l_signed, sigma


def spd_generator(t: SymmetricBlockToeplitz, *,
                  dtype=np.float64) -> Generator:
    """Generator of an SPD block Toeplitz matrix (eq. 21).

    The ``m × m`` Cholesky of the diagonal block always runs in double;
    ``dtype`` selects the precision of the ``O(m²·mp)`` scaling solve
    that dominates the build — a float32 plan runs it as ``strsm`` (its
    rounding is the same ``ε₃₂`` the elimination adds anyway).

    Raises :class:`~repro.errors.NotPositiveDefiniteError` when the
    diagonal block ``T̂_1`` is not positive definite (a necessary condition
    for positive definiteness of ``T``).
    """
    m, p = t.block_size, t.num_blocks
    t1 = np.array(t.top_blocks[0])
    try:
        l1 = sla.cholesky(t1, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            "diagonal block T̂_1 is not positive definite") from exc
    blas.charge(m ** 3 // 3, "potrf")
    wd = np.dtype(dtype)
    strip = t.row_strip(m)  # [T̂_1 T̂_2 … T̂_p], shape m × mp
    if wd != np.float64:
        l1 = l1.astype(wd)
        strip = strip.astype(wd)
    tj = solve_lower_triangular(l1, strip)
    blas.charge(m * m * (m * p), "trsm", tj.dtype.name)
    gen = np.zeros((2 * m, m * p), dtype=wd)
    gen[:m] = tj
    gen[m:, m:] = tj[:, m:]
    return Generator(gen, block_schur_signature(m), np.ones(m, dtype=np.int8),
                     m, p)


def indefinite_generator(t: SymmetricBlockToeplitz, *,
                         singular_tol: float = 1e-13,
                         dtype=np.float64) -> Generator:
    """Generator for the symmetric indefinite case (eq. 11).

    Uses the signed Cholesky ``T̂_1 = L_1 Σ L_1ᵀ`` and
    ``T_j = (L_1 Σ)⁻¹ T̂_j = Σ L_1⁻¹ T̂_j``; the window signature becomes
    ``diag(Σ, −Σ)``.  As in :func:`spd_generator`, ``dtype`` selects the
    precision of the scaling solve (the signed Cholesky stays double).
    """
    m, p = t.block_size, t.num_blocks
    l1, sigma = signed_cholesky(np.array(t.top_blocks[0]),
                                singular_tol=singular_tol)
    wd = np.dtype(dtype)
    strip = t.row_strip(m)
    if wd != np.float64:
        l1 = l1.astype(wd)
        strip = strip.astype(wd)
    tj = solve_lower_triangular(l1, strip)
    blas.charge(m * m * (m * p), "trsm", tj.dtype.name)
    tj = sigma.astype(wd)[:, None] * tj
    gen = np.zeros((2 * m, m * p), dtype=wd)
    gen[:m] = tj
    gen[m:, m:] = tj[:, m:]
    return Generator(gen, block_schur_signature(m, sigma), sigma, m, p)


def block_shift_matrix(m: int, p: int) -> np.ndarray:
    """The block right-shift ``Z`` of eq. (3) (dense, for tests)."""
    n = m * p
    z = np.zeros((n, n))
    for i in range(p - 1):
        z[i * m:(i + 1) * m, (i + 1) * m:(i + 2) * m] = np.eye(m)
    return z


def displacement(t: SymmetricBlockToeplitz) -> np.ndarray:
    """Dense displacement ``T − ZᵀTZ`` (eq. 4) — test/diagnostic helper."""
    dense = t.dense()
    m, p = t.block_size, t.num_blocks
    out = np.array(dense)
    # ZᵀTZ shifts T down-right by one block row/column.
    out[m:, m:] -= dense[:-m, :-m]
    return out


def generator_to_full(g: Generator) -> tuple[np.ndarray, np.ndarray]:
    """Expand the compact generator into the full ``(G, W_mp)`` of eq. (7).

    ``G`` stacks the two upper-triangular block Toeplitz matrices
    ``G_1`` (from row block 1) and ``G_2`` (from row block 2); the
    signature is ``W_mp = diag(I_p ⊗ Σ, −I_p ⊗ Σ)``.  Satisfies
    ``T = Gᵀ W_mp G`` (eq. 6) — used by tests and the error analysis.
    """
    m, p = g.block_size, g.num_blocks
    n = m * p
    g1 = np.zeros((n, n))
    g2 = np.zeros((n, n))
    top = g.gen[:m]
    bot = g.gen[m:]
    for i in range(p):
        g1[i * m:(i + 1) * m, i * m:] = top[:, :n - i * m]
        g2[i * m:(i + 1) * m, i * m:] = bot[:, :n - i * m]
    gfull = np.vstack([g1, g2])
    sig = np.concatenate([np.tile(g.sigma, p), -np.tile(g.sigma, p)])
    return gfull, signature_vector(sig)
