"""High-level user API.

Most callers want one of four verbs:

* :func:`cholesky` — ``T = Rᵀ R`` for SPD block Toeplitz (Sections 2–6);
* :func:`ldlt` — ``T + δT = Rᵀ D R`` for symmetric indefinite Toeplitz,
  perturbing across singular principal minors (Section 8.2);
* :func:`solve` — direct solve, automatically falling back from the SPD
  path to the indefinite one;
* :func:`solve_refined` — indefinite factorization + iterative refinement
  (the full Section 8 pipeline; the right call whenever the matrix may
  have singular or near-singular principal minors).

All four route through the solver engine (:mod:`repro.engine`): each
call builds a :class:`~repro.engine.SolverPlan` and executes it, so
repeated solves against the same operator reuse the factorization from
the engine's process-wide cache.  Build a plan yourself with
:func:`repro.engine.plan` for full control (machine-tuned ``m_s``,
explicit algorithms, per-call caches).
"""

from __future__ import annotations

import numpy as np

import repro.engine as _engine
from repro.core.refinement import RefinementResult
from repro.core.schur_indefinite import IndefiniteFactorization
from repro.core.schur_spd import SPDFactorization
from repro.errors import InvalidOptionError, ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["cholesky", "ldlt", "solve", "solve_refined"]


def _as_block_toeplitz(t, block_size: int | None) -> SymmetricBlockToeplitz:
    if isinstance(t, SymmetricBlockToeplitz):
        return t
    arr = np.asarray(t, dtype=np.float64)
    if arr.ndim == 1:
        return SymmetricBlockToeplitz.from_first_row(arr)
    if arr.ndim == 2:
        from repro.toeplitz.block_toeplitz import symmetric_from_dense
        if block_size is None:
            raise ShapeError(
                "block_size is required when passing a dense matrix")
        return symmetric_from_dense(arr, block_size)
    raise ShapeError(f"cannot interpret input with ndim={arr.ndim}")


def cholesky(t, *, block_size: int | None = None,
             representation: str = "vy2",
             panel: int | None = None,
             in_place: bool = True,
             precision: str = "fp64") -> SPDFactorization:
    """Cholesky factorization ``T = Rᵀ R`` of an SPD block Toeplitz matrix.

    ``t`` may be a :class:`~repro.toeplitz.SymmetricBlockToeplitz`, a 1-D
    first row (scalar Toeplitz), or a dense symmetric block Toeplitz
    matrix together with ``block_size``.  ``precision`` ∈ {"fp64",
    "fp32", "mixed"} selects the factorization working precision; a
    reduced-precision factor is only kept when the condition estimate
    admits fp64 refinement recovery (see :mod:`repro.core.precision`).
    """
    bt = _as_block_toeplitz(t, block_size)
    pl = _engine.plan(bt, assume="spd", representation=representation,
                      panel=panel, in_place=in_place, precision=precision)
    return _engine.factor(pl).factorization


def ldlt(t, *, block_size: int | None = None,
         perturb: bool = True,
         delta: float | None = None,
         precision: str = "fp64") -> IndefiniteFactorization:
    """``Rᵀ D R`` factorization of a symmetric (indefinite) block Toeplitz
    matrix, perturbing across singular principal minors when ``perturb``.
    """
    bt = _as_block_toeplitz(t, block_size)
    pl = _engine.plan(bt, assume="indefinite", perturb=perturb,
                      delta=delta, precision=precision)
    return _engine.factor(pl).factorization


def solve(t, b, *, block_size: int | None = None,
          assume: str = "auto",
          representation: str = "vy2",
          panel: int | None = None,
          in_place: bool = True,
          use_cache: bool = True,
          precision: str = "fp64") -> np.ndarray:
    """Solve ``T x = b`` for symmetric block Toeplitz ``T``.

    ``assume`` ∈ {"auto", "spd", "indefinite"}: "auto" tries the SPD path
    and falls back to the indefinite algorithm (plus refinement if it
    perturbed) on breakdown.  The full set of factorization options
    (``panel``, ``in_place``) is forwarded to the plan; ``use_cache``
    lets repeated solves against the same matrix reuse the
    factorization.  ``precision`` selects the factorization working
    precision ("fp32"/"mixed" factor + fp64 refinement recovery); the
    returned ``x`` is always float64 at fp64 accuracy whenever the
    conditioning allows it.
    """
    if assume not in ("auto", "spd", "indefinite"):
        raise InvalidOptionError(
            f"unknown assume={assume!r}; expected one of "
            "('auto', 'spd', 'indefinite')")
    bt = _as_block_toeplitz(t, block_size)
    b = np.asarray(b, dtype=np.float64)
    pl = _engine.plan(bt, assume=assume, representation=representation,
                      panel=panel, in_place=in_place,
                      use_cache=use_cache, precision=precision)
    return _engine.execute(pl, b).x


def solve_refined(t, b, *, block_size: int | None = None,
                  delta: float | None = None,
                  tol: float | None = None,
                  max_iter: int = 25,
                  keep_history: bool = False,
                  precision: str = "fp64") -> RefinementResult:
    """Section 8 pipeline: perturbed ``Rᵀ D R`` + iterative refinement.

    Always safe for symmetric Toeplitz systems (including singular
    principal minors); returns the full refinement trace.  With
    ``precision="fp32"``/``"mixed"`` the factorization runs reduced and
    the same refinement loop recovers fp64 (check
    ``result.converged_precision``).
    """
    bt = _as_block_toeplitz(t, block_size)
    pl = _engine.plan(bt, assume="indefinite", delta=delta,
                      precision=precision)
    res = _engine.execute(pl, b, tol=tol, max_iter=max_iter,
                          keep_history=keep_history)
    return res.detail
