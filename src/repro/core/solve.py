"""High-level user API.

Most callers want one of four verbs:

* :func:`cholesky` — ``T = Rᵀ R`` for SPD block Toeplitz (Sections 2–6);
* :func:`ldlt` — ``T + δT = Rᵀ D R`` for symmetric indefinite Toeplitz,
  perturbing across singular principal minors (Section 8.2);
* :func:`solve` — direct solve, automatically falling back from the SPD
  path to the indefinite one;
* :func:`solve_refined` — indefinite factorization + iterative refinement
  (the full Section 8 pipeline; the right call whenever the matrix may
  have singular or near-singular principal minors).
"""

from __future__ import annotations

import numpy as np

from repro.core.refinement import RefinementResult, refine
from repro.core.schur_indefinite import (
    IndefiniteFactorization,
    schur_indefinite_factor,
)
from repro.core.schur_spd import (
    SchurOptions,
    SPDFactorization,
    schur_spd_factor,
)
from repro.errors import NotPositiveDefiniteError, ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["cholesky", "ldlt", "solve", "solve_refined"]


def _as_block_toeplitz(t, block_size: int | None) -> SymmetricBlockToeplitz:
    if isinstance(t, SymmetricBlockToeplitz):
        return t
    arr = np.asarray(t, dtype=np.float64)
    if arr.ndim == 1:
        return SymmetricBlockToeplitz.from_first_row(arr)
    if arr.ndim == 2:
        from repro.toeplitz.block_toeplitz import symmetric_from_dense
        if block_size is None:
            raise ShapeError(
                "block_size is required when passing a dense matrix")
        return symmetric_from_dense(arr, block_size)
    raise ShapeError(f"cannot interpret input with ndim={arr.ndim}")


def cholesky(t, *, block_size: int | None = None,
             representation: str = "vy2",
             panel: int | None = None,
             in_place: bool = True) -> SPDFactorization:
    """Cholesky factorization ``T = Rᵀ R`` of an SPD block Toeplitz matrix.

    ``t`` may be a :class:`~repro.toeplitz.SymmetricBlockToeplitz`, a 1-D
    first row (scalar Toeplitz), or a dense symmetric block Toeplitz
    matrix together with ``block_size``.
    """
    bt = _as_block_toeplitz(t, block_size)
    opts = SchurOptions(representation=representation, panel=panel,
                        in_place=in_place)
    return schur_spd_factor(bt, options=opts)


def ldlt(t, *, block_size: int | None = None,
         perturb: bool = True,
         delta: float | None = None) -> IndefiniteFactorization:
    """``Rᵀ D R`` factorization of a symmetric (indefinite) block Toeplitz
    matrix, perturbing across singular principal minors when ``perturb``.
    """
    bt = _as_block_toeplitz(t, block_size)
    return schur_indefinite_factor(bt, perturb=perturb, delta=delta)


def solve(t, b, *, block_size: int | None = None,
          assume: str = "auto",
          representation: str = "vy2") -> np.ndarray:
    """Solve ``T x = b`` for symmetric block Toeplitz ``T``.

    ``assume`` ∈ {"auto", "spd", "indefinite"}: "auto" tries the SPD path
    and falls back to the indefinite algorithm (plus refinement if it
    perturbed) on breakdown.
    """
    bt = _as_block_toeplitz(t, block_size)
    b = np.asarray(b, dtype=np.float64)
    if assume not in ("auto", "spd", "indefinite"):
        raise ShapeError(f"unknown assume={assume!r}")
    if assume in ("auto", "spd"):
        try:
            fact = cholesky(bt, representation=representation)
            return fact.solve(b)
        except NotPositiveDefiniteError:
            if assume == "spd":
                raise
    res = solve_refined(bt, b)
    return res.x


def solve_refined(t, b, *, block_size: int | None = None,
                  delta: float | None = None,
                  tol: float | None = None,
                  max_iter: int = 25,
                  keep_history: bool = False) -> RefinementResult:
    """Section 8 pipeline: perturbed ``Rᵀ D R`` + iterative refinement.

    Always safe for symmetric Toeplitz systems (including singular
    principal minors); returns the full refinement trace.
    """
    bt = _as_block_toeplitz(t, block_size)
    fact = schur_indefinite_factor(bt, perturb=True, delta=delta)
    return refine(fact, bt, b, tol=tol, max_iter=max_iter,
                  keep_history=keep_history)
