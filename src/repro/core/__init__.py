"""Core contribution: the block Schur algorithm and its building blocks.

Layout mirrors the paper:

* :mod:`repro.core.signature` — signature matrices ``W`` (Section 3).
* :mod:`repro.core.hyperbolic` — scalar hyperbolic Householder reflectors
  (Section 3, eqs. 14–16).
* :mod:`repro.core.block_reflector` — the three block representations of
  reflector products (Section 4, Lemmas 4.0.1–4.0.3).
* :mod:`repro.core.generator` — generators and displacement structure
  (Section 2, eqs. 4–10, 21).
* :mod:`repro.core.schur_spd` — the SPD factorization loop (Sections 5–6).
* :mod:`repro.core.schur_indefinite` — indefinite/LDLᵀ extension with
  perturbation of singular minors (Section 8.2).
* :mod:`repro.core.refinement` — iterative refinement (Section 8.1).
* :mod:`repro.core.regroup` — structural vs. algorithmic block size
  (Section 6.5).
* :mod:`repro.core.flops` — the paper's closed-form flop models
  (eqs. 25–32).
* :mod:`repro.core.precision` — the precision axis: working/elimination
  dtypes and the condest-based refinement admission rule.
* :mod:`repro.core.solve` — the high-level user API.
"""

from repro.core.signature import (
    signature_vector,
    hyperbolic_norm_squared,
    signature_matrix,
    block_schur_signature,
)
from repro.core.hyperbolic import (
    HyperbolicHouseholder,
    reflector_annihilating,
)
from repro.core.block_reflector import (
    BlockReflector,
    VYFirstAccumulator,
    VYSecondAccumulator,
    YTYAccumulator,
    UnblockedAccumulator,
    DenseAccumulator,
    make_accumulator,
    REPRESENTATIONS,
)
from repro.core.generator import (
    spd_generator,
    indefinite_generator,
    displacement,
    generator_to_full,
)
from repro.core.schur_spd import schur_spd_factor, SchurOptions, SPDFactorization
from repro.core.schur_indefinite import (
    schur_indefinite_factor,
    IndefiniteFactorization,
    PerturbationEvent,
)
from repro.core.refinement import refine, RefinementResult
from repro.core.solve import (
    cholesky,
    ldlt,
    solve,
    solve_refined,
)
from repro.core.regroup import regrouped_factor, choose_block_size
from repro.core.displacement_rank import (
    displacement_rank,
    generator_from_dense,
    matrix_from_generator,
    generalized_schur_factor,
    GeneralizedFactorization,
)
from repro.core.streaming import (
    iter_r_block_rows,
    streaming_whiten,
    streaming_logdet,
    gaussian_loglikelihood,
)
from repro.core.condest import condest, one_norm, invnorm_estimate
from repro.core.precision import (
    PRECISIONS,
    working_dtype,
    elimination_dtype,
    precision_eps,
    refinement_admissible,
    validate_precision,
)
from repro.core.gko import (
    cauchy_like_lu,
    CauchyLikeLU,
    solve_toeplitz_gko,
    toeplitz_to_cauchy,
)
from repro.core.gohberg_semencul import ToeplitzInverse, toeplitz_inverse
from repro.core.compact import (
    COMPACT_SCHEMA_VERSION,
    CompactFactorization,
    array_hash,
)
from repro.core import flops

__all__ = [
    "signature_vector",
    "hyperbolic_norm_squared",
    "signature_matrix",
    "block_schur_signature",
    "HyperbolicHouseholder",
    "reflector_annihilating",
    "BlockReflector",
    "VYFirstAccumulator",
    "VYSecondAccumulator",
    "YTYAccumulator",
    "UnblockedAccumulator",
    "DenseAccumulator",
    "make_accumulator",
    "REPRESENTATIONS",
    "spd_generator",
    "indefinite_generator",
    "displacement",
    "generator_to_full",
    "schur_spd_factor",
    "SchurOptions",
    "SPDFactorization",
    "schur_indefinite_factor",
    "IndefiniteFactorization",
    "PerturbationEvent",
    "refine",
    "RefinementResult",
    "cholesky",
    "ldlt",
    "solve",
    "solve_refined",
    "regrouped_factor",
    "choose_block_size",
    "displacement_rank",
    "generator_from_dense",
    "matrix_from_generator",
    "generalized_schur_factor",
    "GeneralizedFactorization",
    "iter_r_block_rows",
    "streaming_whiten",
    "streaming_logdet",
    "gaussian_loglikelihood",
    "condest",
    "one_norm",
    "invnorm_estimate",
    "PRECISIONS",
    "working_dtype",
    "elimination_dtype",
    "precision_eps",
    "refinement_admissible",
    "validate_precision",
    "cauchy_like_lu",
    "CauchyLikeLU",
    "solve_toeplitz_gko",
    "toeplitz_to_cauchy",
    "ToeplitzInverse",
    "toeplitz_inverse",
    "COMPACT_SCHEMA_VERSION",
    "CompactFactorization",
    "array_hash",
    "flops",
]
