"""Precision policy for the solver core.

The package supports three plan-level precisions:

* ``"fp64"`` — everything in IEEE double (the historical default);
* ``"fp32"`` — the factorization (generator, elimination, triangular
  factor) runs entirely in single precision.  Modern BLAS runs ``sgemm``
  at roughly twice the ``dgemm`` rate, so the ``O(m_s n²)`` factor costs
  about half as much wall-clock;
* ``"mixed"`` — generator rows and accumulated transformations stay in
  double, but each hyperbolic pivot column is rounded through single
  precision before its reflector is built (fp32 elimination error, fp64
  accumulation) — the intermediate point of the accuracy/speed axis.

Every reduced-precision factorization is recovered to full accuracy by
the Section 8 iterative-refinement loop with a double-precision residual:
the refinement analysis (eq. 41) bounds the per-sweep contraction by
``γ ≈ cond(T) · ε_working``, so as long as ``cond(T) · ε₃₂`` is safely
below one, a handful of sweeps restores fp64-level residuals.  The
engine enforces exactly that admission test (:func:`refinement_admissible`,
driven by :mod:`repro.core.condest`) and falls back to a fp64
factorization when the estimate says fp32 refinement cannot converge.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.errors import InvalidOptionError
from repro.obs import health

__all__ = [
    "PRECISIONS",
    "validate_precision",
    "working_dtype",
    "elimination_dtype",
    "complex_working_dtype",
    "precision_eps",
    "dtype_name",
    "precision_of_dtype",
    "refinement_admissible",
    "flush_tiny",
    "ADMISSION_LIMIT",
]

#: The plan-level precision axis.
PRECISIONS = ("fp64", "fp32", "mixed")

#: Admission threshold for reduced-precision factorization + refinement:
#: require ``cond₁(T) · ε_elimination ≤ ADMISSION_LIMIT`` so the
#: refinement contraction factor γ (eq. 41) stays far below one.
ADMISSION_LIMIT = 0.05


def validate_precision(precision: str) -> str:
    """Return ``precision`` or raise for an unknown value."""
    if precision not in PRECISIONS:
        raise InvalidOptionError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}")
    return precision


def working_dtype(precision: str) -> np.dtype:
    """Storage dtype of the factor arrays for a given precision.

    ``"mixed"`` stores in double — only the per-pivot elimination is
    rounded through single precision.
    """
    validate_precision(precision)
    return np.dtype(np.float32 if precision == "fp32" else np.float64)


def elimination_dtype(precision: str) -> np.dtype:
    """Dtype whose rounding governs the elimination error."""
    validate_precision(precision)
    return np.dtype(np.float64 if precision == "fp64" else np.float32)


def complex_working_dtype(precision: str) -> np.dtype:
    """Complex analogue of :func:`working_dtype` (for the GKO kernel).

    The GKO Cauchy-like LU has no hyperbolic elimination to split, so
    ``"mixed"`` and ``"fp32"`` both run it in ``complex64``.
    """
    validate_precision(precision)
    return np.dtype(np.complex128 if precision == "fp64" else np.complex64)


def precision_eps(precision: str) -> float:
    """Unit roundoff of the elimination dtype for ``precision``."""
    return float(np.finfo(elimination_dtype(precision)).eps)


def dtype_name(dtype) -> str:
    """Canonical string name of a (possibly complex) working dtype."""
    return np.dtype(dtype).name


def precision_of_dtype(dtype) -> str:
    """Map a real working dtype back to its precision label."""
    dt = np.dtype(dtype)
    if dt in (np.dtype(np.float32), np.dtype(np.complex64)):
        return "fp32"
    return "fp64"


#: Relative flush threshold: ``ε₃₂²`` — seven orders of magnitude below
#: single-precision roundoff of the dominant scale.
_FLUSH_REL = float(np.finfo(np.float32).eps) ** 2


def flush_tiny(a: np.ndarray) -> None:
    """Zero float32 entries below ``ε₃₂² · max|a|``, in place.

    Displacement generators decay geometrically during elimination; in
    single precision the trailing entries drift toward the subnormal
    range, where BLAS kernels run an order of magnitude slower (an
    ``sgemm`` with subnormal operands can cost 30× a normal one).
    Entries this far below the working scale are numerically dead —
    ``ε₃₂²`` under the dominant magnitude cannot influence a factor that
    already carries ``ε₃₂`` rounding — so flushing them buys the fp32
    speed back without touching accuracy.  No-op for non-float32 arrays.
    """
    if a.dtype != np.float32 or a.size == 0:
        return
    scale = float(np.max(np.abs(a)))
    if scale == 0.0 or not np.isfinite(scale):
        return
    cut = np.float32(_FLUSH_REL * scale)
    np.copyto(a, np.float32(0.0), where=np.abs(a) < cut)


def refinement_admissible(cond: float, precision: str, *,
                          limit: float = ADMISSION_LIMIT) -> bool:
    """Can refinement recover a ``precision`` factorization of a matrix
    with condition estimate ``cond``?

    The eq.-41 contraction factor is ``γ ≈ cond · ε_working``; admission
    requires it at most ``limit`` so convergence takes a few sweeps and
    the recovered residual matches a pure fp64 solve.
    """
    if precision == "fp64":
        return True
    admitted = (np.isfinite(cond)
                and cond * precision_eps(precision) <= limit)
    if obs.enabled():
        health.record_admission(precision, float(cond), admitted)
    return admitted
