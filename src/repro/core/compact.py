"""Compact, serializable forms of every factorization the engine caches.

The economics of the persistent cache (:mod:`repro.engine.cache_store`)
rest on *representation size*.  A dense triangular factor is ``O(n²)``
bytes — at ``n = 4096`` that is 134 MB per entry — but the displacement
structure the whole library is built on says the information content is
``O(mn)``:

* the Gohberg–Semencul form of ``T⁻¹`` is one length-``n`` vector
  (``x = T⁻¹ e₀``);
* a GKO Cauchy-like LU is fully determined by its ``n × 2m`` generators
  ``(ĝ, b̂)`` and the root-of-unity node sets ``(d₁, d₂)`` — the pivoted
  elimination that rebuilds ``L``/``U``/``perm`` from them is
  deterministic;
* only the Schur factorizations keep their dense ``R`` (and then
  memory-mapping, not size, makes the warm start cheap).

:class:`CompactFactorization` is the schema: a ``kind`` tag, a dict of
named arrays at the representation's natural size, and JSON-safe
metadata sufficient to rebuild the live factorization object.  Content
hashes over the arrays give the store its integrity check.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import UnsupportedFactorizationError

__all__ = [
    "COMPACT_SCHEMA_VERSION",
    "COMPACT_KINDS",
    "CompactFactorization",
    "array_hash",
]

#: Bump when the (kind, arrays, meta) schema below changes shape; the
#: store treats entries written under another version as stale misses.
COMPACT_SCHEMA_VERSION = 1

KIND_GS = "gs"
KIND_GKO = "gko-generators"
KIND_SPD_DENSE = "spd-dense-r"
KIND_INDEFINITE_DENSE = "indefinite-dense-r"

COMPACT_KINDS = (KIND_GS, KIND_GKO, KIND_SPD_DENSE, KIND_INDEFINITE_DENSE)


def array_hash(arr: np.ndarray) -> str:
    """SHA-256 over dtype, shape and raw bytes of ``arr``."""
    h = hashlib.sha256()
    a = np.ascontiguousarray(arr)
    h.update(str(a.dtype.str).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


@dataclass
class CompactFactorization:
    """One factorization at its natural on-disk size.

    ``arrays`` maps member names to ndarrays (possibly read-only
    memory maps after a load); ``meta`` is JSON-serializable and carries
    everything else a :meth:`restore` needs.
    """

    kind: str
    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Total array payload bytes (the entry-size economics)."""
        return int(sum(int(a.nbytes) for a in self.arrays.values()))

    def content_hashes(self) -> dict[str, str]:
        """Per-array SHA-256 content hashes (the integrity manifest)."""
        return {name: array_hash(a) for name, a in self.arrays.items()}

    # ------------------------------------------------------------------
    @classmethod
    def from_factorization(cls, fact) -> "CompactFactorization":
        """Compact ``fact``, or raise
        :class:`~repro.errors.UnsupportedFactorizationError`.

        Supported: :class:`~repro.core.gohberg_semencul.ToeplitzInverse`
        (``O(n)``), :class:`~repro.core.gko.CauchyLikeLU` carrying its
        generators (``O(mn)``),
        :class:`~repro.core.schur_spd.SPDFactorization` and
        :class:`~repro.core.schur_indefinite.IndefiniteFactorization`
        (dense-``R`` fallback).  Everything else — distributed
        factorizations holding backend state, refinement traces, PCG
        records — has no meaningful at-rest form and is rejected.
        """
        import dataclasses as _dc

        from repro.core.gko import CauchyLikeLU
        from repro.core.gohberg_semencul import ToeplitzInverse
        from repro.core.schur_indefinite import IndefiniteFactorization
        from repro.core.schur_spd import SPDFactorization

        if isinstance(fact, ToeplitzInverse):
            return cls(kind=KIND_GS,
                       arrays={"x": fact.x},
                       meta={"dtype": np.dtype(fact.x.dtype).name})
        if isinstance(fact, CauchyLikeLU):
            if fact.generators is None:
                raise UnsupportedFactorizationError(
                    "CauchyLikeLU without generators has only the O(n²) "
                    "dense form; factor through gko_factor to keep the "
                    "O(mn) generators")
            ghat, bhat, d1, d2 = fact.generators
            return cls(kind=KIND_GKO,
                       arrays={"ghat": np.asarray(ghat),
                               "bhat": np.asarray(bhat),
                               "d1": np.asarray(d1),
                               "d2": np.asarray(d2)},
                       meta={"block_size": int(fact.block_size),
                             "precision": fact.precision})
        if isinstance(fact, SPDFactorization):
            return cls(kind=KIND_SPD_DENSE,
                       arrays={"r": fact.r},
                       meta={"block_size": int(fact.block_size),
                             "num_blocks": int(fact.num_blocks),
                             "precision": fact.precision,
                             "options": _dc.asdict(fact.options)})
        if isinstance(fact, IndefiniteFactorization):
            return cls(kind=KIND_INDEFINITE_DENSE,
                       arrays={"r": fact.r,
                               "d": np.asarray(fact.d),
                               "transform_norms":
                                   np.asarray(fact.transform_norms,
                                              dtype=np.float64)},
                       meta={"block_size": int(fact.block_size),
                             "num_blocks": int(fact.num_blocks),
                             "precision": fact.precision,
                             "perturbations": [_dc.asdict(p) for p in
                                               fact.perturbations],
                             "interchanges": [_dc.asdict(i) for i in
                                              fact.interchanges]})
        raise UnsupportedFactorizationError(
            f"no compact representation for {type(fact).__name__} "
            "(distributed/iterative results are not persisted)")

    # ------------------------------------------------------------------
    def restore(self):
        """Rebuild the live factorization object this entry encodes.

        GS and the dense kinds reconstruct directly from the stored
        arrays (which may be read-only memory maps — every consumer
        treats factors as immutable).  The GKO kind re-runs the pivoted
        generator elimination: ``O(mn²)`` work, but deterministic — the
        rebuilt ``L``/``U``/``perm`` are bit-identical to the originals
        — and still far cheaper at rest than storing ``O(n²)`` factors.
        """
        if self.kind == KIND_GS:
            from repro.core.gohberg_semencul import ToeplitzInverse
            return ToeplitzInverse(self.arrays["x"],
                                   dtype=self.meta["dtype"])
        if self.kind == KIND_GKO:
            from repro.core.gko import cauchy_like_lu
            from repro.core.precision import complex_working_dtype
            precision = self.meta.get("precision", "fp64")
            ghat = np.asarray(self.arrays["ghat"])
            bhat = np.asarray(self.arrays["bhat"])
            d1 = np.asarray(self.arrays["d1"])
            d2 = np.asarray(self.arrays["d2"])
            fact = cauchy_like_lu(
                ghat, bhat, d1, d2,
                block_size=int(self.meta["block_size"]),
                dtype=complex_working_dtype(precision))
            fact.precision = precision
            fact.generators = (ghat, bhat, d1, d2)
            return fact
        if self.kind == KIND_SPD_DENSE:
            from repro.core.schur_spd import SchurOptions, SPDFactorization
            return SPDFactorization(
                r=self.arrays["r"],
                block_size=int(self.meta["block_size"]),
                num_blocks=int(self.meta["num_blocks"]),
                options=SchurOptions(**self.meta["options"]),
                precision=self.meta.get("precision", "fp64"))
        if self.kind == KIND_INDEFINITE_DENSE:
            from repro.core.schur_indefinite import (
                IndefiniteFactorization,
                InterchangeEvent,
                PerturbationEvent,
            )
            return IndefiniteFactorization(
                r=self.arrays["r"],
                d=np.asarray(self.arrays["d"]),
                block_size=int(self.meta["block_size"]),
                num_blocks=int(self.meta["num_blocks"]),
                perturbations=[PerturbationEvent(**p) for p in
                               self.meta.get("perturbations", [])],
                interchanges=[InterchangeEvent(**i) for i in
                              self.meta.get("interchanges", [])],
                transform_norms=[float(v) for v in
                                 self.arrays["transform_norms"]],
                precision=self.meta.get("precision", "fp64"))
        raise UnsupportedFactorizationError(
            f"unknown compact kind {self.kind!r}; expected one of "
            f"{COMPACT_KINDS}")
