"""Scalar hyperbolic Householder reflectors (Section 3).

For a signature ``W`` and a vector ``x`` with ``xᵀWx ≠ 0``, the reflector

    ``U_x = W − 2 x xᵀ / (xᵀ W x)``                                (eq. 14)

is W-unitary (``U_xᵀ W U_x = W``).  Given ``u`` with ``W_jj · uᵀWu > 0``,
choosing ``σ² = W_jj · uᵀWu`` and ``x = W u + σ e_j`` yields
``U_x u = −σ e_j`` (eqs. 15–16 generalized to indefinite targets).

The sign of σ is chosen so that ``σ u_j`` has the same sign as ``uᵀWu``,
which keeps ``xᵀWx = 2(uᵀWu + σ u_j)`` away from cancellation for *any*
signature; in the positive-definite case this reduces exactly to the
paper's eq. (16).
"""

from __future__ import annotations

import math

import numpy as np

import repro.obs as obs
from repro.blas import primitives as blas
from repro.core.signature import hyperbolic_norm_squared, signature_vector
from repro.errors import BreakdownError, ShapeError
from repro.obs import health

__all__ = ["HyperbolicHouseholder", "reflector_annihilating"]


class HyperbolicHouseholder:
    """A single hyperbolic Householder reflector ``U = W + β x xᵀ``.

    Parameters
    ----------
    x : (n,) array
        Reflector vector; must have nonzero hyperbolic norm.
    w : (n,) ±1 array
        Signature.
    support : array of int, optional
        Indices where ``x`` is nonzero.  When given, applications exploit
        the sparsity (the Schur pivot pattern of Figure 1: one diagonal
        entry plus the lower half).

    Notes
    -----
    ``β = −2 / (xᵀWx)``; application to a matrix ``A`` is
    ``U A = W A + β x (xᵀ A)`` — a sign flip, one gemv and one rank-1
    update.
    """

    def __init__(self, x: np.ndarray, w: np.ndarray,
                 support: np.ndarray | None = None,
                 xwx: float | None = None):
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        w = signature_vector(w)
        if x.ndim != 1 or x.shape[0] != w.shape[0]:
            raise ShapeError(
                f"x has shape {x.shape}, signature has length {w.shape[0]}")
        # ``xwx`` lets a caller that already knows the hyperbolic norm
        # (e.g. the elimination loop, via the eq.-18 identity) skip a
        # full-length recomputation on this hot path.
        if xwx is None:
            xwx = hyperbolic_norm_squared(x, w)
        if xwx == 0.0:
            raise BreakdownError("reflector vector has zero hyperbolic norm")
        self.x = x
        self.w = w
        self.xwx = xwx
        self.beta = -2.0 / xwx
        self.support = (np.asarray(support, dtype=np.intp)
                        if support is not None else None)

    @property
    def n(self) -> int:
        return self.x.shape[0]

    def matrix(self) -> np.ndarray:
        """Dense ``U = W − 2xxᵀ/(xᵀWx)`` (for tests and small problems)."""
        u = np.diag(self.w.astype(np.float64))
        u += self.beta * np.outer(self.x, self.x)
        return u

    def apply_left(self, a: np.ndarray, out: np.ndarray | None = None
                   ) -> np.ndarray:
        """Compute ``U a`` for a vector or matrix ``a``.

        When ``out`` is ``a`` itself the update is done in place.
        Runs in the operand's floating dtype (float32 stays float32).
        """
        a = np.asarray(a)
        if a.dtype not in (np.float32, np.float64):
            a = a.astype(np.float64)
        if a.shape[0] != self.n:
            raise ShapeError(
                f"operand has {a.shape[0]} rows, expected {self.n}")
        if out is None:
            out = np.array(a)
        elif out is not a:
            np.copyto(out, a)
        wf = self.w.astype(a.dtype)
        if self.support is None:
            if a.ndim == 1:
                coef = self.beta * blas.dot(self.x, a)
                out *= 1.0  # keep dtype/contiguity
                out[:] = wf * a
                blas.axpy(coef, self.x, out)
            else:
                xa = blas.gemv(a, self.x, trans=True)
                out[:] = wf[:, None] * a
                blas.ger(self.beta, self.x, xa, out)
            return out
        # Sparse path: only rows in `support` carry reflector mass.
        idx = self.support
        xs = self.x[idx]
        if a.ndim == 1:
            coef = self.beta * blas.dot(xs, a[idx])
            out[:] = wf * a
            out[idx] += coef * xs
        else:
            xa = blas.gemv(a[idx], xs, trans=True)
            out[:] = wf[:, None] * a
            sub = out[idx]
            blas.ger(self.beta, xs, xa, sub)
            out[idx] = sub
        return out

    def is_w_unitary(self, rtol: float = 1e-10) -> bool:
        """Check ``UᵀWU = W`` numerically (diagnostic)."""
        u = self.matrix()
        wmat = np.diag(self.w.astype(np.float64))
        return np.allclose(u.T @ wmat @ u, wmat,
                           rtol=rtol, atol=rtol * max(1.0, self.xwx))


def reflector_annihilating(u: np.ndarray, w: np.ndarray, j: int, *,
                           support: np.ndarray | None = None,
                           breakdown_tol: float = 0.0
                           ) -> tuple[HyperbolicHouseholder, float]:
    """Reflector mapping ``u`` to ``−σ e_j``; returns ``(U, σ)``.

    Requires ``W_jj · uᵀWu > 0`` (same hyperbolic norm sign as the target
    axis).  ``breakdown_tol`` is an absolute threshold on
    ``|uᵀWu| / ‖u‖²`` below which the pivot is declared numerically
    singular (:class:`~repro.errors.BreakdownError`).  The reflector is
    built in ``u``'s floating dtype — a float32 pivot column yields a
    float32 reflector (the hyperbolic norm itself is accumulated in
    double either way).
    """
    u = np.asarray(u)
    if u.dtype not in (np.float32, np.float64):
        u = u.astype(np.float64)
    w = signature_vector(w)
    n = u.shape[0]
    if not (0 <= j < n):
        raise ShapeError(f"target index {j} out of range for n={n}")
    if support is not None:
        support = np.asarray(support, dtype=np.intp)
        if j not in support:
            support = np.sort(np.append(support, j))
        # All of u's mass lives on the support (the caller's contract),
        # so the norms need only the m+1 supported entries.
        us = u[support]
        h = hyperbolic_norm_squared(us, w[support])
        unorm2 = float(np.dot(us, us))
    else:
        h = hyperbolic_norm_squared(u, w)
        unorm2 = float(np.dot(u, u))
    if unorm2 == 0.0:
        raise BreakdownError("cannot annihilate the zero vector")
    if abs(h) <= breakdown_tol * unorm2:
        raise BreakdownError(
            f"pivot column has (numerically) zero hyperbolic norm "
            f"(uᵀWu = {h:.3e}, ‖u‖² = {unorm2:.3e})")
    if obs.enabled():
        health.record_rotation_margin(abs(h) / unorm2, breakdown_tol)
    wjj = float(w[j])
    if wjj * h <= 0.0:
        raise BreakdownError(
            f"target axis sign W_jj={wjj:+.0f} incompatible with "
            f"uᵀWu={h:.3e}; interchange rows first")
    sigma = math.sqrt(wjj * h)
    # Stable sign: make σ·u_j agree in sign with uᵀWu so that
    # xᵀWx = 2(uᵀWu + σ u_j) has no cancellation.
    if u[j] != 0.0:
        sigma = math.copysign(sigma, h * u[j])
    x = w.astype(u.dtype) * u
    x[j] += x.dtype.type(sigma)
    blas.charge(3 * n + 8, "reflector-setup")  # paper's per-step x cost
    # xᵀWx = 2(uᵀWu + σ u_j): the stable sign choice above makes this
    # addition cancellation-free, so the identity is safe to reuse.
    return HyperbolicHouseholder(x, w, support=support,
                                 xwx=2.0 * (h + sigma * float(u[j]))), sigma
