"""Scalar hyperbolic Householder reflectors (Section 3).

For a signature ``W`` and a vector ``x`` with ``xᵀWx ≠ 0``, the reflector

    ``U_x = W − 2 x xᵀ / (xᵀ W x)``                                (eq. 14)

is W-unitary (``U_xᵀ W U_x = W``).  Given ``u`` with ``W_jj · uᵀWu > 0``,
choosing ``σ² = W_jj · uᵀWu`` and ``x = W u + σ e_j`` yields
``U_x u = −σ e_j`` (eqs. 15–16 generalized to indefinite targets).

The sign of σ is chosen so that ``σ u_j`` has the same sign as ``uᵀWu``,
which keeps ``xᵀWx = 2(uᵀWu + σ u_j)`` away from cancellation for *any*
signature; in the positive-definite case this reduces exactly to the
paper's eq. (16).
"""

from __future__ import annotations

import math

import numpy as np

from repro.blas import primitives as blas
from repro.core.signature import hyperbolic_norm_squared, signature_vector
from repro.errors import BreakdownError, ShapeError

__all__ = ["HyperbolicHouseholder", "reflector_annihilating"]


class HyperbolicHouseholder:
    """A single hyperbolic Householder reflector ``U = W + β x xᵀ``.

    Parameters
    ----------
    x : (n,) array
        Reflector vector; must have nonzero hyperbolic norm.
    w : (n,) ±1 array
        Signature.
    support : array of int, optional
        Indices where ``x`` is nonzero.  When given, applications exploit
        the sparsity (the Schur pivot pattern of Figure 1: one diagonal
        entry plus the lower half).

    Notes
    -----
    ``β = −2 / (xᵀWx)``; application to a matrix ``A`` is
    ``U A = W A + β x (xᵀ A)`` — a sign flip, one gemv and one rank-1
    update.
    """

    def __init__(self, x: np.ndarray, w: np.ndarray,
                 support: np.ndarray | None = None):
        x = np.asarray(x, dtype=np.float64)
        w = signature_vector(w)
        if x.ndim != 1 or x.shape[0] != w.shape[0]:
            raise ShapeError(
                f"x has shape {x.shape}, signature has length {w.shape[0]}")
        xwx = hyperbolic_norm_squared(x, w)
        if xwx == 0.0:
            raise BreakdownError("reflector vector has zero hyperbolic norm")
        self.x = x
        self.w = w
        self.xwx = xwx
        self.beta = -2.0 / xwx
        self.support = (np.asarray(support, dtype=np.intp)
                        if support is not None else None)

    @property
    def n(self) -> int:
        return self.x.shape[0]

    def matrix(self) -> np.ndarray:
        """Dense ``U = W − 2xxᵀ/(xᵀWx)`` (for tests and small problems)."""
        u = np.diag(self.w.astype(np.float64))
        u += self.beta * np.outer(self.x, self.x)
        return u

    def apply_left(self, a: np.ndarray, out: np.ndarray | None = None
                   ) -> np.ndarray:
        """Compute ``U a`` for a vector or matrix ``a``.

        When ``out`` is ``a`` itself the update is done in place.
        """
        a = np.asarray(a, dtype=np.float64)
        if a.shape[0] != self.n:
            raise ShapeError(
                f"operand has {a.shape[0]} rows, expected {self.n}")
        if out is None:
            out = np.array(a)
        elif out is not a:
            np.copyto(out, a)
        wf = self.w.astype(np.float64)
        if self.support is None:
            if a.ndim == 1:
                coef = self.beta * blas.dot(self.x, a)
                out *= 1.0  # keep dtype/contiguity
                out[:] = wf * a
                blas.axpy(coef, self.x, out)
            else:
                xa = blas.gemv(a, self.x, trans=True)
                out[:] = wf[:, None] * a
                blas.ger(self.beta, self.x, xa, out)
            return out
        # Sparse path: only rows in `support` carry reflector mass.
        idx = self.support
        xs = self.x[idx]
        if a.ndim == 1:
            coef = self.beta * blas.dot(xs, a[idx])
            out[:] = wf * a
            out[idx] += coef * xs
        else:
            xa = blas.gemv(a[idx], xs, trans=True)
            out[:] = wf[:, None] * a
            sub = out[idx]
            blas.ger(self.beta, xs, xa, sub)
            out[idx] = sub
        return out

    def is_w_unitary(self, rtol: float = 1e-10) -> bool:
        """Check ``UᵀWU = W`` numerically (diagnostic)."""
        u = self.matrix()
        wmat = np.diag(self.w.astype(np.float64))
        return np.allclose(u.T @ wmat @ u, wmat,
                           rtol=rtol, atol=rtol * max(1.0, self.xwx))


def reflector_annihilating(u: np.ndarray, w: np.ndarray, j: int, *,
                           support: np.ndarray | None = None,
                           breakdown_tol: float = 0.0
                           ) -> tuple[HyperbolicHouseholder, float]:
    """Reflector mapping ``u`` to ``−σ e_j``; returns ``(U, σ)``.

    Requires ``W_jj · uᵀWu > 0`` (same hyperbolic norm sign as the target
    axis).  ``breakdown_tol`` is an absolute threshold on
    ``|uᵀWu| / ‖u‖²`` below which the pivot is declared numerically
    singular (:class:`~repro.errors.BreakdownError`).
    """
    u = np.asarray(u, dtype=np.float64)
    w = signature_vector(w)
    n = u.shape[0]
    if not (0 <= j < n):
        raise ShapeError(f"target index {j} out of range for n={n}")
    h = hyperbolic_norm_squared(u, w)
    unorm2 = float(np.dot(u, u))
    if unorm2 == 0.0:
        raise BreakdownError("cannot annihilate the zero vector")
    if abs(h) <= breakdown_tol * unorm2:
        raise BreakdownError(
            f"pivot column has (numerically) zero hyperbolic norm "
            f"(uᵀWu = {h:.3e}, ‖u‖² = {unorm2:.3e})")
    wjj = float(w[j])
    if wjj * h <= 0.0:
        raise BreakdownError(
            f"target axis sign W_jj={wjj:+.0f} incompatible with "
            f"uᵀWu={h:.3e}; interchange rows first")
    sigma = math.sqrt(wjj * h)
    # Stable sign: make σ·u_j agree in sign with uᵀWu so that
    # xᵀWx = 2(uᵀWu + σ u_j) has no cancellation.
    if u[j] != 0.0:
        sigma = math.copysign(sigma, h * u[j])
    x = w.astype(np.float64) * u
    x[j] += sigma
    blas.charge(3 * n + 8, "reflector-setup")  # paper's per-step x cost
    if support is not None:
        support = np.asarray(support, dtype=np.intp)
        if j not in support:
            support = np.sort(np.append(support, j))
    return HyperbolicHouseholder(x, w, support=support), sigma
