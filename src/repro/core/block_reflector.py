"""Block representations of products of hyperbolic Householder reflectors.

Section 4 of the paper adapts the WY-style representations of Bischof &
Van Loan and Schreiber & Van Loan to the hyperbolic case.  A product of
``k`` reflectors ``U^{(k)} = U_k ⋯ U_1`` is carried in one of three forms:

* **first VY form** (Lemma 4.0.1):   ``U^{(k)} = Wᵏ + V_k Y_kᵀ`` with
  ``V_{k+1} = [W V_k, x]``, ``Y_{k+1} = [Y_k, zᵀ]``,
  ``z = β xᵀ U^{(k)}`` — two matrix–vector products per step;
* **second VY form** (Lemma 4.0.2):  same shape but
  ``V_{k+1} = [U_{k+1} V_k, x]`` and ``z = β xᵀ Wᵏ`` — one matrix–vector
  product and one rank-1 update per step (fewest flops of the VY pair);
* **YTYᵀ form** (Lemma 4.0.3):       ``U^{(k)} = Wᵏ + Y_k T_k Y_kᵀ Wᵏ⁻¹``
  — cheapest to *build* and half the storage/communication volume, at a
  slightly higher application cost.

Two reference schemes complete the design space of Section 6.2:

* **unblocked** — keep the reflectors separate and apply them one at a
  time (pure level-2 path, zero blocking cost);
* **dense** — multiply the reflectors out into an explicit ``2m × 2m``
  ``U`` (the "naive blocking scheme", most expensive to build).

All five expose the same interface, so the factorization loop is generic
in the representation — exactly the implementation trade-off the paper
studies.
"""

from __future__ import annotations

import numpy as np

from repro.blas import primitives as blas
from repro.core.hyperbolic import HyperbolicHouseholder
from repro.core.signature import signature_vector
from repro.errors import ShapeError

__all__ = [
    "BlockReflector",
    "VYFirstAccumulator",
    "VYSecondAccumulator",
    "YTYAccumulator",
    "UnblockedAccumulator",
    "DenseAccumulator",
    "make_accumulator",
    "REPRESENTATIONS",
]


def _apply_wpow(w: np.ndarray, k: int, a: np.ndarray) -> np.ndarray:
    """Return ``Wᵏ a`` (``W`` diagonal ±1 ⇒ identity for even ``k``)."""
    if k % 2 == 0:
        return a
    wf = w.astype(a.dtype if a.dtype.kind == "f" else np.float64)
    return wf * a if a.ndim == 1 else wf[:, None] * a


class BlockReflector:
    """A finished block hyperbolic Householder transformation.

    Created by one of the accumulators; applies ``U`` to matrices either
    stacked (:meth:`apply_left`) or as an (upper, lower) pair of row-block
    views (:meth:`apply_pair`), which is what the in-place Schur variant
    of Section 6.4 needs.
    """

    def __init__(self, kind: str, w: np.ndarray, k: int, *,
                 v: np.ndarray | None = None,
                 y: np.ndarray | None = None,
                 t: np.ndarray | None = None,
                 u_dense: np.ndarray | None = None,
                 reflectors: list[HyperbolicHouseholder] | None = None):
        self.kind = kind
        self.w = w
        self.k = k
        self.v = v
        self.y = y
        self.t = t
        self.u_dense = u_dense
        self.reflectors = reflectors

    @property
    def n(self) -> int:
        return self.w.shape[0]

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Dense ``U^{(k)}`` (reference implementation for testing)."""
        n, k, w = self.n, self.k, self.w
        wk = np.diag(w.astype(np.float64)) if k % 2 else np.eye(n)
        if self.kind == "dense":
            return np.array(self.u_dense)
        if self.kind == "unblocked":
            u = np.eye(n)
            for refl in self.reflectors:
                u = refl.matrix() @ u
            return u
        if self.kind in ("vy1", "vy2"):
            return wk + self.v @ self.y.T
        if self.kind == "yty":
            right = _apply_wpow(w, k - 1, np.array(self.y)).T
            return wk + self.y @ (self.t @ right)
        raise ShapeError(f"unknown representation {self.kind!r}")

    # ------------------------------------------------------------------
    def apply_left(self, a: np.ndarray, out: np.ndarray | None = None
                   ) -> np.ndarray:
        """Compute ``U a``; ``out`` may alias ``a`` for in-place update.
        Runs in the operand's floating dtype (float32 stays float32)."""
        a = np.asarray(a)
        if a.dtype not in (np.float32, np.float64):
            a = a.astype(np.float64)
        if a.shape[0] != self.n:
            raise ShapeError(
                f"operand has {a.shape[0]} rows, expected {self.n}")
        vec = a.ndim == 1
        a2 = a[:, None] if vec else a
        if out is None:
            res = self._apply2(a2)
        else:
            out2 = out[:, None] if vec else out
            res = self._apply2(a2, out=out2)
        if out is not None:
            if vec:
                out[:] = res[:, 0]
            return out
        return res[:, 0] if vec else res

    def _apply2(self, a: np.ndarray, out: np.ndarray | None = None
                ) -> np.ndarray:
        kind, w, k = self.kind, self.w, self.k
        if kind == "dense":
            res = blas.gemm(self.u_dense, a)
        elif kind == "unblocked":
            res = np.array(a)
            for refl in self.reflectors:
                refl.apply_left(res, out=res)
        elif kind in ("vy1", "vy2"):
            ya = blas.gemm(self.y.T, a)
            res = np.array(_apply_wpow(w, k, a))
            res += blas.gemm(self.v, ya)
        else:  # yty
            wa = _apply_wpow(w, k - 1, a)
            ya = blas.gemm(self.y.T, wa)
            tya = blas.gemm(self.t, ya)
            res = np.array(_apply_wpow(w, k, a))
            res += blas.gemm(self.y, tya)
        if out is not None:
            np.copyto(out, res)
            return out
        return res

    # ------------------------------------------------------------------
    def apply_pair(self, upper: np.ndarray, lower: np.ndarray) -> None:
        """Apply ``U`` in place to the stacked operand ``[upper; lower]``.

        ``upper`` and ``lower`` are ``m × q`` views into different parts of
        the generator; this routine never materializes the stacked matrix,
        which is the "in-place implementation" of Section 6.4 that avoids
        the Phase-3 shift copy.
        """
        m = upper.shape[0]
        if m + lower.shape[0] != self.n:
            raise ShapeError(
                f"pair rows {m}+{lower.shape[0]} != reflector size {self.n}")
        kind, w, k = self.kind, self.w, self.k
        if kind in ("dense", "unblocked"):
            stacked = np.vstack([upper, lower])
            res = self._apply2(stacked)
            upper[:] = res[:m]
            lower[:] = res[m:]
            return
        wu, wl = w[:m], w[m:]
        dt = upper.dtype
        if kind in ("vy1", "vy2"):
            # Yᵀ[A_up; A_low] = Y_upᵀ A_up + Y_lowᵀ A_low
            ya = blas.gemm(self.y[:m].T, upper)
            ya += blas.gemm(self.y[m:].T, lower)
            if k % 2:
                upper *= wu.astype(dt)[:, None]
                lower *= wl.astype(dt)[:, None]
            upper += blas.gemm(self.v[:m], ya)
            lower += blas.gemm(self.v[m:], ya)
            return
        # yty
        if (k - 1) % 2:
            ya = blas.gemm(self.y[:m].T,
                           wu.astype(dt)[:, None] * upper)
            ya += blas.gemm(self.y[m:].T,
                            wl.astype(dt)[:, None] * lower)
        else:
            ya = blas.gemm(self.y[:m].T, upper)
            ya += blas.gemm(self.y[m:].T, lower)
        tya = blas.gemm(self.t, ya)
        if k % 2:
            upper *= wu.astype(dt)[:, None]
            lower *= wl.astype(dt)[:, None]
        upper += blas.gemm(self.y[:m], tya)
        lower += blas.gemm(self.y[m:], tya)


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------

class _AccumulatorBase:
    """Common bookkeeping for the representation accumulators.

    ``dtype`` is the working dtype of the accumulated ``V``/``Y``/``T``
    buffers — float32 accumulators keep the whole Phase-2 application
    (the level-3-rich part of the factorization) in single precision.
    """

    kind = "base"

    def __init__(self, w, dtype=np.float64):
        self.w = signature_vector(w)
        self.dtype = np.dtype(dtype)
        self.k = 0

    @property
    def n(self) -> int:
        return self.w.shape[0]

    def _check(self, refl: HyperbolicHouseholder) -> None:
        if refl.n != self.n:
            raise ShapeError(
                f"reflector size {refl.n} != accumulator size {self.n}")
        if refl.w is not self.w and not np.array_equal(refl.w, self.w):
            raise ShapeError("reflector signature differs from accumulator")

    def append(self, refl: HyperbolicHouseholder) -> None:
        raise NotImplementedError

    def finish(self) -> BlockReflector:
        raise NotImplementedError


class VYFirstAccumulator(_AccumulatorBase):
    """Lemma 4.0.1: ``V ← [W V, x]``, ``z = β xᵀ U^{(k)}`` (2 gemv/step).

    ``V``/``Y`` live in capacity-doubling buffers so appends never copy
    the whole factor.
    """

    kind = "vy1"

    def __init__(self, w, dtype=np.float64):
        super().__init__(w, dtype)
        # Fortran order: the live ``[:, :k]`` slice stays F-contiguous,
        # so per-append rank-1 updates run as in-place BLAS ger calls.
        self._buf_v = np.empty((self.n, 4), dtype=self.dtype, order="F")
        self._buf_y = np.empty((self.n, 4), dtype=self.dtype, order="F")

    def _grow(self):
        if self.k == self._buf_v.shape[1]:
            nv = np.empty((self.n, 2 * self.k), dtype=self.dtype, order="F")
            nv[:, :self.k] = self._buf_v
            self._buf_v = nv
            ny = np.empty((self.n, 2 * self.k), dtype=self.dtype, order="F")
            ny[:, :self.k] = self._buf_y
            self._buf_y = ny

    @property
    def _v(self):
        return self._buf_v[:, :self.k]

    @property
    def _y(self):
        return self._buf_y[:, :self.k]

    def append(self, refl: HyperbolicHouseholder) -> None:
        """Fold one more reflector into the representation."""
        self._check(refl)
        x, beta, w = refl.x, refl.beta, self.w
        self._grow()
        if self.k == 0:
            self._buf_v[:, 0] = x
            self._buf_y[:, 0] = beta * x
            self.k = 1
            return
        v, y = self._v, self._y
        # z = β xᵀ U^{(k)} = β (xᵀ Wᵏ + (xᵀ V) Yᵀ)
        xv = blas.gemv(v, x, trans=True)
        z = blas.gemv(y, xv)  # Y (Vᵀx): (xᵀV)Yᵀ as a column
        z += _apply_wpow(w, self.k, x)
        blas.charge(z.shape[0], "scal")
        z *= beta
        wf = w.astype(v.dtype)
        v *= wf[:, None]                  # W V_k sign pass, in place
        blas.charge(self.n * self.k, "scal")
        k = self.k
        self._buf_v[:, k] = x
        self._buf_y[:, k] = z
        self.k += 1

    def finish(self) -> BlockReflector:
        """Freeze the accumulated product as a BlockReflector."""
        return BlockReflector(self.kind, self.w, self.k,
                              v=self._v.copy(), y=self._y.copy())


class VYSecondAccumulator(_AccumulatorBase):
    """Lemma 4.0.2: ``V ← [U_{k+1} V, x]``, ``z = β xᵀ Wᵏ`` (gemv+ger).

    ``V``/``Y`` live in capacity-doubling buffers so appends never copy
    the whole factor.
    """

    kind = "vy2"

    def __init__(self, w, dtype=np.float64):
        super().__init__(w, dtype)
        # Fortran order: the live ``[:, :k]`` slice stays F-contiguous,
        # so per-append rank-1 updates run as in-place BLAS ger calls.
        self._buf_v = np.empty((self.n, 4), dtype=self.dtype, order="F")
        self._buf_y = np.empty((self.n, 4), dtype=self.dtype, order="F")

    def _grow(self):
        if self.k == self._buf_v.shape[1]:
            nv = np.empty((self.n, 2 * self.k), dtype=self.dtype, order="F")
            nv[:, :self.k] = self._buf_v
            self._buf_v = nv
            ny = np.empty((self.n, 2 * self.k), dtype=self.dtype, order="F")
            ny[:, :self.k] = self._buf_y
            self._buf_y = ny

    @property
    def _v(self):
        return self._buf_v[:, :self.k]

    @property
    def _y(self):
        return self._buf_y[:, :self.k]

    def append(self, refl: HyperbolicHouseholder) -> None:
        """Fold one more reflector into the representation."""
        self._check(refl)
        x, beta, w = refl.x, refl.beta, self.w
        self._grow()
        if self.k == 0:
            self._buf_v[:, 0] = x
            self._buf_y[:, 0] = beta * x
            self.k = 1
            return
        z = _apply_wpow(w, self.k, x).copy()
        blas.charge(z.shape[0], "scal")
        z *= beta
        # U_{k+1} V = W V + β x (xᵀ V): sign pass + gemv + rank-1 update.
        v = self._v
        xv = blas.gemv(v, x, trans=True)
        wf = w.astype(v.dtype)
        v *= wf[:, None]
        blas.charge(self.n * self.k, "scal")
        blas.ger(beta, x, xv, v)
        k = self.k
        self._buf_v[:, k] = x
        self._buf_y[:, k] = z
        self.k += 1

    def finish(self) -> BlockReflector:
        """Freeze the accumulated product as a BlockReflector."""
        return BlockReflector(self.kind, self.w, self.k,
                              v=self._v.copy(), y=self._y.copy())


class YTYAccumulator(_AccumulatorBase):
    """Lemma 4.0.3: ``Y ← [W Y, x]``, ``T ← [[T, 0], [a, b]]``.

    Cheapest to build; ``Y`` and ``T`` together need about half the
    storage of the VY pairs, which is why the paper prefers it when the
    transformation must be broadcast between processors.
    """

    kind = "yty"

    def __init__(self, w, dtype=np.float64):
        super().__init__(w, dtype)
        self._buf_y = np.empty((self.n, 4), dtype=self.dtype)
        self._buf_t = np.zeros((4, 4), dtype=self.dtype)

    def _grow(self):
        if self.k == self._buf_y.shape[1]:
            ny = np.empty((self.n, 2 * self.k), dtype=self.dtype)
            ny[:, :self.k] = self._buf_y
            self._buf_y = ny
            nt = np.zeros((2 * self.k, 2 * self.k), dtype=self.dtype)
            nt[:self.k, :self.k] = self._buf_t[:self.k, :self.k]
            self._buf_t = nt

    @property
    def _y(self):
        return self._buf_y[:, :self.k]

    @property
    def _t(self):
        return self._buf_t[:self.k, :self.k]

    def append(self, refl: HyperbolicHouseholder) -> None:
        """Fold one more reflector into the representation."""
        self._check(refl)
        x, beta, w = refl.x, refl.beta, self.w
        self._grow()
        if self.k == 0:
            self._buf_y[:, 0] = x
            self._buf_t[0, 0] = beta
            self.k = 1
            return
        k = self.k
        y, t = self._y, self._t
        xy = blas.gemv(y, x, trans=True)          # xᵀY (length k)
        a = blas.gemv(t, xy, trans=True)          # (xᵀY)T row
        blas.charge(k, "scal")
        a *= beta
        wf = w.astype(y.dtype)
        y *= wf[:, None]
        blas.charge(self.n * k, "scal")
        self._buf_y[:, k] = x
        self._buf_t[k, :k] = a
        self._buf_t[k, k] = beta
        self.k += 1

    def finish(self) -> BlockReflector:
        """Freeze the accumulated product as a BlockReflector."""
        return BlockReflector(self.kind, self.w, self.k,
                              y=self._y.copy(), t=self._t.copy())


class UnblockedAccumulator(_AccumulatorBase):
    """No blocking: reflectors kept separate, applied sequentially."""

    kind = "unblocked"

    def __init__(self, w, dtype=np.float64):
        super().__init__(w, dtype)
        self._reflectors: list[HyperbolicHouseholder] = []

    def append(self, refl: HyperbolicHouseholder) -> None:
        """Fold one more reflector into the representation."""
        self._check(refl)
        self._reflectors.append(refl)
        self.k += 1

    def finish(self) -> BlockReflector:
        """Freeze the accumulated product as a BlockReflector."""
        return BlockReflector(self.kind, self.w, self.k,
                              reflectors=list(self._reflectors))


class DenseAccumulator(_AccumulatorBase):
    """Naive scheme: multiply the reflectors into an explicit dense ``U``.

    Eq. (25) shows this costs ``≈ 6m³`` flops to build versus ``≈ 2m³``
    for the structured forms — kept as the reference/ablation point.
    """

    kind = "dense"

    def __init__(self, w, dtype=np.float64):
        super().__init__(w, dtype)
        self._u = np.eye(self.n, dtype=self.dtype)

    def append(self, refl: HyperbolicHouseholder) -> None:
        """Fold one more reflector into the representation."""
        self._check(refl)
        refl.apply_left(self._u, out=self._u)
        blas.charge(2 * self.n * self.n, "gemm")  # dense accumulate cost
        self.k += 1

    def finish(self) -> BlockReflector:
        """Freeze the accumulated product as a BlockReflector."""
        return BlockReflector(self.kind, self.w, self.k,
                              u_dense=np.array(self._u))


REPRESENTATIONS = ("vy1", "vy2", "yty", "unblocked", "dense")

_ACCUMULATORS = {
    "vy1": VYFirstAccumulator,
    "vy2": VYSecondAccumulator,
    "yty": YTYAccumulator,
    "unblocked": UnblockedAccumulator,
    "dense": DenseAccumulator,
}


def make_accumulator(representation: str, w,
                     dtype=np.float64) -> _AccumulatorBase:
    """Factory for a reflector-product accumulator by representation name.

    ``dtype`` sets the working dtype of the accumulated buffers (see
    :class:`_AccumulatorBase`).
    """
    try:
        cls = _ACCUMULATORS[representation]
    except KeyError:
        raise ShapeError(
            f"unknown representation {representation!r}; expected one of "
            f"{REPRESENTATIONS}") from None
    return cls(w, dtype)
