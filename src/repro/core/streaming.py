"""Streaming Schur factorization: O(m·n) memory consumers.

The block Schur recursion produces ``R`` one block row at a time from a
``2m × n`` generator.  Consumers that only need a *forward* pass over
the rows — whitening ``y = R⁻ᵀ b``, the log-determinant, Gaussian
log-likelihoods of stationary (block) time series — therefore never
need the ``O(n²)`` triangular factor at all.  This module exposes the
row stream and those consumers.

This is the natural large-``n`` mode of the algorithm (the full factor
of a 10⁵-point Toeplitz matrix would need 40 GB; the stream needs a few
megabytes).
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.generator import Generator, spd_generator
from repro.core.schur_spd import SchurOptions, eliminate_block
from repro.errors import NotPositiveDefiniteError, ShapeError
from repro.errors import BreakdownError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.lintools import solve_upper_triangular

__all__ = [
    "iter_r_block_rows",
    "streaming_whiten",
    "streaming_logdet",
    "gaussian_loglikelihood",
]


def iter_r_block_rows(t: SymmetricBlockToeplitz | Generator, *,
                      options: SchurOptions | None = None
                      ) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(i, R[i·m:(i+1)·m, i·m:])`` for ``i = 0 … p−1``.

    The yielded array is a *live view* into the working generator —
    consume (or copy) it before advancing the iterator.  Total extra
    memory is the ``2m × n`` generator.
    """
    opts = options or SchurOptions()
    if isinstance(t, Generator):
        g = t.copy()
    else:
        g = spd_generator(t)
    m, p = g.block_size, g.num_blocks
    n = m * p
    top = g.gen[:m]
    bot = g.gen[m:]
    yield 0, top
    for i in range(1, p):
        q = n - i * m
        upper = top[:, :q]
        lower = bot[:, i * m:]
        try:
            eliminate_block(upper, lower, g.w,
                            representation=opts.representation,
                            panel=opts.panel,
                            breakdown_tol=opts.breakdown_tol,
                            pivot_sign_fixup=opts.normalize_diagonal)
        except BreakdownError as exc:
            raise NotPositiveDefiniteError(
                f"matrix is not positive definite: {exc}") from exc
        yield i, upper


def streaming_whiten(t: SymmetricBlockToeplitz, b: np.ndarray, *,
                     options: SchurOptions | None = None,
                     return_logdet: bool = False):
    """Solve ``Rᵀ y = b`` (whitening) without storing ``R``.

    Forward block substitution folded into the row stream: when block
    row ``i`` arrives, ``y_i`` is solved from the diagonal block and the
    row's trailing blocks push their contribution onto the running
    right-hand side.  ``O(m n)`` memory, same flops as a stored-factor
    forward solve.

    Returns ``y`` (and ``log det T`` when ``return_logdet``).
    """
    n = t.order
    m = t.block_size
    b = np.asarray(b, dtype=np.float64)
    single = b.ndim == 1
    if single:
        b = b[:, None]
    if b.shape[0] != n:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {n}")
    rhs = np.array(b)          # running (b − Σ R_{J,I}ᵀ y_J)
    y = np.empty_like(b)
    logdet = 0.0
    for i, row in iter_r_block_rows(t, options=options):
        lo = i * m
        rii = row[:, :m]
        yi = solve_upper_triangular(rii, rhs[lo:lo + m], trans=True)
        y[lo:lo + m] = yi
        if row.shape[1] > m:
            rhs[lo + m:] -= row[:, m:].T @ yi
        logdet += 2.0 * float(np.sum(np.log(np.abs(np.diag(rii)))))
    y = y[:, 0] if single else y
    if return_logdet:
        return y, logdet
    return y


def streaming_logdet(t: SymmetricBlockToeplitz, *,
                     options: SchurOptions | None = None) -> float:
    """``log det T`` in ``O(m n)`` memory."""
    m = t.block_size
    logdet = 0.0
    for _i, row in iter_r_block_rows(t, options=options):
        logdet += 2.0 * float(np.sum(np.log(np.abs(np.diag(row[:, :m])))))
    return logdet


def gaussian_loglikelihood(t: SymmetricBlockToeplitz,
                           x: np.ndarray, *,
                           options: SchurOptions | None = None) -> float:
    """Log-density of ``x ~ N(0, T)`` for block Toeplitz ``T``.

    ``−½ (xᵀT⁻¹x + log det T + n log 2π)`` with ``xᵀT⁻¹x = ‖R⁻ᵀx‖²``
    computed by the streaming whitener — the standard exact-likelihood
    evaluation for stationary (vector) Gaussian processes, in ``O(m n²)``
    time and ``O(m n)`` memory.
    """
    x = np.asarray(x, dtype=np.float64)
    n = t.order
    if x.shape != (n,):
        raise ShapeError(f"x must have shape ({n},), got {x.shape}")
    y, logdet = streaming_whiten(t, x, options=options,
                                 return_logdet=True)
    quad = float(y @ y)
    return -0.5 * (quad + logdet + n * math.log(2.0 * math.pi))
