"""Generalized Schur factorization for low displacement-rank matrices.

The paper's algorithm is the block-Toeplitz instance of the displacement
framework of Kailath, Kung & Morf [8]: any symmetric matrix whose
*displacement* ``∇A = A − ZᵀAZ`` (``Z`` the scalar upshift) has low rank
``α`` admits a compact generator

    ``∇A = Gᵀ · diag(w) · G``,   ``G ∈ ℝ^{α×n}``,  ``w ∈ {±1}^α``

and an ``O(α n²)`` Schur-type factorization ``A = Rᵀ D R``:

repeat for each column ``i``: reduce the generator's ``i``-th column to
a single ``±axis`` with a hyperbolic Householder reflector, emit the
pivot row as row ``i`` of ``R``, and shift that row one place right.
For a symmetric Toeplitz matrix (``α = 2``) this reduces exactly to the
classical Schur algorithm of Sections 2–5.

This module provides the general-α machinery: extracting a minimal
generator from a dense matrix, synthesizing matrices of prescribed
displacement rank, and the factorization itself (with the same
sign-interchange handling as the indefinite block algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blas import primitives as blas
from repro.core.hyperbolic import reflector_annihilating
from repro.core.signature import signature_vector
from repro.errors import BreakdownError, ShapeError, SingularMinorError
from repro.utils.lintools import solve_upper_triangular
from repro.utils.validation import as_float_matrix, check_symmetric

__all__ = [
    "scalar_displacement",
    "displacement_rank",
    "generator_from_dense",
    "matrix_from_generator",
    "GeneralizedFactorization",
    "generalized_schur_factor",
]


def scalar_displacement(a: np.ndarray) -> np.ndarray:
    """``∇A = A − ZᵀAZ`` with the scalar upshift ``Z`` (eq. 3, m = 1)."""
    a = as_float_matrix(a, "a")
    out = np.array(a)
    out[1:, 1:] -= a[:-1, :-1]
    return out


def displacement_rank(a: np.ndarray, *, tol: float = 1e-10) -> int:
    """Numerical rank of the scalar displacement of ``a``."""
    s = np.linalg.svd(scalar_displacement(a), compute_uv=False)
    if s.size == 0 or s[0] == 0:
        return 0
    return int(np.sum(s > tol * s[0]))


def generator_from_dense(a: np.ndarray, *, tol: float = 1e-10
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Minimal generator ``(G, w)`` with ``∇A = Gᵀ diag(w) G``.

    Computed from the eigendecomposition of the (symmetric) displacement:
    rows are ``√|λ_i| vᵢᵀ`` with signature ``sign(λ_i)``, positive rows
    first.
    """
    a = as_float_matrix(a, "a")
    check_symmetric(a, "a")
    disp = scalar_displacement(a)
    lam, vec = np.linalg.eigh(disp)
    scale = float(np.max(np.abs(lam))) if lam.size else 0.0
    keep = np.abs(lam) > tol * max(scale, 1e-300)
    lam, vec = lam[keep], vec[:, keep]
    order = np.argsort(-lam)  # positive part first
    lam, vec = lam[order], vec[:, order]
    g = (np.sqrt(np.abs(lam))[None, :] * vec).T
    w = np.where(lam > 0, 1, -1).astype(np.int8)
    return np.ascontiguousarray(g), signature_vector(w)


def matrix_from_generator(g: np.ndarray, w) -> np.ndarray:
    """Unique symmetric ``A`` with ``A − ZᵀAZ = Gᵀ diag(w) G``.

    Solves the Stein recursion row by row (``Z`` is nilpotent so the
    solution is the finite sum ``A = Σ_k Zᵀᵏ ∇ Zᵏ``).
    """
    g = as_float_matrix(g, "g")
    w = signature_vector(w)
    if g.shape[0] != w.shape[0]:
        raise ShapeError(
            f"generator has {g.shape[0]} rows, signature {w.shape[0]}")
    n = g.shape[1]
    disp = g.T @ (w.astype(np.float64)[:, None] * g)
    # accumulate A[i, j] = Σ_{k ≤ min(i,j)} ∇[i−k, j−k]
    a = np.array(disp)
    cur = disp
    for _ in range(1, n):
        nxt = np.zeros_like(disp)
        nxt[1:, 1:] = cur[:-1, :-1]
        a += nxt
        cur = nxt
        if not np.any(nxt):
            break
    return a


@dataclass
class GeneralizedFactorization:
    """``A = Rᵀ D R`` from the generalized Schur algorithm."""

    r: np.ndarray
    d: np.ndarray
    displacement_rank: int
    interchange_count: int = 0
    history: list = field(default_factory=list)

    @property
    def order(self) -> int:
        return self.r.shape[0]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` via the two triangular sweeps."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.order:
            raise ShapeError(
                f"b has {b.shape[0]} rows, expected {self.order}")
        y = solve_upper_triangular(self.r, b, trans=True)
        y = self.d.astype(np.float64) * y if y.ndim == 1 else \
            self.d.astype(np.float64)[:, None] * y
        return solve_upper_triangular(self.r, y)

    def reconstruct(self) -> np.ndarray:
        """Dense ``Rᵀ D R`` (diagnostic)."""
        return self.r.T @ (self.d.astype(np.float64)[:, None] * self.r)


def generalized_schur_factor(g: np.ndarray, w, n: int | None = None, *,
                             zero_tol: float = 1e-13
                             ) -> GeneralizedFactorization:
    """Factor the symmetric matrix defined by generator ``(G, w)``.

    Parameters
    ----------
    g : (α, n) array
        Generator rows (copied; not modified).
    w : (α,) ±1 array
        Generator signature.
    n : int
        Matrix order (defaults to ``g.shape[1]``).
    zero_tol : float
        Relative threshold declaring a pivot column's hyperbolic norm
        zero (singular leading minor → :class:`SingularMinorError`; use
        the Toeplitz-specific perturbation path for those systems).

    Notes
    -----
    Cost is ``O(α n²)``; for ``α ≪ n`` this beats the dense ``O(n³)``.
    The target row at each step is chosen among the rows whose signature
    matches the sign of the pivot's hyperbolic norm (largest entry wins —
    the generalized interchange rule), so symmetric indefinite matrices
    with nonsingular leading minors factor directly.
    """
    g = as_float_matrix(g, "g", copy=True)
    w = signature_vector(w).copy()
    alpha = g.shape[0]
    if n is None:
        n = g.shape[1]
    if g.shape[1] != n:
        raise ShapeError(f"generator width {g.shape[1]} != n={n}")
    wf = w.astype(np.float64)
    r = np.zeros((n, n))
    d = np.zeros(n, dtype=np.int8)
    scale0 = float(np.max(np.abs(g))) ** 2 or 1.0
    swaps = 0
    for i in range(n):
        col = g[:, i]
        h = float(np.dot(wf * col, col))
        if abs(h) <= zero_tol * scale0:
            raise SingularMinorError(
                f"(numerically) singular leading principal minor at "
                f"step {i} (|uᵀWu| = {abs(h):.3e})", step=i)
        sign = 1 if h > 0 else -1
        cands = np.nonzero(w == sign)[0]
        if cands.size == 0:
            raise BreakdownError(
                f"no generator row of signature {sign:+d} at step {i}")
        pos = int(cands[np.argmax(np.abs(col[cands]))])
        if pos != int(cands[0]):
            swaps += 1
        refl, _sigma = reflector_annihilating(col, w, pos)
        refl.apply_left(g[:, i:], out=g[:, i:])
        blas.charge(4 * alpha * (n - i), "generalized-apply")
        # exact annihilation off the pivot row
        piv = g[pos, i]
        g[:, i] = 0.0
        g[pos, i] = piv
        row = g[pos, i:]
        if row[0] < 0:
            row *= -1.0
        r[i, i:] = row
        d[i] = w[pos]
        # shift the emitted pivot row one place right
        if i + 1 < n:
            g[pos, i + 1:] = r[i, i:n - 1]
        g[pos, i] = 0.0
    return GeneralizedFactorization(r=r, d=d, displacement_rank=alpha,
                                    interchange_count=swaps)
