"""Condition-number estimation from the structured factorization.

The refinement analysis of Section 8 hinges on
``γ = ‖ΔT·T⁻¹‖ ≤ (‖ΔT‖/‖T‖)·cond(T)`` (eq. 46) being small.  This
module estimates ``cond₁(T) = ‖T‖₁ ‖T⁻¹‖₁`` without forming ``T⁻¹``:
``‖T‖₁`` comes from the stored first block row; ``‖T⁻¹‖₁`` from the
Hager–Higham power iteration driven by factored solves (``O(1)`` solves
of ``O(n²)`` each — far below the ``O(n³)`` of an explicit inverse).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["one_norm", "invnorm_estimate", "condest"]


def one_norm(t) -> float:
    """Exact ``‖T‖₁`` (max column sum) from the defining blocks.

    Column ``j`` of a block Toeplitz matrix touches blocks ``B_{j−i}``;
    the column sums are assembled in ``O(m n)`` from the defining block
    row/column without densifying.  Works for symmetric
    (``top_blocks``) and general (``first_block_row``/``…_col``)
    operators alike.
    """
    m, p = t.block_size, t.num_blocks
    if hasattr(t, "top_blocks"):
        # abs-column-sums of each defining block and of its transpose
        upper = [np.abs(b).sum(axis=0) for b in t.top_blocks]   # T̂_{d+1}
        lower = [np.abs(b.T).sum(axis=0) for b in t.top_blocks]  # T̂ᵀ
    else:
        upper = [np.abs(b).sum(axis=0) for b in t.first_block_row]
        lower = [np.abs(b).sum(axis=0) for b in t.first_block_col]
    best = 0.0
    for j in range(p):
        s = np.zeros(m)
        for i in range(p):
            d = j - i
            s += upper[d] if d >= 0 else lower[-d]
        best = max(best, float(np.max(s)))
    return best


def invnorm_estimate(solve, n: int, *, max_iter: int = 8,
                     seed: int = 0) -> float:
    """Hager–Higham estimate of ``‖A⁻¹‖₁`` given a ``solve`` callable.

    For symmetric ``A``, ``A⁻ᵀ = A⁻¹`` so a single solve per iteration
    suffices.  Lower bound, usually within a small factor of the truth.
    """
    if n <= 0:
        raise ShapeError(f"n must be positive, got {n}")
    x = np.full(n, 1.0 / n)
    est = 0.0
    last_sign = np.zeros(n)
    for _ in range(max_iter):
        y = solve(x)
        est_new = float(np.sum(np.abs(y)))
        sign = np.sign(y)
        sign[sign == 0] = 1.0
        if np.array_equal(sign, last_sign):
            break
        last_sign = sign
        z = solve(sign)
        j = int(np.argmax(np.abs(z)))
        if float(np.abs(z[j])) <= float(z @ x):
            est = max(est, est_new)
            break
        x = np.zeros(n)
        x[j] = 1.0
        est = max(est, est_new)
    # final refinement with the classic alternating-sign probe
    v = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1))
                  for i in range(n)])
    est = max(est, 2.0 * float(np.sum(np.abs(solve(v)))) / (3.0 * n))
    return est


def condest(t: SymmetricBlockToeplitz, factorization=None, *,
            max_iter: int = 8) -> float:
    """Estimate ``cond₁(T)`` using a (possibly precomputed) factorization.

    When no factorization is supplied, the SPD path is tried first and
    the indefinite extension used as the fallback.  A reduced-precision
    factorization works fine here — the estimate only needs an order of
    magnitude (this is what the engine's mixed-precision admission check
    leans on).
    """
    if factorization is None:
        from repro.core.schur_spd import schur_spd_factor
        from repro.core.schur_indefinite import schur_indefinite_factor
        from repro.errors import NotPositiveDefiniteError
        try:
            factorization = schur_spd_factor(t)
        except NotPositiveDefiniteError:
            factorization = schur_indefinite_factor(t)
    inv = invnorm_estimate(factorization.solve, t.order,
                           max_iter=max_iter)
    return one_norm(t) * inv
