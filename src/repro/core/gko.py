"""Nonsymmetric (block) Toeplitz solves: GKO Cauchy-like LU.

The symmetric algorithm of the paper lives in the displacement framework
of Kailath, Kung & Morf [8]; the same framework yields a fast solver for
*nonsymmetric* block Toeplitz systems (Gohberg–Kailath–Olshevsky):

1. With the φ-cyclic block shifts ``Z_φ``, the Sylvester displacement
   ``Z₁ T − T Z₋₁`` of a block Toeplitz matrix is supported on the first
   block row and last block column only — rank ≤ 2m.
2. The block DFT diagonalizes the cyclic shifts, turning ``T`` into a
   *Cauchy-like* matrix ``C`` with node sets ``{ω^k}`` and ``{θ ω^k}``
   (interleaved roots of unity, never equal):
   ``D₁ C − C D₂ = Ĝ B̂``.
3. Cauchy-like structure survives both Schur complementation and row
   permutation, so an ``O(α n²)`` LU **with partial pivoting** runs
   entirely on the 2m-column generators.

This gives the library a numerically robust fast solver for the
nonsymmetric case that the hyperbolic (symmetric) machinery cannot
address, at the cost of complex arithmetic internally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.precision import complex_working_dtype, validate_precision
from repro.errors import BreakdownError, ShapeError
from repro.toeplitz.block_toeplitz import BlockToeplitz, \
    SymmetricBlockToeplitz
from repro.utils.lintools import as_panel, from_panel

__all__ = [
    "cyclic_displacement_generators",
    "toeplitz_to_cauchy",
    "cauchy_like_lu",
    "CauchyLikeLU",
    "gko_factor",
    "solve_toeplitz_gko",
]


def _as_general(t) -> BlockToeplitz:
    if isinstance(t, SymmetricBlockToeplitz):
        return BlockToeplitz.from_symmetric(t)
    if isinstance(t, BlockToeplitz):
        return t
    raise ShapeError(
        "expected a BlockToeplitz or SymmetricBlockToeplitz matrix")


def cyclic_displacement_generators(t) -> tuple[np.ndarray, np.ndarray]:
    """Rank-2m factorization ``Z₁ T − T Z₋₁ = G B``.

    ``Z_φ`` is the block-cyclic down-shift with ``φ·I`` in the corner.
    The displacement is supported on the first block row and the last
    block column; we return ``G (n × 2m)`` and ``B (2m × n)`` built in
    ``O(m² p)`` directly from the defining blocks.
    """
    t = _as_general(t)
    m, p, n = t.block_size, t.num_blocks, t.order
    if p < 2:
        raise ShapeError("GKO transform needs at least 2 block rows")
    row = t.first_block_row   # B_d, d ≥ 0
    col = t.first_block_col   # B_{−d}

    # ∇ is supported on block row 0 and block column p−1:
    #   ∇[0, j]    = B_{j−p+1} − B_{j+1}          (j ≤ p−2)
    #   ∇[i, p−1]  = B_{p−i} + B_{−i}             (i ≥ 1)
    #   ∇[0, p−1]  = 2 B_0                         (overlap → row part)
    # Exact rank-2m split ∇ = E₀·A + Bc·E_{p−1}ᵀ with Bc's first block 0.
    a = np.zeros((m, n))
    for j in range(p - 1):
        a[:, j * m:(j + 1) * m] = col[p - 1 - j] - row[j + 1]
    a[:, (p - 1) * m:] = 2.0 * row[0]
    bc = np.zeros((n, m))
    for i in range(1, p):
        bc[i * m:(i + 1) * m] = row[p - i] + col[i]
    g = np.zeros((n, 2 * m))
    g[:m, :m] = np.eye(m)
    g[:, m:] = bc
    b = np.zeros((2 * m, n))
    b[:m, :] = a
    b[m:, n - m:] = np.eye(m)
    return g, b


def toeplitz_to_cauchy(t) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray]:
    """Transform to Cauchy-like form: ``D₁ C − C D₂ = Ĝ B̂``.

    Returns ``(ghat, bhat, d1, d2)`` where ``C = (F⊗I) T (D̂⁻¹⊗I)(F*⊗I)``
    never needs to be formed: the LU runs from the generators and nodes.
    """
    t = _as_general(t)
    m, p, n = t.block_size, t.num_blocks, t.order
    g, b = cyclic_displacement_generators(t)
    omega = np.exp(2j * np.pi / p)
    theta = np.exp(1j * np.pi / p)
    d1 = np.repeat(omega ** np.arange(p), m)
    d2 = theta * d1

    f = np.exp(2j * np.pi * np.outer(np.arange(p),
                                     np.arange(p)) / p) / np.sqrt(p)
    dhat = np.repeat(theta ** np.arange(p), m)

    def block_dft(x, conj=False):
        """(F ⊗ I_m) x for column-stacked x (n × k)."""
        fm = f.conj() if conj else f
        xs = x.reshape(p, m, -1)
        return np.einsum("pq,qmr->pmr", fm, xs).reshape(n, -1)

    ghat = block_dft(g.astype(complex))
    # b̂ = B (D̂⁻¹ ⊗ I)(F* ⊗ I): transform the columns of Bᵀ
    btmp = (b.astype(complex) * (1.0 / dhat)[None, :]).T  # n × 2m
    bhat = block_dft(btmp, conj=True).T
    return ghat, bhat, d1, d2


@dataclass
class CauchyLikeLU:
    """``P C = L U`` from :func:`cauchy_like_lu` plus the Toeplitz
    back-transformation data."""

    l: np.ndarray
    u: np.ndarray
    perm: np.ndarray
    block_size: int
    num_blocks: int
    #: Precision the factorization ran at (``"fp64"``/``"fp32"``/``"mixed"``;
    #: both reduced modes factor in complex64 — there is no hyperbolic
    #: elimination here to split from the accumulation).
    precision: str = "fp64"
    #: The ``(ĝ, b̂, d₁, d₂)`` Cauchy-like generators the LU was built
    #: from (complex128, as produced by :func:`toeplitz_to_cauchy`).
    #: ``O(mn)`` data that deterministically rebuilds ``L``/``U``/``perm``
    #: — the compact form the persistent factorization cache stores
    #: instead of the ``O(n²)`` dense factors.  ``None`` for hand-built
    #: instances.
    generators: tuple | None = None

    @property
    def order(self) -> int:
        return self.l.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Real dtype of the solves this factor drives (complex64 → f32)."""
        return np.dtype(np.float32 if self.l.dtype == np.complex64
                        else np.float64)

    def solve_cauchy(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``C y = rhs`` (complex)."""
        import scipy.linalg as sla
        y = rhs[self.perm]
        z = sla.solve_triangular(self.l, y, lower=True,
                                 unit_diagonal=True, check_finite=False)
        return sla.solve_triangular(self.u, z, lower=False,
                                    check_finite=False)

    def _transform_data(self):
        """Cached back-transformation data ``(F, D̂)``.

        Built lazily on first solve and reused for every later one, so
        a batched or repeated :meth:`solve` pays the ``O(p²)`` DFT-matrix
        construction once per factorization rather than per call.
        """
        cached = getattr(self, "_bd_cache", None)
        if cached is None:
            m, p = self.block_size, self.num_blocks
            f = np.exp(2j * np.pi * np.outer(np.arange(p),
                                             np.arange(p)) / p) / np.sqrt(p)
            theta = np.exp(1j * np.pi / p)
            dhat = np.repeat(theta ** np.arange(p), m)
            # Transform data in the factor's dtype so a complex64 LU
            # keeps the whole solve pipeline in single precision.
            cached = (f.astype(self.l.dtype), dhat.astype(self.l.dtype))
            self._bd_cache = cached
        return cached

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve the original block Toeplitz system ``T X = B`` (real).

        ``b`` may be a vector or an ``n × k`` panel; the Cauchy-domain
        triangular sweeps and both block DFTs run across the whole panel
        in single level-3 calls.
        """
        bc, single = as_panel(b, self.order, dtype=self.dtype)
        m, p, n = self.block_size, self.num_blocks, self.order
        f, dhat = self._transform_data()

        def bd(x, conj=False):
            fm = f.conj() if conj else f
            xs = x.reshape(p, m, -1)
            return np.einsum("pq,qmr->pmr", fm, xs).reshape(n, -1)

        rhs = bd(bc.astype(self.l.dtype))      # (F⊗I) b
        z = self.solve_cauchy(rhs)
        x = bd(z, conj=True)                   # (F*⊗I) z
        x = x / dhat[:, None]                  # (D̂⁻¹⊗I)
        imag = float(np.max(np.abs(x.imag)))
        scale = max(1.0, float(np.max(np.abs(x.real))))
        # The imaginary residue sits at rounding level of the factor's
        # precision (accumulated over the O(n²) sweeps).
        imag_tol = 1e-2 if self.l.dtype == np.complex64 else 1e-6
        if imag > imag_tol * scale:
            raise BreakdownError(
                f"solution has non-negligible imaginary part {imag:.2e}")
        return from_panel(np.ascontiguousarray(x.real), single)


def cauchy_like_lu(ghat: np.ndarray, bhat: np.ndarray,
                   d1: np.ndarray, d2: np.ndarray, *,
                   block_size: int = 1,
                   singular_tol: float | None = None,
                   dtype=complex) -> CauchyLikeLU:
    """LU with partial pivoting of the Cauchy-like matrix, ``O(α n²)``.

    The column of the active Schur complement is reconstructed from the
    generators at every step (``C_ij = Ĝ_i B̂_j / (d1_i − d2_j)``), the
    largest entry chosen as pivot, and the generators updated by the
    rank-one GKO recurrences — Cauchy-like structure is closed under
    both operations, which is what makes *pivoted* fast LU possible.

    ``dtype`` is the complex working dtype of the generators and the
    ``L``/``U`` factors (the interleaved root-of-unity nodes stay in
    complex128 — they cost nothing and anchor the pivot geometry);
    ``singular_tol`` defaults to ``1e-13`` in complex128 and ``1e-6`` in
    complex64.
    """
    dtype = np.dtype(dtype)
    if singular_tol is None:
        singular_tol = 1e-6 if dtype == np.complex64 else 1e-13
    g = np.array(ghat, dtype=dtype)
    b = np.array(bhat, dtype=dtype)
    d1 = np.array(d1, dtype=complex)
    d2 = np.asarray(d2, dtype=complex)
    n = g.shape[0]
    if b.shape[1] != n or d1.shape[0] != n or d2.shape[0] != n:
        raise ShapeError("generator/node dimensions disagree")
    l = np.eye(n, dtype=dtype)
    u = np.zeros((n, n), dtype=dtype)
    perm = np.arange(n)
    scale = float(np.max(np.abs(g)) * np.max(np.abs(b))) or 1.0
    for k in range(n):
        colk = (g[k:] @ b[:, k]) / (d1[k:] - d2[k])
        j = int(np.argmax(np.abs(colk)))
        if abs(colk[j]) <= singular_tol * scale:
            raise BreakdownError(
                f"Cauchy-like LU: (numerically) singular at step {k}")
        if j != 0:
            jj = k + j
            g[[k, jj]] = g[[jj, k]]
            d1[[k, jj]] = d1[[jj, k]]
            l[[k, jj], :k] = l[[jj, k], :k]
            perm[[k, jj]] = perm[[jj, k]]
            colk[[0, j]] = colk[[j, 0]]
        piv = colk[0]
        u[k, k] = piv
        if k + 1 < n:
            rowk = (g[k] @ b[:, k + 1:]) / (d1[k] - d2[k + 1:])
            u[k, k + 1:] = rowk
            lcol = colk[1:] / piv
            l[k + 1:, k] = lcol
            g[k + 1:] -= np.outer(lcol, g[k])
            b[:, k + 1:] -= np.outer(b[:, k], rowk / piv)
    return CauchyLikeLU(l=l, u=u, perm=perm, block_size=block_size,
                        num_blocks=n // block_size)


def gko_factor(t, *, precision: str = "fp64") -> CauchyLikeLU:
    """Factor once, solve many: the pivoted Cauchy-like LU of ``T``.

    Returns a :class:`CauchyLikeLU` whose :meth:`~CauchyLikeLU.solve`
    handles any number of right-hand sides at ``O(n²)`` each.
    ``precision="fp32"`` (and ``"mixed"``, which has no separate meaning
    here — there is no hyperbolic elimination to split) runs the LU in
    complex64; route the solve through refinement for fp64 accuracy.
    """
    validate_precision(precision)
    tg = _as_general(t)
    ghat, bhat, d1, d2 = toeplitz_to_cauchy(tg)
    fact = cauchy_like_lu(ghat, bhat, d1, d2, block_size=tg.block_size,
                          dtype=complex_working_dtype(precision))
    fact.precision = precision
    fact.generators = (ghat, bhat, d1, d2)
    return fact


def solve_toeplitz_gko(t, b: np.ndarray) -> np.ndarray:
    """Solve a (possibly nonsymmetric) block Toeplitz system ``T x = b``.

    ``O(m n²)`` with partial pivoting — the robust companion to the
    symmetric Schur solvers for general block Toeplitz systems.
    """
    return gko_factor(t).solve(b)
