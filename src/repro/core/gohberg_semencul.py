"""Gohberg–Semencul inverse representation for symmetric Toeplitz.

The displacement machinery's classical payoff: ``T⁻¹`` of a Toeplitz
matrix is fully described by the single solve ``x = T⁻¹ e₀``.  For
symmetric nonsingular ``T`` with ``x₀ ≠ 0``,

    ``T⁻¹ = (L(x) L(x)ᵀ − L(z) L(z)ᵀ) / x₀``,
    ``z = (0, x_{n−1}, …, x₁)``,

with ``L(v)`` the lower-triangular Toeplitz matrix with first column
``v``.  Triangular Toeplitz products are circular convolutions, so
``T⁻¹ b`` costs ``O(n log n)`` after the one-time ``O(n²)`` Schur solve
— the right tool when ``T⁻¹`` must be applied to many vectors (Kalman
smoothers, covariance whitening pipelines, interpolation weights).
"""

from __future__ import annotations

import numpy as np
import scipy.fft as sfft

from repro.errors import BreakdownError, ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.lintools import as_panel, from_panel

__all__ = ["ToeplitzInverse", "toeplitz_inverse"]


class _LowerToeplitzOp:
    """``L(v)·`` and ``L(v)ᵀ·`` via FFT (causal / anticausal convolution)."""

    def __init__(self, v: np.ndarray):
        self._n = v.shape[0]
        self._nfft = sfft.next_fast_len(2 * self._n - 1)
        self._vf = sfft.rfft(v, n=self._nfft)

    def apply(self, b: np.ndarray) -> np.ndarray:
        """``L(v) B`` for a vector or an ``n × k`` panel (one batched
        FFT over the columns either way)."""
        bf = sfft.rfft(b, n=self._nfft, axis=0)
        out = sfft.irfft((self._vf if b.ndim == 1 else
                          self._vf[:, None]) * bf,
                         n=self._nfft, axis=0)
        return out[:self._n]

    def apply_t(self, b: np.ndarray) -> np.ndarray:
        """``L(v)ᵀ B``: correlate instead of convolve."""
        rev = b[::-1]
        out = self.apply(rev)
        return out[::-1]


class ToeplitzInverse:
    """``T⁻¹`` as a fast operator (Gohberg–Semencul form).

    Build with :func:`toeplitz_inverse`; apply with :meth:`matvec` or
    ``@``.  Each application costs four FFT convolutions.
    """

    def __init__(self, x: np.ndarray, dtype=None):
        x = np.asarray(x, dtype=np.float64 if dtype is None else dtype)
        if x.ndim != 1:
            raise ShapeError("x must be the 1-D first column of T⁻¹")
        if x[0] == 0.0:
            raise BreakdownError(
                "Gohberg–Semencul form needs (T⁻¹)₀₀ ≠ 0")
        self.x = x
        self._n = x.shape[0]
        z = np.concatenate([x[:1] * 0.0, x[:0:-1]])
        self._lx = _LowerToeplitzOp(x)
        self._lz = _LowerToeplitzOp(z)

    @property
    def order(self) -> int:
        return self._n

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the representation (sets application dtype)."""
        return self.x.dtype

    def matvec(self, b: np.ndarray) -> np.ndarray:
        """``T⁻¹ B`` in ``O(k n log n)`` for a vector or ``n × k``
        panel — each term is one batched convolution over all columns.
        Runs in the representation's storage dtype."""
        panel, single = as_panel(b, self._n, dtype=self.x.dtype)
        term1 = self._lx.apply(self._lx.apply_t(panel))
        term2 = self._lz.apply(self._lz.apply_t(panel))
        return from_panel((term1 - term2) / self.x[0], single)

    def __matmul__(self, b):
        return self.matvec(np.asarray(b))

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Alias of :meth:`matvec` — applying ``T⁻¹`` *is* the solve.

        Gives the representation the factorization-object surface the
        engine and refinement expect (``solve``/``dtype``), so it can
        register as the ``"gs"`` engine algorithm and ride the
        factorization caches.
        """
        return self.matvec(b)

    def dense(self) -> np.ndarray:
        """Dense ``T⁻¹`` (diagnostics; ``O(n²)``)."""
        return self.matvec(np.eye(self._n))


def toeplitz_inverse(t: SymmetricBlockToeplitz, *,
                     precision: str = "fp64") -> ToeplitzInverse:
    """Build the fast ``T⁻¹`` operator for a scalar symmetric Toeplitz.

    One structured solve (``O(n²)``, SPD Schur with indefinite +
    refinement fallback) computes ``x = T⁻¹ e₀``; every subsequent
    application is ``O(n log n)``.

    ``precision`` controls both the solve for ``x`` (reduced-precision
    factor + fp64 refinement recovery, so ``x`` itself is accurate) and
    the *storage* dtype of the representation — ``"fp32"`` halves the
    memory and FFT cost of every later application.
    """
    if not isinstance(t, SymmetricBlockToeplitz) or t.block_size != 1:
        raise ShapeError(
            "Gohberg–Semencul inversion implemented for scalar (m = 1) "
            "symmetric Toeplitz matrices")
    from repro.core.precision import validate_precision, working_dtype
    from repro.core.solve import solve
    validate_precision(precision)
    e0 = np.zeros(t.order)
    e0[0] = 1.0
    x = solve(t, e0, precision=precision)
    return ToeplitzInverse(x, dtype=working_dtype(precision))
