"""The paper's closed-form operation-count models (Section 6).

Two families of formulas:

* **blocking flops** — cost of *producing* a block representation of the
  ``k`` reflectors of one elimination step (eqs. 25–28);
* **application flops** — cost of *applying* the block transformation to
  the remaining ``2m × mp`` generator (eqs. 29–32).

plus the Section 6.5 total-cost rule of thumb ``≈ 4 m_s n²`` governing the
structural-vs-algorithmic block size trade-off, and a primitive-level
decomposition of one elimination step used by the machine performance
models (Figure 10 and the T3D experiments).

The polynomial coefficients below are transcribed from the paper; the
benchmark ``bench_flop_models`` checks them against instrumented counts
from :mod:`repro.blas.primitives`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import ShapeError

__all__ = [
    "blocking_flops",
    "application_flops",
    "step_flops",
    "factorization_flops",
    "nominal_total_flops",
    "PRECISION_FLOP_WEIGHT",
    "precision_weight",
    "PrimitiveCall",
    "primitive_calls_for_step",
    "primitive_calls_for_factorization",
]

#: Relative time-per-flop of each precision mode versus fp64.  A flop is
#: a flop regardless of width — what changes is the memory traffic per
#: operand, so fp32 streams twice the elements per byte and the Hockney
#: flop-time term halves.  ``"mixed"`` keeps fp64 storage (only the
#: pivot columns are rounded), so it is charged at full weight.
PRECISION_FLOP_WEIGHT = {"fp64": 1.0, "fp32": 0.5, "mixed": 1.0}


def precision_weight(precision: str) -> float:
    """Time weight of ``precision`` relative to fp64 (see above)."""
    try:
        return PRECISION_FLOP_WEIGHT[precision]
    except KeyError:
        raise ShapeError(
            f"unknown precision {precision!r}; expected one of "
            f"{tuple(PRECISION_FLOP_WEIGHT)}") from None


def _check_mk(m: int, k: int | None) -> int:
    if m <= 0:
        raise ShapeError(f"block size must be positive, got {m}")
    k = m if k is None else int(k)
    if not (1 <= k <= m):
        raise ShapeError(f"panel width k={k} must be in [1, {m}]")
    return k


def blocking_flops(representation: str, m: int, k: int | None = None) -> float:
    """Flops to build the block representation of ``k`` reflectors.

    ``representation`` ∈ {"dense", "vy1", "vy2", "yty"}; ``k`` defaults to
    the full block size ``m``.  Eqs. (25)–(28) of the paper.
    """
    k = _check_mk(m, k)
    if representation in ("dense", "u"):
        # eq. (25)
        return (4 * m * m * k + 2 * m * k * k - 3 * m * m
                + 4 * m * k + 0.5 * k * k + m + 10.5 * k)
    if representation == "vy1":
        # eq. (26)
        return (2 * m * k * k + k ** 3 / 3.0 + 3.5 * m * k
                + 0.25 * k * k - m + 9 * k)
    if representation == "vy2":
        # eq. (27)
        return (2 * m * k * k + 2.5 * m * k + 0.5 * k * k
                - 0.5 * m + 8.5 * k)
    if representation == "yty":
        # eq. (28)
        return (m * k * k + k ** 3 / 3.0 + 3.5 * m * k
                + 0.25 * k * k + 9 * k - m - 1)
    if representation == "unblocked":
        # No blocking work beyond forming the reflector vectors
        # (the (3m+8)-flop setup per reflector, Section 6.2).
        return (3 * m + 8) * k
    raise ShapeError(f"unknown representation {representation!r}")


def application_flops(representation: str, m: int, p: int,
                      k: int | None = None) -> float:
    """Flops to apply the block transformation to a ``2m × mp`` generator.

    ``p`` is the width of the *remainder* of the generator in blocks
    (``p = r − j − 1`` at step ``j``).  Eqs. (29)–(32).
    """
    k = _check_mk(m, k)
    if p < 0:
        raise ShapeError(f"generator width p must be ≥ 0, got {p}")
    mp = m * p
    if representation in ("dense", "u"):
        # eq. (29)
        return 2 * m ** 3 * p + 4 * m * m * p * k + mp * k * k + mp * k
    if representation == "vy1":
        # eq. (30)
        base = 4 * m * m * p * k + mp * k * k + 3 * mp * k
        return base + (m * m * p if k % 2 == 1 else 0)
    if representation == "vy2":
        # eq. (31)
        base = 4 * m * m * p * k + mp * k * k + 2 * mp * k
        return base + (m * m * p if k % 2 == 1 else 0)
    if representation == "yty":
        # eq. (32)
        return 4 * m * m * p * k + mp * k * k + m * m * p + 4 * mp * k
    if representation == "unblocked":
        # k sequential reflectors, each a gemv + rank-1 over 2m × mp.
        return k * (4 * m * mp + 2 * mp)
    raise ShapeError(f"unknown representation {representation!r}")


def step_flops(representation: str, m: int, p_active: int,
               k: int | None = None) -> float:
    """Blocking + application cost of one block elimination step.

    With two-level blocking (``k < m``) the step runs ``⌈m/k⌉`` panels,
    each built over the ``2m`` window and applied to the remaining width.
    """
    kk = _check_mk(m, k)
    panels = ceil(m / kk)
    total = 0.0
    for j in range(panels):
        kj = min(kk, m - j * kk)
        total += blocking_flops(representation, m, kj)
        total += application_flops(representation, m, p_active, kj)
    return total


def factorization_flops(n: int, m: int, *, representation: str = "vy2",
                        k: int | None = None) -> float:
    """Model total for factoring an ``n × n`` matrix with block size ``m``.

    Sums the per-step model over the ``p − 1`` elimination steps with the
    generator remainder shrinking by one block per step.
    """
    if n % m != 0:
        raise ShapeError(f"n={n} not a multiple of m={m}")
    p = n // m
    total = 0.0
    for j in range(1, p):
        total += step_flops(representation, m, p - j, k)
    return total


def nominal_total_flops(n: int, m: int) -> float:
    """The paper's Section 6.5 rule of thumb: ``≈ 4 m n²``.

    Used for the block-size trade-off discussion (the cost of forgoing
    structure grows linearly in the algorithmic block size ``m_s``).
    """
    return 4.0 * m * n * n


# ----------------------------------------------------------------------
# Primitive-level decomposition (feeds the machine performance models)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PrimitiveCall:
    """One BLAS primitive invocation with its operand shape.

    ``name`` ∈ {dot, axpy, scal, gemv, ger, gemm, trsm}; ``shape`` is the
    defining dimension tuple — ``(n,)`` for level 1, ``(m, n)`` for level
    2, ``(m, n, k)`` for ``C(m×n) += A(m×k) B(k×n)``.
    """

    name: str
    shape: tuple[int, ...]

    @property
    def flops(self) -> float:
        s = self.shape
        if self.name == "dot":
            return 2 * s[0] - 1
        if self.name == "axpy":
            return 2 * s[0]
        if self.name == "scal":
            return s[0]
        if self.name in ("gemv", "ger"):
            return 2 * s[0] * s[1]
        if self.name == "gemm":
            return 2 * s[0] * s[1] * s[2]
        if self.name == "trsm":
            return s[0] * s[0] * s[1]
        raise ShapeError(f"unknown primitive {self.name!r}")


def primitive_calls_for_step(m: int, width: int, *,
                             representation: str = "vy2",
                             k: int | None = None) -> list[PrimitiveCall]:
    """Primitive mix of one elimination step on a ``2m × width`` pair.

    ``width`` is in scalar columns (``p_active · m``).  The decomposition
    follows the implementation in :mod:`repro.core.schur_spd`: per
    reflector a dot + panel gemv/ger, per accumulation step the lemma's
    recurrences, per panel one pair of gemms against the trailing columns.
    The machine models price each call by shape, which is exactly how the
    shape-sensitivity of Figure 10 enters.
    """
    kk = _check_mk(m, k)
    n2 = 2 * m
    calls: list[PrimitiveCall] = []
    panels = ceil(m / kk)
    for jpanel in range(panels):
        pstart = jpanel * kk
        pend = min(pstart + kk, m)
        kj = pend - pstart
        for idx, col in enumerate(range(pstart, pend)):
            # reflector setup: hyperbolic norm over the (m+1)-support
            calls.append(PrimitiveCall("dot", (m + 1,)))
            # panel sequential update on the remaining panel columns
            pw = pend - col
            calls.append(PrimitiveCall("gemv", (m, pw)))   # xᵀ·lower
            calls.append(PrimitiveCall("axpy", (pw,)))     # pivot row
            calls.append(PrimitiveCall("ger", (m, pw)))    # lower update
            # accumulation recurrence (size grows with idx)
            if idx > 0:
                if representation == "vy1":
                    calls.append(PrimitiveCall("gemv", (n2, idx)))
                    calls.append(PrimitiveCall("gemv", (n2, idx)))
                    calls.append(PrimitiveCall("scal", (n2 * idx,)))
                elif representation == "vy2":
                    calls.append(PrimitiveCall("gemv", (n2, idx)))
                    calls.append(PrimitiveCall("ger", (n2, idx)))
                    calls.append(PrimitiveCall("scal", (n2 * idx,)))
                elif representation == "yty":
                    calls.append(PrimitiveCall("gemv", (n2, idx)))
                    calls.append(PrimitiveCall("gemv", (idx, idx)))
                    calls.append(PrimitiveCall("scal", (n2 * idx,)))
                elif representation in ("dense", "u"):
                    calls.append(PrimitiveCall("gemv", (n2, n2)))
                    calls.append(PrimitiveCall("ger", (n2, n2)))
        trailing = width - pend
        if trailing <= 0:
            continue
        if representation in ("vy1", "vy2"):
            calls.append(PrimitiveCall("gemm", (kj, trailing, n2)))  # YᵀA
            calls.append(PrimitiveCall("gemm", (n2, trailing, kj)))  # V·
        elif representation == "yty":
            calls.append(PrimitiveCall("gemm", (kj, trailing, n2)))  # YᵀWA
            calls.append(PrimitiveCall("gemm", (kj, trailing, kj)))  # T·
            calls.append(PrimitiveCall("gemm", (n2, trailing, kj)))  # Y·
        elif representation in ("dense", "u"):
            calls.append(PrimitiveCall("gemm", (n2, trailing, n2)))
        elif representation == "unblocked":
            for _ in range(kj):
                calls.append(PrimitiveCall("gemv", (m, trailing)))
                calls.append(PrimitiveCall("ger", (m, trailing)))
                calls.append(PrimitiveCall("axpy", (trailing,)))
    return calls


def primitive_calls_for_factorization(n: int, m: int, *,
                                      representation: str = "vy2",
                                      k: int | None = None
                                      ) -> list[PrimitiveCall]:
    """Primitive mix of the full factorization (all elimination steps)."""
    if n % m != 0:
        raise ShapeError(f"n={n} not a multiple of m={m}")
    p = n // m
    calls: list[PrimitiveCall] = [
        PrimitiveCall("trsm", (m, n)),  # generator setup L₁⁻¹·strip
    ]
    for j in range(1, p):
        calls.extend(primitive_calls_for_step(
            m, (p - j) * m, representation=representation, k=k))
    return calls
