"""The block Schur factorization for SPD block Toeplitz matrices.

Implements the three-phase loop of Sections 5–6:

1. **Phase 1** — build the ``2m × 2m`` block hyperbolic Householder
   transformation ``U`` that eliminates the leading block of the lower
   generator row against the (upper-triangular) pivot block, using one of
   the representations of Section 4 and optional two-level blocking
   (panel width ``k ≤ m``, Section 6.2);
2. **Phase 2** — apply ``U`` to the remainder of the generator and copy
   the upper row into the triangular factor;
3. **Phase 3** — shift the upper row one block right.  The default
   implementation is the *in-place* variant of Section 6.4 (used by the
   authors on the Cray Y-MP): instead of physically shifting, ``U`` is
   applied to offset views of the two generator rows, so Phase 3
   disappears.  The explicit-shift variant (what a distributed memory
   implementation must do) is kept behind ``in_place=False`` and tested
   equal.

The factorization satisfies ``T = Rᵀ R`` with ``R`` upper triangular
(eq. 8); ``L = Rᵀ`` is the Cholesky factor.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.blas import primitives as blas
from repro.core.block_reflector import (
    REPRESENTATIONS,
    BlockReflector,
    make_accumulator,
)
from repro.core.generator import Generator, spd_generator
from repro.core.hyperbolic import reflector_annihilating
from repro.core.precision import (
    elimination_dtype,
    flush_tiny,
    validate_precision,
    working_dtype,
)
from repro.errors import (
    BreakdownError,
    InvalidOptionError,
    NotPositiveDefiniteError,
    ShapeError,
)
from repro.obs import health
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.lintools import as_panel, from_panel, \
    solve_upper_triangular

__all__ = [
    "SchurOptions",
    "SPDFactorization",
    "schur_spd_factor",
    "eliminate_block",
]


@dataclass(frozen=True)
class SchurOptions:
    """Tuning knobs for the factorization (the paper's trade-off axes).

    Attributes
    ----------
    representation : str
        Block reflector representation: ``"vy1"``, ``"vy2"``, ``"yty"``,
        ``"unblocked"`` or ``"dense"``.
    panel : int or None
        Two-level blocking width ``k`` (Section 6.2); ``None`` means one
        panel of the full block size ``m``.
    in_place : bool
        Use the shift-free in-place update of Section 6.4 (default) or
        the explicit Phase-3 shift.
    normalize_diagonal : bool
        Flip generator rows after each elimination so the pivot (and thus
        the Cholesky) diagonal stays positive.
    breakdown_tol : float
        Relative threshold below which a pivot's hyperbolic norm is
        treated as zero.
    precision : str
        Working precision of the factorization: ``"fp64"`` (default),
        ``"fp32"`` (single-precision generator, elimination and factor)
        or ``"mixed"`` (float64 generator accumulation with each pivot
        column rounded through float32 before the hyperbolic reflector
        is built — the elimination decisions see fp32 data while the
        level-3 updates keep fp64 accumulation).
    """

    representation: str = "vy2"
    panel: int | None = None
    in_place: bool = True
    normalize_diagonal: bool = True
    breakdown_tol: float = 1e-14
    precision: str = "fp64"

    def __post_init__(self):
        if self.representation not in REPRESENTATIONS:
            raise InvalidOptionError(
                f"unknown representation {self.representation!r}; "
                f"expected one of {REPRESENTATIONS}")
        validate_precision(self.precision)


@dataclass
class SPDFactorization:
    """Result of :func:`schur_spd_factor`: ``T = Rᵀ R``."""

    r: np.ndarray
    block_size: int
    num_blocks: int
    options: SchurOptions
    #: Block reflectors produced at each step (kept only on request).
    reflectors: list[BlockReflector] = field(default_factory=list)
    #: Precision the factorization ran at (``"fp64"``/``"fp32"``/``"mixed"``).
    precision: str = "fp64"

    @property
    def order(self) -> int:
        return self.r.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the triangular factor."""
        return self.r.dtype

    @property
    def l(self) -> np.ndarray:
        """Lower-triangular Cholesky factor ``L = Rᵀ``."""
        return self.r.T

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T X = B`` via ``Rᵀ (R X) = B``.

        ``b`` may be a vector or an ``n × k`` panel of right-hand
        sides; the panel case runs the two triangular sweeps as single
        level-3 ``dtrsm`` calls across all ``k`` columns.  The sweeps run
        in the factor's storage dtype — a float32 factorization solves in
        float32 (callers wanting fp64 accuracy route the result through
        :func:`repro.core.refinement.refine`).
        """
        panel, single = as_panel(b, self.order, dtype=self.r.dtype)
        y = solve_upper_triangular(self.r, panel, trans=True)
        return from_panel(solve_upper_triangular(self.r, y), single)

    def reconstruct(self) -> np.ndarray:
        """Dense ``Rᵀ R`` (diagnostic)."""
        return self.r.T @ self.r

    def logdet(self) -> float:
        """``log det T = 2 Σ log R_ii``."""
        return 2.0 * float(np.sum(np.log(np.abs(np.diag(self.r)))))


def _apply_reflector_pair(refl, upper: np.ndarray, lower: np.ndarray,
                          pivot_row: int, *,
                          wu_identity: bool | None = None,
                          wl_negidentity: bool | None = None) -> None:
    """Apply one sparse reflector to the (upper, lower) column views.

    The reflector vector is supported on row ``pivot_row`` of the upper
    half plus the whole lower half (Figure 1's pattern).  Signature signs
    are applied to *all* rows (required in the indefinite case where the
    upper signature is not the identity).  Callers in a loop pass the
    precomputed uniformity flags of the two signature halves.
    """
    m = upper.shape[0]
    x = refl.x
    w = refl.w
    beta = refl.beta
    xk = x[pivot_row]
    xlow = x[m:]
    # t = xᵀ [upper; lower] restricted to the support.
    t = xk * upper[pivot_row] + blas.gemv(lower, xlow, trans=True)
    blas.charge(2 * upper.shape[1], "axpy")
    if wu_identity is None:
        wu_identity = bool(np.all(w[:m] == 1))
    if not wu_identity:
        upper *= w[:m].astype(upper.dtype)[:, None]
        blas.charge(upper.size, "scal")
    if wl_negidentity is None:
        wl_negidentity = bool(np.all(w[m:] == -1))
    if wl_negidentity:
        np.negative(lower, out=lower)
    else:
        lower *= w[m:].astype(lower.dtype)[:, None]
    blas.charge(lower.size, "scal")
    row = upper[pivot_row]
    blas.charge(2 * row.shape[0], "axpy")
    row += (beta * xk) * t
    blas.ger(beta, xlow, t, lower)


def eliminate_block(upper: np.ndarray, lower: np.ndarray, w: np.ndarray, *,
                    representation: str = "vy2",
                    panel: int | None = None,
                    breakdown_tol: float = 1e-14,
                    pivot_sign_fixup: bool = True,
                    elim_dtype: np.dtype | None = None,
                    collect: list[BlockReflector] | None = None) -> None:
    """Annihilate ``lower[:, :m]`` against the pivot ``upper[:, :m]``.

    ``upper``/``lower`` are ``m × q`` views updated in place; ``w`` is the
    ``2m`` window signature.  The pivot block must be upper triangular with
    nonzero diagonal (guaranteed by the generator construction and
    preserved by this routine).  The elimination runs in the views'
    dtype; ``elim_dtype`` (when narrower) additionally rounds each pivot
    column through that dtype before the reflector is built — the
    ``"mixed"`` precision mode.  Raises
    :class:`~repro.errors.BreakdownError` when a pivot column has
    non-positive hyperbolic norm — for an SPD input this never happens.
    """
    m, q = upper.shape
    if lower.shape != (m, q):
        raise ShapeError(f"upper {upper.shape} and lower {lower.shape} "
                         "views must have equal shape")
    if q < m:
        raise ShapeError(f"working width {q} smaller than block size {m}")
    if panel is None or panel <= 0 or panel > m:
        panel = m
    round_pivot = (elim_dtype is not None
                   and np.dtype(elim_dtype) != upper.dtype)
    support = np.concatenate([np.zeros(1, dtype=np.intp),
                              np.arange(m, 2 * m, dtype=np.intp)])
    n2 = 2 * m
    wu_identity = bool(np.all(w[:m] == 1))
    wl_negidentity = bool(np.all(w[m:] == -1))
    for pstart in range(0, m, panel):
        pend = min(pstart + panel, m)
        with blas.category("blocking"):
            acc = make_accumulator(representation, w, dtype=upper.dtype)
        # Panel working set in Fortran order: every shrinking ``[:, j:]``
        # slice stays F-contiguous, so the per-reflector rank-1 updates
        # run as in-place BLAS ger instead of strided temporaries.
        pup = np.asfortranarray(upper[:, pstart:pend])
        plo = np.asfortranarray(lower[:, pstart:pend])
        for k in range(pstart, pend):
            j = k - pstart
            u = np.zeros(n2, dtype=upper.dtype)
            u[k] = pup[k, j]
            u[m:] = plo[:, j]
            if round_pivot:
                u = u.astype(elim_dtype).astype(upper.dtype)
            support[0] = k
            with blas.category("blocking"):
                refl, _sigma = reflector_annihilating(
                    u, w, k, support=support.copy(),
                    breakdown_tol=breakdown_tol)
            # Update the rest of the current panel sequentially (level 2).
            with blas.category("panel"):
                _apply_reflector_pair(refl, pup[:, j:], plo[:, j:], k,
                                      wu_identity=wu_identity,
                                      wl_negidentity=wl_negidentity)
            plo[:, j] = 0.0  # exact annihilation of the pivot column
            with blas.category("blocking"):
                acc.append(refl)
        upper[:, pstart:pend] = pup
        lower[:, pstart:pend] = plo
        u_block = acc.finish()
        if collect is not None:
            collect.append(u_block)
        # Apply the accumulated block transformation to the trailing
        # columns (rest of the pivot block, then the rest of the
        # generator) — the level-3-rich Phase 2.
        with blas.category("application"):
            if pend < q:
                u_block.apply_pair(upper[:, pend:], lower[:, pend:])
    # Each pivot column c is frozen once eliminated and so misses the pure
    # W sign-flip action of the (m−1−c) later reflectors (their rank-1
    # parts vanish on it).  Identity when Σ = I (SPD); required for
    # consistency when the upper signature carries −1 entries.
    wu = w[:m]
    if not np.all(wu == 1):
        cols = np.nonzero((m - 1 - np.arange(m)) % 2 == 1)[0]
        if cols.size:
            upper[:, cols] *= wu.astype(upper.dtype)[:, None]
    if pivot_sign_fixup:
        # Keep the pivot diagonal positive: flipping a whole generator row
        # leaves Gᵀ W G (and hence T) invariant.
        neg = np.diag(upper[:, :m]) < 0
        if np.any(neg):
            upper[neg] *= -1.0


def schur_spd_factor(t: SymmetricBlockToeplitz | Generator, *,
                     options: SchurOptions | None = None,
                     keep_reflectors: bool = False) -> SPDFactorization:
    """Cholesky factorization ``T = Rᵀ R`` of an SPD block Toeplitz matrix.

    Parameters
    ----------
    t : SymmetricBlockToeplitz or Generator
        The matrix (or its precomputed generator).
    options : SchurOptions
        Representation / blocking / in-place switches.
    keep_reflectors : bool
        Retain the per-step block reflectors (used by the error analysis
        and some tests; costs memory).

    Raises
    ------
    NotPositiveDefiniteError
        If a pivot with non-positive hyperbolic norm certifies that some
        leading principal minor of ``T`` is not positive.
    """
    opts = options or SchurOptions()
    wd = working_dtype(opts.precision)
    with obs.span("schur.generator"):
        if isinstance(t, Generator):
            g = t.copy()
        else:
            g = spd_generator(t, dtype=wd)
        # A precomputed generator (or a "mixed" plan) may still be in the
        # wrong storage dtype; round it once here, before elimination.
        if g.gen.dtype != wd:
            g = g.astype(wd)
    m, p = g.block_size, g.num_blocks
    n = m * p
    r = np.zeros((n, n), dtype=wd)
    collected: list[BlockReflector] | None = [] if keep_reflectors else None
    with ExitStack() as stack:
        sp = stack.enter_context(obs.span(
            "schur.eliminate", representation=opts.representation,
            panel=opts.panel or m, in_place=opts.in_place,
            order=n, block_size=m, precision=opts.precision))
        # Measured per-category flops ride on the span (obs runs only).
        counter = (stack.enter_context(blas.counting())
                   if obs.enabled() else None)
        try:
            if opts.in_place:
                _factor_in_place(g, r, opts, collected)
            else:
                _factor_with_shift(g, r, opts, collected)
        except BreakdownError as exc:
            raise NotPositiveDefiniteError(
                f"matrix is not positive definite: {exc}") from exc
        if counter is not None:
            sp.set(counted_flops=counter.total,
                   counted_flops_by_phase=dict(counter.by_category))
        if obs.enabled():
            diag = np.abs(np.diag(r))
            health.record_pivot_spread(float(diag.min()),
                                       float(diag.max()))
    return SPDFactorization(r, m, p, opts,
                            reflectors=collected or [],
                            precision=opts.precision)


def _factor_in_place(g: Generator, r: np.ndarray, opts: SchurOptions,
                     collected: list[BlockReflector] | None) -> None:
    """Shift-free variant: apply ``U`` to offset views (Section 6.4)."""
    m, p = g.block_size, g.num_blocks
    n = m * p
    elim = (elimination_dtype(opts.precision)
            if opts.precision == "mixed" else None)
    top = g.gen[:m]
    bot = g.gen[m:]
    flush_tiny(g.gen)
    r[:m, :] = top
    for i in range(1, p):
        q = n - i * m
        upper = top[:, :q]
        lower = bot[:, i * m:]
        eliminate_block(upper, lower, g.w,
                        representation=opts.representation,
                        panel=opts.panel,
                        breakdown_tol=opts.breakdown_tol,
                        pivot_sign_fixup=opts.normalize_diagonal,
                        elim_dtype=elim,
                        collect=collected)
        # fp32: keep the decaying generator out of the subnormal range
        # (an sgemm over subnormals runs ~30× slower than a normal one).
        flush_tiny(upper)
        flush_tiny(lower)
        r[i * m:(i + 1) * m, i * m:] = upper


def _factor_with_shift(g: Generator, r: np.ndarray, opts: SchurOptions,
                       collected: list[BlockReflector] | None) -> None:
    """Explicit Phase-3 shift variant (the distributed-memory shape)."""
    m, p = g.block_size, g.num_blocks
    n = m * p
    elim = (elimination_dtype(opts.precision)
            if opts.precision == "mixed" else None)
    top = np.array(g.gen[:m])
    bot = np.array(g.gen[m:])
    flush_tiny(top)
    flush_tiny(bot)
    r[:m, :] = top
    for i in range(1, p):
        q = n - i * m
        # Phase 3 (of the previous step): shift the upper row one block
        # right; the live width shrinks by one block each step.
        top[:, m:] = top[:, :-m]
        top[:, :m] = 0.0
        blas.charge(0, "shift")
        upper = top[:, i * m:]
        lower = bot[:, i * m:]
        assert upper.shape == (m, q) and lower.shape == (m, q)
        eliminate_block(upper, lower, g.w,
                        representation=opts.representation,
                        panel=opts.panel,
                        breakdown_tol=opts.breakdown_tol,
                        pivot_sign_fixup=opts.normalize_diagonal,
                        elim_dtype=elim,
                        collect=collected)
        flush_tiny(upper)
        flush_tiny(lower)
        r[i * m:(i + 1) * m, i * m:] = upper
