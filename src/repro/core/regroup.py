"""Structural versus algorithmic block size (Section 6.5).

A block Toeplitz matrix with structural block size ``m`` may be factored
as if its block size were any ``m_s`` that is a multiple of ``m`` dividing
``n``.  The flop count grows ≈ linearly in ``m_s`` (``4 m_s n²``), but on
architectures whose level-3 primitives run much faster at larger block
dimensions the *time* can fall — superlinearly on the Cray Y-MP
(Figure 10).  :func:`choose_block_size` automates the paper's trade-off
analysis against a machine performance model (parametric or empirical).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import flops as flops_mod
from repro.core.schur_spd import SchurOptions, SPDFactorization, \
    schur_spd_factor
from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["regrouped_factor", "choose_block_size", "BlockSizePrediction"]


def regrouped_factor(t: SymmetricBlockToeplitz, algorithmic_block_size: int,
                     *, representation: str = "vy2",
                     panel: int | None = None) -> SPDFactorization:
    """Factor ``t`` with algorithmic block size ``m_s`` ≥ structural ``m``.

    The returned factor is of the same matrix — only the elimination
    granularity changes.
    """
    ts = t.regroup(algorithmic_block_size)
    opts = SchurOptions(representation=representation, panel=panel)
    return schur_spd_factor(ts, options=opts)


@dataclass(frozen=True)
class BlockSizePrediction:
    """Model evaluation for one candidate algorithmic block size."""

    block_size: int
    flops: float
    seconds: float
    mflops: float


def valid_block_sizes(n: int, m: int, *, max_size: int | None = None
                      ) -> list[int]:
    """Multiples of ``m`` dividing ``n`` (the legal ``m_s`` values)."""
    if n % m != 0:
        raise ShapeError(f"n={n} not a multiple of m={m}")
    cap = max_size if max_size is not None else n
    return [ms for ms in range(m, min(n, cap) + 1, m) if n % ms == 0]


def choose_block_size(n: int, m: int, model, *,
                      representation: str = "vy2",
                      candidates: list[int] | None = None,
                      max_size: int | None = None
                      ) -> tuple[int, list[BlockSizePrediction]]:
    """Pick the algorithmic block size minimizing *modeled* time.

    Parameters
    ----------
    n, m : int
        Problem order and structural block size.
    model : BlasPerformanceModel-like
        Must provide ``time(call)`` for a
        :class:`~repro.core.flops.PrimitiveCall`.
    candidates : list of int
        Block sizes to evaluate; defaults to every multiple of ``m``
        dividing ``n`` up to ``max_size`` (or 64·m).

    Returns
    -------
    (best_block_size, predictions)
        Predictions for every candidate, in candidate order.
    """
    if candidates is None:
        cap = max_size if max_size is not None else min(n, 64 * m)
        candidates = valid_block_sizes(n, m, max_size=cap)
    if not candidates:
        raise ShapeError("no valid candidate block sizes")
    preds: list[BlockSizePrediction] = []
    for ms in candidates:
        calls = flops_mod.primitive_calls_for_factorization(
            n, ms, representation=representation)
        fl = sum(c.flops for c in calls)
        sec = sum(model.time(c) for c in calls)
        # fixed per-elimination-step driver overhead (p − 1 steps)
        sec += getattr(model, "step_overhead", 0.0) * (n // ms - 1)
        preds.append(BlockSizePrediction(
            block_size=ms, flops=fl, seconds=sec,
            mflops=fl / sec / 1e6 if sec > 0 else float("inf")))
    best = min(preds, key=lambda pr: pr.seconds)
    return best.block_size, preds
