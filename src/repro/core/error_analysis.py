"""The Section 8.1 error analysis, made executable.

The paper derives (eqs. 38–42) that iterative refinement with a
factorization of ``T + ΔT`` converges linearly,

    ``r_{i+1} ≈ M (I + M)⁻¹ r_i``,   ``M = ΔT·T⁻¹``,  ``γ = ‖M‖``,

to a residual at the backward-stable level, in about
``k ≈ log ε / log γ`` steps (the paper's "if γ = ᵏ√ε then k steps").
This module measures γ from a factorization and the original matrix and
forecasts the refinement behaviour — which the tests then check against
the *actual* refinement trace (e.g. the §8.2 example: γ ≈ 3e−5 ⇒ 3
steps to ε, paper and measurement agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log

import numpy as np

from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.toeplitz.matvec import BlockCirculantEmbedding

__all__ = ["RefinementForecast", "estimate_gamma", "refinement_forecast"]


@dataclass(frozen=True)
class RefinementForecast:
    """Predicted refinement behaviour from the §8.1 analysis."""

    gamma: float              #: ‖ΔT·T⁻¹‖₁ estimate
    convergence_factor: float  #: per-step residual contraction ≈ γ/(1+γ)
    predicted_steps: int      #: steps to reach machine-precision level
    will_converge: bool       #: γ < 1 (the analysis' standing assumption)


def estimate_gamma(factorization, t: SymmetricBlockToeplitz, *,
                   samples: int = 6, seed: int = 0) -> float:
    """Estimate ``γ = ‖ΔT·T⁻¹‖₁`` without forming either matrix.

    ``ΔT·T⁻¹ v`` is computable from one factored solve and one fast
    matvec: ``ΔT·T⁻¹ v = (T + ΔT)·T⁻¹ v − v`` and
    ``(T + ΔT) x = RᵀDR x`` is exactly what the factorization
    reconstructs... inverted: with ``y = (RᵀDR)⁻¹ v`` (factored solve),
    ``M v = v − T y`` up to the same ``O(γ²)`` the analysis neglects.
    A small random-probe 1-norm estimate over ``samples`` vectors.
    """
    n = t.order
    if factorization.order != n:
        raise ShapeError("factorization and matrix orders differ")
    emb = BlockCirculantEmbedding(t)
    rng = np.random.default_rng(seed)
    est = 0.0
    for k in range(samples):
        v = rng.choice([-1.0, 1.0], size=n)
        y = factorization.solve(v)
        mv = v - emb(y)   # (I − T·(T+ΔT)⁻¹) v = ΔT·(T+ΔT)⁻¹ v ≈ M v
        est = max(est, float(np.max(np.abs(mv))))
    return est


def refinement_forecast(factorization, t: SymmetricBlockToeplitz, *,
                        samples: int = 6,
                        seed: int = 0) -> RefinementForecast:
    """Forecast refinement convergence for a perturbed factorization.

    ``predicted_steps`` is the paper's ``k = ⌈log ε / log γ⌉`` (≈ 3 for
    ``γ = ∛ε``), floored at 1 and capped at a pessimistic 50 when γ is
    close to 1.
    """
    gamma = estimate_gamma(factorization, t, samples=samples, seed=seed)
    eps = float(np.finfo(np.float64).eps)
    will = gamma < 1.0
    if gamma <= eps:
        steps = 1
    elif not will:
        steps = 50
    else:
        steps = min(50, max(1, ceil(log(eps) / log(gamma))))
    factor = gamma / (1.0 + gamma) if will else float("inf")
    return RefinementForecast(gamma=gamma,
                              convergence_factor=factor,
                              predicted_steps=steps,
                              will_converge=will)
