"""Iterative refinement (Section 8.1), scalar and blocked.

Given an (approximate) factorization of ``T + δT`` and the *original*
``T``, the loop

    solve ``L D Lᵀ Δx_i = r_i``;  ``x_{i+1} = x_i + Δx_i``;
    ``r_{i+1} = b − T x_{i+1}``

converges linearly with factor ``γ = ‖ΔT T⁻¹‖`` (eq. 41) to a residual at
the level of a backward-stable solver (eq. 42).  With the perturbation
size ``δ = ∛ε`` the paper predicts (and Section 8.2's example shows)
convergence in 2–3 steps.

Residuals are computed with the FFT fast matvec
(:class:`~repro.toeplitz.matvec.BlockCirculantEmbedding`) — ``O(n log n)``
per iteration, which is why refinement is much cheaper per step than the
preconditioned conjugate-gradient alternative it is compared against.

For a panel ``B ∈ R^{n×k}`` the loop is *blocked*: every sweep does one
factored panel solve (a level-3 pair of ``dtrsm`` calls) and one batched
FFT matvec for all still-active columns, with a per-column convergence
mask — converged columns stop accumulating work while stragglers
continue.  This is the solve-phase instance of the paper's Section 6.5
lesson (trade loop iterations for level-3 kernel shape):
:attr:`RefinementResult.solve_calls` counts factored solves, which drop
from ``Σ_j (1 + it_j)`` (per-column driving) to ``1 + max_j it_j``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.errors import ShapeError
from repro.obs import health
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.toeplitz.matvec import BlockCirculantEmbedding
from repro.utils.lintools import as_panel

__all__ = ["RefinementResult", "refine"]


@dataclass
class RefinementResult:
    """Outcome of :func:`refine`.

    Attributes
    ----------
    x : ndarray
        Final solution estimate (same shape as the input ``b``).
    iterations : int
        Number of correction sweeps actually computed (for a panel: the
        worst column; see ``per_column_iterations``).
    converged : bool
        True when the stopping rule ``‖Δx‖ < tol·‖x‖`` fired (or the
        correction stagnated at rounding level) — for a panel, in every
        column.
    residual_norms : list of float
        ``‖b − T x_i‖₂`` after each iterate (index 0 = initial solve).
        For a panel each entry is the worst per-column 2-norm.
    correction_norms : list of float
        ``‖Δx_i‖₂`` for each refinement sweep (panel: worst active
        column).
    history : list of ndarray
        The iterates ``x_1, x_2, …`` (kept only when ``keep_history``).
    nrhs : int
        Number of right-hand-side columns (1 for a vector ``b``).
    solve_calls : int
        Factored solves issued, counting a panel solve as one call
        (includes the initial solve) — the level-3 efficiency metric.
    solve_columns : int
        Column-solve equivalents issued (a panel solve of ``a`` active
        columns counts ``a``) — the flop-proportional metric.
    per_column_iterations : ndarray or None
        Correction sweeps computed for each column (panel input only).
    factor_dtype : str
        Storage dtype of the factorization driving the solves
        (``"float32"`` when a reduced-precision factor was refined).
    tol : float
        The relative correction tolerance the loop actually used.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    correction_norms: list[float] = field(default_factory=list)
    history: list[np.ndarray] = field(default_factory=list)
    nrhs: int = 1
    solve_calls: int = 0
    solve_columns: int = 0
    per_column_iterations: np.ndarray | None = None
    factor_dtype: str = "float64"
    tol: float = 0.0

    @property
    def converged_precision(self) -> str | None:
        """Precision level the final iterate actually reached.

        ``"fp64"`` when the last relative correction sits at double
        rounding level, ``"fp32"`` at single level, ``None`` above that
        (refinement failed to recover even single accuracy).  This is
        how a caller distinguishes "fp32 factor, recovered to fp64" from
        "fp32 factor, stuck at fp32".
        """
        if not self.correction_norms:
            return "fp64" if self.converged else None
        xn = float(np.linalg.norm(self.x))
        rel = self.correction_norms[-1] / (xn if xn > 0.0 else 1.0)
        if rel <= 64.0 * float(np.finfo(np.float64).eps):
            return "fp64"
        if rel <= 64.0 * float(np.finfo(np.float32).eps):
            return "fp32"
        return None


def refine(factorization, t: SymmetricBlockToeplitz, b: np.ndarray, *,
           tol: float | None = None, max_iter: int = 25,
           keep_history: bool = False) -> RefinementResult:
    """Solve ``T x = b`` by factored solve + iterative refinement.

    Parameters
    ----------
    factorization : object with ``solve``
        Typically an :class:`~repro.core.schur_indefinite.IndefiniteFactorization`
        of ``T + δT`` (or an SPD factorization).
    t : SymmetricBlockToeplitz
        The original, unperturbed matrix (drives the residuals).
    b : array
        Right-hand side: a vector, or an ``n × k`` panel — the panel
        runs the blocked sweep (one factored panel solve + one batched
        FFT matvec per iteration, per-column convergence mask).
    tol : float
        Relative correction tolerance; defaults to ``4·ε`` of the
        *target* dtype — the wider of ``b``'s floating dtype and the
        factorization's storage dtype.  A float64 ``b`` against a
        float32 factor therefore still refines to double accuracy (the
        recovery guarantee); a float32 ``b`` against a float32 factor
        stops at single rounding level instead of looping forever
        toward an unreachable ``4·ε₆₄``.
    max_iter : int
        Refinement step cap; the loop also stops when corrections stop
        shrinking (rounding floor reached).

    Notes
    -----
    The loop itself always runs in float64 (fp64 residuals via the FFT
    matvec are what make reduced-precision recovery work); only the
    factored solves run at the factorization's dtype.
    """
    b_in = np.asarray(b)
    factor_dtype = np.dtype(getattr(factorization, "dtype", np.float64))
    if tol is None:
        b_target = b_in.dtype if b_in.dtype.kind == "f" else np.float64
        target = np.result_type(b_target, factor_dtype)
        tol = 4.0 * float(np.finfo(target).eps)
    b = b_in.astype(np.float64, copy=False)
    n = t.order
    if b.shape[0] != n:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {n}")
    emb = BlockCirculantEmbedding(t)
    if b.ndim == 2:
        return _refine_block(factorization, emb, b, tol=tol,
                             max_iter=max_iter, keep_history=keep_history,
                             factor_dtype=factor_dtype.name)
    traced = obs.enabled()
    residual_gauge = obs.default_registry().gauge(
        "repro_refinement_residual",
        "‖b − T x‖₂ after the most recent refinement iterate"
    ) if traced else None
    with obs.span("refine", max_iter=max_iter, tol=tol) as sp:
        with obs.span("refine.initial_solve"):
            x = np.asarray(factorization.solve(b), dtype=np.float64)
        solve_calls = 1
        r = b - emb(x)
        res_norms = [float(np.linalg.norm(r))]
        if traced:
            residual_gauge.set(res_norms[0], iteration="0")
        corr_norms: list[float] = []
        history: list[np.ndarray] = [x.copy()] if keep_history else []
        converged = False
        for it in range(max_iter):
            with obs.span("refine.iteration", i=it + 1):
                dx = factorization.solve(r)
                solve_calls += 1
                dx_norm = float(np.linalg.norm(dx))
                x_norm = float(np.linalg.norm(x))
                corr_norms.append(dx_norm)
                if dx_norm < tol * max(x_norm, 1e-300):
                    converged = True
                    break
                x = x + dx
                r = b - emb(x)
                res_norms.append(float(np.linalg.norm(r)))
                if traced:
                    residual_gauge.set(res_norms[-1])
                    residual_gauge.set(res_norms[-1],
                                       iteration=str(it + 1))
            if keep_history:
                history.append(x.copy())
            # Stagnation: corrections no longer shrinking ⇒ rounding floor.
            if len(corr_norms) >= 2 and dx_norm > 0.5 * corr_norms[-2]:
                converged = True
                break
        sp.set(iterations=len(corr_norms), converged=converged,
               final_residual=res_norms[-1])
        if traced:
            health.record_refinement(res_norms, converged)
    return RefinementResult(
        x=x,
        iterations=len(corr_norms),
        converged=converged,
        residual_norms=res_norms,
        correction_norms=corr_norms,
        history=history,
        nrhs=1,
        solve_calls=solve_calls,
        solve_columns=solve_calls,
        factor_dtype=factor_dtype.name,
        tol=tol,
    )


def _refine_block(factorization, emb: BlockCirculantEmbedding,
                  b: np.ndarray, *, tol: float, max_iter: int,
                  keep_history: bool,
                  factor_dtype: str = "float64") -> RefinementResult:
    """Blocked sweep over an ``n × k`` panel with a per-column mask.

    Column semantics match the scalar loop exactly: a column whose
    correction passes the tolerance test converges *without* that
    correction applied; a column whose correction stops shrinking
    (after ≥ 2 corrections) converges *with* it applied (rounding
    floor).  Only still-active columns enter the factored solve and the
    residual matvec of later sweeps.
    """
    b, _ = as_panel(b)
    k = b.shape[1]
    traced = obs.enabled()
    residual_gauge = obs.default_registry().gauge(
        "repro_refinement_residual",
        "‖b − T x‖₂ after the most recent refinement iterate"
    ) if traced else None
    with obs.span("refine", max_iter=max_iter, tol=tol, nrhs=k) as sp:
        with obs.span("refine.initial_solve", nrhs=k):
            x = np.asarray(factorization.solve(b), dtype=np.float64)
        solve_calls, solve_columns = 1, k
        r = b - emb(x)
        col_res = np.linalg.norm(r, axis=0)
        res_norms = [float(np.max(col_res, initial=0.0))]
        if traced:
            residual_gauge.set(res_norms[0], iteration="0")
        corr_norms: list[float] = []
        history: list[np.ndarray] = [x.copy()] if keep_history else []
        converged_mask = np.zeros(k, dtype=bool)
        computed = np.zeros(k, dtype=np.intp)   # corrections per column
        prev_corr = np.full(k, np.inf)
        active = np.arange(k)
        for it in range(max_iter):
            if active.size == 0:
                break
            with obs.span("refine.iteration", i=it + 1,
                          active=int(active.size)):
                dx = factorization.solve(r[:, active])
                solve_calls += 1
                solve_columns += int(active.size)
                computed[active] += 1
                dx_norm = np.linalg.norm(dx, axis=0)
                x_norm = np.linalg.norm(x[:, active], axis=0)
                corr_norms.append(float(np.max(dx_norm)))
                # Tolerance: converged, correction *not* applied.
                small = dx_norm < tol * np.maximum(x_norm, 1e-300)
                converged_mask[active[small]] = True
                apply_cols = active[~small]
                if apply_cols.size:
                    x[:, apply_cols] += dx[:, ~small]
                    r[:, apply_cols] = (b[:, apply_cols]
                                        - emb(x[:, apply_cols]))
                    col_res[apply_cols] = np.linalg.norm(
                        r[:, apply_cols], axis=0)
                    res_norms.append(float(np.max(col_res)))
                    if traced:
                        residual_gauge.set(res_norms[-1])
                        residual_gauge.set(res_norms[-1],
                                           iteration=str(it + 1))
                # Stagnation: correction no longer shrinking ⇒ rounding
                # floor; converged *with* the correction applied.
                applied_norm = dx_norm[~small]
                stag = ((computed[apply_cols] >= 2)
                        & (applied_norm > 0.5 * prev_corr[apply_cols]))
                prev_corr[apply_cols] = applied_norm
                converged_mask[apply_cols[stag]] = True
                active = apply_cols[~stag]
            if keep_history:
                history.append(x.copy())
        converged = bool(np.all(converged_mask))
        sp.set(iterations=len(corr_norms), converged=converged,
               final_residual=res_norms[-1], solve_calls=solve_calls,
               solve_columns=solve_columns)
        if traced:
            health.record_refinement(res_norms, converged)
    return RefinementResult(
        x=x,
        iterations=len(corr_norms),
        converged=converged,
        residual_norms=res_norms,
        correction_norms=corr_norms,
        history=history,
        nrhs=k,
        solve_calls=solve_calls,
        solve_columns=solve_columns,
        per_column_iterations=computed,
        factor_dtype=factor_dtype,
        tol=tol,
    )
