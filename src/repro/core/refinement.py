"""Iterative refinement (Section 8.1).

Given an (approximate) factorization of ``T + δT`` and the *original*
``T``, the loop

    solve ``L D Lᵀ Δx_i = r_i``;  ``x_{i+1} = x_i + Δx_i``;
    ``r_{i+1} = b − T x_{i+1}``

converges linearly with factor ``γ = ‖ΔT T⁻¹‖`` (eq. 41) to a residual at
the level of a backward-stable solver (eq. 42).  With the perturbation
size ``δ = ∛ε`` the paper predicts (and Section 8.2's example shows)
convergence in 2–3 steps.

Residuals are computed with the FFT fast matvec
(:class:`~repro.toeplitz.matvec.BlockCirculantEmbedding`) — ``O(n log n)``
per iteration, which is why refinement is much cheaper per step than the
preconditioned conjugate-gradient alternative it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.toeplitz.matvec import BlockCirculantEmbedding

__all__ = ["RefinementResult", "refine"]


@dataclass
class RefinementResult:
    """Outcome of :func:`refine`.

    Attributes
    ----------
    x : ndarray
        Final solution estimate.
    iterations : int
        Number of correction steps actually applied.
    converged : bool
        True when the stopping rule ``‖Δx‖ < tol·‖x‖`` fired (or the
        correction stagnated at rounding level).
    residual_norms : list of float
        ``‖b − T x_i‖₂`` after each iterate (index 0 = initial solve).
    correction_norms : list of float
        ``‖Δx_i‖₂`` for each refinement step.
    history : list of ndarray
        The iterates ``x_1, x_2, …`` (kept only when ``keep_history``).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    correction_norms: list[float] = field(default_factory=list)
    history: list[np.ndarray] = field(default_factory=list)


def refine(factorization, t: SymmetricBlockToeplitz, b: np.ndarray, *,
           tol: float | None = None, max_iter: int = 25,
           keep_history: bool = False) -> RefinementResult:
    """Solve ``T x = b`` by factored solve + iterative refinement.

    Parameters
    ----------
    factorization : object with ``solve``
        Typically an :class:`~repro.core.schur_indefinite.IndefiniteFactorization`
        of ``T + δT`` (or an SPD factorization).
    t : SymmetricBlockToeplitz
        The original, unperturbed matrix (drives the residuals).
    b : array
        Right-hand side.
    tol : float
        Relative correction tolerance; defaults to ``4·ε``.
    max_iter : int
        Refinement step cap; the loop also stops when corrections stop
        shrinking (rounding floor reached).
    """
    b = np.asarray(b, dtype=np.float64)
    n = t.order
    if b.shape[0] != n:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {n}")
    if tol is None:
        tol = 4.0 * float(np.finfo(np.float64).eps)
    traced = obs.enabled()
    residual_gauge = obs.default_registry().gauge(
        "repro_refinement_residual",
        "‖b − T x‖₂ after the most recent refinement iterate"
    ) if traced else None
    emb = BlockCirculantEmbedding(t)
    with obs.span("refine", max_iter=max_iter, tol=tol) as sp:
        with obs.span("refine.initial_solve"):
            x = factorization.solve(b)
        r = b - emb(x)
        res_norms = [float(np.linalg.norm(r))]
        if traced:
            residual_gauge.set(res_norms[0], iteration="0")
        corr_norms: list[float] = []
        history: list[np.ndarray] = [x.copy()] if keep_history else []
        converged = False
        for it in range(max_iter):
            with obs.span("refine.iteration", i=it + 1):
                dx = factorization.solve(r)
                dx_norm = float(np.linalg.norm(dx))
                x_norm = float(np.linalg.norm(x))
                corr_norms.append(dx_norm)
                if dx_norm < tol * max(x_norm, 1e-300):
                    converged = True
                    break
                x = x + dx
                r = b - emb(x)
                res_norms.append(float(np.linalg.norm(r)))
                if traced:
                    residual_gauge.set(res_norms[-1])
                    residual_gauge.set(res_norms[-1],
                                       iteration=str(it + 1))
            if keep_history:
                history.append(x.copy())
            # Stagnation: corrections no longer shrinking ⇒ rounding floor.
            if len(corr_norms) >= 2 and dx_norm > 0.5 * corr_norms[-2]:
                converged = True
                break
        sp.set(iterations=len(corr_norms), converged=converged,
               final_residual=res_norms[-1])
    return RefinementResult(
        x=x,
        iterations=len(corr_norms),
        converged=converged,
        residual_norms=res_norms,
        correction_norms=corr_norms,
        history=history,
    )
