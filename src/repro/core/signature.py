"""Signature matrices and hyperbolic norms (Section 3).

A signature matrix ``W`` is diagonal with entries ±1 (``W² = I``,
``Wᵀ = W``).  Throughout the package signature matrices are carried as
compact ±1 vectors (``int8``) rather than dense diagonals — applying ``W``
is an elementwise sign flip, never a matmul.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "signature_vector",
    "signature_matrix",
    "hyperbolic_norm_squared",
    "apply_signature",
    "block_schur_signature",
    "is_signature",
]


def signature_vector(signs) -> np.ndarray:
    """Validate and return a ±1 signature vector (``int8``).

    1-D ``int8`` arrays are treated as pre-validated signatures and
    returned as-is (the hot factorization loops re-present the same
    vector thousands of times).
    """
    if isinstance(signs, np.ndarray) and signs.dtype == np.int8 \
            and signs.ndim == 1:
        return signs
    w = np.asarray(signs)
    if w.ndim != 1:
        raise ShapeError(f"signature must be 1-D, got shape {w.shape}")
    wi = w.astype(np.int8)
    if not np.all((wi == 1) | (wi == -1)) or not np.all(wi == w):
        raise ShapeError("signature entries must be exactly +1 or -1")
    return wi


def signature_matrix(signs) -> np.ndarray:
    """Dense diagonal matrix for a signature vector (for tests/debugging)."""
    return np.diag(signature_vector(signs).astype(np.float64))


def is_signature(w) -> bool:
    """True when ``w`` is a valid ±1 signature vector."""
    try:
        signature_vector(w)
    except (ShapeError, TypeError, ValueError):
        return False
    return True


def hyperbolic_norm_squared(u: np.ndarray, w: np.ndarray) -> float:
    """``uᵀ W u = Σ w_i u_i²`` — the (squared) hyperbolic norm."""
    u = np.asarray(u, dtype=np.float64)
    if u.shape != w.shape and u.shape[0] != w.shape[0]:
        raise ShapeError(
            f"vector length {u.shape[0]} != signature length {w.shape[0]}")
    return float(np.dot(w.astype(np.float64) * u, u))


def apply_signature(w: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Compute ``W a`` (rows of ``a`` scaled by the signature)."""
    wf = w.astype(np.float64)
    if a.ndim == 1:
        return wf * a
    return wf[:, None] * a


def block_schur_signature(m: int, sigma: np.ndarray | None = None) -> np.ndarray:
    """Signature of the 2m-row generator window: ``diag(Σ, −Σ)``.

    In the SPD case ``Σ = I_m`` and this is the ``W`` of eq. (24).  In the
    indefinite case ``Σ`` is the signature of the signed Cholesky
    factorization ``T̂_1 = L_1 Σ L_1ᵀ`` (eq. 11).
    """
    if m <= 0:
        raise ShapeError(f"block size must be positive, got {m}")
    if sigma is None:
        sigma = np.ones(m, dtype=np.int8)
    else:
        sigma = signature_vector(sigma)
        if sigma.shape[0] != m:
            raise ShapeError(
                f"sigma has length {sigma.shape[0]}, expected {m}")
    return np.concatenate([sigma, -sigma]).astype(np.int8)
