"""Extended Schur algorithm for symmetric indefinite Toeplitz systems.

Section 8 of the paper.  Three regimes:

* **indefinite, nonsingular minors** — the blocked algorithm goes through
  with *row interchanges* keeping the pivot on the diagonal of the pivot
  block; the result is ``T = Rᵀ D R`` with ``D = diag(±1)``.
* **singular principal minors** — a pivot column of the generator has
  (numerically) zero hyperbolic norm.  The pivot element is perturbed by a
  relative ``δ ≈ ∛ε`` (the value minimizing the total error
  ``δ + ε/δ²`` of eq. 45), producing an exact factorization of a nearby
  matrix ``T + δT`` with ``‖δT‖/‖T‖ = O(∛ε)``; iterative refinement
  (:mod:`repro.core.refinement`) then restores full accuracy in ~2 steps.

A target row of the right signature always exists when the hyperbolic norm
is nonzero: if ``W_kk·h < 0`` then ``Σ_k = −sign(h)``, so the lower half
signature ``−Σ`` contains ``sign(h)``.

The elimination here applies reflectors sequentially across the full
working width (a level-2 path): with interchanges the window signature
mutates mid-block, which invalidates a half-built blocked representation.
The paper notes the indefinite variant performs like the SPD one when
interchanges are rare; all performance experiments use the SPD path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.blas import primitives as blas
from repro.core.generator import Generator, indefinite_generator
from repro.core.hyperbolic import reflector_annihilating
from repro.core.precision import (
    elimination_dtype,
    flush_tiny,
    validate_precision,
    working_dtype,
)
from repro.core.schur_spd import _apply_reflector_pair
from repro.errors import BreakdownError, SingularMinorError
from repro.obs import health
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.lintools import as_panel, from_panel, \
    solve_upper_triangular

__all__ = [
    "PerturbationEvent",
    "InterchangeEvent",
    "IndefiniteFactorization",
    "schur_indefinite_factor",
    "default_delta",
]


def default_delta(dtype=np.float64) -> float:
    """The paper's perturbation size ``δ = ∛ε`` (eq. 46).

    ``ε`` is the unit roundoff of the factorization's working dtype —
    a float32 factorization perturbs at ``∛ε₃₂ ≈ 5e-3``.
    """
    return float(np.finfo(dtype).eps ** (1.0 / 3.0))


@dataclass(frozen=True)
class PerturbationEvent:
    """A pivot perturbation performed to pass a singular principal minor."""

    step: int            #: block step (0-based)
    column: int          #: column within the block (0-based)
    scalar_index: int    #: global scalar pivot index in T
    delta: float         #: relative perturbation applied to the pivot
    norm_before: float   #: hyperbolic norm of the pivot column before
    norm_after: float    #: hyperbolic norm after the perturbation


@dataclass(frozen=True)
class InterchangeEvent:
    """A row interchange keeping the pivot on the block diagonal."""

    step: int
    column: int
    lower_row: int       #: index (within the 2m window) swapped with


@dataclass
class IndefiniteFactorization:
    """Result of :func:`schur_indefinite_factor`: ``T + δT = Rᵀ D R``.

    ``R`` is upper triangular with positive diagonal, ``d`` the ±1
    diagonal of ``D``.  ``δT = 0`` when ``perturbations`` is empty.
    """

    r: np.ndarray
    d: np.ndarray
    block_size: int
    num_blocks: int
    perturbations: list[PerturbationEvent] = field(default_factory=list)
    interchanges: list[InterchangeEvent] = field(default_factory=list)
    #: 2-norm estimate of the largest hyperbolic transformation applied
    #: at each block step — the growth quantity of the §8.2 analysis
    #: (≈ 2/√δ right after a perturbation).
    transform_norms: list[float] = field(default_factory=list)
    #: Precision the factorization ran at (``"fp64"``/``"fp32"``/``"mixed"``).
    precision: str = "fp64"

    @property
    def order(self) -> int:
        return self.r.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the triangular factor."""
        return self.r.dtype

    @property
    def perturbed(self) -> bool:
        return bool(self.perturbations)

    @property
    def max_transform_norm(self) -> float:
        """Largest per-step transformation norm (1.0 for SPD inputs)."""
        return max(self.transform_norms, default=1.0)

    @property
    def inertia(self) -> tuple[int, int]:
        """(number of positive, number of negative) eigenvalues of
        ``T + δT`` by Sylvester's law of inertia."""
        pos = int(np.sum(self.d > 0))
        return pos, self.order - pos

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``(T + δT) X = B`` via ``Rᵀ D R X = B``.

        ``b`` may be a vector or an ``n × k`` panel; the panel case runs
        the ``Rᵀ``/``R`` sweeps as level-3 ``dtrsm`` calls with one
        broadcast signature scaling in between.
        """
        panel, single = as_panel(b, self.order, dtype=self.r.dtype)
        y = solve_upper_triangular(self.r, panel, trans=True)
        y *= self.d.astype(y.dtype)[:, None]
        return from_panel(solve_upper_triangular(self.r, y), single)

    def reconstruct(self) -> np.ndarray:
        """Dense ``Rᵀ D R`` (equals ``T + δT``)."""
        return self.r.T @ (self.d.astype(np.float64)[:, None] * self.r)

    def logabsdet(self) -> tuple[float, int]:
        """``(log |det|, sign of det)`` of ``T + δT``."""
        logdet = 2.0 * float(np.sum(np.log(np.abs(np.diag(self.r)))))
        sign = int(np.prod(self.d))
        return logdet, sign


def _eliminate_block_indefinite(upper: np.ndarray, lower: np.ndarray,
                                w: np.ndarray, *, step: int, delta: float,
                                perturb: bool, perturb_threshold: float,
                                scale0: float,
                                events_p: list[PerturbationEvent],
                                events_i: list[InterchangeEvent],
                                elim_dtype: np.dtype | None = None) -> float:
    """One block step of the extended algorithm (interchanges + δ).

    ``scale0`` is the hyperbolic-norm scale of the *original* matrix
    (``≈ ‖T‖``): pivot norms are compared against it, not against the
    current column norm — after a δ-perturbation the generator grows to
    ``O(1/δ)`` while legitimate pivot norms stay at the ``‖T‖`` scale,
    so a column-relative test would misclassify every later pivot.

    The pivot decision logic (hyperbolic norms, perturbation and
    interchange tests) always runs in float64 regardless of the working
    dtype; ``elim_dtype`` rounds the accepted pivot column before the
    reflector is built (``"mixed"`` mode).
    """
    m, q = upper.shape
    n2 = 2 * m
    wf = w.astype(np.float64)
    round_pivot = (elim_dtype is not None
                   and np.dtype(elim_dtype) != upper.dtype)
    max_norm = 1.0
    support = np.concatenate([np.zeros(1, dtype=np.intp),
                              np.arange(m, n2, dtype=np.intp)])
    for k in range(m):
        u = np.zeros(n2, dtype=upper.dtype)
        u[k] = upper[k, k]
        u[m:] = lower[:, k]
        h = float(np.dot(wf * u, u))
        unorm2 = float(np.dot(u, u))
        if unorm2 == 0.0:
            raise SingularMinorError(
                "generator pivot column vanished entirely", step=step)
        if abs(h) <= perturb_threshold * scale0:
            if not perturb:
                raise SingularMinorError(
                    f"singular principal minor at block step {step}, "
                    f"column {k} (|uᵀWu| = {abs(h):.3e}, scale = "
                    f"{scale0:.3e}); retry with perturb=True", step=step)
            h_before = h
            # Perturb the pivot element (relative δ/2 change, doubled
            # until the norm sign matches the target axis).
            eps = 0.5 * delta * u[k] if u[k] != 0.0 else \
                delta * float(np.sqrt(scale0))
            ok = False
            for _ in range(60):
                cand = u.copy()
                cand[k] = u[k] + eps
                h_new = float(np.dot(wf * cand, cand))
                if w[k] * h_new > 0.0:
                    u = cand
                    upper[k, k] = u[k]
                    h = h_new
                    ok = True
                    break
                eps *= 2.0
            if not ok:
                raise BreakdownError(
                    "perturbation failed to restore a usable pivot")
            events_p.append(PerturbationEvent(
                step=step, column=k, scalar_index=step * m + k,
                delta=float(eps / u[k]) if u[k] != 0 else float(eps),
                norm_before=h_before, norm_after=h))
        elif w[k] * h < 0.0:
            # Interchange with the lower row of matching signature that
            # carries the largest pivot mass.
            cand = [l for l in range(m, n2) if w[l] * h > 0.0]
            # Always nonempty: W_kk·h<0 ⇒ Σ_k = −sign(h) ⇒ sign(h) ∈ −Σ.
            l = max(cand, key=lambda idx: abs(u[idx]))
            lr = l - m
            tmp = upper[k].copy()
            upper[k] = lower[lr]
            lower[lr] = tmp
            w[k], w[l] = w[l], w[k]
            wf = w.astype(np.float64)
            u[k], u[l] = u[l], u[k]
            events_i.append(InterchangeEvent(step=step, column=k,
                                             lower_row=l))
        support[0] = k
        if round_pivot:
            u = u.astype(elim_dtype).astype(upper.dtype)
        refl, _sigma = reflector_annihilating(u, w, k,
                                              support=support.copy())
        # ‖U_x‖₂ ≤ 1 + 2‖x‖²/|xᵀWx| — equality-order proxy for the
        # growth factor the §8.2 error analysis tracks.
        xs = refl.x[support]
        max_norm = max(max_norm,
                       1.0 + 2.0 * float(xs @ xs) / abs(refl.xwx))
        # Full-width sequential application: every column receives every
        # reflector (rank-1 parts vanish exactly on eliminated columns).
        _apply_reflector_pair(refl, upper, lower, k)
        lower[:, k] = 0.0
        blas.charge(0, "indefinite-step")
    neg = np.diag(upper[:, :m]) < 0
    if np.any(neg):
        upper[neg] *= -1.0
    return max_norm


def schur_indefinite_factor(t: SymmetricBlockToeplitz | Generator, *,
                            perturb: bool = True,
                            delta: float | None = None,
                            perturb_threshold: float | None = None,
                            singular_tol: float = 1e-13,
                            precision: str = "fp64"
                            ) -> IndefiniteFactorization:
    """Factor a symmetric (indefinite) block Toeplitz matrix as
    ``T + δT = Rᵀ D R``.

    Parameters
    ----------
    t : SymmetricBlockToeplitz or Generator
        The matrix or its precomputed indefinite generator.
    perturb : bool
        Allow pivot perturbations across singular principal minors
        (Section 8.2).  When ``False`` a singular minor raises
        :class:`~repro.errors.SingularMinorError`.
    delta : float
        Relative perturbation size; defaults to ``∛ε`` (eq. 46).
    perturb_threshold : float
        Pivot columns with ``|uᵀWu| ≤ threshold · ‖u‖²`` are treated as
        singular.  Defaults to ``δ``: below that level the transformation
        norm would exceed the ``1/δ`` the perturbation analysis budgets
        for, so perturbing is the stabler choice.
    singular_tol : float
        Tolerance for the signed Cholesky of the diagonal block.
    precision : str
        Working precision (``"fp64"``/``"fp32"``/``"mixed"``, see
        :mod:`repro.core.precision`).  ``δ`` defaults to the cube root
        of the working dtype's unit roundoff.

    Notes
    -----
    When ``perturbations`` is non-empty the factorization is of a nearby
    matrix; solve through :func:`repro.core.refinement.refine` (or
    :func:`repro.core.solve.solve_refined`) to recover full accuracy.
    """
    validate_precision(precision)
    wd = working_dtype(precision)
    elim = elimination_dtype(precision) if precision == "mixed" else None
    if delta is None:
        delta = default_delta(elimination_dtype(precision))
    if perturb_threshold is None:
        perturb_threshold = delta
    with obs.span("schur.generator"):
        if isinstance(t, Generator):
            g = t.copy()
        else:
            g = indefinite_generator(t, singular_tol=singular_tol, dtype=wd)
        if g.gen.dtype != wd:
            g = g.astype(wd)
    m, p = g.block_size, g.num_blocks
    n = m * p
    r = np.zeros((n, n), dtype=wd)
    d = np.zeros(n, dtype=np.int8)
    w = g.w.copy()
    top = g.gen[:m]
    bot = g.gen[m:]
    flush_tiny(g.gen)
    events_p: list[PerturbationEvent] = []
    events_i: list[InterchangeEvent] = []
    transform_norms: list[float] = []
    # Hyperbolic pivot norms live at the ‖T‖ scale; Gen entries are
    # ≈ √‖T‖, so the squared initial generator magnitude sets the scale.
    scale0 = float(np.max(np.abs(g.gen))) ** 2
    if scale0 == 0.0:
        scale0 = 1.0
    # Block step 0: the first block row of R is the top generator row;
    # its signature is the current upper-half signature.
    r[:m, :] = top
    d[:m] = w[:m]
    with obs.span("schur.eliminate", order=n, block_size=m,
                  delta=delta) as sp:
        for i in range(1, p):
            q = n - i * m
            upper = top[:, :q]
            lower = bot[:, i * m:]
            step_norm = _eliminate_block_indefinite(
                upper, lower, w, step=i, delta=delta, perturb=perturb,
                perturb_threshold=perturb_threshold, scale0=scale0,
                events_p=events_p, events_i=events_i, elim_dtype=elim)
            transform_norms.append(step_norm)
            if obs.enabled():
                health.record_growth_factor(i, step_norm)
            # fp32: keep the decaying generator out of the subnormal
            # range (subnormal sgemm runs ~30× slower).
            flush_tiny(upper)
            flush_tiny(lower)
            r[i * m:(i + 1) * m, i * m:] = upper
            d[i * m:(i + 1) * m] = w[:m]
        sp.set(perturbations=len(events_p), interchanges=len(events_i),
               max_transform_norm=(max(transform_norms)
                                   if transform_norms else 0.0))
    if obs.enabled():
        health.record_indefinite_events(len(events_p), len(events_i))
    return IndefiniteFactorization(r, d, m, p,
                                   perturbations=events_p,
                                   interchanges=events_i,
                                   transform_norms=transform_norms,
                                   precision=precision)
