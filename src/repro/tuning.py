"""Configuration autotuning — the paper's §7 program, automated.

The paper closes with: *"An analysis of the computation and
communication tradeoffs for a given problem size … and machine size …
decides which of the three schemes is best suited."*  This module is
that decision procedure:

* :func:`choose_distribution` sweeps the ``b`` parameter (Versions
  1/2/3) through the closed-form analytic time model (optionally
  verifying the top candidates in the event simulator) and returns the
  best scheme — reproducing the paper's per-experiment optima;
* :func:`tune` combines the distribution choice with the serial-side
  knobs (algorithmic block size ``m_s``, reflector representation) into
  one recommended configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blas.cray import T3DNetworkParameters, t3d_node_model
from repro.core.regroup import choose_block_size
from repro.errors import ShapeError
from repro.parallel.analytic import analytic_factor_time

__all__ = ["DistributionChoice", "TuningResult", "choose_distribution",
           "tune"]


def _candidate_bs(n: int, m: int, nproc: int) -> list[float]:
    """The b values worth trying: powers of two up to blocks-per-PE for
    grouping, divisors of m for spreading."""
    p = n // m
    cands: list[float] = [1.0]
    b = 2
    while b * nproc <= p:
        cands.append(float(b))
        b *= 2
    s = 2
    while s <= min(m, nproc) and m % s == 0:
        cands.append(1.0 / s)
        s *= 2
    return cands


@dataclass(frozen=True)
class DistributionChoice:
    """One evaluated data-distribution candidate."""

    b: float
    version: int
    predicted_seconds: float
    simulated_seconds: float | None = None

    @property
    def seconds(self) -> float:
        return (self.simulated_seconds
                if self.simulated_seconds is not None
                else self.predicted_seconds)


def choose_distribution(n: int, m: int, nproc: int, *,
                        representation: str = "vy2",
                        node_model=None,
                        network: T3DNetworkParameters | None = None,
                        verify_top: int = 0,
                        matrix=None
                        ) -> tuple[DistributionChoice,
                                   list[DistributionChoice]]:
    """Pick the Figure-5 distribution minimizing modeled time-to-factor.

    ``verify_top > 0`` re-times that many leading candidates in the
    event simulator (requires ``matrix``), replacing the analytic
    estimate with the simulated one before the final ranking.
    """
    if n % m != 0:
        raise ShapeError(f"n={n} not a multiple of m={m}")
    if nproc <= 0:
        raise ShapeError(f"nproc must be positive, got {nproc}")
    if node_model is None:
        node_model = t3d_node_model()
    if network is None:
        network = T3DNetworkParameters()
    choices: list[DistributionChoice] = []
    for b in _candidate_bs(n, m, nproc):
        pred = analytic_factor_time(n, m, nproc, b=b,
                                    representation=representation,
                                    node_model=node_model,
                                    network=network).total
        version = 3 if b < 1 else (1 if b == 1 else 2)
        choices.append(DistributionChoice(b=b, version=version,
                                          predicted_seconds=pred))
    choices.sort(key=lambda c: c.predicted_seconds)
    if verify_top > 0:
        if matrix is None:
            raise ShapeError("verify_top needs the matrix to simulate")
        from repro.parallel import simulate_factorization
        verified = []
        for c in choices[:verify_top]:
            sim = simulate_factorization(
                matrix, nproc, b=c.b, representation=representation,
                node_model=node_model, network=network,
                collect=False).time
            verified.append(DistributionChoice(
                b=c.b, version=c.version,
                predicted_seconds=c.predicted_seconds,
                simulated_seconds=sim))
        choices = sorted(verified, key=lambda c: c.seconds) + \
            choices[verify_top:]
    return choices[0], choices


@dataclass
class TuningResult:
    """Recommended configuration for a (problem, machine) pair.

    This is the solver engine's planner backend: ``tune`` picks the
    knobs, :meth:`to_plan` turns the recommendation into an executable
    :class:`~repro.engine.SolverPlan` (and
    ``repro.engine.plan(op, machine=MachineSpec(...))`` runs the same
    machinery in one step).
    """

    block_size: int
    representation: str
    distribution: DistributionChoice | None
    predicted_seconds: float
    nproc: int = 1
    candidates: list = field(default_factory=list)

    def to_plan(self, op, *, assume: str = "auto",
                use_cache: bool = True):
        """Materialize this recommendation as a
        :class:`~repro.engine.SolverPlan` for ``op``."""
        from repro.engine.plan import plan as make_plan
        pl = make_plan(op, assume=assume,
                       representation=self.representation,
                       block_size=(self.block_size
                                   if self.nproc <= 1 else None),
                       use_cache=use_cache)
        return pl.with_(
            nproc=self.nproc,
            distribution_b=(self.distribution.b
                            if self.distribution is not None else None),
            predicted_seconds=self.predicted_seconds)

    def describe(self) -> str:
        """One-line human-readable summary of the recommendation."""
        parts = [f"m_s = {self.block_size}",
                 f"representation = {self.representation}"]
        if self.distribution is not None:
            parts.append(
                f"distribution = Version {self.distribution.version} "
                f"(b = {self.distribution.b})")
        parts.append(f"predicted time = "
                     f"{self.predicted_seconds * 1e3:.3f} ms")
        return ", ".join(parts)


def tune(n: int, m: int, *, nproc: int = 1,
         node_model=None,
         network: T3DNetworkParameters | None = None,
         representations: tuple[str, ...] = ("vy1", "vy2", "yty"),
         block_sizes: list[int] | None = None) -> TuningResult:
    """End-to-end configuration choice.

    Serial (``nproc = 1``): pick ``(m_s, representation)`` by the node
    model through the primitive-call decomposition.  Parallel: fix the
    structural block size (regrouping changes the distribution problem)
    and pick ``(representation, b)`` by the analytic machine model.
    """
    if node_model is None:
        node_model = t3d_node_model()
    if nproc <= 1:
        best = None
        cands = []
        for rep in representations:
            ms, preds = choose_block_size(
                n, m, node_model, representation=rep,
                candidates=block_sizes)
            for pr in preds:
                cands.append((rep, pr))
            sec = min(pr.seconds for pr in preds)
            if best is None or sec < best[2]:
                best = (rep, ms, sec)
        rep, ms, sec = best
        return TuningResult(block_size=ms, representation=rep,
                            distribution=None, predicted_seconds=sec,
                            nproc=1, candidates=cands)
    best = None
    cands = []
    for rep in representations:
        choice, all_choices = choose_distribution(
            n, m, nproc, representation=rep, node_model=node_model,
            network=network)
        cands.extend((rep, c) for c in all_choices)
        if best is None or choice.seconds < best[1].seconds:
            best = (rep, choice)
    rep, choice = best
    return TuningResult(block_size=m, representation=rep,
                        distribution=choice,
                        predicted_seconds=choice.seconds,
                        nproc=nproc, candidates=cands)
