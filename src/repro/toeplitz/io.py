"""Save/load structured matrices and factorizations (.npz).

The compressed first-block-row representation is what gets persisted —
``O(m² p)`` on disk, never the dense matrix — with a format tag and the
defining arrays.  Round-trips are exact (bit-for-bit NumPy arrays).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import BlockToeplitz, \
    SymmetricBlockToeplitz

__all__ = ["save_matrix", "load_matrix"]

_FORMATS = {
    "symmetric-block-toeplitz": SymmetricBlockToeplitz,
    "block-toeplitz": BlockToeplitz,
}


def save_matrix(path: str, t) -> str:
    """Persist a (symmetric) block Toeplitz matrix to ``path`` (.npz)."""
    if isinstance(t, SymmetricBlockToeplitz):
        np.savez(path,
                 format=np.array("symmetric-block-toeplitz"),
                 top_blocks=np.asarray(t.top_blocks))
    elif isinstance(t, BlockToeplitz):
        np.savez(path,
                 format=np.array("block-toeplitz"),
                 first_block_row=np.asarray(t.first_block_row),
                 first_block_col=np.asarray(t.first_block_col))
    else:
        raise ShapeError(
            "save_matrix expects a BlockToeplitz or "
            "SymmetricBlockToeplitz instance")
    return path if path.endswith(".npz") else path + ".npz"


def load_matrix(path: str):
    """Load a matrix previously written by :func:`save_matrix`."""
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data:
            raise ShapeError(
                f"{path} is not a repro matrix file (no format tag)")
        fmt = str(data["format"])
        if fmt == "symmetric-block-toeplitz":
            return SymmetricBlockToeplitz(list(data["top_blocks"]))
        if fmt == "block-toeplitz":
            return BlockToeplitz(list(data["first_block_col"]),
                                 list(data["first_block_row"]))
        raise ShapeError(f"unknown matrix format {fmt!r} in {path}")
