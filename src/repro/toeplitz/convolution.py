"""Tall (block) Toeplitz convolution operators and structured least
squares.

A causal FIR system ``y = H ⊛ x`` is a *tall* block Toeplitz operator
``C`` (the convolution matrix).  Its normal-equations matrix is exactly
symmetric block Toeplitz:

    ``(CᵀC)_{ij} = Σ_s H_sᵀ H_{s+(j−i)} = R(j−i)``,

the (deterministic) autocorrelation of the impulse response — so the
full-rank least-squares problem ``min ‖Cx − y‖₂`` reduces to one SPD
block Schur solve plus FFT products, with optional semi-normal
refinement to recover the accuracy lost to squaring the condition
number.  This is the classical structured route to FIR deconvolution /
equalization with noisy data.
"""

from __future__ import annotations

import numpy as np
import scipy.fft as sfft

from repro.errors import ShapeError
from repro.utils.fingerprint import content_fingerprint
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["ConvolutionOperator", "toeplitz_lstsq"]


class ConvolutionOperator:
    """Tall block Toeplitz operator of a causal FIR system.

    Parameters
    ----------
    taps : (L, m, m) array_like (or (L,) for the scalar case)
        Impulse response ``H_0 … H_{L−1}``.
    n_in : int
        Number of input (block) samples.  The output has
        ``n_in + L − 1`` block samples ("full" convolution).
    """

    def __init__(self, taps, n_in: int):
        h = np.asarray(taps, dtype=np.float64)
        if h.ndim == 1:
            h = h[:, None, None]
        if h.ndim != 3 or h.shape[1] != h.shape[2]:
            raise ShapeError(
                f"taps must have shape (L, m, m) or (L,), got {h.shape}")
        if n_in <= 0:
            raise ShapeError(f"n_in must be positive, got {n_in}")
        if not np.any(h):
            raise ShapeError("impulse response must be nonzero")
        self.taps = h
        self.length = h.shape[0]
        self.block_size = h.shape[1]
        self.n_in = n_in
        self.n_out = n_in + self.length - 1
        self._nfft = sfft.next_fast_len(self.n_out)
        self._hf = sfft.rfft(h, n=self._nfft, axis=0)

    @property
    def shape(self) -> tuple[int, int]:
        m = self.block_size
        return (self.n_out * m, self.n_in * m)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``C x`` — block convolution via FFT, ``O(m² n log n)``."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        xc = x[:, None] if single else x
        m = self.block_size
        if xc.shape[0] != self.n_in * m:
            raise ShapeError(
                f"x has {xc.shape[0]} rows, expected {self.n_in * m}")
        xb = xc.reshape(self.n_in, m, -1)
        xf = sfft.rfft(xb, n=self._nfft, axis=0)
        yf = np.einsum("fab,fbr->far", self._hf, xf)
        y = sfft.irfft(yf, n=self._nfft, axis=0)[:self.n_out]
        y = y.reshape(self.n_out * m, -1)
        return y[:, 0] if single else y

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``Cᵀ y`` — block correlation via FFT."""
        y = np.asarray(y, dtype=np.float64)
        single = y.ndim == 1
        yc = y[:, None] if single else y
        m = self.block_size
        if yc.shape[0] != self.n_out * m:
            raise ShapeError(
                f"y has {yc.shape[0]} rows, expected {self.n_out * m}")
        yb = yc.reshape(self.n_out, m, -1)
        yf = sfft.rfft(yb, n=self._nfft, axis=0)
        # (Cᵀy)_i = Σ_t H_{t−i}ᵀ y_t : correlate with the conjugate filter
        xf = np.einsum("fba,fbr->far", self._hf.conj(), yf)
        x = sfft.irfft(xf, n=self._nfft, axis=0)[:self.n_in]
        x = x.reshape(self.n_in * m, -1)
        return x[:, 0] if single else x

    def assemble(self) -> np.ndarray:
        """Dense assembly (the :class:`~repro.engine.StructuredOperator`
        spelling of :meth:`dense`)."""
        return self.dense()

    def fingerprint(self) -> str:
        """Stable content hash of the taps + geometry + structure tag."""
        return content_fingerprint("convolution", self.taps,
                                   meta=(self.n_in,))

    def dense(self) -> np.ndarray:
        """Dense convolution matrix (tests/diagnostics)."""
        m = self.block_size
        out = np.zeros(self.shape)
        for t in range(self.n_out):
            for i in range(self.n_in):
                s = t - i
                if 0 <= s < self.length:
                    out[t * m:(t + 1) * m, i * m:(i + 1) * m] = \
                        self.taps[s]
        return out

    def normal_matrix(self) -> SymmetricBlockToeplitz:
        """``CᵀC`` as a symmetric block Toeplitz matrix.

        ``R(d) = Σ_s H_{s+d}ᵀ H_s`` — SPD whenever the impulse response
        is nonzero (the full convolution operator has full column rank).
        """
        h = self.taps
        L, m = self.length, self.block_size
        blocks = []
        for d in range(min(L, self.n_in)):
            r = np.zeros((m, m))
            for s in range(L - d):
                r += h[s + d].T @ h[s]
            blocks.append(r)
        while len(blocks) < self.n_in:
            blocks.append(np.zeros((m, m)))
        return SymmetricBlockToeplitz(blocks)


def toeplitz_lstsq(taps, y: np.ndarray, n_in: int, *,
                   refine_steps: int = 1) -> np.ndarray:
    """Least squares ``min_x ‖C x − y‖₂`` for the FIR operator ``C``.

    Solves the (exactly block Toeplitz) normal equations with the block
    Schur factorization and applies ``refine_steps`` rounds of
    semi-normal refinement (``x += (CᵀC)⁻¹ Cᵀ(y − Cx)``, all products by
    FFT) to offset the squared conditioning of the normal equations.
    """
    op = ConvolutionOperator(taps, n_in)
    y = np.asarray(y, dtype=np.float64)
    if y.shape[0] != op.n_out * op.block_size:
        raise ShapeError(
            f"y has {y.shape[0]} rows, expected "
            f"{op.n_out * op.block_size}")
    from repro.core.schur_spd import schur_spd_factor
    a = op.normal_matrix()
    fact = schur_spd_factor(a)
    x = fact.solve(op.rmatvec(y))
    for _ in range(max(0, refine_steps)):
        r = y - op.matvec(x)
        x = x + fact.solve(op.rmatvec(r))
    return x
