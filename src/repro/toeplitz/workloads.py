"""Workload generators for the paper's experiments.

Each generator returns a :class:`~repro.toeplitz.SymmetricBlockToeplitz`
in a well-understood class:

* :func:`kms_toeplitz` — Kac–Murdock–Szegő matrices ``t_k = ρ^k``; the
  standard SPD point-Toeplitz test family (used for the 4096-point
  Experiment 1 stand-in).
* :func:`prolate_toeplitz` — ill-conditioned SPD band-limiting matrices.
* :func:`ar_block_toeplitz` — autocovariance sequences of stable vector
  AR(1) processes; SPD block Toeplitz with genuinely dense blocks (the
  multichannel workloads the paper's introduction motivates).
* :func:`spectral_block_toeplitz` — sections of block circulants with a
  prescribed positive matrix spectral density; SPD by construction.
* :func:`indefinite_toeplitz` / :func:`singular_minor_toeplitz` — symmetric
  indefinite families for the Section 8 extension, including matrices with
  *exactly* singular leading principal minors.
* :func:`paper_example_matrix` — the 6 × 6 matrix of eq. (50) verbatim.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.errors import ShapeError
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.rng import default_rng

__all__ = [
    "kms_toeplitz",
    "prolate_toeplitz",
    "ar_block_toeplitz",
    "spectral_block_toeplitz",
    "random_spd_block_toeplitz",
    "indefinite_toeplitz",
    "singular_minor_toeplitz",
    "fgn_toeplitz",
    "ma_banded_toeplitz",
    "paper_example_matrix",
]


def kms_toeplitz(n: int, rho: float = 0.5) -> SymmetricBlockToeplitz:
    """Kac–Murdock–Szegő matrix: first row ``(1, ρ, ρ², …)``.

    Symmetric positive definite for ``|ρ| < 1``; condition number grows
    like ``(1+|ρ|)²/(1−|ρ|)²`` — mild for moderate ρ, which makes it the
    right stand-in for the paper's large point-Toeplitz timing runs.
    """
    if not (0 < n):
        raise ShapeError(f"n must be positive, got {n}")
    if not (abs(rho) < 1):
        raise ShapeError(f"|rho| must be < 1 for positive definiteness, "
                         f"got {rho}")
    row = rho ** np.arange(n)
    return SymmetricBlockToeplitz.from_first_row(row)


def prolate_toeplitz(n: int, bandwidth: float = 0.35) -> SymmetricBlockToeplitz:
    """Prolate matrix: ``t_0 = 2w``, ``t_k = sin(2πwk)/(πk)``.

    SPD for ``0 < w < 1/2`` but notoriously ill-conditioned — exercises the
    factorization's numerical robustness.
    """
    w = bandwidth
    if not (0.0 < w < 0.5):
        raise ShapeError(f"bandwidth must be in (0, 1/2), got {w}")
    k = np.arange(1, n)
    row = np.empty(n)
    row[0] = 2.0 * w
    row[1:] = np.sin(2.0 * np.pi * w * k) / (np.pi * k)
    return SymmetricBlockToeplitz.from_first_row(row)


def ar_block_toeplitz(num_blocks: int, block_size: int, *,
                      spectral_radius: float = 0.6,
                      seed=None) -> SymmetricBlockToeplitz:
    """Autocovariance block Toeplitz of a stable vector AR(1) process.

    With ``x_{t+1} = A x_t + w_t`` (``ρ(A) < 1``, ``cov w = S ≻ 0``), the
    stationary autocovariances satisfy the discrete Lyapunov equation
    ``Γ_0 = A Γ_0 A^T + S`` and ``Γ_k = A Γ_{k−1}``.  The block Toeplitz
    matrix ``[Γ_{j−i}]`` (with ``Γ_{−k} = Γ_k^T``) is the covariance of the
    stacked process and hence symmetric positive definite.
    """
    rng = default_rng(seed)
    m, p = block_size, num_blocks
    if m <= 0 or p <= 0:
        raise ShapeError(f"block_size/num_blocks must be positive, "
                         f"got {m}, {p}")
    a = rng.standard_normal((m, m))
    radius = max(abs(np.linalg.eigvals(a))) if m > 1 else abs(a[0, 0])
    if radius > 0:
        a *= spectral_radius / radius
    g = rng.standard_normal((m, m))
    s = g @ g.T + m * np.eye(m)
    gamma0 = sla.solve_discrete_lyapunov(a, s)
    gamma0 = 0.5 * (gamma0 + gamma0.T)
    blocks = [gamma0]
    for _ in range(1, p):
        blocks.append(a @ blocks[-1])
    return SymmetricBlockToeplitz(blocks)


def spectral_block_toeplitz(num_blocks: int, block_size: int, *,
                            decay: float = 1.0,
                            seed=None) -> SymmetricBlockToeplitz:
    """SPD block Toeplitz with a prescribed positive matrix spectral density.

    Positive semidefinite Hermitian samples ``F(θ_f) = Q_f Q_f^H + εI`` are
    placed on a fine frequency grid with the conjugate symmetry
    ``F(−θ) = conj(F(θ))``; the inverse DFT gives real covariance blocks
    ``T̂_{k+1} = (1/N) Σ_f F(θ_f) e^{i k θ_f}``.  The resulting matrix is a
    principal submatrix of an SPD block circulant, hence SPD.
    """
    rng = default_rng(seed)
    m, p = block_size, num_blocks
    if m <= 0 or p <= 0:
        raise ShapeError(f"block_size/num_blocks must be positive, "
                         f"got {m}, {p}")
    nfreq = 4 * p
    # Hermitian PSD samples with conjugate symmetry across ±θ.
    f = np.empty((nfreq, m, m), dtype=complex)
    for j in range(nfreq // 2 + 1):
        scale = np.exp(-decay * j / nfreq)
        q = (rng.standard_normal((m, m)) +
             1j * rng.standard_normal((m, m))) * scale
        sample = q @ q.conj().T + 0.5 * np.eye(m)
        f[j] = sample
        if 0 < j < nfreq - j:
            f[nfreq - j] = sample.conj()
    blocks_c = np.fft.ifft(f, axis=0)[:p]
    blocks = [np.real(b) for b in blocks_c]
    blocks[0] = 0.5 * (blocks[0] + blocks[0].T)
    return SymmetricBlockToeplitz(blocks)


def random_spd_block_toeplitz(num_blocks: int, block_size: int, *,
                              kind: str = "ar",
                              seed=None) -> SymmetricBlockToeplitz:
    """Random SPD block Toeplitz matrix from one of the named families."""
    if kind == "ar":
        return ar_block_toeplitz(num_blocks, block_size, seed=seed)
    if kind == "spectral":
        return spectral_block_toeplitz(num_blocks, block_size, seed=seed)
    if kind == "kms":
        if block_size != 1:
            t = kms_toeplitz(num_blocks * block_size)
            return t.regroup(block_size)
        return kms_toeplitz(num_blocks)
    raise ShapeError(f"unknown SPD family {kind!r}; "
                     "expected 'ar', 'spectral' or 'kms'")


def indefinite_toeplitz(n: int, *, seed=None,
                        ensure_indefinite: bool = True
                        ) -> SymmetricBlockToeplitz:
    """Random symmetric indefinite scalar Toeplitz matrix.

    Draws first rows until the assembled matrix has eigenvalues of both
    signs (when ``ensure_indefinite``).  Leading principal minors are
    generically nonsingular, exercising the pivot-interchange path of the
    extended Schur algorithm without the perturbation machinery.
    """
    rng = default_rng(seed)
    for _ in range(64):
        row = rng.standard_normal(n)
        row[0] = rng.uniform(-0.5, 0.5)  # small diagonal → indefinite
        t = SymmetricBlockToeplitz.from_first_row(row)
        if not ensure_indefinite:
            return t
        eig = np.linalg.eigvalsh(t.dense())
        if eig[0] < -1e-8 and eig[-1] > 1e-8:
            return t
    raise RuntimeError("failed to draw an indefinite Toeplitz matrix")


def singular_minor_toeplitz(n: int, *, minor: int = 2,
                            seed=None) -> SymmetricBlockToeplitz:
    """Symmetric Toeplitz with an *exactly singular* leading minor.

    Construction: pick the first ``minor`` entries of the first row so the
    ``minor × minor`` leading principal submatrix is singular (constant
    first row ⇒ the all-ones pattern of the paper's example), then extend
    randomly.  The overall matrix is generically nonsingular.
    """
    rng = default_rng(seed)
    if not (2 <= minor <= n):
        raise ShapeError(f"minor must be in [2, {n}], got {minor}")
    for _ in range(64):
        row = np.empty(n)
        # A constant first row of length `minor` makes the minor-th leading
        # principal submatrix (all-ones pattern) exactly singular.
        row[:minor] = 1.0
        row[minor:] = rng.uniform(-0.9, 0.9, size=n - minor)
        t = SymmetricBlockToeplitz.from_first_row(row)
        if abs(np.linalg.det(t.dense())) > 1e-6:
            return t
    raise RuntimeError("failed to draw a nonsingular matrix with a "
                       "singular leading minor")


def fgn_toeplitz(n: int, hurst: float = 0.75) -> SymmetricBlockToeplitz:
    """Fractional-Gaussian-noise autocovariance Toeplitz matrix.

    ``γ(k) = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`` for Hurst index
    ``H ∈ (0, 1)``; SPD, with slowly decaying (long-memory) entries for
    ``H > ½`` — a realistic stationary-process workload whose exact
    Gaussian likelihood is the textbook use of Toeplitz solvers.
    """
    if not (0.0 < hurst < 1.0):
        raise ShapeError(f"Hurst index must be in (0, 1), got {hurst}")
    if n <= 0:
        raise ShapeError(f"n must be positive, got {n}")
    k = np.arange(n, dtype=np.float64)
    h2 = 2.0 * hurst
    row = 0.5 * (np.abs(k + 1) ** h2 - 2 * np.abs(k) ** h2
                 + np.abs(k - 1) ** h2)
    return SymmetricBlockToeplitz.from_first_row(row)


def ma_banded_toeplitz(n: int, theta=(0.6, 0.3), *,
                       block_size: int = 1) -> SymmetricBlockToeplitz:
    """Banded SPD Toeplitz: covariance of an MA(q) process.

    ``x_t = w_t + Σ θ_i w_{t−i}`` has autocovariances that vanish beyond
    lag ``q`` — the band structure exercises the factorization's handling
    of exact zeros in the generator.
    """
    if n <= 0:
        raise ShapeError(f"n must be positive, got {n}")
    coef = np.concatenate([[1.0], np.asarray(theta, dtype=np.float64)])
    q = coef.size - 1
    row = np.zeros(n)
    for k in range(min(q, n - 1) + 1):
        row[k] = float(np.dot(coef[k:], coef[:coef.size - k]))
    t = SymmetricBlockToeplitz.from_first_row(row)
    if block_size > 1:
        t = t.regroup(block_size)
    return t


def paper_example_matrix() -> SymmetricBlockToeplitz:
    """The 6 × 6 symmetric Toeplitz matrix of eq. (50).

    First row ``(1.0, 1.0, 0.5297, 0.6711, 0.0077, 0.3834)``; its 2 × 2
    leading principal minor ``[[1, 1], [1, 1]]`` is singular, triggering
    the perturbation + iterative-refinement path of Section 8.
    """
    row = np.array([1.0000, 1.0000, 0.5297, 0.6711, 0.0077, 0.3834])
    return SymmetricBlockToeplitz.from_first_row(row)
