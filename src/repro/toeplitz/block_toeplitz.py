"""Block Toeplitz matrix classes.

A block Toeplitz matrix is constant along block diagonals (eq. 1 of the
paper).  The symmetric variant is fully determined by its first *block row*
``T̂_1, …, T̂_p`` (eq. 2): block ``(i, j)`` equals ``T̂_{j-i+1}`` above the
block diagonal and ``T̂_{i-j+1}^T`` below it.

Only the defining blocks are stored — ``O(m² p)`` memory for an
``mp × mp`` matrix — and all consumers (the Schur factorization, the FFT
matvec, the regrouping machinery) work from that compressed form.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotBlockToeplitzError, ShapeError
from repro.utils.fingerprint import content_fingerprint
from repro.utils.validation import as_float_matrix, check_block_conformance

__all__ = [
    "BlockToeplitz",
    "SymmetricBlockToeplitz",
    "from_dense",
    "symmetric_from_dense",
]


def _stack_blocks(blocks: Sequence[np.ndarray], name: str) -> np.ndarray:
    """Validate and stack a sequence of equal-size square blocks."""
    if len(blocks) == 0:
        raise ShapeError(f"{name} must contain at least one block")
    arrs = [as_float_matrix(b, f"{name}[{i}]") for i, b in enumerate(blocks)]
    m = arrs[0].shape[0]
    for i, b in enumerate(arrs):
        if b.shape != (m, m):
            raise ShapeError(
                f"{name}[{i}] has shape {b.shape}, expected ({m}, {m})")
    return np.stack(arrs, axis=0)


class SymmetricBlockToeplitz:
    """Symmetric block Toeplitz matrix defined by its first block row.

    Parameters
    ----------
    top_blocks : sequence of (m, m) arrays
        The first block row ``T̂_1, …, T̂_p``.  ``T̂_1`` must be symmetric;
        the remaining blocks are arbitrary square blocks of the same size.

    Notes
    -----
    The represented matrix is ``T[i, j] = T̂_{j-i+1}`` for ``j ≥ i`` and
    ``T̂_{i-j+1}^T`` for ``j < i`` (block indices, 1-based as in the paper).
    Symmetry of the whole matrix follows from symmetry of ``T̂_1``.
    """

    def __init__(self, top_blocks: Sequence[np.ndarray]):
        blocks = _stack_blocks(top_blocks, "top_blocks")
        first = blocks[0]
        if not np.allclose(first, first.T, rtol=1e-12, atol=1e-12):
            raise NotBlockToeplitzError(
                "T̂_1 (the diagonal block) must be symmetric")
        # Symmetrize exactly so dense() round-trips are bit-reproducible.
        blocks[0] = 0.5 * (first + first.T)
        self._blocks = blocks
        self._blocks.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_first_row(cls, row) -> "SymmetricBlockToeplitz":
        """Build a *scalar* (m = 1) symmetric Toeplitz from its first row."""
        row = np.asarray(row, dtype=np.float64).ravel()
        return cls([np.array([[v]]) for v in row])

    @classmethod
    def identity(cls, p: int, m: int) -> "SymmetricBlockToeplitz":
        """The ``mp × mp`` identity as a block Toeplitz matrix."""
        blocks = [np.eye(m)] + [np.zeros((m, m)) for _ in range(p - 1)]
        return cls(blocks)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Block size ``m``."""
        return self._blocks.shape[1]

    @property
    def num_blocks(self) -> int:
        """Number of block rows/columns ``p``."""
        return self._blocks.shape[0]

    @property
    def order(self) -> int:
        """Matrix order ``n = m p``."""
        return self.block_size * self.num_blocks

    @property
    def shape(self) -> tuple[int, int]:
        return (self.order, self.order)

    @property
    def top_blocks(self) -> np.ndarray:
        """Read-only ``(p, m, m)`` array of the first block row."""
        return self._blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SymmetricBlockToeplitz(order={self.order}, "
                f"block_size={self.block_size}, num_blocks={self.num_blocks})")

    # ------------------------------------------------------------------
    # Element / block access
    # ------------------------------------------------------------------
    def block(self, i: int, j: int) -> np.ndarray:
        """Block at block-row ``i``, block-column ``j`` (0-based)."""
        p = self.num_blocks
        if not (0 <= i < p and 0 <= j < p):
            raise IndexError(f"block index ({i}, {j}) out of range for p={p}")
        d = j - i
        if d >= 0:
            return self._blocks[d]
        return self._blocks[-d].T

    def scalar_entry(self, i: int, j: int) -> float:
        """Scalar entry ``T[i, j]`` (0-based)."""
        m = self.block_size
        return float(self.block(i // m, j // m)[i % m, j % m])

    def row_strip(self, rows: int) -> np.ndarray:
        """Dense strip of the first ``rows`` scalar rows (``rows × n``).

        Used by regrouping and by dense assembly; costs ``O(rows · n)``.
        """
        m, p, n = self.block_size, self.num_blocks, self.order
        if not (0 < rows <= n):
            raise ShapeError(f"rows must be in (0, {n}], got {rows}")
        nbr = -(-rows // m)  # ceil
        strip = np.empty((nbr * m, n))
        for bi in range(nbr):
            for bj in range(p):
                strip[bi * m:(bi + 1) * m, bj * m:(bj + 1) * m] = \
                    self.block(bi, bj)
        return strip[:rows]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def dense(self) -> np.ndarray:
        """Assemble the full dense ``n × n`` matrix."""
        m, p = self.block_size, self.num_blocks
        n = self.order
        out = np.empty((n, n))
        for i in range(p):
            for j in range(p):
                out[i * m:(i + 1) * m, j * m:(j + 1) * m] = self.block(i, j)
        return out

    def assemble(self) -> np.ndarray:
        """Dense assembly (the :class:`~repro.engine.StructuredOperator`
        spelling of :meth:`dense`)."""
        return self.dense()

    def fingerprint(self) -> str:
        """Stable content hash of the defining blocks + structure tag."""
        return content_fingerprint("sym-block-toeplitz", self._blocks)

    def first_scalar_row(self) -> np.ndarray:
        """First scalar row of the matrix (length ``n``)."""
        return self.row_strip(1).ravel()

    def leading(self, q: int) -> "SymmetricBlockToeplitz":
        """Leading principal block submatrix with ``q`` block rows."""
        if not (1 <= q <= self.num_blocks):
            raise ShapeError(
                f"q must be in [1, {self.num_blocks}], got {q}")
        return SymmetricBlockToeplitz(list(self._blocks[:q]))

    def regroup(self, new_block_size: int) -> "SymmetricBlockToeplitz":
        """Reinterpret with a larger algorithmic block size ``m_s``.

        Section 6.5 of the paper: a block Toeplitz matrix with structural
        block size ``m`` is also block Toeplitz for any block size that is
        a multiple of ``m`` and divides the order ``n``.  Part of the
        Toeplitz structure is forgone — the factorization cost grows
        linearly in ``m_s`` — in exchange for larger (faster) level-3
        primitives.
        """
        m, n = self.block_size, self.order
        ms = int(new_block_size)
        if ms == m:
            return self
        if ms <= 0 or ms % m != 0:
            raise ShapeError(
                f"new block size {ms} must be a positive multiple of m={m}")
        check_block_conformance(n, ms, "matrix")
        strip = self.row_strip(ms)
        ps = n // ms
        blocks = [np.ascontiguousarray(strip[:, k * ms:(k + 1) * ms])
                  for k in range(ps)]
        return SymmetricBlockToeplitz(blocks)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix–vector (or matrix–matrix) product via FFT embedding.

        ``O(m² n log n)`` instead of the ``O(n²)`` dense product; exact to
        rounding.  For repeated products build a
        :class:`repro.toeplitz.matvec.BlockCirculantEmbedding` once.
        """
        from repro.toeplitz.matvec import block_toeplitz_matvec
        return block_toeplitz_matvec(self, x)

    def __matmul__(self, x):
        return self.matvec(np.asarray(x, dtype=np.float64))

    def add_diagonal(self, shift: float) -> "SymmetricBlockToeplitz":
        """Return ``T + shift · I`` (still symmetric block Toeplitz)."""
        blocks = [np.array(self._blocks[0]) + shift * np.eye(self.block_size)]
        blocks.extend(np.array(b) for b in self._blocks[1:])
        return SymmetricBlockToeplitz(blocks)

    def scaled(self, alpha: float) -> "SymmetricBlockToeplitz":
        """Return ``alpha · T``."""
        return SymmetricBlockToeplitz([alpha * np.array(b)
                                       for b in self._blocks])


class BlockToeplitz:
    """General (possibly nonsymmetric) block Toeplitz matrix.

    Stored as the first block column ``C_0 … C_{p-1}`` (going down) and the
    first block row ``R_0 … R_{p-1}`` (going right) with ``C_0 == R_0``.
    Block ``(i, j)`` is ``R_{j-i}`` for ``j ≥ i`` and ``C_{i-j}`` otherwise.

    The Schur algorithm itself only consumes the symmetric class; this one
    supports the workloads and the FFT matvec substrate (and mirrors the
    API of :class:`SymmetricBlockToeplitz`).
    """

    def __init__(self, first_block_col: Sequence[np.ndarray],
                 first_block_row: Sequence[np.ndarray]):
        col = _stack_blocks(first_block_col, "first_block_col")
        row = _stack_blocks(first_block_row, "first_block_row")
        if col.shape != row.shape:
            raise ShapeError(
                f"first block column ({col.shape[0]} blocks of size "
                f"{col.shape[1]}) and row ({row.shape[0]} blocks of size "
                f"{row.shape[1]}) must match")
        if not np.allclose(col[0], row[0], rtol=1e-12, atol=1e-12):
            raise NotBlockToeplitzError(
                "first blocks of the column and the row must agree")
        self._col = col
        self._row = row
        self._col.setflags(write=False)
        self._row.setflags(write=False)

    @classmethod
    def from_symmetric(cls, t: SymmetricBlockToeplitz) -> "BlockToeplitz":
        row = [np.array(b) for b in t.top_blocks]
        col = [row[0]] + [b.T.copy() for b in row[1:]]
        return cls(col, row)

    @property
    def block_size(self) -> int:
        return self._row.shape[1]

    @property
    def num_blocks(self) -> int:
        return self._row.shape[0]

    @property
    def order(self) -> int:
        return self.block_size * self.num_blocks

    @property
    def shape(self) -> tuple[int, int]:
        return (self.order, self.order)

    @property
    def first_block_row(self) -> np.ndarray:
        return self._row

    @property
    def first_block_col(self) -> np.ndarray:
        return self._col

    def block(self, i: int, j: int) -> np.ndarray:
        """Block at block-row ``i``, block-column ``j`` (0-based)."""
        p = self.num_blocks
        if not (0 <= i < p and 0 <= j < p):
            raise IndexError(f"block index ({i}, {j}) out of range for p={p}")
        d = j - i
        return self._row[d] if d >= 0 else self._col[-d]

    def dense(self) -> np.ndarray:
        """Assemble the full dense ``n × n`` matrix."""
        m, p = self.block_size, self.num_blocks
        n = self.order
        out = np.empty((n, n))
        for i in range(p):
            for j in range(p):
                out[i * m:(i + 1) * m, j * m:(j + 1) * m] = self.block(i, j)
        return out

    def assemble(self) -> np.ndarray:
        """Dense assembly (the :class:`~repro.engine.StructuredOperator`
        spelling of :meth:`dense`)."""
        return self.dense()

    def fingerprint(self) -> str:
        """Stable content hash of the defining column/row + structure tag."""
        return content_fingerprint("block-toeplitz", self._col, self._row)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fast FFT product ``T x`` (see BlockCirculantEmbedding)."""
        from repro.toeplitz.matvec import block_toeplitz_matvec
        return block_toeplitz_matvec(self, x)

    def __matmul__(self, x):
        return self.matvec(np.asarray(x, dtype=np.float64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockToeplitz(order={self.order}, "
                f"block_size={self.block_size}, num_blocks={self.num_blocks})")


def from_dense(a, block_size: int, *,
               rtol: float = 1e-10, atol: float = 1e-12) -> BlockToeplitz:
    """Compress a dense block Toeplitz matrix, verifying the structure."""
    a = as_float_matrix(a, "a")
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"a must be square, got {a.shape}")
    m = block_size
    p = check_block_conformance(n, m, "a")
    row = [np.array(a[:m, j * m:(j + 1) * m]) for j in range(p)]
    col = [np.array(a[i * m:(i + 1) * m, :m]) for i in range(p)]
    t = BlockToeplitz(col, row)
    if not np.allclose(t.dense(), a, rtol=rtol, atol=atol):
        raise NotBlockToeplitzError(
            f"matrix is not block Toeplitz with block size {m}")
    return t


def symmetric_from_dense(a, block_size: int, *,
                         rtol: float = 1e-10,
                         atol: float = 1e-12) -> SymmetricBlockToeplitz:
    """Compress a dense symmetric block Toeplitz matrix, verifying both
    the symmetry and the Toeplitz structure."""
    a = as_float_matrix(a, "a")
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"a must be square, got {a.shape}")
    if not np.allclose(a, a.T, rtol=rtol, atol=atol):
        raise NotBlockToeplitzError("matrix is not symmetric")
    m = block_size
    p = check_block_conformance(a.shape[0], m, "a")
    blocks = [np.array(a[:m, j * m:(j + 1) * m]) for j in range(p)]
    t = SymmetricBlockToeplitz(blocks)
    if not np.allclose(t.dense(), a, rtol=rtol, atol=atol):
        raise NotBlockToeplitzError(
            f"matrix is not symmetric block Toeplitz with block size {m}")
    return t
