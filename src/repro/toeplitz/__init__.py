"""Block Toeplitz matrix substrate.

This subpackage provides the structured-matrix classes the Schur algorithm
factors, a fast FFT-based matrix–vector product used by iterative
refinement, and workload generators for the paper's experiments.
"""

from repro.toeplitz.block_toeplitz import (
    BlockToeplitz,
    SymmetricBlockToeplitz,
    from_dense,
    symmetric_from_dense,
)
from repro.toeplitz.matvec import BlockCirculantEmbedding, block_toeplitz_matvec
from repro.toeplitz.toeplitz_block import (
    SymmetricToeplitzBlock,
    shuffle_permutation,
)
from repro.toeplitz.io import save_matrix, load_matrix
from repro.toeplitz.convolution import ConvolutionOperator, toeplitz_lstsq
from repro.toeplitz.workloads import (
    kms_toeplitz,
    random_spd_block_toeplitz,
    ar_block_toeplitz,
    spectral_block_toeplitz,
    indefinite_toeplitz,
    singular_minor_toeplitz,
    paper_example_matrix,
    prolate_toeplitz,
    fgn_toeplitz,
    ma_banded_toeplitz,
)

__all__ = [
    "BlockToeplitz",
    "SymmetricBlockToeplitz",
    "from_dense",
    "symmetric_from_dense",
    "BlockCirculantEmbedding",
    "SymmetricToeplitzBlock",
    "shuffle_permutation",
    "save_matrix",
    "load_matrix",
    "ConvolutionOperator",
    "toeplitz_lstsq",
    "block_toeplitz_matvec",
    "kms_toeplitz",
    "random_spd_block_toeplitz",
    "ar_block_toeplitz",
    "spectral_block_toeplitz",
    "indefinite_toeplitz",
    "singular_minor_toeplitz",
    "paper_example_matrix",
    "prolate_toeplitz",
    "fgn_toeplitz",
    "ma_banded_toeplitz",
]
