"""Toeplitz-block matrices (the dual arrangement of ref. [2]).

The paper's reference [2] (Chun & Kailath) treats "block Toeplitz,
Toeplitz block and Toeplitz derived matrices".  A *Toeplitz-block*
matrix is an ``m × m`` grid of ``p × p`` blocks, each block Toeplitz —
the layout produced by stacking multichannel data **channel-major**
(all samples of channel 1, then channel 2, …) instead of time-major.

The two arrangements are related by the perfect-shuffle permutation
``Π`` that interleaves channels: ``Π A Πᵀ`` of a Toeplitz-block matrix
is *block Toeplitz* with ``m × m`` blocks.  This module provides the
class, the shuffle, and solve/factor entry points that delegate to the
block Schur machinery after shuffling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotBlockToeplitzError, ShapeError
from repro.utils.fingerprint import content_fingerprint
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = [
    "SymmetricToeplitzBlock",
    "shuffle_permutation",
]


def shuffle_permutation(m: int, p: int) -> np.ndarray:
    """Perfect-shuffle index map: channel-major → time-major.

    ``perm[t·m + c] = c·p + t``: entry ``(c, t)`` of the channel-major
    stacking lands at time-major position ``(t, c)``.  For an array
    ``x`` in channel-major order, ``x[perm]`` is time-major.
    """
    if m <= 0 or p <= 0:
        raise ShapeError(f"m and p must be positive, got {m}, {p}")
    t_idx, c_idx = np.meshgrid(np.arange(p), np.arange(m), indexing="ij")
    return (c_idx * p + t_idx).ravel()


class SymmetricToeplitzBlock:
    """Symmetric ``m × m`` grid of ``p × p`` Toeplitz blocks.

    Parameters
    ----------
    first_rows : (m, m, p) array_like
        ``first_rows[r, s]`` is the first row of Toeplitz block
        ``A_{rs}`` (``A_{rs}[i, j] = first_rows[r, s, j − i]`` for
        ``j ≥ i``).
    first_cols : (m, m, p) array_like
        ``first_cols[r, s]`` is the first column of ``A_{rs}``
        (``first_cols[r, s, 0]`` must equal ``first_rows[r, s, 0]``).

    Symmetry of the whole matrix requires ``A_{sr} = A_{rs}ᵀ``, i.e.
    ``first_rows[s, r] == first_cols[r, s]`` — validated on
    construction.
    """

    def __init__(self, first_rows, first_cols):
        rows = np.asarray(first_rows, dtype=np.float64)
        cols = np.asarray(first_cols, dtype=np.float64)
        if rows.ndim != 3 or rows.shape[0] != rows.shape[1]:
            raise ShapeError(
                f"first_rows must have shape (m, m, p), got {rows.shape}")
        if cols.shape != rows.shape:
            raise ShapeError(
                f"first_cols shape {cols.shape} != {rows.shape}")
        m, _, p = rows.shape
        if not np.allclose(rows[..., 0], cols[..., 0],
                           rtol=1e-12, atol=1e-12):
            raise NotBlockToeplitzError(
                "first_rows[..., 0] and first_cols[..., 0] must agree "
                "(the corner element of each Toeplitz block)")
        # A_{sr} = A_{rs}ᵀ ⇔ row(s,r) = col(r,s) and col(s,r) = row(r,s)
        if not (np.allclose(rows.transpose(1, 0, 2), cols,
                            rtol=1e-10, atol=1e-12)):
            raise NotBlockToeplitzError(
                "symmetry requires first_rows[s, r] == first_cols[r, s]")
        self._rows = rows
        self._cols = cols
        self._m = m
        self._p = p

    # ------------------------------------------------------------------
    @classmethod
    def from_cross_covariances(cls, gammas) -> "SymmetricToeplitzBlock":
        """Build from stationary cross-covariances ``γ_{rs}(k)``.

        ``gammas`` has shape ``(p, m, m)`` with
        ``γ(k)[r, s] = E[x_r(t+k) x_s(t)]``; block ``A_{rs}`` is the
        cross-covariance Toeplitz matrix of channels ``r`` and ``s``.
        """
        g = np.asarray(gammas, dtype=np.float64)
        if g.ndim != 3 or g.shape[1] != g.shape[2]:
            raise ShapeError(
                f"gammas must have shape (p, m, m), got {g.shape}")
        p, m, _ = g.shape
        # A_{rs}[i, j] = γ(i − j)[r, s]  ⇒ first row uses γ(−k) = γ(k)ᵀ
        rows = np.empty((m, m, p))
        cols = np.empty((m, m, p))
        for r in range(m):
            for s in range(m):
                rows[r, s] = g[:, s, r]     # γ(−k)[r,s] = γ(k)[s,r]
                cols[r, s] = g[:, r, s]
        return cls(rows, cols)

    # ------------------------------------------------------------------
    @property
    def num_channels(self) -> int:
        return self._m

    @property
    def block_size(self) -> int:
        """Block size of the shuffled block Toeplitz equivalent (= the
        number of channels), making the class a
        :class:`~repro.engine.StructuredOperator`."""
        return self._m

    @property
    def block_order(self) -> int:
        return self._p

    @property
    def order(self) -> int:
        return self._m * self._p

    @property
    def shape(self) -> tuple[int, int]:
        return (self.order, self.order)

    def toeplitz_entry(self, r: int, s: int, i: int, j: int) -> float:
        """Entry ``(i, j)`` of Toeplitz block ``A_{rs}``."""
        d = j - i
        if d >= 0:
            return float(self._rows[r, s, d])
        return float(self._cols[r, s, -d])

    def dense(self) -> np.ndarray:
        """Assemble the dense matrix in the channel-major ordering."""
        m, p = self._m, self._p
        out = np.empty((m * p, m * p))
        idx = np.arange(p)
        diff = idx[None, :] - idx[:, None]          # j − i
        for r in range(m):
            for s in range(m):
                block = np.where(diff >= 0,
                                 self._rows[r, s][np.abs(diff)],
                                 self._cols[r, s][np.abs(diff)])
                out[r * p:(r + 1) * p, s * p:(s + 1) * p] = block
        return out

    def assemble(self) -> np.ndarray:
        """Dense assembly (the :class:`~repro.engine.StructuredOperator`
        spelling of :meth:`dense`)."""
        return self.dense()

    def fingerprint(self) -> str:
        """Stable content hash of the defining rows/cols + structure tag."""
        return content_fingerprint("sym-toeplitz-block",
                                   self._rows, self._cols)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A x`` in channel-major order via the shuffled fast matvec."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.order:
            raise ShapeError(
                f"x has {x.shape[0]} rows, expected {self.order}")
        perm = self.permutation()
        xt = x[perm] if x.ndim == 1 else x[perm, :]
        yt = self.to_block_toeplitz().matvec(xt)
        y = np.empty_like(yt)
        y[perm] = yt
        return y

    # ------------------------------------------------------------------
    def to_block_toeplitz(self) -> SymmetricBlockToeplitz:
        """The shuffled equivalent: ``Π A Πᵀ`` is block Toeplitz.

        Time-major block ``T̂_{k+1}[r, s] = A_{rs}[t, t+k]`` =
        ``first_rows[r, s, k]``.
        """
        blocks = [np.ascontiguousarray(self._rows[:, :, k])
                  for k in range(self._p)]
        blocks[0] = 0.5 * (blocks[0] + blocks[0].T)
        return SymmetricBlockToeplitz(blocks)

    def permutation(self) -> np.ndarray:
        """``perm`` with ``x_time_major = x_channel_major[perm⁻¹]``…

        Precisely: for the dense matrices,
        ``self.dense()[np.ix_(perm, perm)] == to_block_toeplitz().dense()``
        where ``perm = shuffle_permutation(m, p)``.
        """
        return shuffle_permutation(self._m, self._p)

    # ------------------------------------------------------------------
    def cholesky(self, **kwargs):
        """SPD factorization of the shuffled matrix (see
        :func:`repro.core.solve.cholesky`); returns the factorization of
        ``Π A Πᵀ`` together with the permutation."""
        from repro.core.solve import cholesky as _chol
        return _chol(self.to_block_toeplitz(), **kwargs)

    def solve(self, b: np.ndarray, **kwargs) -> np.ndarray:
        """Solve ``A x = b`` in the original (channel-major) ordering."""
        from repro.core.solve import solve as _solve
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.order:
            raise ShapeError(
                f"b has {b.shape[0]} rows, expected {self.order}")
        perm = self.permutation()
        bt = b[perm] if b.ndim == 1 else b[perm, :]
        xt = _solve(self.to_block_toeplitz(), bt, **kwargs)
        x = np.empty_like(np.asarray(xt, dtype=np.float64))
        x[perm] = xt
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SymmetricToeplitzBlock(channels={self._m}, "
                f"block_order={self._p})")
