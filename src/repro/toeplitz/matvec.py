"""Fast block Toeplitz matrix–vector products via block-circulant embedding.

A block Toeplitz matrix with blocks ``C_d`` on block diagonal ``d`` embeds
into a block circulant of period ``N ≥ 2p − 1``; the product then becomes a
block circular convolution, diagonalized by the FFT:

    ``y_i = Σ_j C_{j−i} x_j  =  (ker ⊛ x)_i``  with ``ker_t = C_{−t}``.

Cost is ``O(m² N log N + m² N)`` versus ``O(n²)`` for the dense product —
this is the workhorse behind iterative refinement residuals (Section 8.1),
where the *original* unperturbed ``T`` must be applied repeatedly.
"""

from __future__ import annotations

import numpy as np
import scipy.fft as sfft

from repro.utils.lintools import as_panel, from_panel

__all__ = ["BlockCirculantEmbedding", "block_toeplitz_matvec"]


def _diagonal_block(t, d: int) -> np.ndarray:
    """Block on block diagonal ``d`` (``d = j − i``) of matrix-like ``t``."""
    if d >= 0:
        # SymmetricBlockToeplitz stores the first block row in top_blocks;
        # BlockToeplitz in first_block_row.
        row = getattr(t, "top_blocks", None)
        if row is None:
            row = t.first_block_row
        return row[d]
    row = getattr(t, "top_blocks", None)
    if row is not None:
        return row[-d].T
    return t.first_block_col[-d]


class BlockCirculantEmbedding:
    """Precomputed FFT factor for repeated block Toeplitz products.

    Parameters
    ----------
    t : SymmetricBlockToeplitz or BlockToeplitz
        The structured matrix to embed.

    Notes
    -----
    The frequency-domain kernel ``K̂`` (shape ``(F, m, m)``) is computed
    once in the constructor; each :meth:`matvec` afterwards costs two FFTs
    plus one batched ``m × m`` multiply per frequency.
    """

    def __init__(self, t):
        p = t.num_blocks
        m = t.block_size
        N = sfft.next_fast_len(max(2 * p - 1, 2))
        ker = np.zeros((N, m, m))
        ker[0] = _diagonal_block(t, 0)
        for s in range(1, p):
            ker[s] = _diagonal_block(t, -s)       # t = s  → C_{−s}
            ker[N - s] = _diagonal_block(t, s)    # t = N−s ≡ −s → C_{s}
        self._kf = sfft.rfft(ker, axis=0)
        self._N = N
        self._p = p
        self._m = m
        self._n = p * m

    @property
    def order(self) -> int:
        return self._n

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the embedded matrix to a vector or an ``n × k`` panel.

        All ``k`` columns share the two FFTs and the per-frequency
        ``m × m`` multiply (batched in the ``einsum``), so a panel costs
        barely more than ``k`` times the transform's pointwise stage —
        never ``k`` separate embeddings.  Fortran-ordered and
        non-contiguous panels are normalized once on entry.
        """
        x, single = as_panel(x, self._n, name="operand")
        nrhs = x.shape[1]
        xp = np.zeros((self._N, self._m, nrhs))
        xp[:self._p] = x.reshape(self._p, self._m, nrhs)
        xf = sfft.rfft(xp, axis=0)
        yf = np.einsum("fab,fbr->far", self._kf, xf)
        y = sfft.irfft(yf, n=self._N, axis=0)[:self._p]
        return from_panel(y.reshape(self._n, nrhs), single)

    __call__ = matvec


def block_toeplitz_matvec(t, x: np.ndarray) -> np.ndarray:
    """One-shot fast product ``T x`` (see :class:`BlockCirculantEmbedding`)."""
    return BlockCirculantEmbedding(t).matvec(x)
