"""Thin triangular-solve helpers and structure predicates.

``scipy.linalg.solve_triangular`` is used for the heavy lifting; these
wrappers pin down the conventions (lower/upper, transpose) used throughout
the Schur algorithm so call sites stay readable.

The solve helpers are *panel* helpers: a 2-D ``B`` of ``k`` right-hand
sides goes through LAPACK's ``dtrsm`` as one level-3 call instead of
``k`` back-substitutions — the paper's Section 6.5 trade (constant-factor
flops for level-3 shape) applied to the solve phase.
:func:`as_panel` / :func:`from_panel` are the shared RHS normalization
used by every factorization's ``solve``: they give the kernels one
contiguous float64 ``n × k`` view regardless of how the caller sliced,
ordered or typed ``B``, and restore the original rank on the way out.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.errors import ShapeError

__all__ = [
    "as_panel",
    "from_panel",
    "solve_lower_triangular",
    "solve_upper_triangular",
    "is_upper_triangular",
    "is_lower_triangular",
]


def as_panel(b: np.ndarray, order: int | None = None,
             *, name: str = "b",
             dtype: np.dtype | None = None) -> tuple[np.ndarray, bool]:
    """Normalize a right-hand side to a C-contiguous ``n × k`` panel.

    Accepts a vector (``k = 1``) or a matrix of column right-hand sides
    in any dtype, memory order or striding (Fortran-ordered arrays and
    non-contiguous slices are copied once here rather than per kernel).
    ``dtype`` pins the panel's working dtype (float64 by default, so
    callers that never pass it keep the historical contract; a
    reduced-precision factorization passes its own factor dtype).
    Returns ``(panel, single)`` where ``single`` records whether the
    input was 1-D so :func:`from_panel` can restore the shape.
    """
    b = np.asarray(b, dtype=np.float64 if dtype is None else dtype)
    if b.ndim not in (1, 2):
        raise ShapeError(
            f"{name} must be a vector or an n×k panel, got ndim={b.ndim}")
    single = b.ndim == 1
    panel = b[:, None] if single else b
    if order is not None and panel.shape[0] != order:
        raise ShapeError(
            f"{name} has {panel.shape[0]} rows, expected {order}")
    return np.ascontiguousarray(panel), single


def from_panel(x: np.ndarray, single: bool) -> np.ndarray:
    """Undo :func:`as_panel`: collapse a width-1 panel back to a vector."""
    return x[:, 0] if single else x


def _charge_trsm(a: np.ndarray, b: np.ndarray) -> None:
    """Charge the canonical ``dtrsm`` flop count (n² per RHS column)."""
    from repro.blas import primitives as blas
    nrhs = 1 if b.ndim == 1 else b.shape[1]
    blas.charge(a.shape[0] * a.shape[0] * nrhs, "trsm",
                dtype=a.dtype.name)


def solve_lower_triangular(L: np.ndarray, B: np.ndarray,
                           *, trans: bool = False) -> np.ndarray:
    """Solve ``L X = B`` (or ``Lᵀ X = B`` when ``trans``) for lower ``L``.

    ``B`` may be a vector or an ``n × k`` panel — the panel runs as one
    level-3 ``dtrsm`` across all columns.
    """
    _charge_trsm(L, B)
    return sla.solve_triangular(L, B, lower=True, trans=1 if trans else 0,
                                check_finite=False)


def solve_upper_triangular(R: np.ndarray, B: np.ndarray,
                           *, trans: bool = False) -> np.ndarray:
    """Solve ``R X = B`` (or ``Rᵀ X = B`` when ``trans``) for upper ``R``.

    ``B`` may be a vector or an ``n × k`` panel — the panel runs as one
    level-3 ``dtrsm`` across all columns.
    """
    _charge_trsm(R, B)
    return sla.solve_triangular(R, B, lower=False, trans=1 if trans else 0,
                                check_finite=False)


def is_upper_triangular(a: np.ndarray, atol: float = 0.0) -> bool:
    """True when all entries strictly below the diagonal are ≤ ``atol``."""
    if a.ndim != 2:
        return False
    below = np.tril(a, k=-1)
    return bool(np.all(np.abs(below) <= atol))


def is_lower_triangular(a: np.ndarray, atol: float = 0.0) -> bool:
    """True when all entries strictly above the diagonal are ≤ ``atol``."""
    if a.ndim != 2:
        return False
    above = np.triu(a, k=1)
    return bool(np.all(np.abs(above) <= atol))
