"""Thin triangular-solve helpers and structure predicates.

``scipy.linalg.solve_triangular`` is used for the heavy lifting; these
wrappers pin down the conventions (lower/upper, transpose) used throughout
the Schur algorithm so call sites stay readable.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = [
    "solve_lower_triangular",
    "solve_upper_triangular",
    "is_upper_triangular",
    "is_lower_triangular",
]


def solve_lower_triangular(L: np.ndarray, B: np.ndarray,
                           *, trans: bool = False) -> np.ndarray:
    """Solve ``L X = B`` (or ``L^T X = B`` when ``trans``) for lower ``L``."""
    return sla.solve_triangular(L, B, lower=True, trans=1 if trans else 0,
                                check_finite=False)


def solve_upper_triangular(R: np.ndarray, B: np.ndarray,
                           *, trans: bool = False) -> np.ndarray:
    """Solve ``R X = B`` (or ``R^T X = B`` when ``trans``) for upper ``R``."""
    return sla.solve_triangular(R, B, lower=False, trans=1 if trans else 0,
                                check_finite=False)


def is_upper_triangular(a: np.ndarray, atol: float = 0.0) -> bool:
    """True when all entries strictly below the diagonal are ≤ ``atol``."""
    if a.ndim != 2:
        return False
    below = np.tril(a, k=-1)
    return bool(np.all(np.abs(below) <= atol))


def is_lower_triangular(a: np.ndarray, atol: float = 0.0) -> bool:
    """True when all entries strictly above the diagonal are ≤ ``atol``."""
    if a.ndim != 2:
        return False
    above = np.triu(a, k=1)
    return bool(np.all(np.abs(above) <= atol))
