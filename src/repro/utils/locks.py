"""Advisory file locks: one shim over ``fcntl`` (POSIX) / ``msvcrt`` (Windows).

The persistent factorization store (:mod:`repro.engine.cache_store`)
shares one on-disk directory across processes.  Readers never need a
lock — entries are published with atomic rename-into-place, so a file
either exists completely or not at all — but *mutating* operations
(publish, prune, clear, quarantine) serialize on an advisory lock file
so two processes never interleave a scan with a delete.

The shim degrades gracefully: on platforms with neither ``fcntl`` nor
``msvcrt`` the lock is a no-op (single-process correctness is unaffected
— the store's atomic-rename protocol never produces a torn entry, a
lockless race merely lets both writers pay the serialization cost).
"""

from __future__ import annotations

import contextlib
import os

try:  # POSIX
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - platform-specific
    _fcntl = None

try:  # Windows
    import msvcrt as _msvcrt
except ImportError:
    _msvcrt = None

__all__ = ["file_lock"]


def _lock_fd(fd: int) -> None:
    if _fcntl is not None:
        _fcntl.flock(fd, _fcntl.LOCK_EX)
    elif _msvcrt is not None:  # pragma: no cover - Windows only
        _msvcrt.locking(fd, _msvcrt.LK_LOCK, 1)


def _unlock_fd(fd: int) -> None:
    if _fcntl is not None:
        _fcntl.flock(fd, _fcntl.LOCK_UN)
    elif _msvcrt is not None:  # pragma: no cover - Windows only
        os.lseek(fd, 0, os.SEEK_SET)
        _msvcrt.locking(fd, _msvcrt.LK_UNLCK, 1)


@contextlib.contextmanager
def file_lock(path: str):
    """Hold an exclusive advisory lock on ``path`` for the ``with`` body.

    The lock file is created on demand (and left in place — deleting a
    lock file another process may be blocking on is a classic race).
    Blocks until the lock is granted; reentrant use from the same
    process deadlocks on Windows and is allowed but pointless on POSIX,
    so callers keep lock scopes small and non-nested.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        _lock_fd(fd)
        try:
            yield
        finally:
            _unlock_fd(fd)
    finally:
        os.close(fd)
