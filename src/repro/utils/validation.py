"""Argument validation helpers used across the package.

These functions normalize user input to contiguous ``float64`` arrays and
raise :class:`repro.errors.ShapeError` with actionable messages instead of
letting NumPy broadcast errors surface from deep inside an algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "as_float_matrix",
    "as_float_vector",
    "check_square",
    "check_symmetric",
    "check_block_conformance",
]


def as_float_matrix(a, name: str = "a", *, copy: bool = False) -> np.ndarray:
    """Return ``a`` as a 2-D C-contiguous float64 array.

    Parameters
    ----------
    a : array_like
        Input to convert.
    name : str
        Argument name used in error messages.
    copy : bool
        Force a copy even when ``a`` is already in the target layout.
    """
    # copy=None: copy only when conversion requires it (NumPy 2 semantics)
    arr = np.array(a, dtype=np.float64, copy=True if copy else None,
                   order="C", ndmin=2)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains non-finite entries")
    return arr


def as_float_vector(b, name: str = "b", *, copy: bool = False) -> np.ndarray:
    """Return ``b`` as a 1-D float64 array (column vectors are flattened)."""
    arr = np.array(b, dtype=np.float64, copy=True if copy else None)
    if arr.ndim == 2 and 1 in arr.shape:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains non-finite entries")
    return arr


def check_square(a: np.ndarray, name: str = "a") -> int:
    """Check ``a`` is square and return its order."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"{name} must be square, got shape {a.shape}")
    return a.shape[0]


def check_symmetric(a: np.ndarray, name: str = "a",
                    rtol: float = 1e-10, atol: float = 1e-12) -> None:
    """Check that ``a`` equals its transpose to within a tolerance."""
    check_square(a, name)
    if not np.allclose(a, a.T, rtol=rtol, atol=atol):
        err = float(np.max(np.abs(a - a.T)))
        raise ShapeError(
            f"{name} must be symmetric; max |a - a.T| = {err:.3e}")


def check_block_conformance(n: int, m: int, name: str = "matrix") -> int:
    """Check that the order ``n`` is a multiple of the block size ``m``.

    Returns the number of block rows/columns ``p = n // m``.
    """
    if m <= 0:
        raise ShapeError(f"block size must be positive, got {m}")
    if n % m != 0:
        raise ShapeError(
            f"{name} order {n} is not a multiple of block size {m}")
    return n // m
