"""Small shared helpers: argument validation, RNG plumbing, triangular ops."""

from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_block_conformance,
    check_square,
    check_symmetric,
)
from repro.utils.rng import default_rng
from repro.utils.lintools import (
    solve_lower_triangular,
    solve_upper_triangular,
    is_upper_triangular,
    is_lower_triangular,
)

__all__ = [
    "as_float_matrix",
    "as_float_vector",
    "check_block_conformance",
    "check_square",
    "check_symmetric",
    "default_rng",
    "solve_lower_triangular",
    "solve_upper_triangular",
    "is_upper_triangular",
    "is_lower_triangular",
]
