"""Stable content fingerprints for structured operators.

The solver engine's factorization cache is keyed on
``(operator fingerprint, plan key)``; the fingerprint must therefore be

* **content-based** — two independently constructed operators with equal
  defining data hash identically (so a re-loaded matrix hits the cache);
* **structure-tagged** — a symmetric block Toeplitz matrix and a general
  one with the same first block row must not collide;
* **cheap** — ``O(defining data)``, never ``O(n²)`` dense assembly.

Kept in :mod:`repro.utils` (rather than the engine package) so the
operator classes can implement ``fingerprint()`` without importing the
engine, which imports them.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["content_fingerprint"]


def content_fingerprint(tag: str, *arrays, meta: tuple = ()) -> str:
    """SHA-256 hex digest of a structure tag + defining arrays + scalars.

    Parameters
    ----------
    tag : str
        Structure discriminator (e.g. ``"sym-block-toeplitz"``).
    *arrays
        The defining data, hashed as C-contiguous bytes in the *source*
        dtype together with the shape and dtype tags (so ``(2, 3)`` and
        ``(3, 2)`` data differ, and float32/float64 operators with equal
        values never alias the same factorization-cache entry).
    meta : tuple
        Extra hashable scalars folded into the digest (block sizes,
        lengths, …).
    """
    h = hashlib.sha256()
    h.update(tag.encode("utf-8"))
    for v in meta:
        h.update(b"|")
        h.update(repr(v).encode("utf-8"))
    for a in arrays:
        src = np.asarray(a)
        if not isinstance(a, np.ndarray):
            # Python scalars/lists: normalize to float64 so equal values
            # hash identically regardless of literal spelling.
            src = src.astype(np.float64)
        arr = np.ascontiguousarray(src)
        h.update(b"#")
        h.update(str(arr.shape).encode("utf-8"))
        h.update(arr.dtype.str.encode("utf-8"))
        h.update(arr.tobytes())
    return h.hexdigest()
