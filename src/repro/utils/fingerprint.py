"""Stable content fingerprints for structured operators.

The solver engine's factorization cache is keyed on
``(operator fingerprint, plan key)``; the fingerprint must therefore be

* **content-based** — two independently constructed operators with equal
  defining data hash identically (so a re-loaded matrix hits the cache);
* **structure-tagged** — a symmetric block Toeplitz matrix and a general
  one with the same first block row must not collide;
* **cheap** — ``O(defining data)``, never ``O(n²)`` dense assembly.

Kept in :mod:`repro.utils` (rather than the engine package) so the
operator classes can implement ``fingerprint()`` without importing the
engine, which imports them.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["content_fingerprint"]


def content_fingerprint(tag: str, *arrays, meta: tuple = ()) -> str:
    """SHA-256 hex digest of a structure tag + defining arrays + scalars.

    Parameters
    ----------
    tag : str
        Structure discriminator (e.g. ``"sym-block-toeplitz"``).
    *arrays
        The defining data, hashed as float64 C-contiguous bytes together
        with their shapes (so ``(2, 3)`` and ``(3, 2)`` data differ).
    meta : tuple
        Extra hashable scalars folded into the digest (block sizes,
        lengths, …).
    """
    h = hashlib.sha256()
    h.update(tag.encode("utf-8"))
    for v in meta:
        h.update(b"|")
        h.update(repr(v).encode("utf-8"))
    for a in arrays:
        arr = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
        h.update(b"#")
        h.update(str(arr.shape).encode("utf-8"))
        h.update(arr.tobytes())
    return h.hexdigest()
