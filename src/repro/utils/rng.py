"""Seeded random-number plumbing.

Every stochastic entry point in the package accepts a ``seed`` argument and
routes it through :func:`default_rng`, so experiments are reproducible and
no module touches NumPy's legacy global state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng"]


def default_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None``, an integer seed, a ``SeedSequence``, or an existing
    ``Generator`` (returned unchanged so callers can thread one RNG through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
