"""The structured-operator protocol the engine plans over.

Anything that exposes the five members below can be planned and executed
against: the block Toeplitz classes, the Toeplitz-block (channel-major)
arrangement, and the tall convolution operators all qualify.  The
protocol is structural (:class:`typing.Protocol`), so no inheritance is
required — third-party operators only need the right methods.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.utils.fingerprint import content_fingerprint

__all__ = ["StructuredOperator", "content_fingerprint"]


@runtime_checkable
class StructuredOperator(Protocol):
    """Minimal interface the solver engine requires of an operator.

    Implemented by :class:`~repro.toeplitz.SymmetricBlockToeplitz`,
    :class:`~repro.toeplitz.BlockToeplitz`,
    :class:`~repro.toeplitz.SymmetricToeplitzBlock` and
    :class:`~repro.toeplitz.ConvolutionOperator`.
    """

    @property
    def shape(self) -> tuple[int, int]:
        """Operator shape ``(rows, cols)``."""
        ...

    @property
    def block_size(self) -> int:
        """Structural block size ``m``."""
        ...

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fast product ``A x`` (never via dense assembly)."""
        ...

    def assemble(self) -> np.ndarray:
        """Dense assembly (diagnostics; ``O(n²)`` memory)."""
        ...

    def fingerprint(self) -> str:
        """Stable content hash of the defining data + structure tag.

        Equal-content operators — however constructed — must return
        equal fingerprints; the factorization cache is keyed on it.
        """
        ...
