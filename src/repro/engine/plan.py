"""Planning: choose *how* to solve before touching the right-hand side.

The paper's practical message (Sections 6.5 and 7) is that the winning
configuration — reflector representation, algorithmic block size
``m_s``, data distribution — depends on the matrix *and* the machine.
:func:`plan` packages that decision into an immutable
:class:`SolverPlan` that

* records which algorithm will run (and which fallback is armed),
* is inspectable (:meth:`SolverPlan.describe`) and serializable
  (:meth:`SolverPlan.to_dict` / :meth:`SolverPlan.from_dict`),
* carries the cache key (operator fingerprint + factorization knobs)
  that lets repeated executions reuse the factorization.

When a :class:`MachineSpec` is given, the §7 autotuner
(:mod:`repro.tuning`) acts as the planner backend: it picks ``m_s``,
the representation and the distribution parameter ``b`` from the machine
model instead of defaults.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.errors import InvalidOptionError, ShapeError

__all__ = ["MachineSpec", "SolverPlan", "plan"]

_ASSUME_VALUES = ("auto", "spd", "indefinite")
_BACKEND_VALUES = ("simulated", "multiprocess")
# Must match repro.parallel.mp_backend.SCHEDULES (kept literal to avoid
# a plan-time import of the parallel package).
_SCHEDULE_VALUES = ("bulk", "lookahead")
# Kept as a local literal (rather than importing repro.core.precision)
# to avoid a plan-time import of the core package; must match
# repro.core.precision.PRECISIONS.
_PRECISION_VALUES = ("fp64", "fp32", "mixed")

#: The cache axis: in-process LRU only, LRU backed by the on-disk
#: persistent store, or no caching at all.
_CACHE_VALUES = ("memory", "persistent", "off")

#: Fields that change the factorization (and hence the cache key).
#: ``nproc``/``distribution_b``/``backend`` are included so a serial
#: factorization, a simulated run and a real multiprocess run never
#: alias in the cache (their result objects differ even though R agrees).
#: ``precision`` is included so an fp32 and an fp64 factorization of the
#: same operator never share a cache entry.
_PLAN_KEY_FIELDS = ("algorithm", "representation", "block_size", "panel",
                    "in_place", "perturb", "delta", "nproc",
                    "distribution_b", "backend", "schedule", "transport",
                    "precision")


@dataclass(frozen=True)
class MachineSpec:
    """Target-machine description handed to the planner.

    ``node_model``/``network`` default to the paper's T3D
    parameterization inside :mod:`repro.tuning`; ``nproc > 1`` switches
    the planner to the distributed trade-off (representation + ``b``).
    """

    nproc: int = 1
    node_model: object | None = None
    network: object | None = None
    representations: tuple[str, ...] = ("vy1", "vy2", "yty")


@dataclass(frozen=True)
class SolverPlan:
    """Immutable description of one way to solve ``A x = b``.

    Produced by :func:`plan`; consumed by
    :func:`repro.engine.execute` / :func:`repro.engine.factor`.
    """

    algorithm: str
    representation: str
    block_size: int               #: algorithmic block size ``m_s``
    structural_block_size: int    #: the operator's native ``m``
    order: int
    fingerprint: str
    assume: str = "auto"
    fallback: str | None = None
    panel: int | None = None
    in_place: bool = True
    perturb: bool = True
    delta: float | None = None
    use_cache: bool = True
    #: Cache tiering: ``"memory"`` (in-process LRU), ``"persistent"``
    #: (LRU backed by the on-disk cross-process store) or ``"off"``.
    #: Kept consistent with ``use_cache`` by :func:`plan`; deliberately
    #: NOT part of the cache key — where a factorization is stored never
    #: changes what it is.
    cache: str = "memory"
    nproc: int = 1
    distribution_b: float | None = None
    #: Where a distributed (``nproc > 1``) factorization runs:
    #: ``"simulated"`` (discrete-event T3D model) or ``"multiprocess"``
    #: (real OS processes over shared memory, with graceful fallback to
    #: the simulator when unavailable).
    backend: str = "simulated"
    #: Per-step schedule of a distributed factorization: ``"bulk"``
    #: (the paper's barrier-synchronized loop) or ``"lookahead"`` (the
    #: Section-7 pipelined schedule — Version 1 layout, NP ≥ 2 — that
    #: overlaps the serial generator build with application work).
    schedule: str = "bulk"
    #: Transport the real backend's segments/collectives run over (see
    #: :func:`repro.parallel.transport.available_transports`).
    transport: str = "shared_memory"
    #: Working precision of the factorization: ``"fp64"``, ``"fp32"``
    #: (single-precision factor + fp64 refinement recovery at solve
    #: time) or ``"mixed"`` (fp32 hyperbolic elimination, fp64
    #: generator accumulation).
    precision: str = "fp64"
    predicted_seconds: float | None = None
    note: str = ""
    #: The operator the plan was made for (not part of equality or the
    #: serialized form — re-attach on :meth:`from_dict`).
    operator: object | None = field(default=None, compare=False,
                                    repr=False)

    # ------------------------------------------------------------------
    def plan_key(self) -> tuple:
        """The factorization-relevant knobs, as a hashable tuple."""
        return tuple(getattr(self, f) for f in _PLAN_KEY_FIELDS)

    def cache_key(self) -> tuple:
        """Cache key: ``(operator fingerprint, plan key)``."""
        return (self.fingerprint,) + self.plan_key()

    def with_(self, **changes) -> "SolverPlan":
        """A modified copy (plans are frozen)."""
        return dataclasses.replace(self, **changes)

    @property
    def distribution_version(self) -> int | None:
        """The paper's scheme number for ``distribution_b`` (1/2/3)."""
        b = self.distribution_b
        if b is None:
            return None
        return 3 if b < 1 else (1 if b == 1 else 2)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable multi-line plan summary."""
        lines = ["solver plan:"]
        algo = self.algorithm
        if self.fallback:
            algo += f" (fallback: {self.fallback})"
        lines.append(f"  algorithm       {algo}")
        lines.append(f"  operator        {self.order}x{self.order}, "
                     f"m={self.structural_block_size}, "
                     f"m_s={self.block_size}")
        lines.append(f"  representation  {self.representation}")
        if self.panel is not None:
            lines.append(f"  panel width     {self.panel}")
        if not self.in_place:
            lines.append("  phase 3         explicit shift")
        if self.delta is not None:
            lines.append(f"  delta           {self.delta:g}")
        if self.precision != "fp64":
            lines.append(f"  precision       {self.precision} "
                         "(fp64 recovery via refinement)")
        else:
            lines.append("  precision       fp64")
        cache = self.cache if self.use_cache else "off"
        lines.append(f"  cache           {cache} "
                     f"(fingerprint {self.fingerprint[:12]}…)")
        if self.nproc > 1:
            lines.append(
                f"  distribution    Version {self.distribution_version} "
                f"(b={self.distribution_b}), NP={self.nproc}")
            lines.append(f"  backend         {self.backend}")
            lines.append(f"  schedule        {self.schedule}")
            lines.append(f"  transport       {self.transport}"
                         + ("" if self.backend == "multiprocess"
                            else " (takes effect with the multiprocess "
                                 "backend)"))
        if self.predicted_seconds is not None:
            lines.append(f"  predicted time  "
                         f"{self.predicted_seconds * 1e3:.3f} ms")
        if self.note:
            lines.append(f"  note            {self.note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready dict of every field except the operator."""
        d = dataclasses.asdict(self)
        d.pop("operator")
        return d

    @classmethod
    def from_dict(cls, d: dict, operator=None) -> "SolverPlan":
        """Rebuild a plan from :meth:`to_dict` output, optionally
        re-attaching the operator it was made for."""
        d = dict(d)
        d.pop("operator", None)
        # Plans serialized before the cache axis existed: derive it.
        d.setdefault("cache",
                     "memory" if d.get("use_cache", True) else "off")
        return cls(operator=operator, **d)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _normalize_operator(op):
    """Map protocol implementers onto the class the algorithms consume.

    Returns ``(square symmetric/general block Toeplitz operator, note)``.
    """
    from repro.toeplitz.block_toeplitz import (
        BlockToeplitz,
        SymmetricBlockToeplitz,
    )
    from repro.toeplitz.convolution import ConvolutionOperator
    from repro.toeplitz.toeplitz_block import SymmetricToeplitzBlock

    if isinstance(op, (SymmetricBlockToeplitz, BlockToeplitz)):
        return op, ""
    if isinstance(op, SymmetricToeplitzBlock):
        return op.to_block_toeplitz(), \
            "shuffled from channel-major (Toeplitz-block) arrangement"
    if isinstance(op, ConvolutionOperator):
        return op.normal_matrix(), \
            "normal equations CᵀC of a convolution operator"
    raise InvalidOptionError(
        f"cannot plan for operator of type {type(op).__name__}; expected "
        "a StructuredOperator (SymmetricBlockToeplitz, BlockToeplitz, "
        "SymmetricToeplitzBlock or ConvolutionOperator)")


def _probe_spd(t, *, window: int = 64) -> bool:
    """Cheap definiteness probe: dense Cholesky of the leading
    ``min(n, window)``-ish principal minor.

    Catches indefinite operators and the singular-minor families at plan
    time (so the plan says ``indefinite+refine`` up front); a passing
    probe is *not* a certificate — execution still arms the fallback.
    """
    q = max(1, min(t.num_blocks, -(-window // t.block_size)))
    with obs.span("plan.probe", window=window) as sp:
        minor = t.leading(q).dense()
        try:
            np.linalg.cholesky(minor)
            spd = True
        except np.linalg.LinAlgError:
            spd = False
        sp.set(spd=spd)
    return spd


def plan(op, *, assume: str = "auto", machine: MachineSpec | None = None,
         algorithm: str | None = None, representation: str | None = None,
         block_size: int | None = None, panel: int | None = None,
         in_place: bool = True, perturb: bool = True,
         delta: float | None = None, use_cache: bool = True,
         cache: str | None = None,
         probe: bool = True, nproc: int | None = None,
         distribution_b: float | None = None,
         backend: str = "simulated",
         schedule: str = "bulk",
         transport: str = "shared_memory",
         precision: str = "fp64") -> SolverPlan:
    """Produce a :class:`SolverPlan` for ``op``.

    See :func:`_make_plan` for the parameter reference; this wrapper
    only adds the ``engine.plan`` observability span.
    """
    with obs.span("engine.plan", assume=assume) as sp:
        pl = _make_plan(op, assume=assume, machine=machine,
                        algorithm=algorithm, representation=representation,
                        block_size=block_size, panel=panel,
                        in_place=in_place, perturb=perturb, delta=delta,
                        use_cache=use_cache, cache=cache,
                        probe=probe, nproc=nproc,
                        distribution_b=distribution_b, backend=backend,
                        schedule=schedule, transport=transport,
                        precision=precision)
        sp.set(algorithm=pl.algorithm, order=pl.order,
               block_size=pl.block_size)
    return pl


def _make_plan(op, *, assume: str = "auto",
               machine: MachineSpec | None = None,
               algorithm: str | None = None,
               representation: str | None = None,
               block_size: int | None = None, panel: int | None = None,
               in_place: bool = True, perturb: bool = True,
               delta: float | None = None, use_cache: bool = True,
               cache: str | None = None,
               probe: bool = True, nproc: int | None = None,
               distribution_b: float | None = None,
               backend: str = "simulated",
               schedule: str = "bulk",
               transport: str = "shared_memory",
               precision: str = "fp64") -> SolverPlan:
    """Produce a :class:`SolverPlan` for ``op``.

    Parameters
    ----------
    op : StructuredOperator
        The operator to solve with.  Toeplitz-block operators are
        shuffled, convolution operators are replaced by their
        normal-equations matrix (recorded in ``plan.note``).
    assume : {"auto", "spd", "indefinite"}
        Definiteness assumption.  ``"auto"`` probes a leading principal
        minor and arms the indefinite fallback.
    machine : MachineSpec, optional
        When given, the §7 autotuner picks representation, algorithmic
        block size ``m_s`` (serial) and distribution ``b`` (parallel).
    algorithm : str, optional
        Explicit algorithm override (any registered name, e.g.
        ``"levinson"``, ``"pcg"``, ``"dense-chol"``).
    representation, block_size, panel, in_place, perturb, delta
        Factorization knobs (see :class:`~repro.core.SchurOptions` and
        :func:`~repro.core.schur_indefinite.schur_indefinite_factor`);
        explicit values win over machine-tuned ones.
    use_cache : bool
        Whether executions of this plan may reuse cached factorizations.
    cache : {"memory", "persistent", "off"}, optional
        Cache tiering.  ``"memory"`` keeps the in-process LRU only;
        ``"persistent"`` backs it with the on-disk cross-process store
        (:func:`repro.engine.default_store`), so factorizations survive
        restarts and are shared between workers; ``"off"`` disables
        caching.  Defaults from ``use_cache`` (``True`` → ``"memory"``);
        an explicit value wins and keeps ``use_cache`` consistent.
    probe : bool
        Disable the definiteness probe (``assume="auto"`` then always
        plans the SPD path with the fallback armed).
    nproc : int, optional
        Explicit PE count for a distributed factorization (overrides a
        machine-tuned value).  ``nproc > 1`` routes the SPD
        factorization through the distributed backends.
    distribution_b : float, optional
        Explicit distribution parameter (``b ≥ 1``: Versions 1/2;
        ``b < 1``: Version 3 with spread ``1/b``).  Defaults to the
        machine-tuned value, else ``1`` (Version 1) when distributed.
    backend : {"simulated", "multiprocess"}
        Where a distributed factorization runs.  ``"multiprocess"``
        uses real worker processes over shared memory and degrades to
        the simulator (with a recorded reason) when unavailable.
    schedule : {"bulk", "lookahead"}
        Per-step schedule of the distributed factorization.
        ``"lookahead"`` runs the Section-7 pipelined schedule that
        overlaps the serial generator build with application work;
        it requires the Version 1 distribution (``b = 1``) and
        ``nproc ≥ 2``.
    transport : str
        Named transport the real backend's shared segments run over
        (``"shared_memory"`` by default; see
        :func:`repro.parallel.transport.available_transports`).
    precision : {"fp64", "fp32", "mixed"}
        Working precision of the factorization.  Reduced-precision
        plans factor faster and route every solve through blocked
        iterative refinement with fp64 residuals to recover double
        accuracy; the engine falls back to an fp64 factorization when
        the estimated condition number makes refinement inadmissible.
        Serial only (``nproc > 1`` is fp64-only).
    """
    from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

    if assume not in _ASSUME_VALUES:
        raise InvalidOptionError(
            f"unknown assume={assume!r}; expected one of {_ASSUME_VALUES}")
    if backend not in _BACKEND_VALUES:
        raise InvalidOptionError(
            f"unknown backend={backend!r}; expected one of "
            f"{_BACKEND_VALUES}")
    if precision not in _PRECISION_VALUES:
        raise InvalidOptionError(
            f"unknown precision={precision!r}; expected one of "
            f"{_PRECISION_VALUES}")
    if cache is None:
        cache = "memory" if use_cache else "off"
    elif cache not in _CACHE_VALUES:
        raise InvalidOptionError(
            f"unknown cache={cache!r}; expected one of {_CACHE_VALUES}")
    else:
        use_cache = cache != "off"
    if schedule not in _SCHEDULE_VALUES:
        raise InvalidOptionError(
            f"unknown schedule={schedule!r}; expected one of "
            f"{_SCHEDULE_VALUES}")
    from repro.parallel.transport import available_transports
    if transport not in available_transports():
        raise InvalidOptionError(
            f"unknown transport={transport!r}; registered: "
            f"{available_transports()}")
    if nproc is not None and nproc < 1:
        raise ShapeError(f"nproc must be positive, got {nproc}")

    target, note = _normalize_operator(op)
    symmetric = isinstance(target, SymmetricBlockToeplitz)
    n = target.order
    m = target.block_size

    # --- machine-tuned knobs (the §7 planner backend) -----------------
    explicit_nproc = nproc
    nproc = 1
    dist_b: float | None = distribution_b
    predicted: float | None = None
    tuned_rep: str | None = None
    tuned_ms: int | None = None
    if machine is not None and symmetric:
        from repro.tuning import tune
        nproc = max(1, machine.nproc)
        result = tune(n, m, nproc=nproc,
                      node_model=machine.node_model,
                      network=machine.network,
                      representations=machine.representations)
        tuned_rep = result.representation
        tuned_ms = result.block_size
        predicted = result.predicted_seconds
        if dist_b is None and result.distribution is not None:
            dist_b = result.distribution.b
    if explicit_nproc is not None:
        nproc = explicit_nproc
    if nproc > 1 and dist_b is None:
        dist_b = 1.0   # Version 1 unless the planner/user says otherwise
    if nproc > 1 and precision != "fp64":
        raise InvalidOptionError(
            "reduced-precision factorization is serial-only: the "
            "distributed backends run fp64; drop precision or nproc")
    if schedule == "lookahead":
        if nproc < 2:
            raise InvalidOptionError(
                "schedule='lookahead' needs nproc >= 2 (the pipelined "
                "schedule overlaps work across PEs)")
        if dist_b is not None and dist_b != 1:
            raise InvalidOptionError(
                "schedule='lookahead' is implemented for the Version 1 "
                f"distribution (b=1); got b={dist_b}")

    # --- algorithm selection ------------------------------------------
    fallback: str | None = None
    if algorithm is not None:
        from repro.engine.engine import get_algorithm
        get_algorithm(algorithm)  # validates the name
    elif not symmetric:
        algorithm = "gko"
    elif assume == "spd":
        algorithm = "spd-schur"
    elif assume == "indefinite":
        algorithm = "indefinite+refine"
    else:  # auto
        if probe and not _probe_spd(target):
            algorithm = "indefinite+refine"
        else:
            algorithm = "spd-schur"
            fallback = "indefinite+refine"

    # --- representation / block size ----------------------------------
    rep = representation if representation is not None else \
        (tuned_rep or "vy2")
    from repro.core.block_reflector import REPRESENTATIONS
    if rep not in REPRESENTATIONS:
        raise InvalidOptionError(
            f"unknown representation {rep!r}; expected one of "
            f"{REPRESENTATIONS}")
    ms = block_size if block_size is not None else (tuned_ms or m)
    if ms != m:
        if ms <= 0 or ms % m != 0 or n % ms != 0:
            raise ShapeError(
                f"algorithmic block size {ms} must be a multiple of "
                f"m={m} dividing n={n}")

    return SolverPlan(
        algorithm=algorithm, representation=rep, block_size=ms,
        structural_block_size=m, order=n,
        fingerprint=target.fingerprint(), assume=assume,
        fallback=fallback, panel=panel, in_place=in_place,
        perturb=perturb, delta=delta, use_cache=use_cache, cache=cache,
        nproc=nproc, distribution_b=dist_b, backend=backend,
        schedule=schedule, transport=transport,
        precision=precision, predicted_seconds=predicted, note=note,
        operator=target)
