"""LRU factorization cache: factor once, solve many.

The serve-many-RHS workload the ROADMAP implies — repeated
``solve(T, b_i)`` against the same operator — should pay the ``O(m n²)``
factorization cost once.  The cache is keyed on
``(operator fingerprint, plan key)``: the fingerprint is a stable
content hash (:meth:`~repro.engine.StructuredOperator.fingerprint`), the
plan key covers every knob that changes the factorization (algorithm,
representation, ``m_s``, panel, perturbation size …), so distinct
configurations never collide.

Entries account their byte footprint (every ``ndarray`` reachable one
level deep through the stored factorization object); eviction is
least-recently-used, triggered by either an entry-count or a byte
budget.  All operations take an internal lock, so concurrent solves from
multiple threads are safe; hit/miss/eviction counters make the behaviour
observable (and testable).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = [
    "CacheStats",
    "FactorizationCache",
    "default_cache",
    "set_default_cache",
]


def _estimate_nbytes(obj) -> int:
    """Byte footprint of the ndarrays reachable from a factorization.

    Walks attributes (``__dict__`` and ``__slots__``) and list / tuple /
    dict containers to *any* nesting depth, summing ``ndarray.nbytes``;
    cycles and shared references are counted once.  Non-array leaves are
    counted at a flat 64 bytes so empty results still have nonzero size.
    The unbounded walk matters: factorization objects nest (a
    distributed result holds a run holding per-worker payloads holding
    arrays), and a depth cutoff made ``max_bytes`` eviction blind to
    everything below it.
    """
    seen: set[int] = set()

    def walk(v) -> int:
        if id(v) in seen:
            return 0
        seen.add(id(v))
        if isinstance(v, np.memmap):
            # File-backed pages, not resident heap: a disk-warm dense
            # ``R`` handed back by the persistent store must not count
            # its virtual size against (and instantly blow) the byte
            # budget.  The subclass check must precede the ndarray one.
            return 64
        if isinstance(v, np.ndarray):
            return int(v.nbytes)
        if isinstance(v, (list, tuple)):
            return sum(walk(x) for x in v)
        if isinstance(v, dict):
            return sum(walk(x) for x in v.values())
        total = 0
        attrs = getattr(v, "__dict__", None)
        if attrs:
            total += sum(walk(x) for x in attrs.values())
        for klass in type(v).__mro__:
            slots = getattr(klass, "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for name in slots:
                try:
                    total += walk(getattr(v, name))
                except AttributeError:
                    pass
        return total if total else 64

    return walk(obj)


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_entries: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FactorizationCache:
    """Thread-safe LRU cache of factorization objects.

    Parameters
    ----------
    max_entries : int
        Entry-count budget (≥ 1).
    max_bytes : int
        Byte budget over the stored factorizations' array payloads.
    """

    def __init__(self, max_entries: int = 32,
                 max_bytes: int = 512 * 2 ** 20):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        """Mirror the counters into live observability gauges.

        Called under the cache lock after every state change when
        observability is enabled (one boolean check otherwise).  With
        several cache instances alive the gauges reflect the most
        recently active one — the default process-wide cache in every
        production configuration.
        """
        registry = _metrics.default_registry()
        registry.gauge("repro_cache_hits",
                       "Factorization cache hits").set(self._hits)
        registry.gauge("repro_cache_misses",
                       "Factorization cache misses").set(self._misses)
        registry.gauge("repro_cache_evictions",
                       "Factorization cache LRU evictions"
                       ).set(self._evictions)
        registry.gauge("repro_cache_entries",
                       "Factorizations currently cached"
                       ).set(len(self._entries))
        registry.gauge("repro_cache_bytes",
                       "Byte footprint of cached factorizations"
                       ).set(self._bytes)

    def get(self, key: tuple):
        """Look up ``key``; returns the value or ``None`` (counts the
        hit/miss and refreshes recency)."""
        with self._lock:
            try:
                value, nbytes = self._entries.pop(key)
            except KeyError:
                self._misses += 1
                if _spans.enabled():
                    self._publish_gauges()
                return None
            self._entries[key] = (value, nbytes)
            self._hits += 1
            if _spans.enabled():
                self._publish_gauges()
            return value

    def put(self, key: tuple, value) -> None:
        """Insert ``value`` under ``key``, evicting LRU entries past the
        entry/byte budgets.  Values larger than the whole byte budget are
        not cached at all."""
        nbytes = _estimate_nbytes(value)
        if nbytes > self.max_bytes:
            return
        with self._lock:
            if key in self._entries:
                _, old = self._entries.pop(key)
                self._bytes -= old
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self._evictions += 1
            if _spans.enabled():
                self._publish_gauges()

    def get_or_create(self, key: tuple, builder) -> tuple[object, bool]:
        """Return ``(value, cache_hit)``, building and inserting on miss.

        The builder runs outside the lock (factorizations are slow); two
        racing threads may both build, with the later insert winning —
        correctness is unaffected since equal keys mean equal content.
        """
        value = self.get(key)
        if value is not None:
            return value, True
        value = builder()
        self.put(key, value)
        return value, False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            if _spans.enabled():
                self._publish_gauges()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0
            if _spans.enabled():
                self._publish_gauges()

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, entries=len(self._entries),
                current_bytes=self._bytes, max_entries=self.max_entries,
                max_bytes=self.max_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"FactorizationCache(entries={s.entries}, "
                f"bytes={s.current_bytes}, hits={s.hits}, "
                f"misses={s.misses}, evictions={s.evictions})")


_default_cache = FactorizationCache()
_default_lock = threading.Lock()


def default_cache() -> FactorizationCache:
    """The process-wide cache used when a plan has ``use_cache=True``."""
    return _default_cache


def set_default_cache(cache: FactorizationCache) -> FactorizationCache:
    """Swap the process-wide cache; returns the previous one."""
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous
