"""Unified solver engine: plan/execute split over structured operators.

Every solve entry point in the package routes through this subsystem:

1. :func:`plan` inspects a :class:`StructuredOperator` (and optionally a
   :class:`MachineSpec`) and produces an immutable, inspectable
   :class:`SolverPlan` — which algorithm, which reflector representation,
   which algorithmic block size ``m_s``, which data distribution;
2. :func:`execute` runs a plan against a right-hand side, transparently
   reusing factorizations through the process-wide
   :class:`FactorizationCache` (factor once, solve many);
3. the **algorithm registry** (:func:`register_algorithm`,
   :func:`algorithms`) makes the Schur solvers and every baseline
   first-class, uniformly benchmarkable engine algorithms.

The per-plan record of which algorithm actually ran (fallbacks included)
attaches stability/accuracy diagnostics to the plan rather than to
scattered call sites — the bookkeeping the Bojanczyk–de Hoog–Brent
stability analysis of the Schur recursion asks for.
"""

from repro.engine.operator import StructuredOperator, content_fingerprint
from repro.engine.plan import MachineSpec, SolverPlan, plan
from repro.engine.cache import (
    CacheStats,
    FactorizationCache,
    default_cache,
    set_default_cache,
)
from repro.engine.cache_store import (
    CacheStore,
    EntryInfo,
    StoreStats,
    default_store,
    set_default_store,
    version_stamp,
)
from repro.engine.engine import (
    Algorithm,
    ExecutionRecord,
    ExecutionResult,
    FactorResult,
    algorithms,
    execute,
    execute_many,
    factor,
    get_algorithm,
    register_algorithm,
    solve,
)

__all__ = [
    "StructuredOperator",
    "content_fingerprint",
    "MachineSpec",
    "SolverPlan",
    "plan",
    "CacheStats",
    "FactorizationCache",
    "default_cache",
    "set_default_cache",
    "CacheStore",
    "EntryInfo",
    "StoreStats",
    "default_store",
    "set_default_store",
    "version_stamp",
    "Algorithm",
    "ExecutionRecord",
    "ExecutionResult",
    "FactorResult",
    "algorithms",
    "execute",
    "execute_many",
    "factor",
    "get_algorithm",
    "register_algorithm",
    "solve",
]
