"""Persistent, cross-process factorization store behind the memory LRU.

The in-memory :class:`~repro.engine.cache.FactorizationCache` dies with
the process; this module gives factorizations a second, durable tier so
a restarted solver (or a sibling worker on the same host) warm-starts
from disk instead of refactoring.  Layout on disk::

    <root>/
      .lock                      advisory lock for mutating operations
      v1/<digest>.npz            one entry per (fingerprint, plan) key
      quarantine/                entries that failed integrity checks

Each entry is a plain ZIP (stored, never deflated) holding one
``meta.json`` plus one raw ``.npy`` member per array of the entry's
:class:`~repro.core.compact.CompactFactorization`.  Because members are
uncompressed, a warm load can hand the arrays back as **zero-copy
read-only memory maps** straight into the page cache — the dominant
cost of a dense-``R`` warm start becomes a few page faults rather than
an ``O(n²)`` read, and the Schur recursion is skipped entirely.

Safety properties:

* **atomic publish** — entries are written to a temp file in the same
  directory and ``os.replace``-d into place, so readers never observe a
  torn entry and concurrent writers of the same key last-write-win with
  identical content;
* **staleness** — entries carry the store schema, the compact schema
  and a numpy/scipy version stamp; any mismatch is a silent miss (the
  recompute overwrites the stale file), never an error;
* **corruption quarantine** — undecodable zips, bad npy headers,
  out-of-bounds payloads and content-hash mismatches move the file to
  ``quarantine/`` and report a miss, so on-disk damage can never crash
  a solve.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.compact import (
    COMPACT_SCHEMA_VERSION,
    CompactFactorization,
    array_hash,
)
from repro.errors import CacheStoreError, UnsupportedFactorizationError
from repro.utils.locks import file_lock

__all__ = [
    "STORE_SCHEMA_VERSION",
    "CacheStore",
    "EntryInfo",
    "StoreStats",
    "default_store",
    "set_default_store",
    "version_stamp",
]

#: Directory-level schema version: bumping it changes the entry
#: directory name (``v1`` → ``v2``), so old and new code share a root
#: without ever misreading each other's entries.
STORE_SCHEMA_VERSION = 1

#: Arrays at or below this many bytes are content-hash-verified on
#: every load (GS vectors, GKO generators — the O(mn) entries).  Larger
#: payloads (dense ``R``) rely on structural checks so the memory map
#: stays zero-copy; :meth:`CacheStore.verify` does the full check on
#: demand.
HASH_VERIFY_LIMIT = 8 * 2**20

_ZIP_LOCAL_HEADER_SIZE = 30


def version_stamp() -> str:
    """The numerical-stack identity an entry was produced under.

    BLAS/LAPACK results are only bitwise-reproducible within one build
    of the stack, and npy encoding details follow numpy; entries from a
    different stamp are treated as stale and recomputed.
    """
    import scipy
    return f"numpy={np.__version__};scipy={scipy.__version__}"


def _digest(key) -> str:
    """Stable filename digest for one engine cache key."""
    return hashlib.sha256(repr(key).encode()).hexdigest()[:40]


@dataclass
class StoreStats:
    """Counters for one :class:`CacheStore` (process-local)."""

    disk_hits: int = 0
    disk_misses: int = 0
    stale: int = 0
    quarantined: int = 0
    writes: int = 0
    unsupported: int = 0
    load_seconds: float = 0.0
    entries: int = 0
    disk_bytes: int = 0


@dataclass(frozen=True)
class EntryInfo:
    """What ``ls``/``info`` report about one on-disk entry."""

    digest: str
    path: str
    file_bytes: int
    created: float
    kind: str = "?"
    payload_bytes: int = 0
    stamp: str = ""
    key: str = ""
    describe: dict = field(default_factory=dict)


class CacheStore:
    """Durable second tier of the factorization cache.

    Thread-compatible and cross-process-safe: reads are lockless (the
    atomic-rename publish protocol guarantees complete files), mutations
    serialize on the advisory ``.lock`` file.
    """

    def __init__(self, root: str, *, mmap: bool = True,
                 hash_verify_limit: int = HASH_VERIFY_LIMIT):
        self.root = os.path.abspath(root)
        self.mmap = bool(mmap)
        self.hash_verify_limit = int(hash_verify_limit)
        self._stamp = version_stamp()
        self._stats = StoreStats()
        os.makedirs(self.entries_dir, exist_ok=True)

    # -- paths ----------------------------------------------------------
    @property
    def entries_dir(self) -> str:
        return os.path.join(self.root, f"v{STORE_SCHEMA_VERSION}")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    @property
    def lock_path(self) -> str:
        return os.path.join(self.root, ".lock")

    def path_for(self, key) -> str:
        """On-disk path an entry for ``key`` lives at (whether or not it
        exists)."""
        return os.path.join(self.entries_dir, f"{_digest(key)}.npz")

    # -- write ----------------------------------------------------------
    def put(self, key, fact, *, describe: dict | None = None,
            strict: bool = False) -> bool:
        """Publish ``fact`` under ``key``; returns ``True`` on a write.

        Factorizations with no compact form are skipped silently (the
        memory tier still holds them) unless ``strict``.  The write is
        atomic: temp file in the entries directory, fsync, rename.
        """
        try:
            compact = CompactFactorization.from_factorization(fact)
        except UnsupportedFactorizationError:
            self._stats.unsupported += 1
            if strict:
                raise
            return False
        payload = self._encode(key, compact, describe or {})
        path = self.path_for(key)
        with file_lock(self.lock_path):
            fd, tmp = tempfile.mkstemp(dir=self.entries_dir,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        self._stats.writes += 1
        self._publish_gauges()
        return True

    def _encode(self, key, compact: CompactFactorization,
                describe: dict) -> bytes:
        meta = {
            "store_schema": STORE_SCHEMA_VERSION,
            "compact_schema": COMPACT_SCHEMA_VERSION,
            "stamp": self._stamp,
            "kind": compact.kind,
            "key": repr(key),
            "created": time.time(),
            "payload_bytes": compact.nbytes,
            "hashes": compact.content_hashes(),
            "meta": compact.meta,
            "describe": describe,
        }
        buf = io.BytesIO()
        # ZIP_STORED, never deflate: members must stay byte-addressable
        # raw npy streams for the zero-copy mmap read path.
        with zipfile.ZipFile(buf, "w", compression=zipfile.ZIP_STORED) as zf:
            zf.writestr("meta.json", json.dumps(meta, indent=1))
            for name, arr in compact.arrays.items():
                npy = io.BytesIO()
                np.lib.format.write_array(npy, np.ascontiguousarray(arr),
                                          allow_pickle=False)
                zf.writestr(f"{name}.npy", npy.getvalue())
        return buf.getvalue()

    # -- read -----------------------------------------------------------
    def get(self, key):
        """Load the entry for ``key`` or ``None`` (always a safe miss).

        Emits one ``cache.load`` span per call; hits return the restored
        live factorization object, possibly backed by read-only memory
        maps.
        """
        path = self.path_for(key)
        t0 = time.perf_counter()
        with obs.span("cache.load", store=self.root) as sp:
            fact, outcome, compact = self._load(path)
            elapsed = time.perf_counter() - t0
            sp.set(outcome=outcome,
                   hit=outcome == "hit",
                   kind=compact.kind if compact is not None else "",
                   nbytes=compact.nbytes if compact is not None else 0,
                   seconds=elapsed)
        self._stats.load_seconds += elapsed
        if outcome == "hit":
            self._stats.disk_hits += 1
        else:
            self._stats.disk_misses += 1
            if outcome == "stale":
                self._stats.stale += 1
            elif outcome == "corrupt":
                self._stats.quarantined += 1
                self._quarantine(path)
        self._publish_gauges()
        return fact

    def _load(self, path: str):
        """→ ``(fact | None, outcome, compact | None)`` with outcome in
        ``hit / absent / stale / corrupt``."""
        if not os.path.exists(path):
            return None, "absent", None
        try:
            meta, arrays = self._read_entry(path)
        except (CacheStoreError, zipfile.BadZipFile, OSError, KeyError,
                ValueError, json.JSONDecodeError):
            return None, "corrupt", None
        if (meta.get("store_schema") != STORE_SCHEMA_VERSION
                or meta.get("compact_schema") != COMPACT_SCHEMA_VERSION
                or meta.get("stamp") != self._stamp):
            return None, "stale", None
        compact = CompactFactorization(kind=meta.get("kind", "?"),
                                       arrays=arrays,
                                       meta=meta.get("meta", {}))
        try:
            self._check_hashes(compact, meta.get("hashes", {}),
                               limit=self.hash_verify_limit)
            fact = compact.restore()
        except (CacheStoreError, UnsupportedFactorizationError, KeyError,
                TypeError, ValueError):
            return None, "corrupt", compact
        return fact, "hit", compact

    def _read_entry(self, path: str):
        """Parse one entry file into ``(meta dict, {name: array})``.

        Raises :class:`~repro.errors.CacheStoreError` (or the underlying
        zip/npy error) on any structural problem; :meth:`get` maps that
        to quarantine.
        """
        arrays: dict[str, np.ndarray] = {}
        file_size = os.path.getsize(path)
        with zipfile.ZipFile(path, "r") as zf:
            meta = json.loads(zf.read("meta.json"))
            for info in zf.infolist():
                if not info.filename.endswith(".npy"):
                    continue
                name = info.filename[:-len(".npy")]
                arr = None
                if self.mmap and info.compress_type == zipfile.ZIP_STORED:
                    arr = self._mmap_member(path, info, file_size)
                if arr is None:
                    arr = np.lib.format.read_array(
                        io.BytesIO(zf.read(info)), allow_pickle=False)
                arrays[name] = arr
        return meta, arrays

    @staticmethod
    def _mmap_member(path: str, info: zipfile.ZipInfo,
                     file_size: int) -> np.ndarray | None:
        """Map one stored ``.npy`` member read-only, or ``None`` to fall
        back to an eager read.  Bounds violations raise — a truncated or
        spliced file must quarantine, not fault at first page access.
        """
        with open(path, "rb") as fh:
            fh.seek(info.header_offset)
            local = fh.read(_ZIP_LOCAL_HEADER_SIZE)
            if len(local) != _ZIP_LOCAL_HEADER_SIZE or \
                    local[:4] != b"PK\x03\x04":
                raise CacheStoreError(
                    f"bad local file header for {info.filename!r}")
            namelen = int.from_bytes(local[26:28], "little")
            extralen = int.from_bytes(local[28:30], "little")
            data_start = (info.header_offset + _ZIP_LOCAL_HEADER_SIZE
                          + namelen + extralen)
            fh.seek(data_start)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_2_0(fh)
            else:
                return None
            offset = fh.tell()
        if dtype.hasobject:
            raise CacheStoreError(
                f"object-dtype member {info.filename!r} refused")
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if offset + nbytes > data_start + info.file_size or \
                offset + nbytes > file_size:
            raise CacheStoreError(
                f"member {info.filename!r} payload exceeds file bounds "
                f"(truncated entry?)")
        return np.memmap(path, dtype=dtype, mode="r", shape=shape,
                         order="F" if fortran else "C", offset=offset)

    @staticmethod
    def _check_hashes(compact: CompactFactorization, expected: dict,
                      *, limit: int) -> None:
        for name, arr in compact.arrays.items():
            if name not in expected:
                raise CacheStoreError(f"no content hash for {name!r}")
            if limit >= 0 and arr.nbytes > limit:
                continue
            if array_hash(np.asarray(arr)) != expected[name]:
                raise CacheStoreError(
                    f"content hash mismatch for {name!r}")

    def _quarantine(self, path: str) -> None:
        """Move a damaged entry aside (best-effort, never raises)."""
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            with file_lock(self.lock_path):
                if os.path.exists(path):
                    dest = os.path.join(
                        self.quarantine_dir,
                        f"{int(time.time())}-{os.path.basename(path)}")
                    os.replace(path, dest)
        except OSError:
            pass

    # -- maintenance ----------------------------------------------------
    def verify(self, key) -> bool:
        """Full-content integrity check of one entry (reads all bytes).

        Returns ``True`` when the entry exists and every array hash
        matches; quarantines and returns ``False`` on damage; ``False``
        (no quarantine) when absent or stale.
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            return False
        try:
            meta, arrays = self._read_entry(path)
            compact = CompactFactorization(kind=meta.get("kind", "?"),
                                           arrays=arrays,
                                           meta=meta.get("meta", {}))
            self._check_hashes(compact, meta.get("hashes", {}), limit=-1)
        except (CacheStoreError, zipfile.BadZipFile, OSError, KeyError,
                ValueError, json.JSONDecodeError):
            self._stats.quarantined += 1
            self._quarantine(path)
            return False
        if meta.get("stamp") != self._stamp:
            return False
        return True

    def entries(self) -> list[EntryInfo]:
        """All current entries, oldest first (unreadable metas still
        listed, with placeholder fields)."""
        out = []
        try:
            names = sorted(os.listdir(self.entries_dir))
        except FileNotFoundError:
            return []
        for fname in names:
            if not fname.endswith(".npz"):
                continue
            path = os.path.join(self.entries_dir, fname)
            try:
                st = os.stat(path)
            except OSError:
                continue
            info = EntryInfo(digest=fname[:-len(".npz")], path=path,
                             file_bytes=st.st_size, created=st.st_mtime)
            try:
                with zipfile.ZipFile(path, "r") as zf:
                    meta = json.loads(zf.read("meta.json"))
                info = EntryInfo(
                    digest=info.digest, path=path,
                    file_bytes=st.st_size,
                    created=float(meta.get("created", st.st_mtime)),
                    kind=meta.get("kind", "?"),
                    payload_bytes=int(meta.get("payload_bytes", 0)),
                    stamp=meta.get("stamp", ""),
                    key=meta.get("key", ""),
                    describe=meta.get("describe", {}) or {})
            except (zipfile.BadZipFile, OSError, KeyError, ValueError,
                    json.JSONDecodeError):
                pass
            out.append(info)
        out.sort(key=lambda e: e.created)
        return out

    def prune(self, *, max_bytes: int | None = None,
              max_age_seconds: float | None = None) -> int:
        """Delete entries beyond an age and/or total-size budget.

        Age first, then size (oldest evicted first).  Returns the number
        of entries removed.
        """
        removed = 0
        with file_lock(self.lock_path):
            entries = self.entries()
            now = time.time()
            if max_age_seconds is not None:
                for e in list(entries):
                    if now - e.created > max_age_seconds:
                        with contextlib.suppress(OSError):
                            os.unlink(e.path)
                        entries.remove(e)
                        removed += 1
            if max_bytes is not None:
                total = sum(e.file_bytes for e in entries)
                for e in list(entries):  # oldest first
                    if total <= max_bytes:
                        break
                    with contextlib.suppress(OSError):
                        os.unlink(e.path)
                    total -= e.file_bytes
                    removed += 1
        self._publish_gauges()
        return removed

    def clear(self) -> int:
        """Delete every entry (quarantine included).  Returns count."""
        removed = 0
        with file_lock(self.lock_path):
            for d in (self.entries_dir, self.quarantine_dir):
                if not os.path.isdir(d):
                    continue
                for fname in os.listdir(d):
                    if fname.endswith((".npz", ".tmp")):
                        with contextlib.suppress(OSError):
                            os.unlink(os.path.join(d, fname))
                            removed += 1
        self._publish_gauges()
        return removed

    # -- stats ----------------------------------------------------------
    def disk_bytes(self) -> int:
        """Total bytes of current entry files."""
        return sum(e.file_bytes for e in self.entries())

    def stats(self) -> StoreStats:
        """Counters plus a fresh on-disk entry/byte census."""
        entries = self.entries()
        return StoreStats(
            disk_hits=self._stats.disk_hits,
            disk_misses=self._stats.disk_misses,
            stale=self._stats.stale,
            quarantined=self._stats.quarantined,
            writes=self._stats.writes,
            unsupported=self._stats.unsupported,
            load_seconds=self._stats.load_seconds,
            entries=len(entries),
            disk_bytes=sum(e.file_bytes for e in entries))

    def reset_stats(self) -> None:
        self._stats = StoreStats()

    def _publish_gauges(self) -> None:
        if not obs.enabled():
            return
        reg = obs.default_registry()
        s = self._stats
        reg.gauge("repro_cache_disk_hits",
                  "Persistent-store hits this process").set(s.disk_hits)
        reg.gauge("repro_cache_disk_misses",
                  "Persistent-store misses this process").set(
                      s.disk_misses)
        reg.gauge("repro_cache_disk_load_seconds",
                  "Cumulative wall time loading store entries").set(
                      s.load_seconds)
        reg.gauge("repro_cache_disk_bytes",
                  "Total bytes of persistent-store entries").set(
                      self.disk_bytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CacheStore(root={self.root!r}, mmap={self.mmap})"


# ---------------------------------------------------------------------------
_DEFAULT_STORE: CacheStore | None = None


def default_root() -> str:
    """Resolve the default store directory (``REPRO_CACHE_DIR`` wins)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro", "factorizations")


def default_store() -> CacheStore:
    """The process-wide store singleton (created on first use)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = CacheStore(default_root())
    return _DEFAULT_STORE


def set_default_store(store: CacheStore | None) -> CacheStore | None:
    """Replace the process-wide store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous
