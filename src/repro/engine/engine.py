"""Execution: run a :class:`~repro.engine.SolverPlan` against RHS data.

The engine is a small algorithm registry plus two verbs:

* :func:`factor` — produce (or fetch from cache) the factorization the
  plan calls for;
* :func:`execute` — factor + solve, with automatic fallback to the
  plan's armed fallback algorithm on SPD breakdown, returning an
  :class:`ExecutionResult` that records what actually ran.

Core algorithms (``spd-schur``, ``indefinite+refine``, ``gko``) register
here; the baselines register themselves from
:mod:`repro.baselines`, so ``algorithms()`` gives benchmarks one uniform
iteration surface.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

import repro.obs as obs
from repro.engine.cache import FactorizationCache, default_cache
from repro.engine.cache_store import CacheStore, default_store
from repro.engine.plan import SolverPlan
from repro.engine.plan import plan as make_plan
from repro.errors import InvalidOptionError, NotPositiveDefiniteError

__all__ = [
    "Algorithm",
    "ExecutionRecord",
    "ExecutionResult",
    "FactorResult",
    "algorithms",
    "execute",
    "execute_many",
    "factor",
    "get_algorithm",
    "register_algorithm",
    "solve",
]


@dataclass(frozen=True)
class Algorithm:
    """One registered solver algorithm.

    ``factor(op, plan)`` returns a factorization object with a
    ``solve`` method (or is ``None`` for factorization-free methods);
    ``solve(op, b, plan, factorization, **kwargs)`` returns
    ``(x, detail)`` where ``detail`` is the algorithm's native result
    object (factorization, refinement trace, iteration record, …).
    """

    name: str
    solve: Callable[..., tuple[np.ndarray, Any]]
    factor: Callable[..., Any] | None = None
    description: str = ""

    @property
    def cacheable(self) -> bool:
        return self.factor is not None


_REGISTRY: dict[str, Algorithm] = {}


def register_algorithm(name: str, *, solve, factor=None,
                       description: str = "",
                       overwrite: bool = False) -> Algorithm:
    """Register a solver under ``name`` (see :class:`Algorithm`)."""
    if name in _REGISTRY and not overwrite:
        raise InvalidOptionError(
            f"algorithm {name!r} is already registered")
    algo = Algorithm(name=name, solve=solve, factor=factor,
                     description=description)
    _REGISTRY[name] = algo
    return algo


def _ensure_registered() -> None:
    """Pull in the modules that register algorithms on import."""
    import repro.baselines  # noqa: F401  (registers its solvers)


def get_algorithm(name: str) -> Algorithm:
    """Look up a registered algorithm by name."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidOptionError(
            f"unknown algorithm {name!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def algorithms() -> dict[str, Algorithm]:
    """Snapshot of the full registry (benchmarks iterate this)."""
    _ensure_registered()
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FactorResult:
    """Outcome of :func:`factor`."""

    factorization: Any
    algorithm: str          #: the algorithm that actually factored
    plan: SolverPlan
    cache_hit: bool
    #: Span tree + metrics snapshot (None unless observability is on).
    profile: "obs.Profile | None" = None


@dataclass(frozen=True)
class ExecutionRecord:
    """Per-execution timing/flop summary, always collected.

    Unlike the span-tree :class:`~repro.obs.Profile` (which exists only
    while observability is enabled), every :func:`execute` carries one
    of these: the production metrics surface for per-solve throughput.
    ``model_flops`` is the closed-form cost of the work the execution
    actually did (factorization eqs. 25–32 when freshly computed, plus
    ``2 n² ·`` column-solves for the triangular sweeps);
    ``counted_flops`` is the measured tally from the counted BLAS layer
    and is ``None`` unless observability was enabled for the run.
    """

    algorithm: str
    order: int
    nrhs: int
    wall_seconds: float
    cache_hit: bool
    fallback_used: bool
    model_flops: float | None = None
    counted_flops: int | None = None
    #: ``perf_counter`` timestamp of the execution start (span clock).
    start: float = 0.0
    #: Precision the plan requested (``"fp64"``/``"fp32"``/``"mixed"``).
    precision: str = "fp64"
    #: Storage dtype of the factor that actually drove the solves —
    #: ``"float64"`` even under a reduced-precision plan when the
    #: condest admission check forced the fp64 fallback.
    factor_dtype: str = "float64"
    #: Refinement sweeps the solve needed (``None`` when the solve was a
    #: plain pair of triangular sweeps with no refinement loop).
    refine_sweeps: int | None = None

    @property
    def rhs_per_second(self) -> float:
        """Panel solve throughput (right-hand sides per wall second)."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.nrhs / self.wall_seconds

    def to_record(self, *, rec_id: int = 0,
                  parent: int | None = None) -> dict:
        """Export as one unified trace-schema record
        (:func:`repro.obs.make_record`, kind ``"execution"``)."""
        return obs.make_record(
            source=obs.SOURCE_ENGINE, rec_id=rec_id, parent=parent,
            name="engine.execute", kind=obs.KIND_EXECUTION, rank=None,
            start=self.start, end=self.start + self.wall_seconds,
            attrs={
                "algorithm": self.algorithm,
                "order": self.order,
                "nrhs": self.nrhs,
                "cache_hit": self.cache_hit,
                "fallback_used": self.fallback_used,
                "model_flops": self.model_flops,
                "counted_flops": self.counted_flops,
                "rhs_per_second": self.rhs_per_second,
                "precision": self.precision,
                "factor_dtype": self.factor_dtype,
                "refine_sweeps": self.refine_sweeps,
            })


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of :func:`execute`.

    ``algorithm`` is what actually ran (it differs from
    ``plan.algorithm`` when the SPD path broke down and the armed
    fallback took over — the per-plan record that stability diagnostics
    attach to).  ``record`` is the always-on per-execution
    timing/flop summary (:class:`ExecutionRecord`).  With observability
    enabled (``repro.obs``), ``profile`` holds the execution's span
    tree — per-phase wall time and flop-model attributes — plus a
    metrics snapshot; it is ``None`` when tracing is off or when this
    execution was nested inside an enclosing span.
    """

    x: np.ndarray
    plan: SolverPlan
    algorithm: str
    cache_hit: bool
    fallback_used: bool
    detail: Any = None
    #: Span tree + metrics snapshot (None unless observability is on).
    profile: "obs.Profile | None" = None
    #: Always-collected timing/flop summary for this execution.
    record: ExecutionRecord | None = None

    def to_trace_records(self) -> list[dict]:
        """Full trace of this execution: span records + the summary.

        The profile's span tree (when observability was on) followed by
        the always-on :class:`ExecutionRecord` as a root-level
        ``kind="execution"`` record — the shape ``repro trace report``
        needs to pair per-phase timings with modeled/counted flop
        totals.  Works with observability off too (summary only).
        """
        records: list[dict] = []
        if self.profile is not None:
            records = obs.span_records(self.profile.root)
        if self.record is not None:
            records.append(self.record.to_record(rec_id=len(records)))
        return records


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _resolve_cache(pl: SolverPlan,
                   cache: FactorizationCache | None
                   ) -> FactorizationCache | None:
    if cache is not None:
        return cache
    return default_cache() if pl.use_cache else None


def _resolve_store(pl: SolverPlan,
                   store: CacheStore | None) -> CacheStore | None:
    """Second (disk) tier: only plans on the ``cache="persistent"`` axis
    touch it — unless the caller passes an explicit store, which wins
    (tests and the serve warm path point at private roots this way)."""
    if store is not None:
        return store
    if pl.use_cache and pl.cache == "persistent":
        return default_store()
    return None


def _model_flops(pl: SolverPlan) -> float | None:
    """Closed-form factorization cost (eqs. 25–32) for Schur-type plans."""
    if pl.algorithm not in ("spd-schur", "indefinite+refine"):
        return None
    if pl.order % pl.block_size != 0:
        return None
    from repro.core.flops import factorization_flops
    try:
        return factorization_flops(pl.order, pl.block_size,
                                   representation=pl.representation,
                                   k=pl.panel)
    except Exception:
        return None


def _obtain_factorization(algo: Algorithm, pl: SolverPlan,
                          cache: FactorizationCache | None,
                          store: CacheStore | None = None
                          ) -> tuple[Any, bool]:
    if algo.factor is None:
        return None, False
    with obs.span("factor", algorithm=pl.algorithm) as sp:
        c = _resolve_cache(pl, cache)
        st = _resolve_store(pl, store)
        key = pl.cache_key()
        # Tier 1: in-process LRU.
        fact = c.get(key) if c is not None else None
        hit = fact is not None
        disk_hit = False
        # Tier 2: persistent store (emits its own cache.load span).
        if fact is None and st is not None:
            fact = st.get(key)
            if fact is not None:
                hit = disk_hit = True
                if c is not None:     # promote for this process
                    c.put(key, fact)
        # Tier 3: compute, then publish back to both tiers.
        if fact is None:
            fact = algo.factor(pl.operator, pl)
            if c is not None:
                c.put(key, fact)
            if st is not None:
                st.put(key, fact, describe={
                    "algorithm": pl.algorithm, "order": pl.order,
                    "block_size": pl.block_size,
                    "precision": pl.precision})
        if obs.enabled():
            sp.set(cache_hit=hit, disk_hit=disk_hit)
            model = _model_flops(pl)
            if model is not None:
                sp.set(model_flops=model)
                if not hit:
                    obs.default_registry().counter(
                        "repro_engine_model_flops_total",
                        "Modeled flops of factorizations actually computed"
                    ).inc(model, algorithm=pl.algorithm)
            obs.default_registry().counter(
                "repro_engine_factorizations_total",
                "Factorizations requested through the engine"
            ).inc(1, algorithm=pl.algorithm,
                  cache_hit=str(hit).lower())
    return fact, hit


def _require_operator(pl: SolverPlan):
    if pl.operator is None:
        raise InvalidOptionError(
            "plan has no operator attached (deserialized plans must be "
            "re-attached via SolverPlan.from_dict(d, operator=op))")
    return pl.operator


def factor(pl: SolverPlan, *,
           cache: FactorizationCache | None = None,
           store: CacheStore | None = None) -> FactorResult:
    """Factor according to the plan (through the cache tiers).

    Falls back to ``plan.fallback`` on SPD breakdown, like
    :func:`execute`; the returned ``algorithm`` says which one ran.
    ``store`` overrides the persistent tier the plan's ``cache`` axis
    would otherwise select.
    """
    _require_operator(pl)
    algo = get_algorithm(pl.algorithm)
    if algo.factor is None:
        raise InvalidOptionError(
            f"algorithm {pl.algorithm!r} has no factorization stage")
    with obs.span("engine.factor", algorithm=pl.algorithm,
                  order=pl.order) as sp:
        try:
            fact, hit = _obtain_factorization(algo, pl, cache, store)
            fres = FactorResult(factorization=fact, algorithm=pl.algorithm,
                                plan=pl, cache_hit=hit)
        except NotPositiveDefiniteError:
            if pl.fallback is None:
                raise
            sp.set(fallback=pl.fallback)
            inner = factor(pl.with_(algorithm=pl.fallback, fallback=None),
                           cache=cache, store=store)
            fres = dataclasses.replace(inner, plan=pl)
    return dataclasses.replace(fres, profile=obs.profile_from(sp))


def _solve_model_flops(algorithm: str, order: int, nrhs: int,
                       detail) -> float | None:
    """Closed-form solve-phase cost: ``2 n²`` per column-solve.

    Iterative details take priority over the algorithm name: a
    reduced-precision ``spd-schur``/``gko`` solve routes through blocked
    refinement and its ``detail`` reports the column-solve equivalents
    actually issued (``solve_columns``; ``precond_columns`` /
    ``precond_solves`` for PCG).  Only a plain direct solve falls back
    to one forward + one backward sweep per RHS column.
    """
    cols = getattr(detail, "solve_columns", None)
    if cols is None:
        cols = getattr(detail, "precond_columns", None)
    if cols is None and getattr(detail, "precond_solves", None) is not None:
        cols = detail.precond_solves   # scalar PCG: one column per solve
    if cols:
        return 2.0 * order * order * float(cols)
    if algorithm in ("spd-schur", "gko", "dense-chol"):
        return 2.0 * order * order * nrhs
    return None


def execute(pl: SolverPlan, b, *,
            cache: FactorizationCache | None = None,
            store: CacheStore | None = None,
            **solve_kwargs) -> ExecutionResult:
    """Run the plan: factor (cached), solve, record what happened.

    ``b`` may be a vector or an ``n × k`` panel of right-hand sides;
    panels dispatch to the batched solve paths (level-3 triangular
    sweeps, blocked refinement, block PCG) of the registered algorithm.
    ``solve_kwargs`` reach the algorithm's solve stage (e.g. ``tol``,
    ``max_iter``, ``keep_history`` for ``indefinite+refine``).
    """
    op = _require_operator(pl)
    b = np.asarray(b, dtype=np.float64)
    algo = get_algorithm(pl.algorithm)
    nrhs = 1 if b.ndim == 1 else b.shape[1]
    t0 = time.perf_counter()
    counter = None
    with obs.span("engine.execute", algorithm=pl.algorithm,
                  order=pl.order, nrhs=nrhs) as sp:
        if obs.enabled():
            from repro.blas import primitives as blas
            counting_ctx = blas.counting()
            counter = counting_ctx.__enter__()
        try:
            fact, hit = _obtain_factorization(algo, pl, cache, store)
            with obs.span("solve", algorithm=pl.algorithm, nrhs=nrhs):
                x, detail = algo.solve(op, b, pl, fact, **solve_kwargs)
            res = ExecutionResult(x=x, plan=pl, algorithm=pl.algorithm,
                                  cache_hit=hit, fallback_used=False,
                                  detail=detail)
            if obs.enabled():
                obs.default_registry().counter(
                    "repro_engine_executions_total",
                    "Solves executed through the engine"
                ).inc(1, algorithm=res.algorithm)
        except NotPositiveDefiniteError:
            if pl.fallback is None:
                raise
            sp.set(fallback=pl.fallback)
            if obs.enabled():
                obs.default_registry().counter(
                    "repro_engine_fallbacks_total",
                    "Executions where the armed fallback algorithm ran"
                ).inc(1, algorithm=pl.fallback)
            # The recursive call counts its own execution.
            inner = execute(pl.with_(algorithm=pl.fallback, fallback=None),
                            b, cache=cache, store=store, **solve_kwargs)
            res = dataclasses.replace(inner, plan=pl, fallback_used=True)
        finally:
            if counter is not None:
                counting_ctx.__exit__(None, None, None)
    wall = time.perf_counter() - t0
    model = _solve_model_flops(res.algorithm, pl.order, nrhs, res.detail)
    if not res.cache_hit:
        factor_model = _model_flops(pl.with_(algorithm=res.algorithm))
        if factor_model is not None:
            model = factor_model + (model or 0.0)
    factor_dtype, sweeps = "float64", None
    d = res.detail
    if hasattr(d, "correction_norms"):        # refinement trace
        factor_dtype = getattr(d, "factor_dtype", "float64")
        sweeps = d.iterations
    elif hasattr(d, "solve") and hasattr(d, "dtype"):  # factorization
        factor_dtype = np.dtype(d.dtype).name
    rec = ExecutionRecord(
        algorithm=res.algorithm, order=pl.order, nrhs=nrhs,
        wall_seconds=wall, cache_hit=res.cache_hit,
        fallback_used=res.fallback_used, model_flops=model,
        counted_flops=counter.total if counter is not None else None,
        start=t0, precision=pl.precision, factor_dtype=factor_dtype,
        refine_sweeps=sweeps)
    if obs.enabled():
        sp.set(wall_seconds=wall, rhs_per_second=rec.rhs_per_second)
    return dataclasses.replace(res, profile=obs.profile_from(sp),
                               record=rec)


def execute_many(pl: SolverPlan, bs, *,
                 cache: FactorizationCache | None = None,
                 store: CacheStore | None = None,
                 **solve_kwargs) -> list[ExecutionResult]:
    """Coalesce many single-RHS solves into one panel execution.

    ``bs`` is a sequence of 1-D right-hand sides against the same plan.
    They are stacked into one ``n × k`` panel, solved with a single
    :func:`execute` (one pair of level-3 triangular sweeps instead of
    ``k`` back-substitutions — the Section 6.5 shape argument applied to
    the solve phase), and split back into one :class:`ExecutionResult`
    per input.  The per-result ``record`` is the shared panel record:
    its ``nrhs`` says how many right-hand sides the execution actually
    coalesced.  A single-element ``bs`` degenerates to the plain
    sequential :func:`execute` path, bit for bit.

    This is the batch entry the request dispatcher in
    :mod:`repro.serve` drives; it is equally usable directly.
    """
    bs = [np.asarray(b, dtype=np.float64) for b in bs]
    if not bs:
        raise InvalidOptionError("execute_many needs at least one "
                                 "right-hand side")
    for b in bs:
        if b.ndim != 1:
            raise InvalidOptionError(
                "execute_many coalesces single right-hand sides; got a "
                f"{b.ndim}-D array (pass panels straight to execute)")
        if b.shape[0] != pl.order:
            raise InvalidOptionError(
                f"right-hand side length {b.shape[0]} does not match "
                f"plan order {pl.order}")
    if len(bs) == 1:
        return [execute(pl, bs[0], cache=cache, store=store,
                        **solve_kwargs)]
    panel = np.stack(bs, axis=1)
    res = execute(pl, panel, cache=cache, store=store, **solve_kwargs)
    return [dataclasses.replace(res, x=res.x[:, j])
            for j in range(len(bs))]


def solve(op, b, *, cache=None,
          store: CacheStore | None = None,
          solve_options: dict | None = None,
          **plan_kwargs) -> ExecutionResult:
    """Convenience one-shot: ``execute(plan(op, **plan_kwargs), b)``.

    ``cache`` accepts either a :class:`FactorizationCache` instance (the
    in-memory tier to use) or a tiering string
    (``"memory"``/``"persistent"``/``"off"``), which is forwarded to
    :func:`plan` as its ``cache`` axis.
    """
    if isinstance(cache, str):
        plan_kwargs["cache"] = cache
        cache = None
    pl = make_plan(op, **plan_kwargs)
    return execute(pl, b, cache=cache, store=store,
                   **(solve_options or {}))


# ----------------------------------------------------------------------
# Core algorithms (lazy imports keep repro.core <-> engine acyclic)
# ----------------------------------------------------------------------
def _regrouped(op, pl: SolverPlan):
    if pl.block_size != op.block_size:
        return op.regroup(pl.block_size)
    return op


def _admit_reduced(opr, pl: SolverPlan, fact, refactor):
    """Condest-gated admission of a reduced-precision factorization.

    Keep ``fact`` only when fp64 refinement over it is expected to
    converge (``cond · eps_elim ≤ 0.05``,
    :func:`repro.core.precision.refinement_admissible`); otherwise the
    operator is refactored at fp64 on the spot, so the solve stage sees
    an ordinary double factorization and skips the refinement loop.
    """
    from repro.core.condest import condest
    from repro.core.precision import refinement_admissible
    try:
        cond = condest(opr, fact)
    except Exception:
        cond = float("inf")
    if refinement_admissible(cond, pl.precision):
        return fact
    with obs.span("factor.precision_fallback", precision=pl.precision,
                  cond_estimate=float(cond)):
        if obs.enabled():
            obs.default_registry().counter(
                "repro_engine_precision_fallbacks_total",
                "Reduced-precision factorizations rejected by the "
                "condest admission check and redone at fp64"
            ).inc(1, algorithm=pl.algorithm, precision=pl.precision)
        return refactor()


def _reduced_precision_solve(op, b, pl, fact, refactor):
    """Recover fp64 accuracy over a reduced-precision factor.

    Every admitted fp32/mixed factorization solves through blocked
    iterative refinement with fp64 residuals; if the loop stalls anyway
    (admission is an estimate, not a proof), refactor at fp64 outside
    the cache and solve plainly.
    """
    from repro.core.refinement import refine
    res = refine(fact, op, b)
    if res.converged:
        return res.x, res
    with obs.span("solve.precision_fallback", precision=pl.precision):
        f64 = refactor()
        return f64.solve(b), f64


def _spd_factor(op, pl: SolverPlan):
    if pl.nproc > 1:
        # Distributed plan: route through the backend dispatcher
        # (simulated T3D model, or real worker processes with graceful
        # degradation to the simulator).  Plans reject nproc > 1 with
        # reduced precision, so this path is always fp64.
        from repro.parallel.backends import factor_distributed
        return factor_distributed(_regrouped(op, pl), pl)
    from repro.core.schur_spd import SchurOptions, schur_spd_factor
    opr = _regrouped(op, pl)
    opts = SchurOptions(representation=pl.representation, panel=pl.panel,
                        in_place=pl.in_place, precision=pl.precision)
    fact = schur_spd_factor(opr, options=opts)
    if pl.precision == "fp64":
        return fact
    return _admit_reduced(
        opr, pl, fact,
        lambda: _spd_factor(op, pl.with_(precision="fp64")))


def _triangular_solve_flops(order: int, b) -> int:
    # Two triangular solves (Rᵀy = b, Rx = y) at n² flops per RHS each.
    nrhs = 1 if getattr(b, "ndim", 1) == 1 else b.shape[1]
    return 2 * order * order * nrhs


def _spd_solve(op, b, pl, fact, **_kwargs):
    if getattr(fact, "precision", "fp64") != "fp64":
        return _reduced_precision_solve(
            op, b, pl, fact,
            lambda: _spd_factor(op, pl.with_(precision="fp64")))
    if not obs.enabled():
        return fact.solve(b), fact
    with obs.span("triangular_solve",
                  model_flops=_triangular_solve_flops(pl.order, b)) as sp:
        x = fact.solve(b)
        # Distributed factorizations route the solve through a backend
        # (simulated sweeps or real worker processes) — record which.
        route = getattr(fact, "last_solve_backend", "")
        if route:
            sp.set(solve_backend=route)
            reason = getattr(fact, "last_solve_fallback_reason", "")
            if reason:
                sp.set(solve_fallback_reason=reason)
        return x, fact


def _indefinite_factor(op, pl: SolverPlan):
    from repro.core.schur_indefinite import schur_indefinite_factor
    opr = _regrouped(op, pl)
    fact = schur_indefinite_factor(opr, perturb=pl.perturb,
                                   delta=pl.delta, precision=pl.precision)
    if pl.precision == "fp64":
        return fact
    return _admit_reduced(
        opr, pl, fact,
        lambda: _indefinite_factor(op, pl.with_(precision="fp64")))


def _indefinite_solve(op, b, pl, fact, *, tol=None, max_iter=25,
                      keep_history=False):
    from repro.core.refinement import refine
    res = refine(fact, op, b, tol=tol, max_iter=max_iter,
                 keep_history=keep_history)
    if not res.converged and getattr(fact, "precision", "fp64") != "fp64":
        # Reduced factor stalled below fp64: redo the factorization in
        # double (outside the cache) and refine against that instead.
        with obs.span("solve.precision_fallback", precision=pl.precision):
            f64 = _indefinite_factor(op, pl.with_(precision="fp64"))
            res = refine(f64, op, b, tol=tol, max_iter=max_iter,
                         keep_history=keep_history)
    return res.x, res


def _gko_factor(op, pl: SolverPlan):
    from repro.core.gko import gko_factor
    fact = gko_factor(op, precision=pl.precision)
    if pl.precision == "fp64":
        return fact
    return _admit_reduced(
        op, pl, fact,
        lambda: _gko_factor(op, pl.with_(precision="fp64")))


def _gko_solve(op, b, pl, fact, **_kwargs):
    if getattr(fact, "precision", "fp64") != "fp64":
        return _reduced_precision_solve(
            op, b, pl, fact,
            lambda: _gko_factor(op, pl.with_(precision="fp64")))
    if not obs.enabled():
        return fact.solve(b), fact
    with obs.span("triangular_solve",
                  model_flops=_triangular_solve_flops(pl.order, b)):
        return fact.solve(b), fact


def _gs_factor(op, pl: SolverPlan):
    from repro.core.gohberg_semencul import toeplitz_inverse
    return toeplitz_inverse(op, precision=pl.precision)


def _gs_solve(op, b, pl, fact, **_kwargs):
    # ``x = T⁻¹ e₀`` is computed at full accuracy even under a reduced
    # storage precision (the inner structured solve refines in fp64), so
    # there is no refinement path here — applying T⁻¹ *is* the solve.
    if not obs.enabled():
        return fact.solve(b), fact
    with obs.span("gs_apply", order=pl.order):
        return fact.solve(b), fact


register_algorithm(
    "spd-schur", factor=_spd_factor, solve=_spd_solve,
    description="block Schur Cholesky T = RᵀR (Sections 2–6)")
register_algorithm(
    "indefinite+refine", factor=_indefinite_factor,
    solve=_indefinite_solve,
    description="perturbed RᵀDR + iterative refinement (Section 8)")
register_algorithm(
    "gko", factor=_gko_factor, solve=_gko_solve,
    description="GKO Cauchy-like LU with partial pivoting "
                "(nonsymmetric block Toeplitz)")
register_algorithm(
    "gs", factor=_gs_factor, solve=_gs_solve,
    description="Gohberg–Semencul T⁻¹ operator (scalar symmetric; one "
                "O(n²) structured solve, then O(n log n) per RHS)")
