"""Backend dispatch for distributed factorization plans.

A :class:`~repro.engine.SolverPlan` with ``nproc > 1`` names *where* the
distributed block Schur algorithm runs through its ``backend`` field:

* ``"simulated"`` — the discrete-event T3D model
  (:func:`~repro.parallel.driver.simulate_factorization`), always
  available, produces virtual timings;
* ``"multiprocess"`` — real OS processes over shared memory
  (:func:`~repro.parallel.mp_backend.mp_factorization`), produces real
  wall-clock timings and per-PE spans.

:func:`factor_distributed` is the single entry the engine calls.  When
the multiprocess backend is requested but unavailable (platform probe
fails, worker spawn fails, ``REPRO_MP_DISABLE`` set), it falls back to
the simulated backend and records the reason on the returned
factorization (``fallback_reason``) and on the enclosing span — the run
still succeeds, just on the model instead of the metal.

Either way the result is a :class:`DistributedFactorization`: the
triangular factor ``R`` with the same ``solve``/``logdet`` surface as
the serial :class:`~repro.core.schur_spd.SPDFactorization`, so engine
caching and the solve stage are backend-agnostic.  ``solve`` keeps the
data plane distributed: it routes vector and panel right-hand sides
through the backend's triangular-solve program (the simulated sweeps of
:func:`~repro.parallel.driver.simulate_triangular_solve` or the real
worker processes of
:func:`~repro.parallel.mp_backend.mp_triangular_solve`), degrading to
the gathered serial sweep only when the distributed path cannot run —
with the reason recorded on ``last_solve_fallback_reason``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.errors import (
    DistributionError,
    InvalidOptionError,
    MultiprocessUnavailableError,
    NotPositiveDefiniteError,
)
from repro.parallel.distributions import BlockCyclicLayout
from repro.parallel.driver import (
    simulate_factorization,
    simulate_triangular_solve,
)
from repro.parallel.mp_backend import (
    mp_factorization,
    mp_triangular_solve,
    multiprocess_available,
)
from repro.utils.lintools import as_panel, from_panel, \
    solve_upper_triangular

__all__ = ["BACKENDS", "DistributedFactorization", "factor_distributed"]

#: Legal values of ``SolverPlan.backend``.
BACKENDS = ("simulated", "multiprocess")


@dataclass
class DistributedFactorization:
    """Gathered result of a distributed factorization ``T = RᵀR``.

    Solvable like the serial factorization; additionally records which
    backend actually ran (``backend``), which one the plan asked for
    (``requested_backend``) and — when they differ — why (``fallback_reason``).
    ``run`` is the backend-native result
    (:class:`~repro.parallel.mp_backend.MPRun` or
    :class:`~repro.parallel.driver.SimulatedRun`) for timing and
    communication accounting.
    """

    r: np.ndarray
    block_size: int
    num_blocks: int
    representation: str
    nproc: int
    backend: str
    requested_backend: str
    fallback_reason: str = ""
    run: object | None = None
    #: Transport the multiprocess data plane runs over.
    transport: str = "shared_memory"
    #: Which path the most recent :meth:`solve` took (``"simulated"``,
    #: ``"multiprocess"`` or ``"serial"``) and, for ``"serial"``, why
    #: the distributed sweeps could not run.
    last_solve_backend: str = field(default="", compare=False)
    last_solve_fallback_reason: str = field(default="", compare=False)
    #: Backend-native result of the most recent distributed solve
    #: (:class:`~repro.parallel.mp_backend.MPSolveRun` or the simulated
    #: :class:`~repro.machine.simulator.MachineReport`).
    last_solve_run: object = field(default=None, compare=False)

    @property
    def order(self) -> int:
        return self.r.shape[0]

    @property
    def fell_back(self) -> bool:
        """Whether the requested backend was substituted."""
        return self.backend != self.requested_backend

    # ------------------------------------------------------------------
    def _solve_route(self) -> tuple[str, str]:
        """``(route, reason)`` — which triangular-solve path to take.

        The distributed sweeps need whole block columns (Versions 1/2)
        and a backend run to solve against; anything else degrades to
        the gathered serial sweep with the reason recorded.
        """
        if self.run is None:
            return "serial", "no backend run attached"
        layout = getattr(self.run, "layout", None)
        if not isinstance(layout, BlockCyclicLayout):
            return "serial", ("Version 3 spread layout "
                              "(solve needs whole block columns)")
        if self.nproc < 2:
            return "serial", "single PE"
        if self.backend == "multiprocess":
            ok, why = multiprocess_available(transport=self.transport)
            if not ok:
                return "serial", why
            return "multiprocess", ""
        if getattr(self.run, "report", None) is not None:
            return "simulated", ""
        return "serial", "backend run carries no per-PE results"

    def _solve_serial(self, b: np.ndarray) -> np.ndarray:
        panel, single = as_panel(b, self.order)
        y = solve_upper_triangular(self.r, panel, trans=True)
        return from_panel(solve_upper_triangular(self.r, y), single)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T X = B`` (vector or ``n × k`` panel).

        The factor stays distributed: the solve runs as the
        forward/backward SPMD sweeps on the same backend that factored
        (per-PE level-3 updates, one small collective pair per block
        row), so distributed plans no longer gather ``R`` into a serial
        sweep.  Falls back to the gathered serial sweep — recording why
        on ``last_solve_fallback_reason`` — when the distributed path
        cannot run (spread layout, missing run, backend unavailable).
        """
        route, reason = self._solve_route()
        with obs.span("solve.distributed", backend=route,
                      nproc=self.nproc) as sp:
            if route == "multiprocess":
                try:
                    srun = mp_triangular_solve(
                        self.r, self.run.layout, b,
                        block_size=self.block_size,
                        transport=self.transport)
                    self.last_solve_backend = "multiprocess"
                    self.last_solve_fallback_reason = ""
                    self.last_solve_run = srun
                    sp.set(wall_seconds=srun.wall_seconds,
                           nrhs=srun.nrhs)
                    return srun.x
                except (MultiprocessUnavailableError,
                        DistributionError) as exc:
                    route, reason = "serial", str(exc)
                    sp.set(backend=route)
            if route == "simulated":
                x, rep = simulate_triangular_solve(self.run, b)
                self.last_solve_backend = "simulated"
                self.last_solve_fallback_reason = ""
                self.last_solve_run = rep
                sp.set(simulated_seconds=rep.makespan)
                return x
            self.last_solve_backend = "serial"
            self.last_solve_fallback_reason = reason
            self.last_solve_run = None
            sp.set(fallback_reason=reason)
            return self._solve_serial(b)

    def reconstruct(self) -> np.ndarray:
        """Dense ``Rᵀ R`` (diagnostic)."""
        return self.r.T @ self.r

    def logdet(self) -> float:
        """``log det T = 2 Σ log R_ii``.

        A valid SPD factor has a strictly positive diagonal; anything
        else means the factorization failed upstream, so this raises
        :class:`NotPositiveDefiniteError` (matching the serial path)
        instead of silently folding the sign away with ``abs``.
        """
        d = np.diag(self.r)
        if d.size == 0 or np.min(d) <= 0.0 or not np.all(np.isfinite(d)):
            raise NotPositiveDefiniteError(
                "distributed factor has a nonpositive diagonal entry — "
                "the factorization did not complete as SPD "
                f"(min diag = {np.min(d) if d.size else float('nan')!r})")
        return 2.0 * float(np.sum(np.log(d)))


def _from_run(run, pl, *, backend: str, reason: str
              ) -> DistributedFactorization:
    return DistributedFactorization(
        r=run.r, block_size=run.block_size, num_blocks=run.num_blocks,
        representation=run.representation, nproc=pl.nproc,
        backend=backend, requested_backend=pl.backend,
        fallback_reason=reason, run=run,
        transport=getattr(pl, "transport", "shared_memory"))


def factor_distributed(op, pl) -> DistributedFactorization:
    """Run the distributed factorization the plan describes.

    ``op`` is the (possibly regrouped) symmetric block Toeplitz
    operator; ``pl`` carries ``nproc``, ``distribution_b``,
    ``representation`` and ``backend``.  Multiprocess requests degrade
    to the simulated backend when the platform cannot run them; the
    reason is recorded, never raised.
    """
    if pl.backend not in BACKENDS:
        raise InvalidOptionError(
            f"unknown backend {pl.backend!r}; expected one of {BACKENDS}")
    schedule = getattr(pl, "schedule", "bulk")
    with obs.span("factor.distributed", backend=pl.backend,
                  nproc=pl.nproc, schedule=schedule) as sp:
        reason = ""
        if pl.backend == "multiprocess":
            ok, why = multiprocess_available(
                transport=getattr(pl, "transport", "shared_memory"))
            if ok:
                try:
                    run = mp_factorization(op, plan=pl)
                    sp.set(version=run.layout.version,
                           wall_seconds=run.wall_seconds)
                    return _from_run(run, pl, backend="multiprocess",
                                     reason="")
                except MultiprocessUnavailableError as exc:
                    reason = str(exc)
            else:
                reason = why
            sp.set(fallback_reason=reason)
            if obs.enabled():
                obs.default_registry().counter(
                    "repro_mp_fallbacks_total",
                    "Multiprocess-backend requests served by the "
                    "simulator instead"
                ).inc(1)
        run = simulate_factorization(op, plan=pl, program=schedule)
        sp.set(version=run.layout.version, simulated_seconds=run.time)
        return _from_run(run, pl, backend="simulated", reason=reason)
