"""Backend dispatch for distributed factorization plans.

A :class:`~repro.engine.SolverPlan` with ``nproc > 1`` names *where* the
distributed block Schur algorithm runs through its ``backend`` field:

* ``"simulated"`` — the discrete-event T3D model
  (:func:`~repro.parallel.driver.simulate_factorization`), always
  available, produces virtual timings;
* ``"multiprocess"`` — real OS processes over shared memory
  (:func:`~repro.parallel.mp_backend.mp_factorization`), produces real
  wall-clock timings and per-PE spans.

:func:`factor_distributed` is the single entry the engine calls.  When
the multiprocess backend is requested but unavailable (platform probe
fails, worker spawn fails, ``REPRO_MP_DISABLE`` set), it falls back to
the simulated backend and records the reason on the returned
factorization (``fallback_reason``) and on the enclosing span — the run
still succeeds, just on the model instead of the metal.

Either way the result is a :class:`DistributedFactorization`: the
gathered triangular factor ``R`` with the same ``solve``/``logdet``
surface as the serial :class:`~repro.core.schur_spd.SPDFactorization`,
so engine caching and the solve stage are backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.errors import (
    InvalidOptionError,
    MultiprocessUnavailableError,
)
from repro.parallel.driver import simulate_factorization
from repro.parallel.mp_backend import (
    mp_factorization,
    multiprocess_available,
)
from repro.utils.lintools import as_panel, from_panel, \
    solve_upper_triangular

__all__ = ["BACKENDS", "DistributedFactorization", "factor_distributed"]

#: Legal values of ``SolverPlan.backend``.
BACKENDS = ("simulated", "multiprocess")


@dataclass
class DistributedFactorization:
    """Gathered result of a distributed factorization ``T = RᵀR``.

    Solvable like the serial factorization; additionally records which
    backend actually ran (``backend``), which one the plan asked for
    (``requested_backend``) and — when they differ — why (``fallback_reason``).
    ``run`` is the backend-native result
    (:class:`~repro.parallel.mp_backend.MPRun` or
    :class:`~repro.parallel.driver.SimulatedRun`) for timing and
    communication accounting.
    """

    r: np.ndarray
    block_size: int
    num_blocks: int
    representation: str
    nproc: int
    backend: str
    requested_backend: str
    fallback_reason: str = ""
    run: object | None = None

    @property
    def order(self) -> int:
        return self.r.shape[0]

    @property
    def fell_back(self) -> bool:
        """Whether the requested backend was substituted."""
        return self.backend != self.requested_backend

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T X = B`` (vector or ``n × k`` panel) via
        ``Rᵀ (R X) = B`` — level-3 sweeps over the whole panel."""
        panel, single = as_panel(b, self.order)
        y = solve_upper_triangular(self.r, panel, trans=True)
        return from_panel(solve_upper_triangular(self.r, y), single)

    def reconstruct(self) -> np.ndarray:
        """Dense ``Rᵀ R`` (diagnostic)."""
        return self.r.T @ self.r

    def logdet(self) -> float:
        """``log det T = 2 Σ log R_ii``."""
        return 2.0 * float(np.sum(np.log(np.abs(np.diag(self.r)))))


def _from_run(run, pl, *, backend: str, reason: str
              ) -> DistributedFactorization:
    return DistributedFactorization(
        r=run.r, block_size=run.block_size, num_blocks=run.num_blocks,
        representation=run.representation, nproc=pl.nproc,
        backend=backend, requested_backend=pl.backend,
        fallback_reason=reason, run=run)


def factor_distributed(op, pl) -> DistributedFactorization:
    """Run the distributed factorization the plan describes.

    ``op`` is the (possibly regrouped) symmetric block Toeplitz
    operator; ``pl`` carries ``nproc``, ``distribution_b``,
    ``representation`` and ``backend``.  Multiprocess requests degrade
    to the simulated backend when the platform cannot run them; the
    reason is recorded, never raised.
    """
    if pl.backend not in BACKENDS:
        raise InvalidOptionError(
            f"unknown backend {pl.backend!r}; expected one of {BACKENDS}")
    with obs.span("factor.distributed", backend=pl.backend,
                  nproc=pl.nproc) as sp:
        reason = ""
        if pl.backend == "multiprocess":
            ok, why = multiprocess_available()
            if ok:
                try:
                    run = mp_factorization(op, plan=pl)
                    sp.set(version=run.layout.version,
                           wall_seconds=run.wall_seconds)
                    return _from_run(run, pl, backend="multiprocess",
                                     reason="")
                except MultiprocessUnavailableError as exc:
                    reason = str(exc)
            else:
                reason = why
            sp.set(fallback_reason=reason)
            if obs.enabled():
                obs.default_registry().counter(
                    "repro_mp_fallbacks_total",
                    "Multiprocess-backend requests served by the "
                    "simulator instead"
                ).inc(1)
        run = simulate_factorization(op, plan=pl)
        sp.set(version=run.layout.version, simulated_seconds=run.time)
        return _from_run(run, pl, backend="simulated", reason=reason)
