"""Primitive-call cost helpers for the distributed implementation.

Splits the per-step cost decomposition of
:func:`repro.core.flops.primitive_calls_for_step` into the pieces the
SPMD program charges separately: building the transformation on the
pivot owner ("blocking"), applying it to a PE's local columns
("application"), and the message volume of each representation.
"""

from __future__ import annotations

from repro.core.flops import PrimitiveCall
from repro.errors import ShapeError

__all__ = [
    "blocking_calls",
    "application_calls",
    "transform_words",
    "shift_words",
]


def blocking_calls(m: int, *, representation: str = "vy2",
                   cols: int | None = None,
                   start_index: int = 0) -> list[PrimitiveCall]:
    """Primitive mix for building reflectors over ``cols`` pivot columns.

    ``start_index`` is the number of reflectors already accumulated
    (nonzero for the later chunks of a Version-3 pivot).
    """
    if cols is None:
        cols = m
    if not (1 <= cols <= m) or not (0 <= start_index <= m - cols):
        raise ShapeError(
            f"invalid cols={cols}, start_index={start_index} for m={m}")
    n2 = 2 * m
    calls: list[PrimitiveCall] = []
    for local in range(cols):
        idx = start_index + local
        calls.append(PrimitiveCall("dot", (m + 1,)))
        pw = cols - local
        calls.append(PrimitiveCall("gemv", (m, pw)))
        calls.append(PrimitiveCall("axpy", (pw,)))
        calls.append(PrimitiveCall("ger", (m, pw)))
        if idx > 0:
            if representation == "vy1":
                calls.append(PrimitiveCall("gemv", (n2, idx)))
                calls.append(PrimitiveCall("gemv", (n2, idx)))
                calls.append(PrimitiveCall("scal", (n2 * idx,)))
            elif representation == "vy2":
                calls.append(PrimitiveCall("gemv", (n2, idx)))
                calls.append(PrimitiveCall("ger", (n2, idx)))
                calls.append(PrimitiveCall("scal", (n2 * idx,)))
            elif representation == "yty":
                calls.append(PrimitiveCall("gemv", (n2, idx)))
                calls.append(PrimitiveCall("gemv", (idx, idx)))
                calls.append(PrimitiveCall("scal", (n2 * idx,)))
            elif representation in ("dense", "u"):
                calls.append(PrimitiveCall("gemv", (n2, n2)))
                calls.append(PrimitiveCall("ger", (n2, n2)))
            elif representation == "unblocked":
                pass
            else:
                raise ShapeError(
                    f"unknown representation {representation!r}")
    return calls


def application_calls(m: int, width: int, *,
                      representation: str = "vy2",
                      k: int | None = None) -> list[PrimitiveCall]:
    """Primitive mix for applying a ``k``-reflector block transformation
    to ``width`` scalar columns of the ``2m``-row generator."""
    if width <= 0:
        return []
    kk = m if k is None else k
    if not (1 <= kk <= m):
        raise ShapeError(f"k={kk} must be in [1, {m}]")
    n2 = 2 * m
    if representation in ("vy1", "vy2"):
        return [PrimitiveCall("gemm", (kk, width, n2)),
                PrimitiveCall("gemm", (n2, width, kk))]
    if representation == "yty":
        return [PrimitiveCall("gemm", (kk, width, n2)),
                PrimitiveCall("gemm", (kk, width, kk)),
                PrimitiveCall("gemm", (n2, width, kk))]
    if representation in ("dense", "u"):
        return [PrimitiveCall("gemm", (n2, width, n2))]
    if representation == "unblocked":
        calls = []
        for _ in range(kk):
            calls.append(PrimitiveCall("gemv", (m, width)))
            calls.append(PrimitiveCall("ger", (m, width)))
            calls.append(PrimitiveCall("axpy", (width,)))
        return calls
    raise ShapeError(f"unknown representation {representation!r}")


def transform_words(representation: str, m: int,
                    k: int | None = None) -> int:
    """8-byte words needed to communicate the block transformation.

    Exploits the Figure 3/4 sparsity: reflector columns carry one pivot
    entry plus the ``m`` lower entries; the ``z``/``T`` factors are
    triangular.  The ``YTYᵀ`` form is roughly half the VY volume — the
    property Section 6.3 cites for distributed machines.
    """
    kk = m if k is None else k
    if not (1 <= kk <= m):
        raise ShapeError(f"k={kk} must be in [1, {m}]")
    x_words = kk * (m + 1)                 # reflector columns
    tri = kk * (kk + 1) // 2
    if representation in ("vy1", "vy2"):
        # one factor with x-sparsity, one with growing upper support
        return x_words + (tri + kk * m)
    if representation == "yty":
        return x_words + tri
    if representation in ("dense", "u"):
        return (2 * m) * (2 * m)
    if representation == "unblocked":
        return x_words
    raise ShapeError(f"unknown representation {representation!r}")


def shift_words(m: int, blocks: int, chunk_width: int | None = None) -> int:
    """Volume of the Phase-3 shift: upper halves of ``blocks`` blocks."""
    w = m if chunk_width is None else chunk_width
    return blocks * m * w
