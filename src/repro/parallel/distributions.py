"""Generator data-distribution schemes (Section 7.1, Figure 5).

All three schemes view the machine as a linear array of ``NP`` PEs and
assign the ``p`` block columns of the ``2m × mp`` generator:

* Version 1 (``BlockCyclicLayout(group_size=1)``): block ``j`` on PE
  ``j mod NP``;
* Version 2 (``BlockCyclicLayout(group_size=b)``): ``b`` adjacent blocks
  per PE, cyclically — fewer shift crossings, less parallelism;
* Version 3 (``SpreadLayout(spread=s)``): block ``j`` split column-wise
  over ``s`` adjacent PEs — more parallelism inside a block, ``s``
  broadcasts per elimination step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DistributionError

__all__ = ["BlockCyclicLayout", "SpreadLayout", "make_layout"]


@dataclass(frozen=True)
class BlockCyclicLayout:
    """Versions 1 and 2: whole block columns, cyclic by groups of ``b``."""

    nproc: int
    group_size: int = 1

    def __post_init__(self):
        if self.nproc <= 0:
            raise DistributionError(f"nproc must be positive: {self.nproc}")
        if self.group_size <= 0:
            raise DistributionError(
                f"group size b must be positive: {self.group_size}")

    @property
    def version(self) -> int:
        return 1 if self.group_size == 1 else 2

    def owner(self, block: int) -> int:
        """PE owning block column ``block``."""
        if block < 0:
            raise DistributionError(f"negative block index {block}")
        return (block // self.group_size) % self.nproc

    def blocks_of(self, rank: int, num_blocks: int) -> list[int]:
        """Ascending list of block columns owned by ``rank``."""
        return [j for j in range(num_blocks) if self.owner(j) == rank]

    def shift_crossings(self, num_blocks: int, first_active: int) -> int:
        """Blocks whose ``j → j+1`` shift crosses a PE boundary."""
        return sum(1 for j in range(first_active, num_blocks - 1)
                   if self.owner(j) != self.owner(j + 1))


@dataclass(frozen=True)
class SpreadLayout:
    """Version 3: block column ``j`` split into ``spread`` column chunks.

    Chunk ``c`` of block ``j`` (columns ``c·m/s … (c+1)·m/s``) lives on
    PE ``(j·s + c) mod NP``, so consecutive chunks are on adjacent PEs
    and a block's chunks occupy ``s`` adjacent PEs.
    """

    nproc: int
    spread: int

    def __post_init__(self):
        if self.nproc <= 0:
            raise DistributionError(f"nproc must be positive: {self.nproc}")
        if not (1 <= self.spread <= self.nproc):
            raise DistributionError(
                f"spread must be in [1, NP={self.nproc}]: {self.spread}")

    version = 3

    def chunk_width(self, block_size: int) -> int:
        """Columns per chunk (``m / spread``)."""
        if block_size % self.spread != 0:
            raise DistributionError(
                f"block size {block_size} not divisible by "
                f"spread {self.spread}")
        return block_size // self.spread

    def owner(self, block: int, chunk: int) -> int:
        """PE owning chunk ``chunk`` of block column ``block``."""
        if block < 0 or not (0 <= chunk < self.spread):
            raise DistributionError(
                f"invalid (block, chunk) = ({block}, {chunk})")
        return (block * self.spread + chunk) % self.nproc

    def chunks_of(self, rank: int, num_blocks: int
                  ) -> list[tuple[int, int]]:
        """Ascending list of (block, chunk) pairs owned by ``rank``."""
        out = []
        for j in range(num_blocks):
            for c in range(self.spread):
                if self.owner(j, c) == rank:
                    out.append((j, c))
        return out


def make_layout(nproc: int, *, b: float = 1):
    """Build the layout the paper's ``b`` parameter selects.

    ``b ≥ 1`` (integer): Versions 1/2 with ``b`` adjacent blocks per PE.
    ``b < 1``: Version 3 with ``spread = 1/b`` PEs per block.
    """
    if b >= 1:
        bi = int(b)
        if bi != b:
            raise DistributionError(f"b must be integral when ≥ 1: {b}")
        return BlockCyclicLayout(nproc=nproc, group_size=bi)
    spread = round(1.0 / b)
    if abs(spread * b - 1.0) > 1e-9:
        raise DistributionError(f"1/b must be integral when b < 1: {b}")
    return SpreadLayout(nproc=nproc, spread=spread)
