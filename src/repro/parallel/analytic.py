"""Closed-form time model for the distributed algorithm.

Independent of the event simulator: sums, over the ``p − 1`` elimination
steps, the critical-path cost of each bulk-synchronous phase (shift,
build, broadcast(s), apply, barrier).  Used to cross-check the simulator
(they should agree closely — the simulated programs are exactly this
phase structure) and to explore parameter spaces too large to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.blas.cray import T3DNetworkParameters, t3d_node_model
from repro.errors import DistributionError, ShapeError
from repro.parallel import costs
from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)

__all__ = ["AnalyticBreakdown", "analytic_factor_time"]


@dataclass
class AnalyticBreakdown:
    """Predicted time-to-factor with a per-phase split."""

    total: float = 0.0
    by_phase: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``phase`` (and the total)."""
        self.total += seconds
        self.by_phase[phase] = self.by_phase.get(phase, 0.0) + seconds


def _max_active_blocks(p_active: int, layout: BlockCyclicLayout) -> int:
    """Largest number of live blocks on any one PE."""
    b, npp = layout.group_size, layout.nproc
    groups = ceil(p_active / b)
    return ceil(groups / npp) * b


def analytic_factor_time(n: int, m: int, nproc: int, *,
                         b: float = 1,
                         representation: str = "vy2",
                         node_model=None,
                         network: T3DNetworkParameters | None = None
                         ) -> AnalyticBreakdown:
    """Predict the simulated time-to-factor for the given configuration."""
    if n % m != 0:
        raise ShapeError(f"n={n} not a multiple of m={m}")
    p = n // m
    layout = make_layout(nproc, b=b)
    if node_model is None:
        node_model = t3d_node_model()
    if network is None:
        network = T3DNetworkParameters()
    out = AnalyticBreakdown()

    if isinstance(layout, BlockCyclicLayout):
        t_build = node_model.time_many(
            costs.blocking_calls(m, representation=representation))
        bcast_words = costs.transform_words(representation, m) + m
        t_bcast = network.broadcast_time(bcast_words, nproc)
        t_barrier = network.barrier_time(nproc)
        for i in range(1, p):
            active = p - i            # live blocks j ≥ i
            kmax = _max_active_blocks(active, layout)
            # shift: worst PE forwards its boundary blocks (one per
            # owned group crosses in Version 2; every block in Version 1)
            crossing = kmax if layout.group_size == 1 else \
                ceil(kmax / layout.group_size)
            out.add("shift", network.put_time(crossing * m * m, hops=1,
                                              count=crossing))
            out.add("blocking", t_build)
            out.add("broadcast", t_bcast)
            width = min(kmax, max(active - 1, 0)) * m
            if width > 0:
                out.add("application", node_model.time_many(
                    costs.application_calls(
                        m, width, representation=representation)))
            out.add("barrier", t_barrier)
        return out

    if isinstance(layout, SpreadLayout):
        s = layout.spread
        mc = layout.chunk_width(m)
        t_barrier = network.barrier_time(nproc)
        bcast_words = costs.transform_words(representation, m, k=mc) + mc
        t_bcast = network.broadcast_time(bcast_words, nproc)
        for i in range(1, p):
            active_chunks = (p - i) * s
            kmax = ceil(active_chunks / nproc)
            out.add("shift", network.put_time(kmax * m * mc, hops=s,
                                              count=kmax))
            for c in range(s):
                out.add("blocking", node_model.time_many(
                    costs.blocking_calls(
                        m, representation=representation,
                        cols=mc, start_index=c * mc)))
                out.add("broadcast", t_bcast)
                width = min(kmax, max(active_chunks - 1, 0)) * mc
                if width > 0:
                    out.add("application", node_model.time_many(
                        costs.application_calls(
                            m, width, representation=representation,
                            k=mc)))
            out.add("barrier", t_barrier)
        return out

    raise DistributionError(f"unknown layout {layout!r}")
