"""SPMD rank programs for the distributed block Schur algorithm.

Two programs, mirroring the paper's implementation structure (Section
7.1): a whole-block program for Versions 1/2 (block-cyclic by groups of
``b``) and a chunked program for Version 3 (each block spread over ``s``
PEs).  Both follow the bulk-synchronous compute/communicate paradigm with
a barrier per elimination step, exactly as the paper assumes.

Per step ``i`` (whole-block version):

1. *shift* — every PE forwards the upper halves of its live blocks
   ``j → j+1``; with cyclic layouts all crossings go to the right
   neighbor (one ``shmem_put`` of ``O(k_active · m²)`` words);
2. *build* — the owner of block ``i`` eliminates its lower pivot block
   against the upper one, producing the block hyperbolic Householder
   transformation;
3. *broadcast* — the transformation (in the chosen representation, with
   its sparsity-aware volume) goes to all PEs;
4. *apply* — every PE applies it to its live block columns (level-3);
5. *barrier*.

Version 3 replaces step 2–3 with ``s`` sequential partial builds and
broadcasts (one per chunk owner), trading extra communication for
intra-block parallelism.

The numerics are real: the programs transform actual generator data, and
the assembled ``R`` matches the serial factorization to rounding.
Compute *time* is charged from the node performance model via the
primitive-call decomposition in :mod:`repro.parallel.costs`.
"""

from __future__ import annotations

import numpy as np

from repro.core.block_reflector import make_accumulator
from repro.core.hyperbolic import reflector_annihilating
from repro.core.schur_spd import _apply_reflector_pair, eliminate_block
from repro.errors import DistributionError
from repro.machine.ops import Barrier, Broadcast, Compute, Put, Recv
from repro.parallel import costs
from repro.parallel.distributions import BlockCyclicLayout, SpreadLayout

__all__ = ["block_cyclic_program", "spread_program",
            "build_partial_transform"]


def _charge(model, calls, category):
    if model is None or not calls:
        return Compute(0.0, category)
    return Compute(model.time_many(calls), category)


# ----------------------------------------------------------------------
# Versions 1 & 2: whole block columns
# ----------------------------------------------------------------------

def block_cyclic_program(ctx, *, layout: BlockCyclicLayout, m: int, p: int,
                         w: np.ndarray, initial: dict[int, np.ndarray],
                         representation: str = "vy2",
                         node_model=None, collect: bool = True):
    """Rank program for Versions 1/2.  ``initial`` maps each rank to its
    ``(2m, nloc·m)`` slice of the generator (blocks in ascending order)."""
    rank, nproc = ctx.rank, ctx.nproc
    my_blocks = layout.blocks_of(rank, p)
    data = np.array(initial[rank]) if my_blocks else np.zeros((2 * m, 0))
    pos = {j: idx for idx, j in enumerate(my_blocks)}
    right = (rank + 1) % nproc
    left = (rank - 1) % nproc
    results: dict[tuple[int, int], np.ndarray] = {}

    def upper_block(j):
        return data[:m, pos[j] * m:(pos[j] + 1) * m]

    def lower_block(j):
        return data[m:, pos[j] * m:(pos[j] + 1) * m]

    # R block row 0 is the initial upper generator row.
    if collect:
        for j in my_blocks:
            results[(0, j)] = upper_block(j).copy()

    for i in range(1, p):
        # ---------------- Phase 3 (shift) -------------------------------
        live = [j for j in my_blocks if i - 1 <= j <= p - 2]
        outgoing: list[tuple[int, np.ndarray]] = []
        local_moves: list[tuple[int, np.ndarray]] = []
        for j in live:
            blockcopy = upper_block(j).copy()
            if layout.owner(j + 1) == rank:
                local_moves.append((j + 1, blockcopy))
            else:
                outgoing.append((j + 1, blockcopy))
        if nproc > 1:
            words = sum(b.size for _, b in outgoing)
            yield Put(dest=right, tag=("shift", i), payload=outgoing,
                      words=words, count=len(outgoing), category="shift")
            incoming = yield Recv(src=left, tag=("shift", i))
        else:
            incoming = []
        for tgt, blk in list(incoming) + local_moves:
            if tgt in pos:
                upper_block(tgt)[:] = blk
            # else: content for a block this PE does not own — malformed
            # layout; surface loudly rather than corrupt silently.
            else:
                raise DistributionError(
                    f"rank {rank} received shift for foreign block {tgt}")

        # ---------------- Phase 1 (build) -------------------------------
        pivot_owner = layout.owner(i)
        payload = None
        if rank == pivot_owner:
            collected = []
            up = upper_block(i)
            low = lower_block(i)
            eliminate_block(up, low, w, representation=representation,
                            panel=None, pivot_sign_fixup=False,
                            collect=collected)
            u_block = collected[0]
            negrows = np.nonzero(np.diag(up) < 0)[0]
            if negrows.size:
                up[negrows] *= -1.0
            payload = (u_block, negrows)
            yield _charge(node_model,
                          costs.blocking_calls(
                              m, representation=representation),
                          "blocking")

        # ---------------- broadcast -------------------------------------
        words = costs.transform_words(representation, m) + m
        got = yield Broadcast(root=pivot_owner, payload=payload,
                              words=words, category="broadcast")
        u_block, negrows = got

        # ---------------- Phase 2 (apply) -------------------------------
        active = [j for j in my_blocks if j > i]
        if active:
            start = pos[active[0]] * m
            upv = data[:m, start:]
            lov = data[m:, start:]
            u_block.apply_pair(upv, lov)
            if negrows.size:
                upv[negrows] *= -1.0
            yield _charge(node_model,
                          costs.application_calls(
                              m, upv.shape[1],
                              representation=representation),
                          "application")

        if collect:
            for j in my_blocks:
                if j >= i:
                    results[(i, j)] = upper_block(j).copy()

        yield Barrier()

    return results


# ----------------------------------------------------------------------
# Version 3: spread blocks
# ----------------------------------------------------------------------

def build_partial_transform(upper: np.ndarray, lower: np.ndarray,
                            w: np.ndarray, row_offset: int,
                            representation: str = "vy2"):
    """Eliminate the ``mc`` lower columns of one pivot *chunk*.

    ``upper``/``lower`` are ``m × mc`` views of the chunk (columns
    ``row_offset … row_offset+mc`` of the pivot block); the pivot entries
    sit at rows ``row_offset + k``.  Returns ``(U, negrows)`` where
    ``negrows`` are the pivot rows whose diagonal came out negative (to
    be sign-flipped machine-wide).
    """
    m, mc = upper.shape
    n2 = 2 * m
    acc = make_accumulator(representation, w)
    for k in range(mc):
        row = row_offset + k
        u = np.zeros(n2)
        u[row] = upper[row, k]
        u[m:] = lower[:, k]
        support = np.concatenate([[row], np.arange(m, n2)]).astype(np.intp)
        refl, _sigma = reflector_annihilating(u, w, row, support=support)
        _apply_reflector_pair(refl, upper[:, k:], lower[:, k:], row)
        lower[:, k] = 0.0
        acc.append(refl)
    u_block = acc.finish()
    diag = np.array([upper[row_offset + k, k] for k in range(mc)])
    negrows = row_offset + np.nonzero(diag < 0)[0]
    if negrows.size:
        upper[negrows] *= -1.0
    return u_block, negrows


def spread_program(ctx, *, layout: SpreadLayout, m: int, p: int,
                   w: np.ndarray, initial: dict[int, np.ndarray],
                   representation: str = "vy2",
                   node_model=None, collect: bool = True):
    """Rank program for Version 3 (each block spread over ``s`` PEs)."""
    rank, nproc = ctx.rank, ctx.nproc
    s = layout.spread
    mc = layout.chunk_width(m)
    my_chunks = layout.chunks_of(rank, p)
    data = np.array(initial[rank]) if my_chunks else np.zeros((2 * m, 0))
    pos = {jc: idx for idx, jc in enumerate(my_chunks)}
    right = (rank + s) % nproc
    left = (rank - s) % nproc
    results: dict[tuple[int, int, int], np.ndarray] = {}

    def upper_chunk(j, c):
        idx = pos[(j, c)]
        return data[:m, idx * mc:(idx + 1) * mc]

    def lower_chunk(j, c):
        idx = pos[(j, c)]
        return data[m:, idx * mc:(idx + 1) * mc]

    if collect:
        for (j, c) in my_chunks:
            results[(0, j, c)] = upper_chunk(j, c).copy()

    for i in range(1, p):
        # ---------------- shift -----------------------------------------
        live = [(j, c) for (j, c) in my_chunks if i - 1 <= j <= p - 2]
        outgoing = []
        local_moves = []
        for (j, c) in live:
            blockcopy = upper_chunk(j, c).copy()
            tgt = (j + 1, c)
            if layout.owner(*tgt) == rank:
                local_moves.append((tgt, blockcopy))
            else:
                outgoing.append((tgt, blockcopy))
        if nproc > 1:
            words = sum(b.size for _, b in outgoing)
            yield Put(dest=right, tag=("shift", i), payload=outgoing,
                      words=words, count=len(outgoing), category="shift")
            incoming = yield Recv(src=left, tag=("shift", i))
        else:
            incoming = []
        for tgt, blk in list(incoming) + local_moves:
            if tgt in pos:
                upper_chunk(*tgt)[:] = blk
            else:
                raise DistributionError(
                    f"rank {rank} received shift for foreign chunk {tgt}")

        # ------------- s sequential partial builds + broadcasts ---------
        for c in range(s):
            root = layout.owner(i, c)
            payload = None
            if rank == root:
                up = upper_chunk(i, c)
                low = lower_chunk(i, c)
                payload = build_partial_transform(
                    up, low, w, row_offset=c * mc,
                    representation=representation)
                yield _charge(node_model,
                              costs.blocking_calls(
                                  m, representation=representation,
                                  cols=mc, start_index=c * mc),
                              "blocking")
            words = costs.transform_words(representation, m, k=mc) + mc
            got = yield Broadcast(root=root, payload=payload, words=words,
                                  category="broadcast")
            u_block, negrows = got
            # apply to chunks strictly after (i, c)
            active = [jc for jc in my_chunks
                      if jc[0] > i or (jc[0] == i and jc[1] > c)]
            if active:
                start = pos[active[0]] * mc
                upv = data[:m, start:]
                lov = data[m:, start:]
                u_block.apply_pair(upv, lov)
                if negrows.size:
                    upv[negrows] *= -1.0
                yield _charge(node_model,
                              costs.application_calls(
                                  m, upv.shape[1],
                                  representation=representation, k=mc),
                              "application")

        if collect:
            for (j, c) in my_chunks:
                if j >= i:
                    results[(i, j, c)] = upper_chunk(j, c).copy()

        yield Barrier()

    return results
