"""Distributed block Schur implementations — simulated and real.

Section 7 of the paper: the generator (``2m × mp``) is laid out over a
linear array of PEs in one of three ways (Figure 5):

* **Version 1** — each block column to a PE, cyclically;
* **Version 2** — groups of ``b`` adjacent block columns per PE;
* **Version 3** — each block column *split* over ``spread`` adjacent PEs.

Two execution backends share those layouts and the same per-step
structure (shift / broadcast / build / apply / barrier):

* :func:`~repro.parallel.driver.simulate_factorization` runs the real
  numerics through the discrete-event T3D model
  (:class:`~repro.machine.Machine`) and returns the factor plus the
  *virtual* timing report;
* :func:`~repro.parallel.mp_backend.mp_factorization` runs one OS
  process per PE over :mod:`multiprocessing.shared_memory` and returns
  the factor plus *real* wall-clock timings and per-PE spans.

:func:`~repro.parallel.backends.factor_distributed` dispatches between
them from a :class:`~repro.engine.SolverPlan` (with graceful fallback
to simulation when the multiprocess backend is unavailable);
:mod:`~repro.parallel.analytic` provides the closed-form per-step cost
model the paper's trade-off discussion implies.
"""

from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)
from repro.parallel.driver import (
    simulate_factorization,
    simulate_solve,
    simulate_triangular_solve,
    SimulatedRun,
)
from repro.parallel.analytic import analytic_factor_time, AnalyticBreakdown
from repro.parallel.backends import (
    BACKENDS,
    DistributedFactorization,
    factor_distributed,
)
from repro.parallel.mp_backend import (
    MPRun,
    MPSolveRun,
    SCHEDULES,
    mp_factorization,
    mp_triangular_solve,
    multiprocess_available,
)
from repro.parallel.transport import (
    Transport,
    SharedMemoryTransport,
    available_transports,
    get_transport,
    register_transport,
)

__all__ = [
    "BlockCyclicLayout",
    "SpreadLayout",
    "make_layout",
    "simulate_factorization",
    "simulate_solve",
    "simulate_triangular_solve",
    "SimulatedRun",
    "analytic_factor_time",
    "AnalyticBreakdown",
    "BACKENDS",
    "DistributedFactorization",
    "factor_distributed",
    "MPRun",
    "MPSolveRun",
    "SCHEDULES",
    "mp_factorization",
    "mp_triangular_solve",
    "multiprocess_available",
    "Transport",
    "SharedMemoryTransport",
    "available_transports",
    "get_transport",
    "register_transport",
]
