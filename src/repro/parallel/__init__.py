"""Distributed block Schur implementations on the simulated machine.

Section 7 of the paper: the generator (``2m × mp``) is laid out over a
linear array of PEs in one of three ways (Figure 5):

* **Version 1** — each block column to a PE, cyclically;
* **Version 2** — groups of ``b`` adjacent block columns per PE;
* **Version 3** — each block column *split* over ``spread`` adjacent PEs.

:func:`~repro.parallel.driver.simulate_factorization` runs the real
numerics of the distributed algorithm through
:class:`~repro.machine.Machine` and returns the factor (bit-checked
against the serial algorithm in tests) plus the virtual timing report;
:mod:`~repro.parallel.analytic` provides the closed-form per-step cost
model the paper's trade-off discussion implies.
"""

from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)
from repro.parallel.driver import simulate_factorization, simulate_solve, SimulatedRun
from repro.parallel.analytic import analytic_factor_time, AnalyticBreakdown

__all__ = [
    "BlockCyclicLayout",
    "SpreadLayout",
    "make_layout",
    "simulate_factorization",
    "simulate_solve",
    "SimulatedRun",
    "analytic_factor_time",
    "AnalyticBreakdown",
]
