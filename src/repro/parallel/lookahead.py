"""Pipelined (lookahead) distributed factorization.

Section 6.5 remarks that it may be necessary to "allow overlap of the
production of U with the update of the remainder of the generator" —
the classical lookahead optimization.  The bulk-synchronous Version 1
program serializes every step as

    (pivot owner builds U_i) → broadcast → everyone applies → barrier,

so all PEs idle through the serial build.  This variant removes the
barrier and schedules work per *block* (depth-1 lookahead):

* each block ``j`` carries a step counter; ``advance(j, s)`` pulls the
  shifted upper rows from the left neighbor and applies the cached
  broadcast transformations one step at a time, shipping the
  transformed upper onward — blocks may lag and catch up;
* the transformed pivot row travels point-to-point down the *pivot
  chain* (owner(i) → owner(i+1)) right after each build;
* at step ``i``, the owner of step ``i+1`` advances **only its pivot
  block**, builds, ships the chain, and enters the next broadcast —
  its remaining blocks catch up after its turn, while the other PEs
  advance everything.

The broadcast is the only synchronization and completes at the latest
entrant, so the serial build overlaps the other PEs' application work:
the per-step critical path drops from ``apply + build + bcast`` toward
``max(apply, build + apply_one) + bcast``.  The numerics are identical
to the serial factorization (tests diff them); the benchmark harness
measures the simulated speedup over the plain Version 1 program.

Layout restriction: Version 1 (cyclic, one block per PE), NP ≥ 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.schur_spd import eliminate_block
from repro.errors import DistributionError
from repro.machine.ops import Broadcast, Compute, Put, Recv
from repro.parallel import costs
from repro.parallel.distributions import BlockCyclicLayout

__all__ = ["block_cyclic_lookahead_program"]


def block_cyclic_lookahead_program(ctx, *, layout: BlockCyclicLayout,
                                   m: int, p: int, w: np.ndarray,
                                   initial: dict[int, np.ndarray],
                                   representation: str = "vy2",
                                   node_model=None,
                                   collect: bool = True):
    """Lookahead rank program (Version 1 layout, NP ≥ 2)."""
    rank, nproc = ctx.rank, ctx.nproc
    if layout.group_size != 1:
        raise DistributionError("lookahead implemented for Version 1")
    if nproc < 2:
        raise DistributionError("lookahead needs at least 2 PEs")
    my_blocks = layout.blocks_of(rank, p)
    data = np.array(initial[rank]) if my_blocks else np.zeros((2 * m, 0))
    pos = {j: idx for idx, j in enumerate(my_blocks)}
    results: dict[tuple[int, int], np.ndarray] = {}
    u_cache: dict[int, tuple] = {}
    state = {j: 0 for j in my_blocks}
    app_calls = costs.application_calls(m, m,
                                        representation=representation)
    app_time = (node_model.time_many(app_calls)
                if node_model is not None else 0.0)
    build_calls = costs.blocking_calls(m, representation=representation)
    build_time = (node_model.time_many(build_calls)
                  if node_model is not None else 0.0)

    def upper_block(j):
        return data[:m, pos[j] * m:(pos[j] + 1) * m]

    def lower_block(j):
        return data[m:, pos[j] * m:(pos[j] + 1) * m]

    def advance(j, to_step):
        """Bring block ``j`` up to ``to_step`` (stops before its own
        pivot turn)."""
        while state[j] < min(to_step, j - 1):
            s = state[j] + 1
            upj = yield Recv(src=layout.owner(j - 1), tag=("up", s, j))
            upper_block(j)[:] = upj
            u_blk, neg = u_cache[s]
            u_blk.apply_pair(upper_block(j), lower_block(j))
            if neg.size:
                upper_block(j)[neg] *= -1.0
            yield Compute(app_time, category="application")
            if j <= p - 2:
                yield Put(dest=layout.owner(j + 1),
                          tag=("up", s + 1, j + 1),
                          payload=upper_block(j).copy(), words=m * m,
                          category="shift")
            state[j] = s
            if collect:
                results[(s, j)] = upper_block(j).copy()

    if collect:
        for j in my_blocks:
            results[(0, j)] = upper_block(j).copy()

    # Initial shift round: block j's upper at step 1 is the initial
    # upper of block j−1; block 0's heads the pivot chain.
    for j in my_blocks:
        if j == 0 and p >= 2:
            yield Put(dest=layout.owner(1), tag=("pivot", 1),
                      payload=upper_block(0).copy(), words=m * m,
                      category="shift")
        elif 1 <= j <= p - 2:
            yield Put(dest=layout.owner(j + 1), tag=("up", 1, j + 1),
                      payload=upper_block(j).copy(), words=m * m,
                      category="shift")

    for i in range(1, p):
        pivot_owner = layout.owner(i)
        payload = None
        if rank == pivot_owner:
            yield from advance(i, i - 1)
            up = np.array((yield Recv(src=layout.owner(i - 1),
                                      tag=("pivot", i))))
            low = lower_block(i)
            collected = []
            eliminate_block(up, low, w, representation=representation,
                            panel=None, pivot_sign_fixup=False,
                            collect=collected)
            u_block = collected[0]
            negrows = np.nonzero(np.diag(up) < 0)[0]
            if negrows.size:
                up[negrows] *= -1.0
            upper_block(i)[:] = up
            if collect:
                results[(i, i)] = up.copy()
            payload = (u_block, negrows)
            yield Compute(build_time, category="blocking")
            if i + 1 < p:
                yield Put(dest=layout.owner(i + 1), tag=("pivot", i + 1),
                          payload=up.copy(), words=m * m,
                          category="shift")

        words = costs.transform_words(representation, m) + m
        u_cache[i] = yield Broadcast(root=pivot_owner, payload=payload,
                                     words=words, category="broadcast")

        # Depth-1 lookahead: the next pivot owner advances only its
        # pivot block before rushing to the next build; everyone else
        # brings all live blocks current.
        am_next_owner = (i + 1 < p and rank == layout.owner(i + 1))
        live = [j for j in my_blocks if j > i]
        if am_next_owner:
            yield from advance(i + 1, i)
        else:
            for j in live:
                yield from advance(j, i)

    return results
