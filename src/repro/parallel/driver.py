"""Driver: run the distributed factorization on the simulated machine.

Assembles the generator, scatters it according to the chosen layout,
executes the SPMD program on a :class:`~repro.machine.Machine`, and
(optionally) gathers the triangular factor for verification against the
serial algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blas.cray import T3DNetworkParameters, t3d_node_model
from repro.core.generator import spd_generator
from repro.errors import DistributionError, ShapeError
from repro.machine.network import Torus3D
from repro.machine.simulator import Machine, MachineReport
from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)
from repro.parallel.spmd import block_cyclic_program, spread_program
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["SimulatedRun", "simulate_factorization",
           "simulate_triangular_solve", "simulate_solve"]


@dataclass
class SimulatedRun:
    """Result of one simulated distributed factorization."""

    r: np.ndarray | None
    report: MachineReport
    layout: object
    block_size: int
    num_blocks: int
    representation: str

    @property
    def time(self) -> float:
        """Simulated time to factor (seconds on the modeled machine)."""
        return self.report.makespan

    def breakdown(self) -> dict[str, float]:
        """Phase breakdown of the critical (slowest) rank."""
        return self.report.category_of_critical_rank()


def _scatter_block_cyclic(gen: np.ndarray, m: int, p: int,
                          layout: BlockCyclicLayout) -> dict[int, np.ndarray]:
    initial = {}
    for rank in range(layout.nproc):
        blocks = layout.blocks_of(rank, p)
        if blocks:
            cols = np.concatenate(
                [np.arange(j * m, (j + 1) * m) for j in blocks])
            initial[rank] = np.ascontiguousarray(gen[:, cols])
        else:
            initial[rank] = np.zeros((gen.shape[0], 0))
    return initial


def _scatter_spread(gen: np.ndarray, m: int, p: int,
                    layout: SpreadLayout) -> dict[int, np.ndarray]:
    mc = layout.chunk_width(m)
    initial = {}
    for rank in range(layout.nproc):
        chunks = layout.chunks_of(rank, p)
        if chunks:
            cols = np.concatenate(
                [np.arange(j * m + c * mc, j * m + (c + 1) * mc)
                 for (j, c) in chunks])
            initial[rank] = np.ascontiguousarray(gen[:, cols])
        else:
            initial[rank] = np.zeros((gen.shape[0], 0))
    return initial


def simulate_factorization(t: SymmetricBlockToeplitz,
                           nproc: int | None = None, *,
                           b: float = 1,
                           plan=None,
                           layout=None,
                           representation: str | None = None,
                           node_model=None,
                           network: T3DNetworkParameters | None = None,
                           topology=None,
                           collect: bool = True,
                           trace: bool = False,
                           program: str = "bulk") -> SimulatedRun:
    """Factor ``t`` on a simulated ``nproc``-PE machine.

    Parameters
    ----------
    t : SymmetricBlockToeplitz
        SPD block Toeplitz matrix.
    nproc : int
        Number of PEs (linear array embedded in a 3-D torus by default).
        May be omitted when ``plan`` carries it.
    b : float
        The paper's distribution parameter: ``b ≥ 1`` selects Versions
        1/2 with ``b`` adjacent blocks per PE; ``b < 1`` selects Version
        3 with ``spread = 1/b``.  Ignored when ``layout`` is given.
    plan : repro.engine.SolverPlan, optional
        A machine-tuned plan: supplies ``nproc``, the distribution
        parameter ``b`` (hence the Version 1/2/3 layout) and the
        reflector representation, unless overridden explicitly.
    representation : str
        Block reflector representation (affects both compute cost and
        broadcast volume).
    node_model / network / topology
        Default to the paper's T3D parameterization.
    collect : bool
        Gather and assemble ``R`` (turn off for large timing sweeps).
    program : str
        ``"bulk"`` (the paper's barrier-synchronized loop) or
        ``"lookahead"`` (the §6.5 overlap variant; Version 1, NP ≥ 2).

    Returns
    -------
    SimulatedRun
        With ``r`` (when collected) and the virtual-time report.
    """
    if plan is not None:
        if nproc is None:
            nproc = plan.nproc
        if layout is None and plan.distribution_b is not None:
            b = plan.distribution_b
        if representation is None:
            representation = plan.representation
    if representation is None:
        representation = "vy2"
    if nproc is None:
        raise DistributionError(
            "nproc is required (directly or through a SolverPlan)")
    if layout is None:
        layout = make_layout(nproc, b=b)
    if node_model is None:
        node_model = t3d_node_model()
    if network is None:
        network = T3DNetworkParameters()
    g = spd_generator(t)
    m, p = g.block_size, g.num_blocks
    if p < 2:
        raise ShapeError("need at least 2 block columns to factor")
    machine = Machine(nproc, network=network,
                      topology=topology or Torus3D(nproc), trace=trace)
    if program not in ("bulk", "lookahead"):
        raise DistributionError(f"unknown program {program!r}")
    if isinstance(layout, BlockCyclicLayout):
        initial = _scatter_block_cyclic(g.gen, m, p, layout)
        if program == "lookahead":
            from repro.parallel.lookahead import \
                block_cyclic_lookahead_program
            report = machine.run(
                block_cyclic_lookahead_program, layout=layout, m=m, p=p,
                w=g.w, initial=initial, representation=representation,
                node_model=node_model, collect=collect)
        else:
            report = machine.run(
                block_cyclic_program, layout=layout, m=m, p=p, w=g.w,
                initial=initial, representation=representation,
                node_model=node_model, collect=collect)
    elif isinstance(layout, SpreadLayout):
        if program == "lookahead":
            raise DistributionError(
                "lookahead is implemented for the Version 1 layout")
        if not np.all(g.w[:m] == 1):
            raise DistributionError(
                "the spread (Version 3) program supports the SPD "
                "signature only")
        initial = _scatter_spread(g.gen, m, p, layout)
        report = machine.run(
            spread_program, layout=layout, m=m, p=p, w=g.w,
            initial=initial, representation=representation,
            node_model=node_model, collect=collect)
    else:
        raise DistributionError(f"unknown layout {layout!r}")

    r = None
    if collect:
        n = m * p
        r = np.zeros((n, n))
        mc = layout.chunk_width(m) if isinstance(layout, SpreadLayout) \
            else m
        for res in report.results:
            if not res:
                continue
            for key, blk in res.items():
                if len(key) == 2:
                    i, j = key
                    r[i * m:(i + 1) * m, j * m:(j + 1) * m] = blk
                else:
                    i, j, c = key
                    col0 = j * m + c * mc
                    r[i * m:(i + 1) * m, col0:col0 + mc] = blk
    return SimulatedRun(r=r, report=report, layout=layout,
                        block_size=m, num_blocks=p,
                        representation=representation)


def simulate_triangular_solve(run: SimulatedRun, b: np.ndarray, *,
                              node_model=None,
                              network: T3DNetworkParameters | None = None,
                              topology=None,
                              trace: bool = False
                              ) -> tuple[np.ndarray, MachineReport]:
    """Solve ``RᵀR x = b`` from an existing simulated factorization run.

    The factor stays distributed exactly as the run left it: each PE's
    ``{(i, j): R_ij}`` result dict feeds the triangular-solve program of
    :mod:`repro.parallel.spmd_solve` directly.  ``b`` may be a vector or
    an ``n × k`` panel.  Versions 1/2 layouts only (the solve sweeps
    assume whole block columns) — this is the routing target of
    :meth:`repro.parallel.backends.DistributedFactorization.solve` for
    the simulated backend.

    Returns ``(x, solve_report)`` with ``x`` shaped like ``b``.
    """
    from repro.parallel.spmd_solve import triangular_solve_program

    layout = run.layout
    if not isinstance(layout, BlockCyclicLayout):
        raise DistributionError(
            "the distributed solve supports Versions 1/2 "
            "(whole block columns)")
    if node_model is None:
        node_model = t3d_node_model()
    if network is None:
        network = T3DNetworkParameters()
    nproc = layout.nproc
    m, p = run.block_size, run.num_blocks
    b = np.asarray(b, dtype=np.float64)
    single = b.ndim == 1
    r_blocks = {rank: res or {} for rank, res in
                enumerate(run.report.results)}
    machine = Machine(nproc, network=network,
                      topology=topology or Torus3D(nproc), trace=trace)
    solve_report = machine.run(
        triangular_solve_program, layout=layout, m=m, p=p,
        r_blocks=r_blocks, b=b, node_model=node_model)
    n = m * p
    x = np.zeros(n) if single else np.zeros((n, b.shape[1]))
    for res in solve_report.results:
        for j, xj in res.items():
            x[j * m:(j + 1) * m] = xj
    return x, solve_report


def simulate_solve(t: SymmetricBlockToeplitz, b: np.ndarray, nproc: int, *,
                   bdist: float = 1,
                   representation: str = "vy2",
                   node_model=None,
                   network: T3DNetworkParameters | None = None,
                   topology=None,
                   trace: bool = False
                   ) -> tuple[np.ndarray, SimulatedRun, MachineReport]:
    """Factor *and* solve ``T x = b`` on the simulated machine.

    Runs the distributed factorization (keeping the factor distributed,
    one column-block dict per PE) followed by the distributed triangular
    solves of :mod:`repro.parallel.spmd_solve`.  ``b`` may be a vector
    or an ``n × k`` panel.  Versions 1/2 layouts only (the solve sweeps
    assume whole block columns).

    Returns ``(x, factorization_run, solve_report)``.
    """
    if bdist < 1:
        raise DistributionError(
            "the distributed solve supports Versions 1/2 (b ≥ 1)")
    layout = make_layout(nproc, b=bdist)
    if node_model is None:
        node_model = t3d_node_model()
    if network is None:
        network = T3DNetworkParameters()
    run = simulate_factorization(
        t, nproc, layout=layout, representation=representation,
        node_model=node_model, network=network, topology=topology,
        collect=True, trace=trace)
    x, solve_report = simulate_triangular_solve(
        run, b, node_model=node_model, network=network,
        topology=topology, trace=trace)
    return x, run, solve_report
