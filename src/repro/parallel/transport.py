"""Pluggable transport for the real SPMD backends.

The multiprocess backend needs four things from the machine it runs on:
named bulk-data *segments* every PE can map (the stand-in for the T3D's
globally addressable memory), a *barrier*, a *result queue*, and a
process *context* to start workers from.  This module abstracts them
behind a small :class:`Transport` protocol so the same SPMD programs
(:mod:`repro.parallel.mp_backend`) can later run over a different
fabric — a socket transport spanning hosts would implement the same
five methods — while :class:`SharedMemoryTransport` keeps today's
single-host :mod:`multiprocessing.shared_memory` behaviour as the
default.

Segment lifecycle is centralized in :class:`TransportSession`: the
parent creates every segment through the session and tears the whole
set down with one :meth:`~TransportSession.cleanup` call that
``close()``\\ s and ``unlink()``\\ s each segment *unconditionally* —
tolerating segments a crashed child never attached, double unlinks, and
interpreter-shutdown races — so a worker dying mid-step can no longer
leak ``/dev/shm`` space or trip resource-tracker warnings.  Segments
carry a recognizable ``repro_`` name prefix, which the leak tests grep
``/dev/shm`` for.
"""

from __future__ import annotations

import itertools
import os
import secrets
from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError

__all__ = [
    "SegmentHandle",
    "Attachment",
    "TransportSession",
    "Transport",
    "SharedMemoryTransport",
    "get_transport",
    "register_transport",
    "available_transports",
]

#: Prefix of every segment name this process creates (leak tests scan
#: ``/dev/shm`` for it).
SEGMENT_PREFIX = "repro_"


@dataclass(frozen=True)
class SegmentHandle:
    """Picklable address of one shared segment.

    Carries everything a worker needs to map the segment as an ndarray:
    the transport-level name plus the array shape/dtype.  Handles cross
    the process boundary in the worker ``args`` tuple (they must stay
    cheap to pickle).
    """

    name: str
    shape: tuple
    dtype: str = "float64"


class Attachment:
    """A worker-side mapping of a segment: ``.array`` + ``.close()``."""

    def __init__(self, raw, array: np.ndarray):
        self._raw = raw
        self.array = array

    def close(self) -> None:
        self.array = None
        if self._raw is not None:
            try:
                self._raw.close()
            except Exception:
                pass
            self._raw = None


class TransportSession:
    """Parent-side owner of one run's shared resources.

    Tracks every segment created through it; :meth:`cleanup` releases
    them all no matter what state the run (or its workers) died in.
    Use as a context manager::

        with transport.session() as sess:
            arr, handle = sess.ndarray((n, n))
            ...
        # segments closed + unlinked here, crash or not
    """

    def __init__(self, transport: "Transport"):
        self.transport = transport
        self._segments: list = []

    # -- resource creation --------------------------------------------
    def ndarray(self, shape, dtype=np.float64
                ) -> tuple[np.ndarray, SegmentHandle]:
        """A zero-initialized shared array + the handle workers attach."""
        arr, handle, raw = self.transport._create_segment(shape, dtype)
        self._segments.append(raw)
        arr[...] = 0
        return arr, handle

    def barrier(self, parties: int):
        return self.transport.context().Barrier(parties)

    def queue(self):
        return self.transport.context().Queue()

    # -- teardown ------------------------------------------------------
    def cleanup(self) -> None:
        """Close + unlink every segment, tolerating every failure mode.

        Runs in the parent's ``finally``: segments must disappear even
        when a child crashed before attaching, died holding the barrier,
        or the parent is unwinding from an exception mid-setup.
        """
        segments, self._segments = self._segments, []
        for raw in segments:
            try:
                raw.close()
            except Exception:
                pass
            try:
                raw.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass

    def __enter__(self) -> "TransportSession":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


class Transport:
    """Protocol for a backend fabric (see module docstring).

    Subclasses implement :meth:`probe`, :meth:`context`,
    :meth:`_create_segment` and :meth:`attach`; everything else is
    shared plumbing.  ``name`` is the registry key
    (``SolverPlan.transport`` / CLI ``--transport``).
    """

    name = "abstract"

    def probe(self) -> tuple[bool, str]:
        """``(ok, reason)`` — can this transport run here?"""
        raise NotImplementedError

    def context(self):
        """The :mod:`multiprocessing` context workers start from."""
        raise NotImplementedError

    def session(self) -> TransportSession:
        """A fresh resource session for one run."""
        return TransportSession(self)

    def _create_segment(self, shape, dtype):
        """Create a named segment; returns ``(array, handle, raw)``."""
        raise NotImplementedError

    def attach(self, handle: SegmentHandle) -> Attachment:
        """Worker-side: map an existing segment by handle."""
        raise NotImplementedError


class SharedMemoryTransport(Transport):
    """Single-host transport over :mod:`multiprocessing.shared_memory`.

    Workers are forked (or spawned) OS processes; segments live in
    ``/dev/shm`` under a ``repro_`` prefix; the barrier and queue are
    the stock multiprocessing primitives.
    """

    name = "shared_memory"

    def __init__(self):
        self._counter = itertools.count()
        self._probe_result: tuple[bool, str] | None = None

    def probe(self, *, refresh: bool = False) -> tuple[bool, str]:
        if self._probe_result is not None and not refresh:
            return self._probe_result
        try:
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
        except (ImportError, OSError, ValueError) as exc:
            self._probe_result = False, f"shared memory unavailable: {exc}"
            return self._probe_result
        try:
            self.context().Barrier(1)
        except (ImportError, OSError, PermissionError, ValueError) as exc:
            self._probe_result = (
                False, f"process synchronization unavailable: {exc}")
            return self._probe_result
        self._probe_result = True, ""
        return self._probe_result

    def context(self):
        import multiprocessing as mp
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        return mp.get_context(method)

    def _create_segment(self, shape, dtype):
        from multiprocessing import shared_memory
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        name = (f"{SEGMENT_PREFIX}{os.getpid()}_"
                f"{next(self._counter)}_{secrets.token_hex(4)}")
        raw = shared_memory.SharedMemory(name=name, create=True,
                                         size=nbytes)
        arr = np.ndarray(shape, dtype=dtype, buffer=raw.buf)
        return arr, SegmentHandle(name=name, shape=tuple(shape),
                                  dtype=dtype.name), raw

    def attach(self, handle: SegmentHandle) -> Attachment:
        from multiprocessing import shared_memory
        raw = shared_memory.SharedMemory(name=handle.name)
        arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                         buffer=raw.buf)
        return Attachment(raw, arr)


_TRANSPORTS: dict[str, Transport] = {}


def register_transport(transport: Transport) -> Transport:
    """Register a transport under its ``name`` (later wins)."""
    _TRANSPORTS[transport.name] = transport
    return transport


def get_transport(name: str) -> Transport:
    """Look up a registered transport by name."""
    try:
        return _TRANSPORTS[name]
    except KeyError:
        raise DistributionError(
            f"unknown transport {name!r}; registered: "
            f"{sorted(_TRANSPORTS)}") from None


def available_transports() -> tuple[str, ...]:
    return tuple(sorted(_TRANSPORTS))


register_transport(SharedMemoryTransport())
