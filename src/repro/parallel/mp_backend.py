"""Real multiprocess SPMD backend for the distributed block Schur
algorithm.

Where :mod:`repro.parallel.driver` runs the paper's Section-7 programs on
the *simulated* T3D, this module runs them for real: one OS process per
PE, the ``2m × mp`` generator in a :mod:`multiprocessing.shared_memory`
segment (the stand-in for the T3D's globally addressable memory), and
the same three data distributions deciding which PE owns which block
columns (Versions 1/2) or column chunks (Version 3).

The per-step structure mirrors :mod:`repro.parallel.spmd` exactly:

1. *shift* — every PE copies the upper halves of its live blocks aside,
   then (after a barrier) writes them into the ``j + 1`` slots, which may
   be owned by the right neighbour — the shmem put;
2. *broadcast* — every PE snapshots the pivot panel from shared memory
   (a get from the owner's region standing in for the broadcast of the
   block transformation) behind a barrier;
3. *build* — each PE builds the block hyperbolic transformation from its
   private pivot copy (replicated compute, exactly the broadcast-the-
   panel-and-rebuild variant); the owner writes the eliminated pivot
   back;
4. *apply* — each PE applies the transformation to its own trailing
   block columns and collects its slice of ``R``.

Communication volume is *counted* with the same formulas the simulator
charges (shift words per boundary crossing, §6.3 transform words per
broadcast), so the counters of a real run and a simulated run of the
same plan are directly comparable — see
:meth:`~repro.machine.simulator.MachineReport.words_by_rank`.

Workers time their phases (shift / broadcast / blocking / application /
barrier / gather) and ship the accounting back over a queue; the parent
reconstructs per-PE spans that merge into the PR-2 observability
pipeline (:func:`repro.obs.adopt_span`, the unified JSONL schema with
the ``rank`` field set).

Everything degrades gracefully: :func:`multiprocess_available` probes
the platform (``/dev/shm``, semaphores; ``REPRO_MP_DISABLE=1`` forces it
off) and the engine falls back to the simulated backend — with the
reason recorded — when the probe fails.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.core.generator import spd_generator
from repro.core.schur_spd import eliminate_block
from repro.errors import (
    DistributionError,
    MultiprocessUnavailableError,
    NotPositiveDefiniteError,
    ShapeError,
)
from repro.obs.export import merge_rank_traces, span_records
from repro.obs.schema import SOURCE_MULTIPROCESS
from repro.obs.spans import Span
from repro.parallel import costs
from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)
from repro.parallel.spmd import build_partial_transform
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz

__all__ = ["MPRun", "mp_factorization", "multiprocess_available"]

#: Seconds a worker waits at a barrier before declaring the run wedged.
_BARRIER_TIMEOUT = 300.0


# ----------------------------------------------------------------------
# Availability
# ----------------------------------------------------------------------
_PROBE: tuple[bool, str] | None = None


def _mp_context():
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def _probe_platform() -> tuple[bool, str]:
    try:
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(create=True, size=16)
        seg.close()
        seg.unlink()
    except (ImportError, OSError, ValueError) as exc:
        return False, f"shared memory unavailable: {exc}"
    try:
        _mp_context().Barrier(1)
    except (ImportError, OSError, PermissionError, ValueError) as exc:
        return False, f"process synchronization unavailable: {exc}"
    return True, ""


def multiprocess_available(*, refresh: bool = False) -> tuple[bool, str]:
    """Whether the real multiprocess backend can run here.

    Returns ``(ok, reason)``; ``reason`` explains a ``False`` (it is the
    string the engine records when it falls back to simulation).  The
    platform probe — can we create shared memory and semaphores? — is
    cached; ``REPRO_MP_DISABLE`` (any truthy value) short-circuits it,
    which is also the tested fallback path.
    """
    if os.environ.get("REPRO_MP_DISABLE", "").lower() not in \
            ("", "0", "false"):
        return False, "disabled by REPRO_MP_DISABLE"
    global _PROBE
    if _PROBE is None or refresh:
        _PROBE = _probe_platform()
    return _PROBE


# ----------------------------------------------------------------------
# Worker programs (module level: importable under the spawn method)
# ----------------------------------------------------------------------
class _Phases:
    """Tiny phase-time accumulator (perf_counter is monotonic and —
    on Linux — shares its epoch across processes, so parent-side span
    rendering lines the workers up correctly)."""

    __slots__ = ("acc", "_t0")

    def __init__(self):
        self.acc: dict[str, float] = {}
        self._t0 = 0.0

    def start(self):
        self._t0 = time.perf_counter()

    def stop(self, name: str):
        self.acc[name] = self.acc.get(name, 0.0) + \
            (time.perf_counter() - self._t0)


def _attach(name: str):
    from multiprocessing import shared_memory
    return shared_memory.SharedMemory(name=name)


def _finish(rank, queue, t_start, phases, attrs):
    attrs["rank"] = rank
    queue.put((rank, {
        "ok": True, "rank": rank,
        "start": t_start, "end": time.perf_counter(),
        "phases": phases.acc, "attrs": attrs,
    }))


def _fail(rank, queue, barrier, exc):
    from repro.errors import BreakdownError, NotPositiveDefiniteError
    kind = "breakdown" if isinstance(
        exc, (BreakdownError, NotPositiveDefiniteError)) else "error"
    try:
        barrier.abort()   # release peers parked on the barrier
    except Exception:
        pass
    queue.put((rank, {"ok": False, "kind": kind,
                      "error": f"{exc}\n{traceback.format_exc()}"}))


def _block_cyclic_worker(rank, nproc, gen_name, r_name, m, p, w, layout,
                         representation, collect, barrier, queue):
    """One PE of the Versions-1/2 program on shared memory."""
    shm_gen = shm_r = None
    try:
        shm_gen = _attach(gen_name)
        n = m * p
        gen = np.ndarray((2 * m, n), dtype=np.float64, buffer=shm_gen.buf)
        r = None
        if collect:
            shm_r = _attach(r_name)
            r = np.ndarray((n, n), dtype=np.float64, buffer=shm_r.buf)
        my_blocks = layout.blocks_of(rank, p)
        phases = _Phases()
        shift_words = shift_messages = 0
        bcast_words = 0
        t_start = time.perf_counter()

        def upper(j):
            return gen[:m, j * m:(j + 1) * m]

        def lower(j):
            return gen[m:, j * m:(j + 1) * m]

        def wait():
            phases.start()
            barrier.wait(timeout=_BARRIER_TIMEOUT)
            phases.stop("barrier")

        if collect:
            phases.start()
            for j in my_blocks:
                r[0:m, j * m:(j + 1) * m] = upper(j)
            phases.stop("gather")
        wait()

        for i in range(1, p):
            # -------- shift: copy aside, barrier, put into j+1 slots --
            live = [j for j in my_blocks if i - 1 <= j <= p - 2]
            phases.start()
            moved = [(j + 1, upper(j).copy()) for j in live]
            crossings = sum(1 for j in live
                            if layout.owner(j + 1) != rank)
            shift_words += crossings * m * m
            shift_messages += crossings
            phases.stop("shift")
            wait()
            phases.start()
            for tgt, blk in moved:
                upper(tgt)[:] = blk       # shmem put (maybe foreign slot)
            phases.stop("shift")
            wait()

            # -------- broadcast: snapshot the pivot panel -------------
            phases.start()
            up_c = upper(i).copy()
            low_c = lower(i).copy()
            bcast_words += costs.transform_words(representation, m) + m
            phases.stop("broadcast")
            wait()

            # -------- build (replicated) ------------------------------
            phases.start()
            collected: list = []
            eliminate_block(up_c, low_c, w, representation=representation,
                            panel=None, pivot_sign_fixup=False,
                            collect=collected)
            u_block = collected[0]
            negrows = np.nonzero(np.diag(up_c) < 0)[0]
            if negrows.size:
                up_c[negrows] *= -1.0
            if layout.owner(i) == rank:
                upper(i)[:] = up_c
                lower(i)[:] = 0.0
            phases.stop("blocking")

            # -------- apply to own trailing blocks --------------------
            phases.start()
            for j in my_blocks:
                if j > i:
                    u_block.apply_pair(upper(j), lower(j))
                    if negrows.size:
                        upper(j)[negrows] *= -1.0
            phases.stop("application")

            if collect:
                phases.start()
                for j in my_blocks:
                    if j >= i:
                        r[i * m:(i + 1) * m, j * m:(j + 1) * m] = upper(j)
                phases.stop("gather")
            wait()

        _finish(rank, queue, t_start, phases, {
            "blocks": len(my_blocks), "steps": p - 1,
            "shift_words": shift_words,
            "shift_messages": shift_messages,
            "broadcast_words": bcast_words,
        })
    except Exception as exc:                  # noqa: BLE001 — shipped back
        _fail(rank, queue, barrier, exc)
    finally:
        for seg in (shm_gen, shm_r):
            if seg is not None:
                seg.close()


def _spread_worker(rank, nproc, gen_name, r_name, m, p, w, layout,
                   representation, collect, barrier, queue):
    """One PE of the Version-3 (spread) program on shared memory."""
    shm_gen = shm_r = None
    try:
        shm_gen = _attach(gen_name)
        n = m * p
        gen = np.ndarray((2 * m, n), dtype=np.float64, buffer=shm_gen.buf)
        r = None
        if collect:
            shm_r = _attach(r_name)
            r = np.ndarray((n, n), dtype=np.float64, buffer=shm_r.buf)
        s = layout.spread
        mc = layout.chunk_width(m)
        my_chunks = layout.chunks_of(rank, p)
        phases = _Phases()
        shift_words = shift_messages = 0
        bcast_words = 0
        t_start = time.perf_counter()

        def col0(j, c):
            return j * m + c * mc

        def upper(j, c):
            return gen[:m, col0(j, c):col0(j, c) + mc]

        def lower(j, c):
            return gen[m:, col0(j, c):col0(j, c) + mc]

        def wait():
            phases.start()
            barrier.wait(timeout=_BARRIER_TIMEOUT)
            phases.stop("barrier")

        if collect:
            phases.start()
            for (j, c) in my_chunks:
                r[0:m, col0(j, c):col0(j, c) + mc] = upper(j, c)
            phases.stop("gather")
        wait()

        for i in range(1, p):
            # -------- shift -------------------------------------------
            live = [(j, c) for (j, c) in my_chunks if i - 1 <= j <= p - 2]
            phases.start()
            moved = [((j + 1, c), upper(j, c).copy()) for (j, c) in live]
            crossings = sum(1 for (j, c) in live
                            if layout.owner(j + 1, c) != rank)
            shift_words += crossings * m * mc
            shift_messages += crossings
            phases.stop("shift")
            wait()
            phases.start()
            for (tj, tc), blk in moved:
                upper(tj, tc)[:] = blk
            phases.stop("shift")
            wait()

            # ---- s sequential partial builds + panel broadcasts ------
            for c in range(s):
                phases.start()
                up_c = upper(i, c).copy()
                low_c = lower(i, c).copy()
                bcast_words += costs.transform_words(
                    representation, m, k=mc) + mc
                phases.stop("broadcast")
                wait()

                phases.start()
                u_block, negrows = build_partial_transform(
                    up_c, low_c, w, row_offset=c * mc,
                    representation=representation)
                if layout.owner(i, c) == rank:
                    upper(i, c)[:] = up_c
                    lower(i, c)[:] = low_c
                phases.stop("blocking")

                phases.start()
                for (j, cc) in my_chunks:
                    if j > i or (j == i and cc > c):
                        u_block.apply_pair(upper(j, cc), lower(j, cc))
                        if negrows.size:
                            upper(j, cc)[negrows] *= -1.0
                phases.stop("application")
                wait()

            if collect:
                phases.start()
                for (j, c) in my_chunks:
                    if j >= i:
                        r[i * m:(i + 1) * m,
                          col0(j, c):col0(j, c) + mc] = upper(j, c)
                phases.stop("gather")
            wait()

        _finish(rank, queue, t_start, phases, {
            "blocks": len(my_chunks), "steps": p - 1,
            "shift_words": shift_words,
            "shift_messages": shift_messages,
            "broadcast_words": bcast_words,
        })
    except Exception as exc:                  # noqa: BLE001 — shipped back
        _fail(rank, queue, barrier, exc)
    finally:
        for seg in (shm_gen, shm_r):
            if seg is not None:
                seg.close()


# ----------------------------------------------------------------------
# Result object
# ----------------------------------------------------------------------
@dataclass
class MPRun:
    """Result of one real multiprocess distributed factorization."""

    r: np.ndarray | None
    nproc: int
    layout: object
    block_size: int
    num_blocks: int
    representation: str
    wall_seconds: float
    start_method: str
    #: Per-rank worker payloads (phase times, comm counters), rank order.
    workers: list[dict]

    @property
    def time(self) -> float:
        """Wall-clock seconds to factor (the real-machine makespan)."""
        return self.wall_seconds

    def words_by_rank(self) -> dict[int, int]:
        """Shift (put) words per rank — comparable with
        :meth:`repro.machine.simulator.MachineReport.words_by_rank`."""
        return {w["rank"]: int(w["attrs"]["shift_words"])
                for w in self.workers}

    def broadcast_words_by_rank(self) -> dict[int, int]:
        """§6.3 transform words received per rank over all steps."""
        return {w["rank"]: int(w["attrs"]["broadcast_words"])
                for w in self.workers}

    def breakdown(self) -> dict[str, float]:
        """Phase breakdown of the slowest PE (mirrors
        :meth:`~repro.parallel.driver.SimulatedRun.breakdown`)."""
        worst = max(self.workers, key=lambda w: w["end"] - w["start"])
        return dict(worst["phases"])

    def worker_spans(self) -> list[Span]:
        """Per-PE spans (fresh objects) carrying phases + counters."""
        spans = []
        for w in self.workers:
            spans.append(Span(
                name="mp.pe", start=w["start"], end=w["end"],
                attributes=dict(w["attrs"]), phases=dict(w["phases"])))
        return spans

    def to_records(self) -> list[dict]:
        """Flatten per-PE spans into the unified trace schema.

        Same record shape as the engine span exporter and the simulated
        machine's trace — ``source`` is ``"multiprocess"`` and ``rank``
        is set on every record.  The per-rank streams are interleaved
        by start time (:func:`repro.obs.export.merge_rank_traces`), so
        the output reads as one global timeline rather than rank 0's
        whole history followed by rank 1's.
        """
        return merge_rank_traces(
            span_records(sp, source=SOURCE_MULTIPROCESS)
            for sp in self.worker_spans())


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _drain(queue, procs, nproc, barrier):
    """Collect one payload per rank, watching for dead workers."""
    from queue import Empty
    results: dict[int, dict] = {}
    deadline = time.monotonic() + _BARRIER_TIMEOUT
    while len(results) < nproc:
        try:
            rank, payload = queue.get(timeout=0.25)
            results[rank] = payload
            continue
        except Empty:
            pass
        dead = [pr for pr in procs if pr.exitcode not in (None, 0)]
        if dead:
            try:
                barrier.abort()
            except Exception:
                pass
            raise DistributionError(
                f"worker process(es) died with exit codes "
                f"{[pr.exitcode for pr in dead]}")
        if time.monotonic() > deadline:
            try:
                barrier.abort()
            except Exception:
                pass
            raise DistributionError(
                "multiprocess factorization timed out waiting for workers")
    return [results[r] for r in range(nproc)]


def mp_factorization(t: SymmetricBlockToeplitz,
                     nproc: int | None = None, *,
                     b: float = 1,
                     plan=None,
                     layout=None,
                     representation: str | None = None,
                     collect: bool = True) -> MPRun:
    """Factor ``t`` with real OS processes, one per PE.

    Parameters mirror
    :func:`~repro.parallel.driver.simulate_factorization`: ``b`` (or an
    explicit ``layout``) selects the paper's Version 1/2/3 distribution,
    a machine-tuned :class:`~repro.engine.SolverPlan` may supply
    ``nproc`` / ``b`` / ``representation``, and ``collect=False`` skips
    gathering ``R`` (for timing sweeps).

    Raises
    ------
    MultiprocessUnavailableError
        When the platform cannot run the backend (no shared memory, no
        semaphores, worker processes cannot start, or
        ``REPRO_MP_DISABLE`` is set).  The engine catches this and falls
        back to the simulated backend, recording the reason.
    NotPositiveDefiniteError
        When a worker hits a Schur breakdown (the matrix is not SPD) —
        so the engine's armed indefinite fallback takes over exactly as
        in the serial path.
    """
    if plan is not None:
        if nproc is None:
            nproc = plan.nproc
        if layout is None and plan.distribution_b is not None:
            b = plan.distribution_b
        if representation is None:
            representation = plan.representation
    if representation is None:
        representation = "vy2"
    if nproc is None:
        raise DistributionError(
            "nproc is required (directly or through a SolverPlan)")
    ok, reason = multiprocess_available()
    if not ok:
        raise MultiprocessUnavailableError(reason)
    if layout is None:
        layout = make_layout(nproc, b=b)
    if isinstance(layout, BlockCyclicLayout):
        worker = _block_cyclic_worker
    elif isinstance(layout, SpreadLayout):
        worker = _spread_worker
    else:
        raise DistributionError(f"unknown layout {layout!r}")

    g = spd_generator(t)              # NotPositiveDefiniteError up front
    m, p = g.block_size, g.num_blocks
    n = m * p
    if p < 2:
        raise ShapeError("need at least 2 block columns to factor")
    if isinstance(layout, SpreadLayout):
        layout.chunk_width(m)         # validates m % spread == 0
        if not np.all(g.w[:m] == 1):
            raise DistributionError(
                "the spread (Version 3) program supports the SPD "
                "signature only")

    from multiprocessing import shared_memory
    ctx = _mp_context()
    shm_gen = shm_r = None
    procs: list = []
    try:
        try:
            shm_gen = shared_memory.SharedMemory(
                create=True, size=g.gen.nbytes)
            if collect:
                shm_r = shared_memory.SharedMemory(
                    create=True, size=n * n * 8)
            barrier = ctx.Barrier(nproc)
            queue = ctx.Queue()
        except (OSError, PermissionError, ValueError) as exc:
            raise MultiprocessUnavailableError(
                f"could not allocate shared resources: {exc}") from exc
        np.ndarray(g.gen.shape, dtype=np.float64,
                   buffer=shm_gen.buf)[:] = g.gen
        if collect:
            np.ndarray((n, n), dtype=np.float64, buffer=shm_r.buf)[:] = 0.0

        args = (shm_gen.name, shm_r.name if collect else "", m, p, g.w,
                layout, representation, collect, barrier, queue)
        procs = [ctx.Process(target=worker, args=(rank, nproc) + args,
                             daemon=True)
                 for rank in range(nproc)]
        t0 = time.perf_counter()
        try:
            for pr in procs:
                pr.start()
        except (OSError, PermissionError) as exc:
            raise MultiprocessUnavailableError(
                f"could not start worker processes: {exc}") from exc
        payloads = _drain(queue, procs, nproc, barrier)
        wall = time.perf_counter() - t0
        for pr in procs:
            pr.join(timeout=10.0)

        failures = [w for w in payloads if not w.get("ok")]
        if failures:
            if any(w.get("kind") == "breakdown" for w in failures):
                raise NotPositiveDefiniteError(
                    "distributed Schur breakdown: "
                    + failures[0]["error"].splitlines()[0])
            raise DistributionError(
                "multiprocess worker failed:\n" + failures[0]["error"])

        r = None
        if collect:
            r = np.array(np.ndarray((n, n), dtype=np.float64,
                                    buffer=shm_r.buf))
        run = MPRun(r=r, nproc=nproc, layout=layout, block_size=m,
                    num_blocks=p, representation=representation,
                    wall_seconds=wall,
                    start_method=ctx.get_start_method(),
                    workers=sorted(payloads, key=lambda w: w["rank"]))
    finally:
        for pr in procs:
            if pr.is_alive():
                pr.terminate()
        for seg in (shm_gen, shm_r):
            if seg is not None:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass

    if obs.enabled():
        for sp in run.worker_spans():
            obs.adopt_span(sp)
        reg = obs.default_registry()
        reg.counter(
            "repro_mp_runs_total",
            "Real multiprocess distributed factorizations completed"
        ).inc(1, version=str(layout.version), nproc=str(nproc))
        reg.counter(
            "repro_mp_comm_words_total",
            "Words moved by the multiprocess backend, by kind"
        ).inc(sum(run.words_by_rank().values()), kind="shift")
        reg.counter(
            "repro_mp_comm_words_total",
            "Words moved by the multiprocess backend, by kind"
        ).inc(sum(run.broadcast_words_by_rank().values()),
              kind="broadcast")
    return run
